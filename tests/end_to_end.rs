//! End-to-end integration tests: every operator on every evaluated system,
//! verified against reference implementations, on the tiny topology.

use mondrian::engine::{ExperimentBuilder, KeyDist, OperatorKind, SystemKind};

fn run_tiny(op: OperatorKind, system: SystemKind) -> mondrian::engine::Report {
    ExperimentBuilder::new(op).system(system).tiny().tuples_per_vault(256).run()
}

#[test]
fn every_operator_verifies_on_every_system() {
    for op in OperatorKind::ALL {
        for system in SystemKind::ALL {
            let report = run_tiny(op, system);
            assert!(report.verified, "{op} on {system} failed verification");
            assert!(report.runtime_ps > 0);
            assert!(report.instructions > 0);
            assert!(report.energy.total_j() > 0.0);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run_tiny(OperatorKind::Join, SystemKind::Mondrian);
    let b = run_tiny(OperatorKind::Join, SystemKind::Mondrian);
    assert_eq!(a.runtime_ps, b.runtime_ps, "same seed must give same cycles");
    assert_eq!(a.instructions, b.instructions);
    let phases_a: Vec<_> = a.phases.iter().map(|p| (p.label.clone(), p.duration())).collect();
    let phases_b: Vec<_> = b.phases.iter().map(|p| (p.label.clone(), p.duration())).collect();
    assert_eq!(phases_a, phases_b);
}

#[test]
fn different_seeds_change_data_not_correctness() {
    let a = ExperimentBuilder::new(OperatorKind::GroupBy)
        .system(SystemKind::NmpPerm)
        .tiny()
        .tuples_per_vault(256)
        .seed(1)
        .run();
    let b = ExperimentBuilder::new(OperatorKind::GroupBy)
        .system(SystemKind::NmpPerm)
        .tiny()
        .tuples_per_vault(256)
        .seed(2)
        .run();
    assert!(a.verified && b.verified);
    assert_ne!(a.summary, b.summary, "different data, different group counts");
}

#[test]
fn scan_has_no_partitioning_phase() {
    // Table 2: Scan is probe-only.
    let report = run_tiny(OperatorKind::Scan, SystemKind::Nmp);
    assert_eq!(report.partition_time(), 0);
    assert!(report.probe_time() > 0);
}

#[test]
fn join_and_sort_have_partitioning_phases() {
    for op in [OperatorKind::Join, OperatorKind::Sort, OperatorKind::GroupBy] {
        let report = run_tiny(op, SystemKind::Nmp);
        assert!(report.partition_time() > 0, "{op} must shuffle");
        assert!(report.probe_time() > 0);
    }
}

#[test]
fn permutable_overflow_retries_and_still_verifies() {
    // §5.4: under-provisioned destination buffers raise the exception; the
    // engine re-provisions and re-runs the shuffle.
    let report = ExperimentBuilder::new(OperatorKind::Sort)
        .system(SystemKind::Mondrian)
        .tiny()
        .tuples_per_vault(256)
        .underprovision_permutable(0.5)
        .run();
    assert!(report.shuffle_retries >= 1, "overflow must be taken");
    assert!(report.verified, "retry must restore correctness");

    // Exactly-sized buffers never retry.
    let clean = run_tiny(OperatorKind::Sort, SystemKind::Mondrian);
    assert_eq!(clean.shuffle_retries, 0);
}

#[test]
fn zipfian_keys_verify_on_all_sorted_systems() {
    for system in [SystemKind::Mondrian, SystemKind::NmpSeq, SystemKind::Cpu] {
        let report = ExperimentBuilder::new(OperatorKind::GroupBy)
            .system(system)
            .tiny()
            .tuples_per_vault(256)
            .key_distribution(KeyDist::Zipf(0.9))
            .run();
        assert!(report.verified, "skewed group-by failed on {system}");
    }
}

#[test]
fn mondrian_uses_simd_baselines_do_not() {
    let mondrian = run_tiny(OperatorKind::Scan, SystemKind::Mondrian);
    let nmp = run_tiny(OperatorKind::Scan, SystemKind::Nmp);
    let m_simd: u64 = mondrian.phases.iter().map(|p| p.simd_ops).sum();
    let n_simd: u64 = nmp.phases.iter().map(|p| p.simd_ops).sum();
    assert!(m_simd > 0, "Mondrian scan is SIMD");
    assert_eq!(n_simd, 0, "baselines have no SIMD unit");
    // SIMD executes ~8x fewer instructions for the same scan.
    assert!(mondrian.instructions * 4 < nmp.instructions);
}

#[test]
fn permutability_reduces_row_activations() {
    let perm = run_tiny(OperatorKind::Sort, SystemKind::NmpPerm);
    let conv = run_tiny(OperatorKind::Sort, SystemKind::Nmp);
    let perm_acts = perm.stats.sum_by_suffix("activations");
    let conv_acts = conv.stats.sum_by_suffix("activations");
    assert!(
        perm_acts < conv_acts,
        "permutable shuffle must activate fewer rows: {perm_acts} vs {conv_acts}"
    );
}

#[test]
fn energy_breakdown_is_consistent() {
    let report = run_tiny(OperatorKind::Join, SystemKind::Mondrian);
    let cats = report.energy.fig8_categories();
    let total: f64 = cats.iter().sum();
    assert!((total - report.energy.total_j()).abs() < 1e-12);
    assert!(cats.iter().all(|&c| c >= 0.0));
    // NMP systems have no LLC energy.
    assert_eq!(report.energy.llc_j, 0.0);
    // The CPU system does.
    let cpu = run_tiny(OperatorKind::Join, SystemKind::Cpu);
    assert!(cpu.energy.llc_j > 0.0);
}

#[test]
fn table3_sheet_renders() {
    use mondrian::engine::SystemConfig;
    for kind in SystemKind::ALL {
        let sheet = SystemConfig::scaled(kind).table3_sheet();
        assert!(sheet.contains(kind.name()));
    }
}
