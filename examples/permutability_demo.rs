//! Data permutability under the microscope (§5.3, Fig. 2).
//!
//! Drives one vault controller directly with the interleaved write pattern
//! of a partitioning shuffle — first as conventional exact-address writes,
//! then as permutable object writes — and compares row activations, the
//! dominant term of DRAM dynamic energy (§3.1).
//!
//! ```text
//! cargo run --release --example permutability_demo
//! ```

use mondrian::mem::{
    drain, AccessKind, DramRequest, PermutableRegion, VaultConfig, VaultController,
};

fn main() {
    let sources = 16u64;
    let per_source = 64u64;
    let mut cfg = VaultConfig::hmc();
    cfg.capacity = 1 << 20;

    // Conventional: each source writes its own cursor range; arrivals
    // interleave round-robin (Fig. 2's "message arrival order").
    let mut vault = VaultController::new(cfg, 0);
    let mut id = 0;
    for i in 0..per_source {
        for s in 0..sources {
            let addr = s * per_source * 16 + i * 16; // exact destination
            vault
                .enqueue(DramRequest { id, addr, bytes: 16, kind: AccessKind::Write }, 0)
                .expect("write");
            id += 1;
        }
    }
    let done = drain(&mut vault);
    let conv_acts = vault.stats().activations;
    let conv_span = done.iter().map(|c| c.finish).max().unwrap();

    // Permutable: same arrivals, but the controller appends objects in
    // arrival order inside the destination region.
    let mut vault = VaultController::new(cfg, 0);
    vault.set_permutable_region(PermutableRegion {
        base: 0,
        size: sources * per_source * 16,
        object_bytes: 16,
    });
    for id in 0..sources * per_source {
        vault
            .enqueue(DramRequest { id, addr: 0, bytes: 16, kind: AccessKind::PermutableWrite }, 0)
            .expect("permutable write");
    }
    let done = drain(&mut vault);
    let perm_acts = vault.stats().activations;
    let perm_span = done.iter().map(|c| c.finish).max().unwrap();

    let writes = sources * per_source;
    let rows_touched = writes * 16 / 256;
    println!("{writes} interleaved 16 B writes from {sources} sources into one vault\n");
    println!("conventional (exact addresses):");
    println!("  row activations: {conv_acts}");
    println!("  drain time:      {:.2} µs", conv_span as f64 / 1e6);
    println!("permutable (arrival-order append):");
    println!("  row activations: {perm_acts}  (= rows touched: {rows_touched})");
    println!("  drain time:      {:.2} µs", perm_span as f64 / 1e6);
    println!(
        "\npermutability removes {:.1}x of the activations and {:.1}x of the drain time",
        conv_acts as f64 / perm_acts as f64,
        conv_span as f64 / perm_span as f64
    );
    // 0.65 nJ per activation (Table 4):
    let saved = (conv_acts - perm_acts) as f64 * 0.65e-9;
    println!("activation energy saved: {:.2} nJ per vault per shuffle wave", saved * 1e9);
}
