//! Skewed datasets and the overflow/retry exception path (§5.4).
//!
//! The paper evaluates uniform key distributions and defers skew to future
//! work, but it *does* specify the mechanism: if a shuffle overflows a
//! vault's permutable destination buffer, "an exception may be raised for
//! the CPU to handle" and the histogram/partitioning is re-run. This
//! example exercises both halves:
//!
//! 1. a Zipfian-skewed Group-by on the full Mondrian engine, and
//! 2. a deliberately under-provisioned shuffle that takes the exception
//!    path and retries with exact sizing.
//!
//! ```text
//! cargo run --release --example skew_handling
//! ```

use mondrian::engine::{ExperimentBuilder, KeyDist, OperatorKind, SystemKind};

fn main() {
    // Skewed keys: the heavy hitters concentrate on a few vaults, so the
    // partitioning phase slows down relative to uniform keys.
    let uniform = ExperimentBuilder::new(OperatorKind::GroupBy)
        .system(SystemKind::Mondrian)
        .tuples_per_vault(1024)
        .key_distribution(KeyDist::Uniform)
        .run();
    let skewed = ExperimentBuilder::new(OperatorKind::GroupBy)
        .system(SystemKind::Mondrian)
        .tuples_per_vault(1024)
        .key_distribution(KeyDist::Zipf(0.99))
        .run();
    assert!(uniform.verified && skewed.verified);
    println!("Group-by on Mondrian, 1024 tuples/vault:");
    println!(
        "  uniform keys: {:>10.3} µs partition, {:>10.3} µs total — {}",
        uniform.partition_time() as f64 / 1e6,
        uniform.runtime_ps as f64 / 1e6,
        uniform.summary
    );
    println!(
        "  zipf(0.99):   {:>10.3} µs partition, {:>10.3} µs total — {}",
        skewed.partition_time() as f64 / 1e6,
        skewed.runtime_ps as f64 / 1e6,
        skewed.summary
    );
    println!(
        "  skew slows partitioning by {:.2}x (hot vaults serialize the shuffle)\n",
        skewed.partition_time() as f64 / uniform.partition_time() as f64
    );

    // Failure injection: size destination buffers at 40% of what the
    // histogram says is needed. The shuffle overflows, the exception
    // reaches the "CPU", and the scatter re-runs with exact sizes.
    let retried = ExperimentBuilder::new(OperatorKind::Sort)
        .system(SystemKind::Mondrian)
        .tuples_per_vault(1024)
        .underprovision_permutable(0.4)
        .run();
    assert!(retried.verified, "the retry path must still produce a correct sort");
    assert!(retried.shuffle_retries > 0, "under-provisioning must trigger the exception");
    println!("Sort with 0.4x-sized permutable buffers:");
    println!("  shuffle retries taken: {}", retried.shuffle_retries);
    println!("  still verified:        {}", retried.verified);
    println!(
        "  total runtime:         {:.3} µs (includes the wasted round)",
        retried.runtime_ps as f64 / 1e6
    );
}
