//! Quickstart: run one Join on the full Mondrian Data Engine and on the
//! CPU-centric baseline, and compare runtime, energy and efficiency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mondrian::engine::{ExperimentBuilder, OperatorKind, SystemKind};

fn main() {
    // Keep the quickstart quick: the paper topology (4 HMCs × 16 vaults,
    // 16 CPU cores) at a small dataset scale.
    let tuples_per_vault = 1024;

    println!("Running Join (R ⋈ S, foreign key) on two systems...\n");
    let mut reports = Vec::new();
    for system in [SystemKind::Cpu, SystemKind::Mondrian] {
        let report = ExperimentBuilder::new(OperatorKind::Join)
            .system(system)
            .tuples_per_vault(tuples_per_vault)
            .run();
        assert!(report.verified, "functional verification failed");
        println!("{}", report.system.name());
        println!("  {}", report.summary);
        for phase in &report.phases {
            println!("    {:<26} {:>12.3} µs", phase.label, phase.duration() as f64 / 1e6);
        }
        println!("  runtime  {:>12.3} µs", report.runtime_ps as f64 / 1e6);
        println!("  energy   {:>12.3} µJ", report.energy.total_j() * 1e6);
        println!();
        reports.push(report);
    }

    let (cpu, mondrian) = (&reports[0], &reports[1]);
    println!("Mondrian vs CPU:");
    println!("  speedup     {:>6.1}x", cpu.runtime_ps as f64 / mondrian.runtime_ps as f64);
    println!(
        "  partitioning {:>5.1}x",
        cpu.partition_time() as f64 / mondrian.partition_time() as f64
    );
    println!(
        "  efficiency  {:>6.1}x (performance per joule, Fig. 9 metric)",
        mondrian.perf_per_joule() / cpu.perf_per_joule()
    );
}
