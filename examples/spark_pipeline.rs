//! A Spark-style analytics pipeline on the Mondrian Data Engine.
//!
//! Table 1 of the paper maps common Spark transformations onto the four
//! basic operators. This example runs a small pipeline functionally
//! (Filter → MapValues → AggregateByKey) and then executes the dominant
//! physical operator of each stage on the simulated engine, reporting where
//! the time goes.
//!
//! ```text
//! cargo run --release --example spark_pipeline
//! ```

use mondrian::engine::{ExperimentBuilder, SystemKind};
use mondrian::ops::spark::{self, SparkOp};
use mondrian::workloads::grouped_relation;

fn main() {
    // Functional pipeline on real data.
    let sales = grouped_relation(100_000, 2_500, 7); // ~40 tuples per key
    println!("input: {} tuples, {} distinct keys", sales.len(), 2_500);

    let recent = spark::filter(&sales, |t| t.payload % 10 != 0);
    let discounted = spark::map_values(&recent, |v| v * 95 / 100);
    let aggregated = spark::aggregate_by_key(&discounted);
    println!(
        "filter → map_values → aggregate_by_key: {} tuples → {} groups",
        recent.len(),
        aggregated.len()
    );
    let (hot_key, hot) = aggregated
        .iter()
        .max_by_key(|(_, a)| a.count)
        .expect("non-empty aggregation");
    println!(
        "hottest key {hot_key}: count={} sum={} min={} max={} avg={:.1}\n",
        hot.count,
        hot.sum,
        hot.min,
        hot.max,
        hot.avg()
    );

    // Each stage reduces to a basic operator (Table 1); time the dominant
    // ones on the engine.
    println!("stage → basic operator (Table 1):");
    for op in [SparkOp::Filter, SparkOp::MapValues, SparkOp::AggregateByKey] {
        println!("  {:?} → {}", op, op.basic_operator());
    }
    println!();

    for op in [SparkOp::Filter, SparkOp::AggregateByKey] {
        let basic = op.basic_operator();
        let report = ExperimentBuilder::new(basic)
            .system(SystemKind::Mondrian)
            .tuples_per_vault(1024)
            .run();
        assert!(report.verified);
        println!(
            "{:?} (runs as {}): {:.3} µs on Mondrian ({} phases) — {}",
            op,
            basic,
            report.runtime_ps as f64 / 1e6,
            report.phases.len(),
            report.summary
        );
    }
}
