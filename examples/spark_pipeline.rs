//! A Spark-style analytics pipeline on the Mondrian Data Engine.
//!
//! Table 1 of the paper maps common Spark transformations onto the four
//! basic operators. This example builds a three-stage pipeline
//! (Filter → MapValues → AggregateByKey) with the pipeline subsystem and
//! runs it end to end on two systems: every stage executes on the
//! simulated machine, its actual output relation feeds the next stage,
//! and each stage is verified against the naive reference executors.
//!
//! The same pipeline is expressible declaratively — see
//! `examples/manifests/spark_pipeline.toml` and the `mondrian` CLI.
//!
//! ```text
//! cargo run --release --example spark_pipeline
//! ```

use mondrian::engine::SystemKind;
use mondrian::pipeline::{Pipeline, PipelineConfig, StageSpec};

fn main() {
    // Sales tuples: keys are item ids, payloads are amounts. Drop the
    // amounts ending in 0, re-scale the survivors, aggregate per item
    // (AggregateByKey keeps each group's maximum).
    let pipeline = Pipeline::new(vec![
        StageSpec::Filter { modulus: 10, remainder: 0 },
        StageSpec::MapValues { mul: 95, add: 0 },
        StageSpec::AggregateByKey,
    ]);

    println!("stage → basic operator (Table 1):");
    for stage in pipeline.stages() {
        println!("  {:<12} {:?} → {}", stage.name(), stage.spec.spark_op(), stage.basic_operator());
    }
    println!();

    let mut mondrian_output = Vec::new();
    for system in [SystemKind::Mondrian, SystemKind::Cpu] {
        let mut cfg = PipelineConfig::new(system);
        cfg.tuples_per_vault = 1024;
        let report = pipeline.run(&cfg);
        assert!(report.verified(), "pipeline failed verification on {system}");
        println!("{}", report.summary_table());
        if system == SystemKind::Mondrian {
            mondrian_output = report.output;
        }
    }

    // The hottest item of the final aggregation (payload = max amount).
    let hot = mondrian_output.iter().max_by_key(|t| t.payload).expect("non-empty output");
    println!("hottest item {}: max re-scaled amount {}", hot.key, hot.payload);
}
