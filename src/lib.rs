//! # Mondrian Data Engine
//!
//! Umbrella crate for the reproduction of *“The Mondrian Data Engine”*
//! (Drumond et al., ISCA 2017): an algorithm–hardware co-designed
//! near-memory-processing (NMP) architecture for in-memory data analytics.
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can use one coherent namespace:
//!
//! * [`engine`] — the Mondrian Data Engine itself: system configurations,
//!   the programming model (`malloc_permutable`, `shuffle_begin`/`shuffle_end`,
//!   stream buffers) and the experiment runner,
//! * [`ops`] — the four basic data operators (Scan, Sort, Group-by, Join) in
//!   both their CPU-optimized hash-based and NMP-friendly sort-based variants,
//! * [`pipeline`] — multi-stage analytic queries: Spark transformation
//!   chains lowered onto the basic operators and executed stage by stage
//!   on any simulated system,
//! * [`workloads`] — tuple dataset generators,
//! * [`energy`] — the component-level energy model,
//! * plus the hardware substrates: [`sim`], [`mem`], [`noc`], [`cache`],
//!   [`cores`].
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use mondrian::engine::{ExperimentBuilder, OperatorKind, SystemKind};
//!
//! let report = ExperimentBuilder::new(OperatorKind::Join)
//!     .tuples_per_vault(512)
//!     .system(SystemKind::Mondrian)
//!     .run();
//! assert!(report.runtime_ps > 0);
//! ```

pub use mondrian_cache as cache;
pub use mondrian_core as engine;
pub use mondrian_cores as cores;
pub use mondrian_energy as energy;
pub use mondrian_mem as mem;
pub use mondrian_noc as noc;
pub use mondrian_ops as ops;
pub use mondrian_pipeline as pipeline;
pub use mondrian_sim as sim;
pub use mondrian_workloads as workloads;
