//! Property-based tests for the interconnect models.

use proptest::prelude::*;

use mondrian_noc::{Mesh, MeshConfig, SerDesConfig, SerDesLink};

proptest! {
    /// Delivery time is at least start + hops × hop latency + one
    /// serialization window, for any traffic mix.
    #[test]
    fn mesh_delivery_lower_bound(
        msgs in prop::collection::vec((0u32..16, 0u32..16, 1u32..256, 0u64..10_000), 1..100)
    ) {
        let mut mesh = Mesh::new(MeshConfig::hmc_4x4());
        for &(src, dst, bytes, start) in &msgs {
            let hops = mesh.hops(src, dst);
            let t = mesh.send(src, dst, bytes, start);
            if src == dst {
                prop_assert_eq!(t, start);
            } else {
                let ser = ((bytes + 16).div_ceil(16) as u64) * 1_000;
                prop_assert!(t >= start + hops * 3_000 + ser);
            }
        }
    }

    /// Total mesh hop count equals the sum of Manhattan distances.
    #[test]
    fn mesh_hop_accounting(
        msgs in prop::collection::vec((0u32..16, 0u32..16), 1..100)
    ) {
        let mut mesh = Mesh::new(MeshConfig::hmc_4x4());
        let mut expect = 0u64;
        for &(src, dst) in &msgs {
            expect += mesh.hops(src, dst);
            mesh.send(src, dst, 16, 0);
        }
        prop_assert_eq!(mesh.stats().hops, expect);
        prop_assert_eq!(mesh.stats().messages, msgs.len() as u64);
    }

    /// A link never delivers faster than its serialization rate allows, and
    /// deliveries on one channel are strictly ordered.
    #[test]
    fn serdes_rate_and_ordering(
        pkts in prop::collection::vec((1u32..4096, 0u64..1_000), 2..100)
    ) {
        let mut link = SerDesLink::new(SerDesConfig::table3());
        let mut prev = 0;
        let mut bits = 0u64;
        for &(bytes, start) in &pkts {
            let t = link.send(bytes, start);
            prop_assert!(t > prev, "FIFO channel deliveries must be ordered");
            prev = t;
            bits += ((bytes + 16) as u64) * 8;
        }
        prop_assert_eq!(link.stats().busy_bits, bits);
        // Makespan ≥ bits / rate.
        let min_ps = (bits as f64 / 8.0 / 20.0 * 1000.0) as u64;
        prop_assert!(prev >= min_ps);
    }
}
