use mondrian_noc::{Mesh, MeshConfig, SerDesConfig, SerDesLink};
use std::collections::HashMap;

fn main() {
    // 4 HMCs x 16 vaults; every vault sends 4096 msgs of 16B payload,
    // destinations round-robin over all 64 vaults; sources paced at 3ns/msg.
    let hmcs = 4u32;
    let vph = 16u32;
    let per = 4096u64;
    let mut meshes: Vec<Mesh> = (0..hmcs).map(|_| Mesh::new(MeshConfig::hmc_4x4())).collect();
    let mut links: HashMap<(u32, u32), SerDesLink> = HashMap::new();
    for a in 0..hmcs {
        for b in 0..hmcs {
            if a != b {
                links.insert((a, b), SerDesLink::new(SerDesConfig::table3()));
            }
        }
    }
    let ni = |slot: u32| [0u32, 3, 12, 15][(slot % 4) as usize];
    let mut last_arr = 0u64;
    let mut sum_delta = 0u64;
    let mut n = 0u64;
    for i in 0..per {
        for src in 0..(hmcs * vph) {
            let t = i * 3_000; // source issue pacing
            let dst = ((src as u64 + i) % 64) as u32;
            let (sh, st) = (src / vph, src % vph);
            let (dh, dt) = (dst / vph, dst % vph);
            let arr = if sh == dh {
                meshes[sh as usize].send(st, dt, 16, t)
            } else {
                let t1 = meshes[sh as usize].send(st, ni(dh), 16, t);
                let t2 = links.get_mut(&(sh, dh)).unwrap().send(16, t1);
                meshes[dh as usize].send(ni(sh), dt, 16, t2)
            };
            last_arr = last_arr.max(arr);
            sum_delta += arr - t;
            n += 1;
        }
    }
    println!("makespan={} ns  avg_delta={} ns", last_arr / 1000, sum_delta / n / 1000);
    println!(
        "serdes busiest = {} ns",
        links.values().map(|l| l.stats().busy_time).max().unwrap() / 1000
    );
}
