//! 2D mesh network-on-chip with XY routing.

use mondrian_sim::{Clock, Stats, Time};

/// Index of a tile on the mesh (row-major: `tile = y * width + x`).
pub type TileId = u32;

/// Mesh configuration (Table 3 defaults: 16 B links, 3 cycles/hop, 1 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshConfig {
    /// Tiles per row.
    pub width: u32,
    /// Tiles per column.
    pub height: u32,
    /// Link width: bytes accepted per cycle per link.
    pub link_bytes_per_cycle: u32,
    /// Per-hop latency in cycles (router traversal + wire).
    pub hop_cycles: u64,
    /// The NoC clock.
    pub clock: Clock,
    /// Packet header/tail overhead in bytes (accounted on every link).
    pub header_bytes: u32,
    /// Physical link length in millimeters, for the pJ/bit/mm energy model.
    pub link_mm: f64,
}

impl MeshConfig {
    /// The paper's intra-HMC mesh: 4×4 vault tiles, 16 B links, 3 cycles/hop
    /// at 1 GHz, 2 mm links (16 tiles on a ~8×8 mm logic die).
    pub fn hmc_4x4() -> Self {
        Self {
            width: 4,
            height: 4,
            link_bytes_per_cycle: 16,
            hop_cycles: 3,
            clock: Clock::from_ghz(1.0),
            header_bytes: 16,
            link_mm: 2.0,
        }
    }

    /// A mesh sized for `tiles` tiles, keeping it as square as possible.
    pub fn square_for(tiles: u32) -> Self {
        let mut w = 1;
        while w * w < tiles {
            w += 1;
        }
        let h = tiles.div_ceil(w);
        Self { width: w, height: h, ..Self::hmc_4x4() }
    }

    /// Total number of tiles.
    pub fn tiles(&self) -> u32 {
        self.width * self.height
    }
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self::hmc_4x4()
    }
}

/// Aggregate mesh statistics for the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeshStats {
    /// Messages routed (including zero-hop local deliveries).
    pub messages: u64,
    /// Total link traversals (message count × hops).
    pub hops: u64,
    /// Total bit·mm moved across links (payload + header on every hop).
    pub bit_mm: f64,
    /// Total link occupancy in picoseconds, summed over links.
    pub busy_time: Time,
}

impl MeshStats {
    /// Folds another mesh's counters into this one. Used when a machine is
    /// leased out as vault partitions: each partition's mesh traffic is
    /// attributed to the partition that generated it, and the lessor merges
    /// the per-partition totals back into whole-machine accounting at the
    /// join barrier.
    pub fn merge(&mut self, other: &MeshStats) {
        self.messages += other.messages;
        self.hops += other.hops;
        self.bit_mm += other.bit_mm;
        self.busy_time += other.busy_time;
    }

    /// Exports counters into a [`Stats`] registry under `prefix`.
    pub fn export(&self, stats: &mut Stats, prefix: &str) {
        stats.add_count(&format!("{prefix}.messages"), self.messages);
        stats.add_count(&format!("{prefix}.hops"), self.hops);
        stats.add_value(&format!("{prefix}.bit_mm"), self.bit_mm);
        stats.add_count(&format!("{prefix}.busy_ps"), self.busy_time);
    }
}

/// A contention-aware 2D mesh.
///
/// # Example
///
/// ```
/// use mondrian_noc::{Mesh, MeshConfig};
/// let mut mesh = Mesh::new(MeshConfig::hmc_4x4());
/// // Tile 0 (corner) to tile 15 (opposite corner) is 6 hops.
/// let delivered = mesh.send(0, 15, 64, 0);
/// // 6 hops × 3 ns + serialization of (64+16) bytes at 16 B/cycle = 5 ns.
/// assert_eq!(delivered, 23_000);
/// ```
#[derive(Debug)]
pub struct Mesh {
    cfg: MeshConfig,
    /// Next-free time per directional link, indexed `tile * 4 + direction`
    /// (0 = +x, 1 = −x, 2 = +y, 3 = −y); the link leaves `tile`.
    link_free: Vec<Time>,
    stats: MeshStats,
}

impl Mesh {
    /// Creates a mesh with all links idle.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero dimensions or a zero-width link.
    pub fn new(cfg: MeshConfig) -> Self {
        assert!(cfg.width > 0 && cfg.height > 0, "mesh must have tiles");
        assert!(cfg.link_bytes_per_cycle > 0, "links must carry data");
        Self { link_free: vec![0; (cfg.tiles() * 4) as usize], cfg, stats: MeshStats::default() }
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// XY coordinates of a tile.
    fn coords(&self, tile: TileId) -> (u32, u32) {
        assert!(tile < self.cfg.tiles(), "tile {tile} out of range");
        (tile % self.cfg.width, tile / self.cfg.width)
    }

    /// Number of hops between two tiles under XY routing.
    pub fn hops(&self, src: TileId, dst: TileId) -> u64 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        (sx.abs_diff(dx) + sy.abs_diff(dy)) as u64
    }

    /// Serialization time of a message (payload + header) on one link.
    fn serialization(&self, bytes: u32) -> Time {
        let total = bytes + self.cfg.header_bytes;
        let cycles = total.div_ceil(self.cfg.link_bytes_per_cycle) as u64;
        self.cfg.clock.cycles_to_ps(cycles)
    }

    /// Sends `bytes` of payload from `src` to `dst`, starting no earlier
    /// than `start`. Returns the delivery time at `dst`.
    ///
    /// Routing is XY: first along x, then along y. Each directional link is
    /// reserved for the message's serialization time; the head then takes
    /// `hop_cycles` to reach the next router.
    pub fn send(&mut self, src: TileId, dst: TileId, bytes: u32, start: Time) -> Time {
        self.stats.messages += 1;
        if src == dst {
            return start;
        }
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let ser = self.serialization(bytes);
        let hop = self.cfg.clock.cycles_to_ps(self.cfg.hop_cycles);
        let bits = ((bytes + self.cfg.header_bytes) * 8) as f64;
        let mut t = start;
        while (x, y) != (dx, dy) {
            let (dir, nx, ny) = if x < dx {
                (0, x + 1, y)
            } else if x > dx {
                (1, x - 1, y)
            } else if y < dy {
                (2, x, y + 1)
            } else {
                (3, x, y - 1)
            };
            let link = ((y * self.cfg.width + x) * 4 + dir) as usize;
            let depart = t.max(self.link_free[link]);
            self.link_free[link] = depart + ser;
            t = depart + hop;
            self.stats.hops += 1;
            self.stats.bit_mm += bits * self.cfg.link_mm;
            self.stats.busy_time += ser;
            (x, y) = (nx, ny);
        }
        // The tail flit arrives one serialization window after the head.
        t + ser
    }

    /// Sends `bytes` from `src` to `dst` accounting hop latency,
    /// serialization and energy (bit·mm) but **without reserving link
    /// bandwidth** — used for the legs between vault tiles and the
    /// network-interface ports, which in the HMC sit on the link
    /// controllers' switch rather than consuming mesh channels (the
    /// attached SerDes link's own reservation provides the bandwidth cap).
    pub fn send_unreserved(&mut self, src: TileId, dst: TileId, bytes: u32, start: Time) -> Time {
        self.stats.messages += 1;
        let hops = self.hops(src, dst);
        if hops == 0 {
            return start;
        }
        let ser = self.serialization(bytes);
        let hop = self.cfg.clock.cycles_to_ps(self.cfg.hop_cycles);
        let bits = ((bytes + self.cfg.header_bytes) * 8) as f64;
        self.stats.hops += hops;
        self.stats.bit_mm += bits * self.cfg.link_mm * hops as f64;
        self.stats.busy_time += ser * hops;
        start + hops * hop + ser
    }

    /// Network statistics.
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    /// Resets statistics and link reservations.
    pub fn reset(&mut self) {
        self.link_free.fill(0);
        self.stats = MeshStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(MeshConfig::hmc_4x4())
    }

    #[test]
    fn hops_is_manhattan_distance() {
        let m = mesh();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 3), 3);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(5, 10), 2);
    }

    #[test]
    fn local_delivery_is_free() {
        let mut m = mesh();
        assert_eq!(m.send(3, 3, 256, 42), 42);
        assert_eq!(m.stats().hops, 0);
    }

    #[test]
    fn single_hop_latency() {
        let mut m = mesh();
        // 16 B payload + 16 B header = 2 cycles serialization; 3 cycles hop.
        let t = m.send(0, 1, 16, 0);
        assert_eq!(t, 3_000 + 2_000);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        let mut m = mesh();
        let a = m.send(0, 1, 16, 0);
        let b = m.send(0, 1, 16, 0);
        // Second message queues behind the first one's serialization.
        assert_eq!(b, a + 2_000);
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut m = mesh();
        let a = m.send(0, 1, 16, 0);
        let b = m.send(15, 14, 16, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let mut m = mesh();
        // 0 → 5 routes 0→1 (x) then 1→5 (y). A message 0→1 contends with
        // the first leg; a message 4→5 (link leaving tile 4 in +x) does not.
        m.send(0, 5, 16, 0);
        let contended = m.send(0, 1, 16, 0);
        assert!(contended > 5_000, "shared +x link from tile 0 must queue");
        let free = m.send(4, 5, 16, 0);
        assert_eq!(free, 5_000, "link 4→5 is not on the XY path of 0→5");
    }

    #[test]
    fn bit_mm_accounting() {
        let mut m = mesh();
        m.send(0, 15, 64, 0);
        // (64+16) bytes × 8 bits × 6 hops × 2 mm.
        let expect = 80.0 * 8.0 * 6.0 * 2.0;
        assert!((m.stats().bit_mm - expect).abs() < 1e-9);
    }

    #[test]
    fn square_for_covers_tiles() {
        for n in 1..=64 {
            let cfg = MeshConfig::square_for(n);
            assert!(cfg.tiles() >= n, "n={n}");
        }
        assert_eq!(MeshConfig::square_for(16).width, 4);
    }

    #[test]
    fn unreserved_send_has_latency_but_no_queuing() {
        let mut m = mesh();
        let a = m.send_unreserved(0, 15, 16, 0);
        let b = m.send_unreserved(0, 15, 16, 0);
        assert_eq!(a, b, "no link reservations, no queuing");
        assert_eq!(a, 6 * 3_000 + 2_000);
        assert_eq!(m.stats().hops, 12, "energy accounting still sees hops");
    }

    #[test]
    fn merge_folds_counters() {
        let mut a = mesh();
        let mut b = mesh();
        a.send(0, 15, 64, 0);
        b.send(0, 3, 64, 0);
        let mut total = *a.stats();
        total.merge(b.stats());
        assert_eq!(total.messages, 2);
        assert_eq!(total.hops, a.stats().hops + b.stats().hops);
        assert!((total.bit_mm - (a.stats().bit_mm + b.stats().bit_mm)).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_reservations() {
        let mut m = mesh();
        m.send(0, 1, 1024, 0);
        m.reset();
        assert_eq!(m.send(0, 1, 16, 0), 5_000);
        assert_eq!(m.stats().messages, 1);
    }
}
