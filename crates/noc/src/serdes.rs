//! Inter-device SerDes link model.
//!
//! HMCs talk to each other and to the CPU over serial links running a
//! packet-based protocol (§5.2). Table 3: lanes at 10 GHz giving 160 Gb/s
//! per direction (20 B/ns). Each direction is an independent channel; the
//! engine crate instantiates one [`SerDesLink`] per (endpoint pair,
//! direction) and assembles the star (CPU system) or fully-connected (NMP
//! systems) topology.

use mondrian_sim::{Stats, Time, PS_PER_NS};

/// SerDes link configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerDesConfig {
    /// Bandwidth per direction in bytes per nanosecond (20.0 = 160 Gb/s).
    pub bytes_per_ns: f64,
    /// Fixed flight latency (serialization circuitry + package + wire).
    pub latency: Time,
    /// Packet header/tail overhead in bytes (HMC protocol framing).
    pub header_bytes: u32,
}

impl SerDesConfig {
    /// Table 3 link: 160 Gb/s per direction, 8 ns flight, 16 B framing.
    pub fn table3() -> Self {
        Self { bytes_per_ns: 20.0, latency: 8 * PS_PER_NS, header_bytes: 16 }
    }
}

impl Default for SerDesConfig {
    fn default() -> Self {
        Self::table3()
    }
}

/// Traffic statistics of one link direction, for the 1/3 pJ/bit idle/busy
/// energy model of Table 4.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SerDesStats {
    /// Packets sent.
    pub packets: u64,
    /// Bits transferred, including framing overhead.
    pub busy_bits: u64,
    /// Channel occupancy in picoseconds.
    pub busy_time: Time,
}

impl SerDesStats {
    /// Folds another link direction's counters into this one. Unlike mesh
    /// traffic (attributed per vault partition under multi-tenancy), SerDes
    /// channels are a chip-to-chip resource shared by every partition, so
    /// their traffic is always charged globally: the lessor merges all
    /// partitions' link counters into one machine-wide total.
    pub fn merge(&mut self, other: &SerDesStats) {
        self.packets += other.packets;
        self.busy_bits += other.busy_bits;
        self.busy_time += other.busy_time;
    }

    /// Exports counters into a [`Stats`] registry under `prefix`.
    pub fn export(&self, stats: &mut Stats, prefix: &str) {
        stats.add_count(&format!("{prefix}.packets"), self.packets);
        stats.add_count(&format!("{prefix}.busy_bits"), self.busy_bits);
        stats.add_count(&format!("{prefix}.busy_ps"), self.busy_time);
    }
}

/// One direction of a SerDes link.
///
/// # Example
///
/// ```
/// use mondrian_noc::{SerDesConfig, SerDesLink};
/// let mut link = SerDesLink::new(SerDesConfig::table3());
/// // (64 + 16) bytes at 20 B/ns = 4 ns serialization + 8 ns flight.
/// assert_eq!(link.send(64, 0), 12_000);
/// // A second packet queues behind the first one's serialization.
/// assert_eq!(link.send(64, 0), 16_000);
/// ```
#[derive(Debug)]
pub struct SerDesLink {
    cfg: SerDesConfig,
    free: Time,
    stats: SerDesStats,
}

impl SerDesLink {
    /// Creates an idle link.
    ///
    /// # Panics
    ///
    /// Panics if the configured bandwidth is not positive.
    pub fn new(cfg: SerDesConfig) -> Self {
        assert!(cfg.bytes_per_ns > 0.0, "bandwidth must be positive");
        Self { cfg, free: 0, stats: SerDesStats::default() }
    }

    /// The link configuration.
    pub fn config(&self) -> &SerDesConfig {
        &self.cfg
    }

    /// Sends a packet with `bytes` of payload no earlier than `start`;
    /// returns its delivery time at the far end.
    pub fn send(&mut self, bytes: u32, start: Time) -> Time {
        let total = bytes + self.cfg.header_bytes;
        let ser = (total as f64 / self.cfg.bytes_per_ns * PS_PER_NS as f64).round() as Time;
        let depart = start.max(self.free);
        self.free = depart + ser;
        self.stats.packets += 1;
        self.stats.busy_bits += (total as u64) * 8;
        self.stats.busy_time += ser;
        depart + ser + self.cfg.latency
    }

    /// The time at which the channel next becomes free.
    pub fn free_at(&self) -> Time {
        self.free
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &SerDesStats {
        &self.stats
    }

    /// Resets statistics and the channel reservation.
    pub fn reset(&mut self) {
        self.free = 0;
        self.stats = SerDesStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_160_gbps() {
        let mut link = SerDesLink::new(SerDesConfig::table3());
        // Stream 1000 × 256 B packets; effective bandwidth must approach
        // but never exceed 20 B/ns of (payload + header).
        let mut last = 0;
        for _ in 0..1000 {
            last = link.send(256, 0);
        }
        let total_bytes = 1000.0 * (256.0 + 16.0);
        let ns = (last - link.config().latency) as f64 / PS_PER_NS as f64;
        let bpns = total_bytes / ns;
        assert!(bpns <= 20.0 + 1e-9, "{bpns} B/ns exceeds link rate");
        assert!(bpns > 19.9, "{bpns} B/ns far below link rate");
    }

    #[test]
    fn idle_link_latency() {
        let mut link = SerDesLink::new(SerDesConfig::table3());
        // 16 B payload + 16 B header = 1.6 ns; plus 8 ns flight.
        assert_eq!(link.send(16, 100_000), 100_000 + 1_600 + 8_000);
    }

    #[test]
    fn queuing_behind_earlier_packets() {
        let mut link = SerDesLink::new(SerDesConfig::table3());
        let first = link.send(1024, 0);
        let second = link.send(1024, 0);
        let ser = ((1024 + 16) as f64 / 20.0 * 1000.0).round() as Time;
        assert_eq!(second - first, ser);
    }

    #[test]
    fn stats_count_framing() {
        let mut link = SerDesLink::new(SerDesConfig::table3());
        link.send(64, 0);
        assert_eq!(link.stats().packets, 1);
        assert_eq!(link.stats().busy_bits, (64 + 16) * 8);
        let mut s = Stats::new();
        link.stats().export(&mut s, "serdes.0.tx");
        assert_eq!(s.count("serdes.0.tx.busy_bits"), 640);
    }

    #[test]
    fn merge_charges_globally() {
        let mut a = SerDesLink::new(SerDesConfig::table3());
        let mut b = SerDesLink::new(SerDesConfig::table3());
        a.send(64, 0);
        b.send(128, 0);
        let mut total = *a.stats();
        total.merge(b.stats());
        assert_eq!(total.packets, 2);
        assert_eq!(total.busy_bits, (64 + 16 + 128 + 16) * 8);
    }

    #[test]
    fn reset_clears() {
        let mut link = SerDesLink::new(SerDesConfig::table3());
        link.send(4096, 0);
        link.reset();
        assert_eq!(link.free_at(), 0);
        assert_eq!(link.stats().packets, 0);
    }
}
