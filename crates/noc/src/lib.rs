//! # mondrian-noc
//!
//! Interconnect models for the Mondrian Data Engine reproduction.
//!
//! Two fabrics from Table 3:
//!
//! * [`Mesh`] — the 2D mesh on each HMC's logic die connecting the 16 vault
//!   tiles (16-byte links, 3 cycles/hop at 1 GHz, XY dimension-order
//!   routing). Link contention is modeled by per-directional-link channel
//!   reservations; energy accounting records bit·mm as required by the
//!   paper's 0.04 pJ/bit/mm NoC energy model.
//! * [`SerDesLink`] — an inter-device serial link (10 GHz lanes, 160 Gb/s =
//!   20 B/ns per direction, packet-based protocol with header overhead).
//!   The NMP systems connect their four HMCs fully; the CPU-centric system
//!   hangs the HMCs off the CPU in a star (Fig. 5) — topology is assembled
//!   by the engine crate from these links.
//!
//! Both models are *reservation-based*: `send` computes the delivery time of
//! a message immediately, accounting for queuing behind earlier reservations
//! on every channel along the path. This is the standard contention-aware
//! analytic alternative to flit-level simulation and preserves the paper's
//! bottlenecks (e.g. the SerDes links capping Mondrian's partitioning
//! throughput, §7.1).

#![warn(missing_docs)]

mod mesh;
mod serdes;

pub use mesh::{Mesh, MeshConfig, MeshStats, TileId};
pub use serdes::{SerDesConfig, SerDesLink, SerDesStats};
