use mondrian_cores::*;
use mondrian_sim::Time;

fn run(core: &mut Core) -> Time {
    let mut outstanding: Vec<MemRequest> = Vec::new();
    let mut out = Vec::new();
    loop {
        match core.advance(&mut out) {
            CoreStatus::Finished(at) => return at,
            CoreStatus::Blocked => {
                outstanding.append(&mut out);
                outstanding.sort_by_key(|r| r.issue_at);
                for req in outstanding.drain(..) {
                    let lat = match req.kind {
                        MemKind::Load => {
                            if req.bytes >= 64 {
                                25_000
                            } else {
                                2_000
                            }
                        }
                        MemKind::Store(_) => 30_000,
                        MemKind::StreamFill { .. } => 25_000,
                    };
                    core.complete_mem(&req, req.issue_at + lat, &mut out);
                }
            }
        }
    }
}

fn main() {
    let n = 4096u64;
    let mut ops = Vec::new();
    for i in 0..n {
        ops.push(MicroOp::load(i * 16, 16));
        ops.push(MicroOp::compute_dep(4));
        ops.push(MicroOp::load_dep(1 << 20, 8));
        ops.push(MicroOp::Store { addr: 2 << 20, bytes: 16, kind: StoreKind::Streaming });
        ops.push(MicroOp::store(1 << 20, 8));
    }
    let mut core = Core::new(CoreConfig::krait400(), Box::new(VecKernel::new(ops.clone())));
    let at = run(&mut core);
    println!("scatter-like: {} ps total, {:.1} ns/tuple", at, at as f64 / n as f64 / 1000.0);

    let mut ops2 = Vec::new();
    for i in 0..n {
        ops2.push(MicroOp::load(i * 16, 16));
        ops2.push(MicroOp::compute_dep(4));
        ops2.push(MicroOp::load_dep(1 << 20, 8));
        ops2.push(MicroOp::compute_dep(1));
        ops2.push(MicroOp::store(1 << 20, 8));
    }
    let mut core = Core::new(CoreConfig::krait400(), Box::new(VecKernel::new(ops2)));
    let at = run(&mut core);
    println!("histogram-like: {} ps total, {:.1} ns/tuple", at, at as f64 / n as f64 / 1000.0);
}
