//! Stream buffers: the Mondrian compute unit's binding prefetchers.
//!
//! §5.2: "we provision the logic layer with eight 384 B (1.5× the row buffer
//! size) stream buffers, sized to mask the DRAM access latency and avoid
//! memory-access-related stalls. The stream buffers are programmable and are
//! used to keep a constant stream of incoming data in the form of binding
//! prefetches to feed the compute units."
//!
//! A [`StreamBufferSet`] tracks, per buffer, the configured stream range,
//! the consumer head, and the fill frontier. Fills are chunked reads issued
//! to the memory system whenever buffer space frees; fills may complete out
//! of order (the vault controller reorders), so availability is the
//! contiguous completed prefix. The core pops tuples from the head with
//! 1-cycle latency when data is ready and stalls otherwise.

use std::collections::BTreeSet;

/// Stream buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of buffers (8 in the paper).
    pub buffers: u8,
    /// Capacity of each buffer in bytes (384 = 1.5 × the 256 B row buffer).
    pub capacity: u32,
    /// Fill request granularity in bytes.
    pub chunk: u32,
}

impl StreamConfig {
    /// The paper's configuration: 8 × 384 B buffers, 64 B fills.
    pub fn mondrian() -> Self {
        Self { buffers: 8, capacity: 384, chunk: 64 }
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self::mondrian()
    }
}

#[derive(Debug, Clone, Default)]
struct StreamBuf {
    end: u64,
    /// Next byte the consumer will pop.
    head: u64,
    /// Next byte to request from memory.
    fill_cursor: u64,
    /// Contiguously completed prefix: data in `[head, complete)` is ready.
    complete: u64,
    /// Out-of-order completed chunk bases beyond `complete`.
    landed: BTreeSet<u64>,
}

/// The set of stream buffers attached to one Mondrian core.
#[derive(Debug)]
pub struct StreamBufferSet {
    cfg: StreamConfig,
    bufs: Vec<StreamBuf>,
    /// Fills issued and not yet completed, per buffer.
    in_flight: Vec<u32>,
    /// Total fill requests issued (for stats).
    fills_issued: u64,
}

impl StreamBufferSet {
    /// Creates an idle set.
    ///
    /// # Panics
    ///
    /// Panics if the chunk size is zero or larger than the capacity.
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(cfg.chunk > 0 && cfg.chunk <= cfg.capacity, "bad chunking");
        Self {
            bufs: vec![StreamBuf::default(); cfg.buffers as usize],
            in_flight: vec![0; cfg.buffers as usize],
            cfg,
            fills_issued: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Programs buffer `buf` to stream `[base, base + len)` and returns the
    /// initial fill addresses to issue.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is out of range.
    pub fn configure(&mut self, buf: u8, base: u64, len: u64) -> Vec<u64> {
        let b = &mut self.bufs[buf as usize];
        *b = StreamBuf {
            end: base + len,
            head: base,
            fill_cursor: base,
            complete: base,
            landed: BTreeSet::new(),
        };
        self.in_flight[buf as usize] = 0;
        self.refill(buf)
    }

    /// Whether `bytes` at the head of buffer `buf` are ready to pop.
    pub fn ready(&self, buf: u8, bytes: u32) -> bool {
        let b = &self.bufs[buf as usize];
        b.head + bytes as u64 <= b.complete
    }

    /// Whether the stream has delivered everything (head reached end).
    pub fn exhausted(&self, buf: u8) -> bool {
        let b = &self.bufs[buf as usize];
        b.head >= b.end
    }

    /// Pops `bytes` from the head of buffer `buf`, returning new fill
    /// addresses to issue now that space has freed.
    ///
    /// # Panics
    ///
    /// Panics if the data is not ready (callers check [`Self::ready`]).
    pub fn pop(&mut self, buf: u8, bytes: u32) -> Vec<u64> {
        assert!(self.ready(buf, bytes), "stream {buf} pop of unready data");
        self.bufs[buf as usize].head += bytes as u64;
        self.refill(buf)
    }

    /// Records completion of the fill chunk at `addr` for buffer `buf`.
    pub fn fill_complete(&mut self, buf: u8, addr: u64) {
        let chunk = self.cfg.chunk as u64;
        let b = &mut self.bufs[buf as usize];
        assert!(addr >= b.complete && addr < b.fill_cursor, "unexpected fill at {addr:#x}");
        self.in_flight[buf as usize] -= 1;
        b.landed.insert(addr);
        // Advance the contiguous frontier.
        while b.landed.remove(&b.complete) {
            b.complete = (b.complete + chunk).min(b.end);
        }
    }

    /// Fill addresses to issue so that buffered + in-flight data stays within
    /// capacity.
    fn refill(&mut self, buf: u8) -> Vec<u64> {
        let chunk = self.cfg.chunk as u64;
        let cap = self.cfg.capacity as u64;
        let b = &mut self.bufs[buf as usize];
        let mut out = Vec::new();
        while b.fill_cursor < b.end && (b.fill_cursor - b.head) + chunk <= cap {
            out.push(b.fill_cursor);
            b.fill_cursor += chunk;
            self.in_flight[buf as usize] += 1;
            self.fills_issued += 1;
        }
        out
    }

    /// Total fill requests issued since creation.
    pub fn fills_issued(&self) -> u64 {
        self.fills_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_issues_initial_fills() {
        let mut s = StreamBufferSet::new(StreamConfig::mondrian());
        let fills = s.configure(0, 4096, 1024);
        // 384 B capacity / 64 B chunks = 6 initial fills.
        assert_eq!(fills, vec![4096, 4160, 4224, 4288, 4352, 4416]);
        assert!(!s.ready(0, 16));
    }

    #[test]
    fn in_order_fills_advance_frontier() {
        let mut s = StreamBufferSet::new(StreamConfig::mondrian());
        let fills = s.configure(0, 0, 256);
        assert_eq!(fills.len(), 4);
        s.fill_complete(0, 0);
        assert!(s.ready(0, 64));
        assert!(!s.ready(0, 65));
        s.fill_complete(0, 64);
        assert!(s.ready(0, 128));
    }

    #[test]
    fn out_of_order_fills_wait_for_gap() {
        let mut s = StreamBufferSet::new(StreamConfig::mondrian());
        s.configure(0, 0, 256);
        s.fill_complete(0, 64); // gap at 0
        assert!(!s.ready(0, 16));
        s.fill_complete(0, 0);
        assert!(s.ready(0, 128), "frontier jumps over the landed chunk");
    }

    #[test]
    fn pop_frees_space_and_refills() {
        let mut s = StreamBufferSet::new(StreamConfig::mondrian());
        let initial = s.configure(0, 0, 4096);
        assert_eq!(initial.len(), 6);
        for a in initial {
            s.fill_complete(0, a);
        }
        // Popping 64 B frees exactly one chunk of space.
        let refills = s.pop(0, 64);
        assert_eq!(refills, vec![384]);
        // Popping 16 B does not free a whole chunk yet.
        let refills = s.pop(0, 16);
        assert!(refills.is_empty());
        let refills = s.pop(0, 48);
        assert_eq!(refills, vec![448]);
    }

    #[test]
    fn short_tail_stream() {
        let mut s = StreamBufferSet::new(StreamConfig::mondrian());
        // 100 bytes: fills at 0 and 64 (the second covers the 36-byte tail).
        let fills = s.configure(0, 0, 100);
        assert_eq!(fills, vec![0, 64]);
        s.fill_complete(0, 0);
        s.fill_complete(0, 64);
        assert!(s.ready(0, 100));
        s.pop(0, 100);
        assert!(s.exhausted(0));
    }

    #[test]
    #[should_panic(expected = "unready data")]
    fn popping_unready_panics() {
        let mut s = StreamBufferSet::new(StreamConfig::mondrian());
        s.configure(0, 0, 256);
        s.pop(0, 16);
    }

    #[test]
    fn multiple_buffers_are_independent() {
        let mut s = StreamBufferSet::new(StreamConfig::mondrian());
        s.configure(0, 0, 256);
        s.configure(7, 1 << 20, 256);
        s.fill_complete(7, 1 << 20);
        assert!(!s.ready(0, 16));
        assert!(s.ready(7, 64));
    }
}
