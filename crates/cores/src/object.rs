//! The object buffer: coalescing permutable stores into whole-object
//! messages.
//!
//! §5.3: permutability holds per *object*, not per memory message — if an
//! object were split across messages, the destination controller could
//! interleave the pieces. The object buffer drains to the vault router only
//! when its contents match the software-specified object size, so every
//! permutable write request carries exactly one object.

/// A single 256 B object buffer attached to a compute unit.
///
/// # Example
///
/// ```
/// use mondrian_cores::ObjectBuffer;
/// let mut ob = ObjectBuffer::new(256);
/// ob.set_object_bytes(16);
/// assert_eq!(ob.push(8, 3), None);       // half an object accumulated
/// assert_eq!(ob.push(8, 3), Some((3, 16))); // full object drains to vault 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectBuffer {
    capacity: u32,
    object_bytes: u32,
    accumulated: u32,
    dst: Option<u32>,
    objects_sent: u64,
}

impl ObjectBuffer {
    /// Creates a buffer of `capacity` bytes (256 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "object buffer must have capacity");
        Self { capacity, object_bytes: capacity, accumulated: 0, dst: None, objects_sent: 0 }
    }

    /// Exposes the object size of the upcoming shuffle (part of
    /// `malloc_permutable`: "the software exposes the used object sizes ...
    /// to the hardware").
    ///
    /// # Panics
    ///
    /// Panics if the size is zero, exceeds the buffer, or an object is
    /// currently half-accumulated.
    pub fn set_object_bytes(&mut self, bytes: u32) {
        assert!(bytes > 0 && bytes <= self.capacity, "object size {bytes} out of range");
        assert_eq!(self.accumulated, 0, "cannot resize mid-object");
        self.object_bytes = bytes;
    }

    /// The configured object size.
    pub fn object_bytes(&self) -> u32 {
        self.object_bytes
    }

    /// Appends `bytes` of a store heading to `dst_vault`. Returns
    /// `Some((dst_vault, object_bytes))` when a whole object is ready to be
    /// injected into the network.
    ///
    /// # Panics
    ///
    /// Panics if stores to different destinations interleave within one
    /// object (software must emit whole objects, §5.3).
    pub fn push(&mut self, bytes: u32, dst_vault: u32) -> Option<(u32, u32)> {
        match self.dst {
            Some(d) => assert_eq!(d, dst_vault, "object split across destinations"),
            None => self.dst = Some(dst_vault),
        }
        self.accumulated += bytes;
        assert!(self.accumulated <= self.object_bytes, "stores overflow the declared object size");
        if self.accumulated == self.object_bytes {
            self.accumulated = 0;
            self.dst = None;
            self.objects_sent += 1;
            Some((dst_vault, self.object_bytes))
        } else {
            None
        }
    }

    /// Whole objects drained so far.
    pub fn objects_sent(&self) -> u64 {
        self.objects_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_drains_when_complete() {
        let mut ob = ObjectBuffer::new(256);
        ob.set_object_bytes(64);
        assert_eq!(ob.push(32, 5), None);
        assert_eq!(ob.push(32, 5), Some((5, 64)));
        assert_eq!(ob.objects_sent(), 1);
    }

    #[test]
    fn sixteen_byte_tuples_drain_immediately() {
        let mut ob = ObjectBuffer::new(256);
        ob.set_object_bytes(16);
        for i in 0..10 {
            assert_eq!(ob.push(16, i), Some((i, 16)));
        }
        assert_eq!(ob.objects_sent(), 10);
    }

    #[test]
    #[should_panic(expected = "split across destinations")]
    fn interleaved_destinations_panic() {
        let mut ob = ObjectBuffer::new(256);
        ob.set_object_bytes(32);
        ob.push(16, 1);
        ob.push(16, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_object_rejected() {
        let mut ob = ObjectBuffer::new(256);
        ob.set_object_bytes(512);
    }
}
