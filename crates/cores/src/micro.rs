//! The micro-op vocabulary shared between operator kernels and core models.
//!
//! Operator implementations in `mondrian-ops` are *instrumented*: alongside
//! computing real results they lazily emit the stream of micro-ops the
//! algorithm would execute. Micro-ops carry exactly the quantities the
//! paper's bottleneck analysis depends on — instruction counts, SIMD width
//! usage, memory addresses/sizes, and the data dependencies that limit
//! memory-level parallelism.

/// Dependency of a micro-op on earlier results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dep {
    /// Independent of outstanding memory accesses.
    #[default]
    None,
    /// Consumes the result of the most recent `Load` (address or data
    /// dependence). For loads this delays *issue*; for compute it delays
    /// completion. This is the serialization that makes hash-table walks and
    /// histogram updates latency-bound (§3.2).
    OnPrevLoad,
}

/// How a store interacts with the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Write-back cacheable store (CPU-style code).
    Cached,
    /// Non-temporal streaming store that bypasses caches (NMP shuffle
    /// writes to remote vaults).
    Streaming,
    /// A permutable-object store: routed to `dst_vault`'s object buffer and
    /// ultimately appended wherever that vault's controller chooses (§5.3).
    Permutable {
        /// Destination vault (global id).
        dst_vault: u32,
    },
}

/// One unit of work flowing through a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MicroOp {
    /// `n` scalar single-cycle instructions (ALU, branch, address math).
    Compute {
        /// Number of instructions.
        n: u32,
        /// Dependence on the previous load.
        dep: Dep,
    },
    /// One SIMD instruction (the core's full vector width).
    Simd {
        /// Dependence on the previous load.
        dep: Dep,
    },
    /// A memory read.
    Load {
        /// Physical address.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
        /// Dependence on the previous load (pointer chasing).
        dep: Dep,
        /// When `Some(i)`, the read is satisfied by stream buffer `i`
        /// (Mondrian only): a 1-cycle pop of prefetched data.
        stream: Option<u8>,
    },
    /// A memory write.
    Store {
        /// Physical address (ignored for [`StoreKind::Permutable`], where
        /// the destination controller assigns the final address).
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
        /// Store flavor.
        kind: StoreKind,
    },
    /// Configure stream buffer `buf` to prefetch `[base, base + len)`
    /// (the `prefetch_in_str_buf` call of Fig. 4b).
    ConfigStream {
        /// Stream buffer index.
        buf: u8,
        /// Start of the stream.
        base: u64,
        /// Length of the stream in bytes.
        len: u64,
    },
}

impl MicroOp {
    /// Number of retired instructions this op represents.
    pub fn instructions(&self) -> u64 {
        match *self {
            MicroOp::Compute { n, .. } => n as u64,
            MicroOp::Simd { .. } | MicroOp::Load { .. } | MicroOp::Store { .. } => 1,
            MicroOp::ConfigStream { .. } => 1,
        }
    }

    /// Convenience constructor for an independent scalar block.
    pub fn compute(n: u32) -> Self {
        MicroOp::Compute { n, dep: Dep::None }
    }

    /// Convenience constructor for a load-dependent scalar block.
    pub fn compute_dep(n: u32) -> Self {
        MicroOp::Compute { n, dep: Dep::OnPrevLoad }
    }

    /// Convenience constructor for an independent load.
    pub fn load(addr: u64, bytes: u32) -> Self {
        MicroOp::Load { addr, bytes, dep: Dep::None, stream: None }
    }

    /// Convenience constructor for a pointer-chasing load.
    pub fn load_dep(addr: u64, bytes: u32) -> Self {
        MicroOp::Load { addr, bytes, dep: Dep::OnPrevLoad, stream: None }
    }

    /// Convenience constructor for a stream-buffer pop.
    pub fn stream_load(buf: u8, addr: u64, bytes: u32) -> Self {
        MicroOp::Load { addr, bytes, dep: Dep::None, stream: Some(buf) }
    }

    /// Convenience constructor for a cacheable store.
    pub fn store(addr: u64, bytes: u32) -> Self {
        MicroOp::Store { addr, bytes, kind: StoreKind::Cached }
    }
}

/// A lazily generated micro-op stream: the executable form of one operator
/// phase on one compute unit.
///
/// Kernels are deterministic state machines over the input data: pulling the
/// same kernel twice yields the same op sequence, which keeps whole-system
/// simulations reproducible.
pub trait Kernel {
    /// Produces the next micro-op, or `None` when the phase is complete.
    fn next_op(&mut self) -> Option<MicroOp>;

    /// Human-readable kernel name for tracing and error messages.
    fn name(&self) -> &'static str {
        "kernel"
    }
}

/// A kernel backed by a pre-built vector of micro-ops (used by tests and
/// micro-benchmarks).
#[derive(Debug, Clone)]
pub struct VecKernel {
    ops: std::vec::IntoIter<MicroOp>,
}

impl VecKernel {
    /// Wraps a vector of ops.
    pub fn new(ops: Vec<MicroOp>) -> Self {
        Self { ops: ops.into_iter() }
    }
}

impl Kernel for VecKernel {
    fn next_op(&mut self) -> Option<MicroOp> {
        self.ops.next()
    }

    fn name(&self) -> &'static str {
        "vec"
    }
}

impl<K: Kernel + ?Sized> Kernel for Box<K> {
    fn next_op(&mut self) -> Option<MicroOp> {
        (**self).next_op()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_weights() {
        assert_eq!(MicroOp::compute(7).instructions(), 7);
        assert_eq!(MicroOp::Simd { dep: Dep::None }.instructions(), 1);
        assert_eq!(MicroOp::load(0, 16).instructions(), 1);
        assert_eq!(MicroOp::store(0, 16).instructions(), 1);
    }

    #[test]
    fn vec_kernel_drains_in_order() {
        let mut k = VecKernel::new(vec![MicroOp::compute(1), MicroOp::load(8, 8)]);
        assert_eq!(k.next_op(), Some(MicroOp::compute(1)));
        assert_eq!(k.next_op(), Some(MicroOp::load(8, 8)));
        assert_eq!(k.next_op(), None);
        assert_eq!(k.next_op(), None);
    }

    #[test]
    fn boxed_kernel_dispatches() {
        let mut k: Box<dyn Kernel> = Box::new(VecKernel::new(vec![MicroOp::compute(2)]));
        assert_eq!(k.next_op(), Some(MicroOp::compute(2)));
        assert_eq!(k.name(), "vec");
    }
}
