//! # mondrian-cores
//!
//! Core timing models for the Mondrian Data Engine reproduction.
//!
//! The paper compares three compute units (Table 3):
//!
//! * **CPU baseline** — ARM Cortex-A57-like: 2 GHz, out-of-order, 3-wide,
//!   128-entry ROB,
//! * **NMP baseline** — Qualcomm Krait400-like: 1 GHz, out-of-order, 3-wide,
//!   48-entry ROB (the best OoO core that fits the per-vault power budget),
//! * **Mondrian** — ARM Cortex-A35-like: 1 GHz, dual-issue in-order, with a
//!   1024-bit fixed-point SIMD unit, eight 384 B programmable **stream
//!   buffers** issuing binding prefetches, and a 256 B **object buffer**
//!   that coalesces permutable stores into object-sized network messages.
//!
//! All three are instances of [`Core`], an execution-driven window model:
//! a [`Kernel`] (implemented over the real tuple data by `mondrian-ops`)
//! yields [`MicroOp`]s; the core dispatches up to `width` ops per cycle into
//! a reorder window, loads occupy the window until the memory system
//! answers, and ops marked dependent on the previous load cannot complete —
//! or, for loads, even issue — before that load's data returns. Memory-level
//! parallelism therefore emerges exactly as in §3.2's arithmetic: roughly
//! window size ÷ ops-per-iteration, bounded by dependence chains.
//!
//! The in-order Mondrian core is modeled as the same window machine with a
//! small (16-entry) scoreboard window — accurate for its intended operating
//! point, where nearly every load is a 1-cycle stream-buffer hit and wide
//! SIMD does the heavy lifting.

#![warn(missing_docs)]

mod core_model;
mod micro;
mod object;
mod stream;

pub use core_model::{Core, CoreConfig, CoreStats, CoreStatus, MemKind, MemRequest};
pub use micro::{Dep, Kernel, MicroOp, StoreKind, VecKernel};
pub use object::ObjectBuffer;
pub use stream::{StreamBufferSet, StreamConfig};
