//! The execution-driven core window model.
//!
//! One [`Core`] executes one operator-phase [`Kernel`]. The model is a
//! dispatch/retire window machine:
//!
//! * up to `width` micro-ops dispatch per cycle into a `window`-entry
//!   reorder window (the ROB for the OoO baselines, a scoreboard-sized
//!   window for the in-order Mondrian core),
//! * compute ops complete one cycle after their last instruction dispatches
//!   (or after their load dependence resolves),
//! * loads occupy a window entry until the memory system answers; a load
//!   whose *address* depends on an outstanding load cannot even issue —
//!   this is what limits MLP in hash probes and histogram updates (§3.2),
//! * entries retire in order; dispatch stalls when the window is full and
//!   the head is still waiting on memory,
//! * stores are fire-and-forget through a bounded store queue
//!   (`store_credits`), so write bandwidth backpressures the core,
//! * stream-buffer pops cost one cycle when data is prefetched and stall the
//!   (in-order) core otherwise; permutable stores drain through the object
//!   buffer without occupying store credits (§5.4: the engine does not bound
//!   permutable stores in flight).
//!
//! The core runs *ahead* of global time: `advance` executes until the kernel
//! blocks on memory or finishes, emitting [`MemRequest`]s with their issue
//! timestamps. The engine routes each request through caches, networks and
//! vaults, then reports the completion time back via [`Core::complete_mem`].

use std::collections::{HashMap, VecDeque};

use mondrian_sim::{Clock, Stats, Time};

use crate::micro::{Dep, Kernel, MicroOp, StoreKind};
use crate::object::ObjectBuffer;
use crate::stream::{StreamBufferSet, StreamConfig};

/// Static configuration of a core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Core clock.
    pub clock: Clock,
    /// Dispatch/retire width (instructions per cycle).
    pub width: u32,
    /// Reorder-window entries (ROB size; small scoreboard for in-order).
    pub window: u32,
    /// Store-queue entries bounding fire-and-forget writes in flight.
    pub store_credits: u32,
    /// Whether the core has a SIMD unit (kernels with [`MicroOp::Simd`]
    /// require it).
    pub simd: bool,
    /// SIMD lanes in tuples (8 for the 1024-bit unit over 16 B tuples).
    pub simd_tuples: u32,
    /// Stream buffers (Mondrian only).
    pub stream: Option<StreamConfig>,
    /// Object buffer capacity in bytes (Mondrian only; 256 in the paper).
    pub object_buffer_bytes: u32,
}

impl CoreConfig {
    /// The CPU baseline core: ARM Cortex-A57-like, 2 GHz, 3-wide OoO,
    /// 128-entry ROB (Table 3).
    pub fn cortex_a57() -> Self {
        Self {
            clock: Clock::from_ghz(2.0),
            width: 3,
            window: 128,
            store_credits: 32,
            simd: false,
            simd_tuples: 0,
            stream: None,
            object_buffer_bytes: 256,
        }
    }

    /// The NMP baseline core: Qualcomm Krait400-like, 1 GHz, 3-wide OoO,
    /// 48-entry ROB (Table 3).
    pub fn krait400() -> Self {
        Self {
            clock: Clock::from_ghz(1.0),
            width: 3,
            window: 48,
            store_credits: 64,
            simd: false,
            simd_tuples: 0,
            stream: None,
            object_buffer_bytes: 256,
        }
    }

    /// The Mondrian compute unit: ARM Cortex-A35-like, 1 GHz, dual-issue
    /// in-order (16-entry scoreboard window), 1024-bit fixed-point SIMD
    /// (8 × 16 B tuples per op), 8 × 384 B stream buffers, 256 B object
    /// buffer (§5.2).
    pub fn mondrian_a35() -> Self {
        Self {
            clock: Clock::from_ghz(1.0),
            width: 2,
            window: 16,
            store_credits: 16,
            simd: true,
            simd_tuples: 8,
            stream: Some(StreamConfig::mondrian()),
            object_buffer_bytes: 256,
        }
    }
}

/// Kind of memory traffic a core emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// Demand load.
    Load,
    /// Store of the given flavor.
    Store(StoreKind),
    /// Stream-buffer binding prefetch for buffer `buf`.
    StreamFill {
        /// Stream buffer index.
        buf: u8,
    },
}

/// A memory request emitted by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Core-unique tag, echoed back in [`Core::complete_mem`].
    pub tag: u64,
    /// Physical address (unused for permutable stores).
    pub addr: u64,
    /// Access size in bytes.
    pub bytes: u32,
    /// Traffic kind.
    pub kind: MemKind,
    /// Earliest time the request leaves the core.
    pub issue_at: Time,
}

/// Result of [`Core::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus {
    /// Waiting on one or more memory completions.
    Blocked,
    /// Kernel fully dispatched and window drained at the given time (memory
    /// writes may still be in flight; the engine tracks those).
    Finished(Time),
}

/// Retired-work counters for IPC and energy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Scalar instructions retired (weighted per [`MicroOp::instructions`]).
    pub instructions: u64,
    /// SIMD operations retired.
    pub simd_ops: u64,
    /// Demand loads issued.
    pub loads: u64,
    /// Stores issued (all flavors).
    pub stores: u64,
    /// Stream-buffer pops that hit prefetched data.
    pub stream_hits: u64,
    /// Stream-buffer pops that stalled the core.
    pub stream_stalls: u64,
}

impl CoreStats {
    /// Exports counters into a [`Stats`] registry under `prefix`.
    pub fn export(&self, stats: &mut Stats, prefix: &str) {
        stats.add_count(&format!("{prefix}.instructions"), self.instructions);
        stats.add_count(&format!("{prefix}.simd_ops"), self.simd_ops);
        stats.add_count(&format!("{prefix}.loads"), self.loads);
        stats.add_count(&format!("{prefix}.stores"), self.stores);
        stats.add_count(&format!("{prefix}.stream_hits"), self.stream_hits);
        stats.add_count(&format!("{prefix}.stream_stalls"), self.stream_stalls);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Done {
    /// Completion time known.
    At(Time),
    /// Completion pending on memory tag `tag`; resolves to
    /// `max(min_time, completion + extra)`.
    AfterTag { tag: u64, min_time: Time, extra: Time },
}

#[derive(Debug, Clone, Copy)]
struct DeferredLoad {
    tag: u64,
    addr: u64,
    bytes: u32,
}

/// Tracks the result availability of the most recent load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LastLoad {
    Known(Time),
    Pending(u64),
}

/// An execution-driven core.
///
/// See the [crate docs](crate) for the model; see `CoreConfig` presets for
/// the three evaluated cores.
pub struct Core {
    cfg: CoreConfig,
    kernel: Box<dyn Kernel>,
    window: VecDeque<Done>,
    deferred: HashMap<u64, Vec<DeferredLoad>>,
    last_load: LastLoad,
    /// Current dispatch cycle (ps, aligned to clock edges).
    slot_ps: Time,
    /// Dispatch slots consumed in the current cycle.
    slots_used: u32,
    next_tag: u64,
    store_credits: u32,
    streams: Option<StreamBufferSet>,
    object_buffer: ObjectBuffer,
    /// Op that could not dispatch (stream stall / store-credit stall).
    stalled: Option<MicroOp>,
    /// Objects shipped through the object buffer so far (permutable-store
    /// emission sequence).
    perm_objects: u64,
    /// Time of the completion event that released the current stall
    /// (valid while `stall_armed`).
    stall_release: Time,
    /// Whether the current stall has been released.
    stall_armed: bool,
    /// Latest in-order retirement time.
    last_retire: Time,
    kernel_done: bool,
    finished_at: Option<Time>,
    stats: CoreStats,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("kernel", &self.kernel.name())
            .field("slot_ps", &self.slot_ps)
            .field("window_occupancy", &self.window.len())
            .field("finished_at", &self.finished_at)
            .finish()
    }
}

impl Core {
    /// Creates a core executing `kernel` from time zero.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    pub fn new(cfg: CoreConfig, kernel: Box<dyn Kernel>) -> Self {
        assert!(cfg.width > 0 && cfg.window > 0, "degenerate core");
        let mut object_buffer = ObjectBuffer::new(cfg.object_buffer_bytes);
        object_buffer.set_object_bytes(16); // default tuple-sized objects
        Self {
            streams: cfg.stream.map(StreamBufferSet::new),
            kernel,
            cfg,
            window: VecDeque::new(),
            deferred: HashMap::new(),
            last_load: LastLoad::Known(0),
            slot_ps: 0,
            slots_used: 0,
            next_tag: 0,
            store_credits: cfg.store_credits,
            object_buffer,
            stalled: None,
            perm_objects: 0,
            stall_release: 0,
            stall_armed: false,
            last_retire: 0,
            kernel_done: false,
            finished_at: None,
            stats: CoreStats::default(),
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Starts the core's clock at `t` (phases begin where the previous
    /// phase ended).
    ///
    /// # Panics
    ///
    /// Panics if the core has already dispatched work.
    pub fn set_start(&mut self, t: Time) {
        assert!(
            self.next_tag == 0 && self.window.is_empty() && self.stats.instructions == 0,
            "cannot move the clock of a running core"
        );
        self.slot_ps = self.cfg.clock.next_edge(t);
        self.last_retire = self.slot_ps;
    }

    /// Total instructions retired (weighted per [`MicroOp::instructions`]).
    pub fn instructions(&self) -> u64 {
        self.stats.instructions
    }

    /// Declares the data-object granularity for permutable stores
    /// (`malloc_permutable`'s `object_size`).
    pub fn set_object_bytes(&mut self, bytes: u32) {
        self.object_buffer.set_object_bytes(bytes);
    }

    /// Retired-work counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The core's current virtual time (its dispatch front).
    pub fn now(&self) -> Time {
        self.slot_ps
    }

    /// Whether the kernel has fully executed.
    pub fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// The time dispatch+retirement completed, if finished.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    fn period(&self) -> Time {
        self.cfg.clock.period_ps()
    }

    /// Consumes `n` dispatch slots; returns the dispatch time of the last
    /// one.
    fn take_slots(&mut self, n: u64) -> Time {
        debug_assert!(n > 0);
        let width = self.cfg.width as u64;
        let mut remaining = n;
        loop {
            let free = width - self.slots_used as u64;
            if free == 0 {
                self.slot_ps += self.period();
                self.slots_used = 0;
                continue;
            }
            let take = remaining.min(free);
            self.slots_used += take as u32;
            remaining -= take;
            if remaining == 0 {
                return self.slot_ps;
            }
        }
    }

    /// Ensures a window slot is free. Returns `false` if blocked on the
    /// window head.
    fn make_room(&mut self) -> bool {
        while self.window.len() >= self.cfg.window as usize {
            match self.window.front().copied() {
                Some(Done::At(t)) => {
                    self.retire_head(t);
                }
                _ => return false,
            }
        }
        true
    }

    fn retire_head(&mut self, t: Time) {
        self.window.pop_front();
        self.last_retire = self.last_retire.max(t);
        // The freed slot is usable no earlier than the retire time.
        if t > self.slot_ps {
            self.slot_ps = self.cfg.clock.next_edge(t);
            self.slots_used = 0;
        }
    }

    fn fresh_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    /// Runs until the kernel blocks on memory or finishes.
    ///
    /// Emits memory requests into `out`; the engine must eventually answer
    /// each one (except permutable stores) via [`Core::complete_mem`].
    pub fn advance(&mut self, out: &mut Vec<MemRequest>) -> CoreStatus {
        if let Some(at) = self.finished_at {
            return CoreStatus::Finished(at);
        }
        loop {
            let op = match self.stalled.take() {
                Some(op) => {
                    // Time passed while stalled: resume at the completion
                    // that released the stall.
                    if self.stall_armed && self.stall_release > self.slot_ps {
                        self.slot_ps = self.cfg.clock.next_edge(self.stall_release);
                        self.slots_used = 0;
                    }
                    self.stall_armed = false;
                    self.stall_release = 0;
                    op
                }
                None => match self.kernel.next_op() {
                    Some(op) => op,
                    None => {
                        self.kernel_done = true;
                        // Drain the window.
                        while let Some(head) = self.window.front().copied() {
                            match head {
                                Done::At(t) => self.retire_head(t),
                                Done::AfterTag { .. } => return CoreStatus::Blocked,
                            }
                        }
                        let at = self.last_retire.max(self.slot_ps);
                        self.finished_at = Some(at);
                        return CoreStatus::Finished(at);
                    }
                },
            };
            if !self.dispatch(op, out) {
                return CoreStatus::Blocked;
            }
        }
    }

    /// Dispatches one op. Returns `false` (with the op stashed) on stall.
    fn dispatch(&mut self, op: MicroOp, out: &mut Vec<MemRequest>) -> bool {
        if !self.make_room() {
            self.stalled = Some(op);
            return false;
        }
        let period = self.period();
        match op {
            MicroOp::Compute { n, dep } => {
                let slot = self.take_slots(n.max(1) as u64);
                self.stats.instructions += n as u64;
                self.push_alu_entry(slot, dep, period);
            }
            MicroOp::Simd { dep } => {
                assert!(self.cfg.simd, "kernel issued SIMD on a core without a SIMD unit");
                let slot = self.take_slots(1);
                self.stats.instructions += 1;
                self.stats.simd_ops += 1;
                self.push_alu_entry(slot, dep, period);
            }
            MicroOp::Load { addr, bytes, dep, stream: Some(buf) } => {
                return self.dispatch_stream_load(buf, addr, bytes, dep, out);
            }
            MicroOp::Load { addr, bytes, dep, stream: None } => {
                let slot = self.take_slots(1);
                self.stats.instructions += 1;
                self.stats.loads += 1;
                let tag = self.fresh_tag();
                match (dep, self.last_load) {
                    (Dep::OnPrevLoad, LastLoad::Pending(dep_tag)) => {
                        // Address depends on an outstanding load: park.
                        self.deferred.entry(dep_tag).or_default().push(DeferredLoad {
                            tag,
                            addr,
                            bytes,
                        });
                    }
                    (Dep::OnPrevLoad, LastLoad::Known(t)) => {
                        let issue_at = slot.max(t + period);
                        out.push(MemRequest { tag, addr, bytes, kind: MemKind::Load, issue_at });
                    }
                    (Dep::None, _) => {
                        out.push(MemRequest {
                            tag,
                            addr,
                            bytes,
                            kind: MemKind::Load,
                            issue_at: slot,
                        });
                    }
                }
                self.window.push_back(Done::AfterTag { tag, min_time: slot + period, extra: 0 });
                self.last_load = LastLoad::Pending(tag);
            }
            MicroOp::Store { addr, bytes, kind } => {
                if let StoreKind::Permutable { dst_vault } = kind {
                    let slot = self.take_slots(1);
                    self.stats.instructions += 1;
                    self.stats.stores += 1;
                    if let Some((dst, object_bytes)) = self.object_buffer.push(bytes, dst_vault) {
                        let tag = self.fresh_tag();
                        let seq = self.perm_objects;
                        self.perm_objects += 1;
                        // The address field is unused for permutable stores
                        // (the destination controller assigns the final
                        // address); it carries the object emission sequence
                        // so the engine can commit the permutation.
                        out.push(MemRequest {
                            tag,
                            addr: seq,
                            bytes: object_bytes,
                            kind: MemKind::Store(StoreKind::Permutable { dst_vault: dst }),
                            issue_at: slot,
                        });
                    }
                    self.window.push_back(Done::At(slot + period));
                } else {
                    if self.store_credits == 0 {
                        self.stalled = Some(op);
                        return false;
                    }
                    let slot = self.take_slots(1);
                    self.stats.instructions += 1;
                    self.stats.stores += 1;
                    self.store_credits -= 1;
                    let tag = self.fresh_tag();
                    out.push(MemRequest {
                        tag,
                        addr,
                        bytes,
                        kind: MemKind::Store(kind),
                        issue_at: slot,
                    });
                    self.window.push_back(Done::At(slot + period));
                }
            }
            MicroOp::ConfigStream { buf, base, len } => {
                let slot = self.take_slots(1);
                self.stats.instructions += 1;
                let streams = self
                    .streams
                    .as_mut()
                    .expect("kernel configured a stream on a core without stream buffers");
                let chunk = streams.config().chunk;
                let fills = streams.configure(buf, base, len);
                for addr in fills {
                    let tag = self.fresh_tag();
                    out.push(MemRequest {
                        tag,
                        addr,
                        bytes: chunk,
                        kind: MemKind::StreamFill { buf },
                        issue_at: slot,
                    });
                }
                self.window.push_back(Done::At(slot + period));
            }
        }
        true
    }

    fn push_alu_entry(&mut self, slot: Time, dep: Dep, period: Time) {
        match (dep, self.last_load) {
            (Dep::None, _) => self.window.push_back(Done::At(slot + period)),
            (Dep::OnPrevLoad, LastLoad::Known(t)) => {
                self.window.push_back(Done::At((slot + period).max(t + period)));
            }
            (Dep::OnPrevLoad, LastLoad::Pending(tag)) => {
                self.window.push_back(Done::AfterTag {
                    tag,
                    min_time: slot + period,
                    extra: period,
                });
            }
        }
    }

    fn dispatch_stream_load(
        &mut self,
        buf: u8,
        addr: u64,
        bytes: u32,
        dep: Dep,
        out: &mut Vec<MemRequest>,
    ) -> bool {
        // A stream pop consuming the previous pop's data serializes through
        // the pipeline naturally; a dependence on an outstanding *scalar*
        // load must stall the (in-order) core.
        if let (Dep::OnPrevLoad, LastLoad::Pending(_)) = (dep, self.last_load) {
            self.stalled = Some(MicroOp::Load { addr, bytes, dep, stream: Some(buf) });
            return false;
        }
        let ready = {
            let streams =
                self.streams.as_ref().expect("kernel used a stream buffer on a core without them");
            streams.ready(buf, bytes)
        };
        if !ready {
            self.stats.stream_stalls += 1;
            self.stalled = Some(MicroOp::Load { addr, bytes, dep, stream: Some(buf) });
            return false;
        }
        if let (Dep::OnPrevLoad, LastLoad::Known(t)) = (dep, self.last_load) {
            if t > self.slot_ps {
                self.slot_ps = self.cfg.clock.next_edge(t);
                self.slots_used = 0;
            }
        }
        let slot = self.take_slots(1);
        let period = self.period();
        self.stats.instructions += 1;
        self.stats.loads += 1;
        self.stats.stream_hits += 1;
        let streams = self.streams.as_mut().expect("checked above");
        let chunk = streams.config().chunk;
        let refills: Vec<u64> = streams.pop(buf, bytes);
        for fill_addr in refills {
            let tag = self.fresh_tag();
            out.push(MemRequest {
                tag,
                addr: fill_addr,
                bytes: chunk,
                kind: MemKind::StreamFill { buf },
                issue_at: slot,
            });
        }
        self.window.push_back(Done::At(slot + period));
        self.last_load = LastLoad::Known(slot + period);
        true
    }

    /// Reports completion of a previously emitted request at time `done`.
    ///
    /// `req` must be the request the engine is answering; new requests
    /// released by this completion (deferred dependent loads) are appended
    /// to `out`. Call [`Core::advance`] afterwards to resume dispatch.
    pub fn complete_mem(&mut self, req: &MemRequest, done: Time, out: &mut Vec<MemRequest>) {
        let period = self.period();
        match req.kind {
            MemKind::Load => {
                // Resolve window entries waiting on this tag.
                for entry in self.window.iter_mut() {
                    if let Done::AfterTag { tag, min_time, extra } = *entry {
                        if tag == req.tag {
                            *entry = Done::At(min_time.max(done + extra));
                        }
                    }
                }
                if self.last_load == LastLoad::Pending(req.tag) {
                    self.last_load = LastLoad::Known(done);
                }
                // Release address-dependent loads parked on this tag.
                if let Some(waiters) = self.deferred.remove(&req.tag) {
                    for w in waiters {
                        out.push(MemRequest {
                            tag: w.tag,
                            addr: w.addr,
                            bytes: w.bytes,
                            kind: MemKind::Load,
                            issue_at: done + period,
                        });
                    }
                }
            }
            MemKind::Store(_) => {
                self.store_credits += 1;
                debug_assert!(self.store_credits <= self.cfg.store_credits);
            }
            MemKind::StreamFill { buf } => {
                self.streams
                    .as_mut()
                    .expect("stream fill completion on core without streams")
                    .fill_complete(buf, req.addr);
            }
        }
        self.try_release_stall(done);
    }

    /// If the core is stalled and this completion satisfies the stall's
    /// condition, record the release time (first such completion wins).
    fn try_release_stall(&mut self, done: Time) {
        if self.stall_armed {
            return;
        }
        let Some(op) = self.stalled else { return };
        let released = match op {
            MicroOp::Store { kind, .. } => {
                !matches!(kind, StoreKind::Permutable { .. }) && self.store_credits > 0
            }
            MicroOp::Load { bytes, dep, stream: Some(buf), .. } => {
                let dep_ok =
                    !matches!((dep, self.last_load), (Dep::OnPrevLoad, LastLoad::Pending(_)));
                dep_ok && self.streams.as_ref().is_some_and(|s| s.ready(buf, bytes))
            }
            _ => false,
        };
        if released {
            self.stall_release = done;
            self.stall_armed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::VecKernel;

    /// Minimal engine: serves every request after a fixed latency from
    /// issue, in issue order. Returns (finish_time, requests_served).
    fn run_fixed_latency(core: &mut Core, latency: Time) -> (Time, usize) {
        let mut outstanding: Vec<MemRequest> = Vec::new();
        let mut served = 0;
        let mut out = Vec::new();
        loop {
            match core.advance(&mut out) {
                CoreStatus::Finished(at) => {
                    // Drain remaining (stores / fills nobody waits on).
                    served += outstanding.len() + out.len();
                    return (at, served);
                }
                CoreStatus::Blocked => {
                    outstanding.append(&mut out);
                    assert!(
                        !outstanding.is_empty(),
                        "blocked with no outstanding memory: deadlock"
                    );
                    // Serve everything outstanding, oldest first (a real
                    // engine delivers completions at their own event times).
                    outstanding.sort_by_key(|r| r.issue_at);
                    for req in outstanding.drain(..) {
                        let done = req.issue_at + latency;
                        core.complete_mem(&req, done, &mut out);
                        served += 1;
                    }
                }
            }
        }
    }

    fn ooo(width: u32, window: u32) -> CoreConfig {
        CoreConfig {
            clock: Clock::from_ghz(1.0),
            width,
            window,
            store_credits: 4,
            simd: true,
            simd_tuples: 8,
            stream: Some(StreamConfig::mondrian()),
            object_buffer_bytes: 256,
        }
    }

    #[test]
    fn pure_compute_runs_at_full_width() {
        let cfg = ooo(3, 32);
        let ops = vec![MicroOp::compute(300)];
        let mut core = Core::new(cfg, Box::new(VecKernel::new(ops)));
        let (at, _) = run_fixed_latency(&mut core, 0);
        // 300 instructions at 3/cycle = 100 cycles (+1 completion).
        assert_eq!(at, 100_000);
        assert_eq!(core.stats().instructions, 300);
    }

    #[test]
    fn independent_loads_overlap_up_to_window() {
        // 8 independent loads, window 4, memory latency 100 cycles:
        // two waves of 4 → ≈ 200 cycles, far less than 8 × 100.
        let cfg = ooo(1, 4);
        let ops: Vec<MicroOp> = (0..8).map(|i| MicroOp::load(i * 64, 16)).collect();
        let mut core = Core::new(cfg, Box::new(VecKernel::new(ops)));
        let (at, _) = run_fixed_latency(&mut core, 100_000);
        assert!(at <= 230_000, "expected ~2 waves, got {at}");
        assert!(at >= 200_000, "cannot beat two serialized waves, got {at}");
    }

    #[test]
    fn dependent_loads_serialize() {
        // 8 address-dependent loads: each issues only after the previous
        // returns → ≈ 8 × 100 cycles regardless of window size.
        let cfg = ooo(3, 128);
        let ops: Vec<MicroOp> = (0..8).map(|i| MicroOp::load_dep(i * 64, 16)).collect();
        let mut core = Core::new(cfg, Box::new(VecKernel::new(ops)));
        let (at, _) = run_fixed_latency(&mut core, 100_000);
        assert!(at >= 800_000, "dependent chain must serialize, got {at}");
    }

    #[test]
    fn dependent_compute_waits_for_load() {
        let cfg = ooo(3, 32);
        let ops = vec![MicroOp::load(0, 16), MicroOp::compute_dep(1)];
        let mut core = Core::new(cfg, Box::new(VecKernel::new(ops)));
        let (at, _) = run_fixed_latency(&mut core, 50_000);
        // Load issues at 0, completes at 50 ns; dependent compute one cycle
        // later.
        assert_eq!(at, 51_000);
    }

    #[test]
    fn store_credits_throttle() {
        // 8 stores, 2 credits, 100-cycle write latency: waves of 2.
        let mut cfg = ooo(3, 64);
        cfg.store_credits = 2;
        let ops: Vec<MicroOp> = (0..8).map(|i| MicroOp::store(i * 64, 16)).collect();
        let mut core = Core::new(cfg, Box::new(VecKernel::new(ops)));
        let (_, served) = run_fixed_latency(&mut core, 100_000);
        assert!(served >= 6, "stores must round-trip through memory");
        // The core itself finishes dispatch after the 6th store completes
        // (credits for 7 and 8), i.e. at least 3 waves in.
        assert!(core.finished_at().unwrap() >= 300_000);
    }

    #[test]
    fn permutable_stores_do_not_block() {
        let mut cfg = ooo(3, 64);
        cfg.store_credits = 1;
        let ops: Vec<MicroOp> = (0..32)
            .map(|_| MicroOp::Store {
                addr: 0,
                bytes: 16,
                kind: StoreKind::Permutable { dst_vault: 7 },
            })
            .collect();
        let mut core = Core::new(cfg, Box::new(VecKernel::new(ops)));
        let mut out = Vec::new();
        let status = core.advance(&mut out);
        // Fire-and-forget: finishes without any completions at ~16 cycles
        // (32 ops, width 3, window churn).
        assert!(matches!(status, CoreStatus::Finished(_)));
        assert_eq!(out.len(), 32, "one object message per tuple");
        assert!(out
            .iter()
            .all(|r| matches!(r.kind, MemKind::Store(StoreKind::Permutable { dst_vault: 7 }))));
    }

    #[test]
    fn object_buffer_coalesces_small_stores() {
        let cfg = ooo(3, 64);
        let mut core = Core::new(
            cfg,
            Box::new(VecKernel::new(
                (0..8)
                    .map(|_| MicroOp::Store {
                        addr: 0,
                        bytes: 16,
                        kind: StoreKind::Permutable { dst_vault: 3 },
                    })
                    .collect(),
            )),
        );
        core.set_object_bytes(64); // 4 tuples per object
        let mut out = Vec::new();
        let status = core.advance(&mut out);
        assert!(matches!(status, CoreStatus::Finished(_)));
        assert_eq!(out.len(), 2, "8 × 16 B stores → 2 × 64 B objects");
        assert!(out.iter().all(|r| r.bytes == 64));
    }

    #[test]
    fn stream_pops_cost_one_cycle_when_ready() {
        let cfg = ooo(2, 16);
        let ops = vec![
            MicroOp::ConfigStream { buf: 0, base: 0, len: 256 },
            MicroOp::stream_load(0, 0, 16),
            MicroOp::stream_load(0, 16, 16),
        ];
        let mut core = Core::new(cfg, Box::new(VecKernel::new(ops)));
        let (at, _) = run_fixed_latency(&mut core, 30_000);
        // Config at cycle 0 issues fills; first pop waits for fill (~30 ns),
        // second pop hits immediately after.
        assert!(at < 40_000, "second pop must not wait another 30 ns, got {at}");
        assert_eq!(core.stats().stream_hits, 2);
        assert_eq!(core.stats().stream_stalls, 1, "first pop stalls once");
    }

    #[test]
    fn stream_steady_state_never_stalls() {
        // Long stream, fast memory: after warm-up, pops always hit.
        let cfg = ooo(2, 16);
        let n = 64u64;
        let mut ops = vec![MicroOp::ConfigStream { buf: 0, base: 0, len: n * 16 }];
        for i in 0..n {
            ops.push(MicroOp::stream_load(0, i * 16, 16));
        }
        let mut core = Core::new(cfg, Box::new(VecKernel::new(ops)));
        let (_, _) = run_fixed_latency(&mut core, 5_000);
        assert_eq!(core.stats().stream_hits, n);
        // The lazy test harness only completes fills when the core stalls,
        // so a stall per buffer refill round is expected here; the bound
        // still catches per-pop stalling (which would be 64).
        assert!(
            core.stats().stream_stalls <= 4,
            "expected only refill-round stalls, got {}",
            core.stats().stream_stalls
        );
    }

    #[test]
    #[should_panic(expected = "SIMD on a core without")]
    fn simd_requires_simd_unit() {
        let mut cfg = ooo(3, 32);
        cfg.simd = false;
        let mut core =
            Core::new(cfg, Box::new(VecKernel::new(vec![MicroOp::Simd { dep: Dep::None }])));
        let mut out = Vec::new();
        core.advance(&mut out);
    }

    #[test]
    fn finished_is_idempotent() {
        let cfg = ooo(3, 32);
        let mut core = Core::new(cfg, Box::new(VecKernel::new(vec![MicroOp::compute(3)])));
        let mut out = Vec::new();
        let s1 = core.advance(&mut out);
        let s2 = core.advance(&mut out);
        assert_eq!(s1, s2);
        assert!(core.finished());
    }

    #[test]
    fn presets_match_table3() {
        let a57 = CoreConfig::cortex_a57();
        assert_eq!(a57.clock.ghz(), 2.0);
        assert_eq!((a57.width, a57.window), (3, 128));
        let krait = CoreConfig::krait400();
        assert_eq!(krait.clock.ghz(), 1.0);
        assert_eq!((krait.width, krait.window), (3, 48));
        let a35 = CoreConfig::mondrian_a35();
        assert_eq!(a35.width, 2);
        assert!(a35.simd);
        assert_eq!(a35.simd_tuples, 8);
        assert_eq!(a35.stream.unwrap().buffers, 8);
        assert_eq!(a35.stream.unwrap().capacity, 384);
    }
}
