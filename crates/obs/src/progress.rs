//! The progress hook surface: a [`ProgressSink`] receives structured
//! execution events as a campaign runs — the event stream behind the
//! CLI's `--progress jsonl` and any future daemon frontend.
//!
//! Emission order is deterministic *within* one run (stages in serial
//! reference order, waves in schedule order); events from different runs
//! interleave freely under parallel execution. The hard determinism
//! contract covers artifacts and traces, never the live event stream.

use mondrian_sim::Time;

/// One structured execution event.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A stage entered the serial reference pass.
    StageStarted {
        /// Stage index in plan order.
        stage: usize,
        /// Stage name (`"filter"`, `"cogroup"`, ...).
        op: String,
    },
    /// A stage finished its serial reference pass.
    StageFinished {
        /// Stage index in plan order.
        stage: usize,
        /// Stage name.
        op: String,
        /// Rows the stage produced (after projection).
        output_rows: usize,
        /// The stage's simulated runtime.
        runtime_ps: Time,
    },
    /// A scheduled wave completed (branch and stream modes).
    WaveCompleted {
        /// Wave index (topological level).
        wave: usize,
        /// Whether the wave charged the concurrent schedule.
        concurrent: bool,
        /// The wave's charged simulated time.
        runtime_ps: Time,
    },
    /// One sweep point of a campaign finished (fired in manifest order).
    SweepPointDone {
        /// End-to-end makespan of the run.
        makespan_ps: Time,
        /// Whether every stage verified.
        verified: bool,
        /// Whether the run was served from the full-run memo.
        memoized: bool,
    },
}

impl ProgressEvent {
    /// Renders the event as one JSON line (no trailing newline), tagged
    /// with the run label it belongs to.
    pub fn to_jsonl(&self, run: &str) -> String {
        let run = crate::escape_json(run);
        match self {
            ProgressEvent::StageStarted { stage, op } => format!(
                "{{\"event\":\"stage_started\",\"run\":\"{run}\",\"stage\":{stage},\
                 \"op\":\"{}\"}}",
                crate::escape_json(op)
            ),
            ProgressEvent::StageFinished { stage, op, output_rows, runtime_ps } => format!(
                "{{\"event\":\"stage_finished\",\"run\":\"{run}\",\"stage\":{stage},\
                 \"op\":\"{}\",\"output_rows\":{output_rows},\"runtime_ps\":{runtime_ps}}}",
                crate::escape_json(op)
            ),
            ProgressEvent::WaveCompleted { wave, concurrent, runtime_ps } => format!(
                "{{\"event\":\"wave_completed\",\"run\":\"{run}\",\"wave\":{wave},\
                 \"concurrent\":{concurrent},\"runtime_ps\":{runtime_ps}}}"
            ),
            ProgressEvent::SweepPointDone { makespan_ps, verified, memoized } => format!(
                "{{\"event\":\"sweep_point_done\",\"run\":\"{run}\",\
                 \"makespan_ps\":{makespan_ps},\"verified\":{verified},\
                 \"memoized\":{memoized}}}"
            ),
        }
    }
}

/// Receives [`ProgressEvent`]s as a campaign executes. Implementations
/// must be `Sync`: campaign workers emit from their own threads.
pub trait ProgressSink: Sync {
    /// Handles one event from the run labeled `run`.
    fn emit(&self, run: &str, event: &ProgressEvent);
}

/// The null sink: events are dropped.
impl ProgressSink for () {
    fn emit(&self, _run: &str, _event: &ProgressEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_as_json_lines() {
        let ev = ProgressEvent::StageFinished {
            stage: 2,
            op: "group_by_key".into(),
            output_rows: 41,
            runtime_ps: 1500,
        };
        let line = ev.to_jsonl("cpu s1");
        assert!(!line.contains('\n'));
        assert_eq!(
            line,
            "{\"event\":\"stage_finished\",\"run\":\"cpu s1\",\"stage\":2,\
             \"op\":\"group_by_key\",\"output_rows\":41,\"runtime_ps\":1500}"
        );
        let done =
            ProgressEvent::SweepPointDone { makespan_ps: 9, verified: true, memoized: false };
        assert!(done.to_jsonl("r\"x").contains("\\\"x"));
    }

    #[test]
    fn unit_sink_is_a_null_sink() {
        ().emit("run", &ProgressEvent::StageStarted { stage: 0, op: "scan".into() });
    }
}
