//! Simulated-timeline tracing: spans and counter samples stamped in
//! simulated picoseconds, exported as Chrome trace-event JSON.
//!
//! The trace-event format's `ts` field is nominally microseconds; the
//! engine emits **one trace microsecond per simulated picosecond** so
//! every timestamp stays an exact integer (documented in the trace's
//! `otherData.ts_unit`). Perfetto and `chrome://tracing` load the file
//! directly — only the displayed magnitudes carry the ps scale.
//!
//! Construction is deliberately strict: timestamps must be monotone
//! non-decreasing within each `(pid, tid)` lane and every `begin_span`
//! must be closed by a matching `end_span`, so an exported trace
//! satisfies the schema the golden tests check by construction.

use std::collections::BTreeMap;

use mondrian_sim::Time;

/// One argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// An integer argument.
    Int(i64),
    /// A float argument.
    Float(f64),
    /// A string argument.
    Str(String),
}

impl Arg {
    fn render(&self) -> String {
        match self {
            Arg::Int(i) => i.to_string(),
            Arg::Float(f) => crate::format_f64(*f),
            Arg::Str(s) => format!("\"{}\"", crate::escape_json(s)),
        }
    }
}

#[derive(Debug, Clone)]
enum Kind {
    Begin,
    End,
    /// Counter sample: `(series, value)` pairs.
    Counter(Vec<(String, f64)>),
}

#[derive(Debug, Clone)]
struct Event {
    pid: u64,
    tid: u64,
    ts: Time,
    name: String,
    cat: String,
    kind: Kind,
    args: Vec<(String, Arg)>,
}

/// Records a deterministic simulated-time trace and exports it as Chrome
/// trace-event JSON.
///
/// # Example
///
/// ```
/// use mondrian_obs::Tracer;
/// let mut t = Tracer::new();
/// t.set_process_name(0, "run cpu");
/// t.set_thread_name(0, 1, "branch 0");
/// t.begin_span(0, 1, "scan", "stage", 0, vec![]);
/// t.end_span(0, 1, 1500);
/// let json = t.export();
/// assert!(json.contains("\"ph\":\"B\""));
/// ```
#[derive(Debug, Default)]
pub struct Tracer {
    processes: BTreeMap<u64, String>,
    threads: BTreeMap<(u64, u64), String>,
    events: Vec<Event>,
    /// Per-lane open-span depth (for pairing checks).
    open: BTreeMap<(u64, u64), u64>,
    /// Per-lane last emitted timestamp (for monotonicity checks).
    last_ts: BTreeMap<(u64, u64), Time>,
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Names a process lane (one per campaign run).
    pub fn set_process_name(&mut self, pid: u64, name: &str) {
        self.processes.insert(pid, name.to_string());
    }

    /// Names a thread lane within a process.
    pub fn set_thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.threads.insert((pid, tid), name.to_string());
    }

    fn check_lane(&mut self, pid: u64, tid: u64, ts: Time) {
        let last = self.last_ts.entry((pid, tid)).or_insert(0);
        assert!(
            ts >= *last,
            "trace lane ({pid},{tid}) went backwards: {ts} < {last}",
            last = *last
        );
        *last = ts;
    }

    /// Opens a span on lane `(pid, tid)` at simulated time `ts`.
    ///
    /// # Panics
    ///
    /// Panics if `ts` precedes the lane's last event — spans are replayed
    /// from the deterministic schedule in time order by construction.
    pub fn begin_span(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts: Time,
        args: Vec<(String, Arg)>,
    ) {
        self.check_lane(pid, tid, ts);
        *self.open.entry((pid, tid)).or_insert(0) += 1;
        self.events.push(Event {
            pid,
            tid,
            ts,
            name: name.to_string(),
            cat: cat.to_string(),
            kind: Kind::Begin,
            args,
        });
    }

    /// Closes the innermost open span on lane `(pid, tid)` at `ts`.
    ///
    /// # Panics
    ///
    /// Panics if the lane has no open span or `ts` precedes the lane's
    /// last event.
    pub fn end_span(&mut self, pid: u64, tid: u64, ts: Time) {
        self.check_lane(pid, tid, ts);
        let depth = self.open.get_mut(&(pid, tid)).expect("end_span without begin_span");
        assert!(*depth > 0, "end_span without begin_span on lane ({pid},{tid})");
        *depth -= 1;
        self.events.push(Event {
            pid,
            tid,
            ts,
            name: String::new(),
            cat: String::new(),
            kind: Kind::End,
            args: Vec::new(),
        });
    }

    /// Records a counter sample (`ph:"C"`) on lane `(pid, tid)`.
    pub fn counter(&mut self, pid: u64, tid: u64, name: &str, ts: Time, series: &[(&str, f64)]) {
        self.check_lane(pid, tid, ts);
        self.events.push(Event {
            pid,
            tid,
            ts,
            name: name.to_string(),
            cat: String::new(),
            kind: Kind::Counter(series.iter().map(|&(k, v)| (k.to_string(), v)).collect()),
            args: Vec::new(),
        });
    }

    /// Exports the Chrome trace-event JSON document (trailing newline
    /// included). Deterministic: metadata first (sorted by pid/tid), then
    /// every event grouped by `(pid, tid)` lane in recording order.
    ///
    /// # Panics
    ///
    /// Panics if any span is still open — a trace with unmatched B/E
    /// pairs must never be written.
    pub fn export(&self) -> String {
        for (&(pid, tid), &depth) in &self.open {
            assert!(depth == 0, "lane ({pid},{tid}) has {depth} unclosed span(s)");
        }
        let mut lines: Vec<String> =
            Vec::with_capacity(self.processes.len() + self.threads.len() + self.events.len());
        for (pid, name) in &self.processes {
            lines.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                crate::escape_json(name)
            ));
        }
        for (&(pid, tid), name) in &self.threads {
            lines.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                crate::escape_json(name)
            ));
        }
        // Stable sort: lanes ordered by (pid, tid), recording order kept
        // within each lane — per-lane timestamps are monotone by
        // construction, so the exported order is too.
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| (self.events[i].pid, self.events[i].tid));
        for i in order {
            let e = &self.events[i];
            lines.push(match &e.kind {
                Kind::Begin => {
                    let args = if e.args.is_empty() {
                        String::new()
                    } else {
                        let rendered: Vec<String> = e
                            .args
                            .iter()
                            .map(|(k, v)| format!("\"{}\":{}", crate::escape_json(k), v.render()))
                            .collect();
                        format!(",\"args\":{{{}}}", rendered.join(","))
                    };
                    format!(
                        "{{\"ph\":\"B\",\"pid\":{},\"tid\":{},\"ts\":{},\"cat\":\"{}\",\
                         \"name\":\"{}\"{args}}}",
                        e.pid,
                        e.tid,
                        e.ts,
                        crate::escape_json(&e.cat),
                        crate::escape_json(&e.name),
                    )
                }
                Kind::End => {
                    format!("{{\"ph\":\"E\",\"pid\":{},\"tid\":{},\"ts\":{}}}", e.pid, e.tid, e.ts)
                }
                Kind::Counter(series) => {
                    let rendered: Vec<String> = series
                        .iter()
                        .map(|(k, v)| {
                            format!("\"{}\":{}", crate::escape_json(k), crate::format_f64(*v))
                        })
                        .collect();
                    format!(
                        "{{\"ph\":\"C\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\
                         \"args\":{{{}}}}}",
                        e.pid,
                        e.tid,
                        e.ts,
                        crate::escape_json(&e.name),
                        rendered.join(","),
                    )
                }
            });
        }
        let mut out = String::from(
            "{\"displayTimeUnit\": \"ns\",\n\"otherData\": {\"ts_unit\": \"simulated_ps\"},\n\
             \"traceEvents\": [\n",
        );
        out.push_str(&lines.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_export_in_lane_order() {
        let mut t = Tracer::new();
        t.set_process_name(1, "run");
        t.set_thread_name(1, 2, "lane");
        // Record the high lane first: export must still order by tid.
        t.begin_span(1, 9, "late-lane", "x", 0, vec![]);
        t.end_span(1, 9, 5);
        t.begin_span(1, 2, "outer", "stage", 0, vec![("rows".into(), Arg::Int(4))]);
        t.begin_span(1, 2, "inner", "phase", 1, vec![]);
        t.end_span(1, 2, 3);
        t.end_span(1, 2, 7);
        let json = t.export();
        let outer = json.find("\"outer\"").unwrap();
        let inner = json.find("\"inner\"").unwrap();
        let late = json.find("\"late-lane\"").unwrap();
        assert!(outer < inner, "outer B precedes inner B");
        assert!(inner < late, "tid 2 lane precedes tid 9 lane");
        assert!(json.contains("\"args\":{\"rows\":4}"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn counters_render_sorted_series() {
        let mut t = Tracer::new();
        t.counter(0, 0, "dram", 10, &[("read", 64.0), ("write", 32.0)]);
        let json = t.export();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"read\":64.0,\"write\":32.0"));
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn non_monotone_lane_panics() {
        let mut t = Tracer::new();
        t.begin_span(0, 0, "a", "x", 10, vec![]);
        t.end_span(0, 0, 5);
    }

    #[test]
    #[should_panic(expected = "unclosed span")]
    fn export_rejects_open_spans() {
        let mut t = Tracer::new();
        t.begin_span(0, 0, "a", "x", 0, vec![]);
        let _ = t.export();
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut t = Tracer::new();
            t.set_process_name(0, "p");
            t.begin_span(0, 1, "s", "c", 2, vec![("v".into(), Arg::Float(0.5))]);
            t.end_span(0, 1, 9);
            t.counter(0, 3, "q", 4, &[("d", 1.0)]);
            t.export()
        };
        assert_eq!(build(), build());
    }
}
