//! # mondrian-obs
//!
//! The deterministic observability layer: every number this crate emits
//! derives from the *simulated* machines — never from the host clock,
//! the worker count, or thread scheduling — so traces and metrics are
//! byte-identical for every `--jobs` value.
//!
//! Three surfaces:
//!
//! * [`Tracer`] — spans and counter samples stamped in simulated
//!   picoseconds, exported as Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`).
//! * [`Counters`] — the unified hierarchical counter registry behind the
//!   artifact's `metrics` block: `.`-separated keys, typed count/value
//!   entries, merge/diff/serialize.
//! * [`ProgressSink`] — the hook surface (stage started/finished, wave
//!   completed, sweep point done) the CLI wires to `--progress jsonl`.

#![warn(missing_docs)]

mod counters;
mod progress;
mod trace;

pub use counters::{exit_counter_key, Counters, Metric};
pub use progress::{ProgressEvent, ProgressSink};
pub use trace::{Arg, Tracer};

/// Escapes `s` as the body of a JSON string literal (quotes not
/// included). Control characters become `\uXXXX`.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `f` the way the artifact serializer does: integral finite
/// floats below 1e15 as `x.0`, everything else shortest-roundtrip — so
/// observability output is byte-stable alongside `result.json`.
pub(crate) fn format_f64(f: f64) -> String {
    if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_control_and_quotes() {
        assert_eq!(escape_json("a\"b\\c\u{1}"), "a\\\"b\\\\c\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn float_format_matches_artifact_convention() {
        assert_eq!(format_f64(2.0), "2.0");
        assert_eq!(format_f64(0.5), "0.5");
        // >= 1e15 falls through to Rust's shortest-roundtrip Display,
        // matching the artifact serializer exactly.
        assert_eq!(format_f64(1e18), "1000000000000000000");
    }
}
