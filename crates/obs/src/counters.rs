//! The unified counter registry: one typed, hierarchical tree for every
//! statistic the engine reports — vault/DRAM traffic, NoC rollups, cache
//! behavior, engine event counts — replacing per-component ad-hoc stat
//! structs at the reporting boundary.

use std::collections::BTreeMap;

use mondrian_sim::{Stat, Stats};

/// A single typed metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// An event count.
    Count(u64),
    /// A continuous quantity.
    Value(f64),
}

impl Metric {
    /// The metric as a float regardless of flavor.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Metric::Count(c) => c as f64,
            Metric::Value(v) => v,
        }
    }
}

/// The hierarchical counter registry. Keys are `.`-separated paths
/// (`"mem.read_bytes"`, `"phase_ps.probe.scan"`); iteration order is
/// the sorted key order, so serialization is deterministic.
///
/// # Example
///
/// ```
/// use mondrian_obs::{Counters, Metric};
/// let mut c = Counters::new();
/// c.add_count("mem.read_bytes", 64);
/// c.add_count("mem.read_bytes", 64);
/// assert_eq!(c.get("mem.read_bytes"), Some(Metric::Count(128)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counters {
    entries: BTreeMap<String, Metric>,
}

impl Counters {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the count at `key`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `key` already holds a [`Metric::Value`].
    pub fn add_count(&mut self, key: &str, n: u64) {
        match self.entries.entry(key.to_owned()).or_insert(Metric::Count(0)) {
            Metric::Count(c) => *c += n,
            Metric::Value(_) => panic!("metric {key} is a value, not a count"),
        }
    }

    /// Adds `v` to the value at `key`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `key` already holds a [`Metric::Count`].
    pub fn add_value(&mut self, key: &str, v: f64) {
        match self.entries.entry(key.to_owned()).or_insert(Metric::Value(0.0)) {
            Metric::Value(x) => *x += v,
            Metric::Count(_) => panic!("metric {key} is a count, not a value"),
        }
    }

    /// Sets `key` to `metric`, replacing any previous entry.
    pub fn set(&mut self, key: &str, metric: Metric) {
        self.entries.insert(key.to_owned(), metric);
    }

    /// Looks up a metric.
    pub fn get(&self, key: &str) -> Option<Metric> {
        self.entries.get(key).copied()
    }

    /// Looks up a count, defaulting to zero.
    ///
    /// # Panics
    ///
    /// Panics if `key` holds a [`Metric::Value`].
    pub fn count(&self, key: &str) -> u64 {
        match self.get(key) {
            None => 0,
            Some(Metric::Count(c)) => c,
            Some(Metric::Value(v)) => panic!("metric {key} is a value ({v}), not a count"),
        }
    }

    /// Looks up any metric as a float, defaulting to zero.
    pub fn value(&self, key: &str) -> f64 {
        self.get(key).map(|m| m.as_f64()).unwrap_or(0.0)
    }

    /// Iterates over `(key, metric)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Metric)> {
        self.entries.iter().map(|(k, m)| (k.as_str(), *m))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another registry into this one, adding overlapping entries.
    ///
    /// # Panics
    ///
    /// Panics if an overlapping key has mismatched flavors.
    pub fn merge(&mut self, other: &Counters) {
        for (k, m) in other.iter() {
            match m {
                Metric::Count(c) => self.add_count(k, c),
                Metric::Value(v) => self.add_value(k, v),
            }
        }
    }

    /// The per-key change from `baseline` to `self`: every key present in
    /// either registry whose value differs, as a signed [`Metric::Value`]
    /// delta (`self - baseline`; keys absent on one side count as zero).
    pub fn diff(&self, baseline: &Counters) -> Counters {
        let mut out = Counters::new();
        let keys = self.entries.keys().chain(baseline.entries.keys());
        for k in keys {
            let delta = self.value(k) - baseline.value(k);
            if delta != 0.0 {
                out.set(k, Metric::Value(delta));
            }
        }
        out
    }

    /// Imports every entry of a component [`Stats`] registry, optionally
    /// re-rooted under `prefix`.
    pub fn absorb_stats(&mut self, stats: &Stats, prefix: &str) {
        for (k, s) in stats.iter() {
            let key = if prefix.is_empty() { k.to_string() } else { format!("{prefix}.{k}") };
            match s {
                Stat::Count(c) => self.add_count(&key, c),
                Stat::Value(v) => self.add_value(&key, v),
            }
        }
    }

    /// Serializes the registry as one flat, deterministic JSON object
    /// (sorted keys; floats rendered with the artifact's conventions).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, m)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&crate::escape_json(k));
            out.push_str("\":");
            match m {
                Metric::Count(c) => out.push_str(&c.to_string()),
                Metric::Value(v) => out.push_str(&crate::format_f64(v)),
            }
        }
        out.push('}');
        out
    }
}

/// The counter path for a standardized campaign exit reason:
/// `engine.exits.<reason>`.
///
/// The robustness layer rolls one count per sweep point into the
/// campaign-level registry under this path — `engine.exits.ok`,
/// `engine.exits.limit_events`, `engine.exits.worker_panic`, … — so
/// consumers can read the failure taxonomy out of `metrics` without
/// touching the per-run `exit` objects. Exit counters live under the
/// `engine` group (the first path segment) like every other engine
/// statistic, and merge across runs like any [`Metric::Count`].
pub fn exit_counter_key(reason: &str) -> String {
    format!("engine.exits.{reason}")
}

impl From<&Stats> for Counters {
    fn from(stats: &Stats) -> Self {
        let mut c = Counters::new();
        c.absorb_stats(stats, "");
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_counters_group_under_engine_and_merge() {
        let mut a = Counters::new();
        a.add_count(&exit_counter_key("ok"), 2);
        a.add_count(&exit_counter_key("limit_events"), 1);
        let mut b = Counters::new();
        b.add_count(&exit_counter_key("ok"), 1);
        a.merge(&b);
        assert_eq!(a.count("engine.exits.ok"), 3);
        assert_eq!(a.count("engine.exits.limit_events"), 1);
        assert!(a.iter().all(|(k, _)| k.starts_with("engine.")));
    }

    #[test]
    fn counts_and_values_accumulate() {
        let mut c = Counters::new();
        c.add_count("a", 1);
        c.add_count("a", 2);
        c.add_value("v", 0.5);
        assert_eq!(c.count("a"), 3);
        assert_eq!(c.value("v"), 0.5);
        assert_eq!(c.count("missing"), 0);
    }

    #[test]
    #[should_panic(expected = "is a value")]
    fn flavor_mismatch_panics() {
        let mut c = Counters::new();
        c.add_value("x", 1.0);
        c.add_count("x", 1);
    }

    #[test]
    fn merge_adds_and_diff_subtracts() {
        let mut a = Counters::new();
        a.add_count("c", 5);
        a.add_value("v", 1.0);
        let mut b = Counters::new();
        b.add_count("c", 2);
        b.add_count("only_b", 7);
        // Diff before the merge exercises the negative-delta path: keys
        // absent on one side count as zero.
        let d = a.diff(&b);
        assert_eq!(d.value("c"), 3.0);
        assert_eq!(d.value("v"), 1.0);
        assert_eq!(d.value("only_b"), -7.0);
        a.merge(&b);
        assert_eq!(a.count("c"), 7);
        assert_eq!(a.diff(&b).value("c"), 5.0);
        // `only_b` now agrees on both sides, so the delta is omitted.
        assert_eq!(a.diff(&b).get("only_b"), None);
        // Equal registries diff to empty.
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn stats_roundtrip_and_json() {
        let mut s = Stats::new();
        s.add_count("vault.0.read_bytes", 64);
        s.add_value("energy", 2.0);
        let mut c = Counters::from(&s);
        c.absorb_stats(&s, "again");
        assert_eq!(c.count("vault.0.read_bytes"), 64);
        assert_eq!(c.count("again.vault.0.read_bytes"), 64);
        let json = Counters::from(&s).to_json();
        assert_eq!(json, "{\"energy\":2.0,\"vault.0.read_bytes\":64}");
    }
}
