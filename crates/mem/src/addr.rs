//! Physical address mapping.
//!
//! The Mondrian Data Engine assumes a flat physical address space spanning
//! all NMP-capable devices (§5.1). Memory partitions (vaults) own contiguous
//! address ranges — the partitioning phase of every operator treats a vault
//! as one hash bucket, so partition-contiguous mapping is the natural layout.
//! Within a vault, consecutive addresses walk row buffers, and consecutive
//! *rows* are interleaved across banks so that streaming can overlap the next
//! activation with the current transfer.

/// Identifies a vault globally: `hmc * vaults_per_hmc + vault`.
pub type GlobalVaultId = u32;

/// Permutation-based bank interleaving: XOR-folds the row index so that the
/// regular strides data analytics produces (region-aligned buffers, cursor
/// ranges at fixed offsets) spread across banks instead of camping on one.
/// Within every aligned group of `banks` consecutive rows the mapping is a
/// permutation, so `(bank, row_index / banks)` still uniquely identifies a
/// row buffer.
///
/// # Panics
///
/// Panics if `banks` is not a power of two.
pub fn bank_of(row_index: u64, banks: u32) -> u32 {
    assert!(banks.is_power_of_two(), "bank count must be a power of two");
    let bits = banks.trailing_zeros().max(1);
    let mut x = row_index;
    let mut fold = 0u64;
    while x != 0 {
        fold ^= x;
        x >>= bits;
    }
    (fold % banks as u64) as u32
}

/// Decoded location of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// HMC device index.
    pub hmc: u32,
    /// Vault index within the device.
    pub vault: u32,
    /// Bank index within the vault.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Byte offset within the row.
    pub col: u32,
}

/// Maps flat physical addresses onto the `[hmc | vault | row | bank | col]`
/// hierarchy.
///
/// # Example
///
/// ```
/// use mondrian_mem::AddressMap;
/// let map = AddressMap::new(4, 16, 1 << 20, 256, 8);
/// let loc = map.decode(map.vault_base(17) + 256);
/// assert_eq!((loc.hmc, loc.vault), (1, 1));
/// assert_eq!(loc.bank, 1); // second row of the vault lives in bank 1
/// assert_eq!(loc.col, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    hmcs: u32,
    vaults_per_hmc: u32,
    vault_capacity: u64,
    row_bytes: u32,
    banks: u32,
}

impl AddressMap {
    /// Creates an address map.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `vault_capacity` is not a multiple
    /// of `row_bytes`.
    pub fn new(
        hmcs: u32,
        vaults_per_hmc: u32,
        vault_capacity: u64,
        row_bytes: u32,
        banks: u32,
    ) -> Self {
        assert!(hmcs > 0 && vaults_per_hmc > 0 && banks > 0);
        assert!(row_bytes > 0 && vault_capacity.is_multiple_of(row_bytes as u64));
        Self { hmcs, vaults_per_hmc, vault_capacity, row_bytes, banks }
    }

    /// Total number of vaults in the system.
    pub fn total_vaults(&self) -> u32 {
        self.hmcs * self.vaults_per_hmc
    }

    /// Total memory capacity in bytes.
    pub fn total_capacity(&self) -> u64 {
        self.total_vaults() as u64 * self.vault_capacity
    }

    /// Capacity of each vault in bytes.
    pub fn vault_capacity(&self) -> u64 {
        self.vault_capacity
    }

    /// The base physical address of a vault's partition.
    pub fn vault_base(&self, vault: GlobalVaultId) -> u64 {
        assert!(vault < self.total_vaults(), "vault {vault} out of range");
        vault as u64 * self.vault_capacity
    }

    /// The vault owning `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the total capacity.
    pub fn vault_of(&self, addr: u64) -> GlobalVaultId {
        assert!(addr < self.total_capacity(), "address {addr:#x} out of range");
        (addr / self.vault_capacity) as GlobalVaultId
    }

    /// The HMC device owning `addr`.
    pub fn hmc_of(&self, addr: u64) -> u32 {
        self.vault_of(addr) / self.vaults_per_hmc
    }

    /// Fully decodes `addr`.
    pub fn decode(&self, addr: u64) -> Location {
        let vault = self.vault_of(addr);
        let offset = addr % self.vault_capacity;
        let row_index = offset / self.row_bytes as u64;
        Location {
            hmc: vault / self.vaults_per_hmc,
            vault: vault % self.vaults_per_hmc,
            bank: bank_of(row_index, self.banks),
            row: row_index / self.banks as u64,
            col: (offset % self.row_bytes as u64) as u32,
        }
    }

    /// The global row index (bank-interleaved) of `addr` within its vault.
    /// Two addresses share a row buffer iff they share a vault and this
    /// index.
    pub fn row_index(&self, addr: u64) -> u64 {
        (addr % self.vault_capacity) / self.row_bytes as u64
    }

    /// Whether the `bytes`-long access starting at `addr` stays within one
    /// DRAM row (a requirement of the vault controller).
    pub fn within_row(&self, addr: u64, bytes: u32) -> bool {
        bytes > 0 && self.row_index(addr) == self.row_index(addr + bytes as u64 - 1)
    }
}

/// A contiguous vault-subset window of an [`AddressMap`] — the memory half
/// of a machine lease (multi-tenancy): the leased sub-machine addresses its
/// vaults `0..vaults` locally, while the view translates those local ids
/// and addresses back into the parent machine's global space so that
/// traffic and energy can be attributed to the physical vaults actually
/// touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionView {
    first_vault: GlobalVaultId,
    vaults: u32,
    parent_vaults: u32,
    vault_capacity: u64,
}

impl PartitionView {
    /// The global id of the partition's first vault.
    pub fn first_vault(&self) -> GlobalVaultId {
        self.first_vault
    }

    /// Number of vaults in the partition.
    pub fn vaults(&self) -> u32 {
        self.vaults
    }

    /// Total vaults of the parent machine.
    pub fn parent_vaults(&self) -> u32 {
        self.parent_vaults
    }

    /// Whether the view covers the whole parent machine.
    pub fn is_whole(&self) -> bool {
        self.first_vault == 0 && self.vaults == self.parent_vaults
    }

    /// Translates a partition-local vault id to the parent's global id.
    ///
    /// # Panics
    ///
    /// Panics if `local` is outside the partition.
    pub fn global_vault(&self, local: u32) -> GlobalVaultId {
        assert!(local < self.vaults, "local vault {local} outside the partition");
        self.first_vault + local
    }

    /// Translates a global vault id into the partition, if it is covered.
    pub fn local_vault(&self, global: GlobalVaultId) -> Option<u32> {
        global.checked_sub(self.first_vault).filter(|&l| l < self.vaults)
    }

    /// Whether the partition covers `global`.
    pub fn contains(&self, global: GlobalVaultId) -> bool {
        self.local_vault(global).is_some()
    }

    /// Translates a partition-local physical address to the parent's global
    /// address space (both spaces are vault-contiguous, so the translation
    /// is a fixed offset).
    pub fn global_addr(&self, local_addr: u64) -> u64 {
        local_addr + self.first_vault as u64 * self.vault_capacity
    }
}

impl AddressMap {
    /// Restricts the map to the `vaults`-wide window starting at
    /// `first_vault`: returns the sub-machine's own 0-based map plus the
    /// [`PartitionView`] translating it back to this (parent) map.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty, exceeds the map, or does not divide
    /// evenly into HMC devices (windows smaller than one device collapse
    /// onto a single device).
    pub fn view(&self, first_vault: GlobalVaultId, vaults: u32) -> (AddressMap, PartitionView) {
        assert!(vaults > 0, "empty partition");
        assert!(
            first_vault + vaults <= self.total_vaults(),
            "partition [{first_vault}, {}) exceeds {} vaults",
            first_vault + vaults,
            self.total_vaults()
        );
        let (hmcs, vaults_per_hmc) = if vaults >= self.vaults_per_hmc {
            assert!(
                vaults.is_multiple_of(self.vaults_per_hmc),
                "multi-device partition must cover whole devices"
            );
            (vaults / self.vaults_per_hmc, self.vaults_per_hmc)
        } else {
            (1, vaults)
        };
        let sub =
            AddressMap::new(hmcs, vaults_per_hmc, self.vault_capacity, self.row_bytes, self.banks);
        let view = PartitionView {
            first_vault,
            vaults,
            parent_vaults: self.total_vaults(),
            vault_capacity: self.vault_capacity,
        };
        (sub, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(4, 16, 1 << 20, 256, 8)
    }

    #[test]
    fn vault_partitions_are_contiguous() {
        let m = map();
        assert_eq!(m.vault_of(0), 0);
        assert_eq!(m.vault_of((1 << 20) - 1), 0);
        assert_eq!(m.vault_of(1 << 20), 1);
        assert_eq!(m.vault_base(63), 63 << 20);
        assert_eq!(m.total_vaults(), 64);
        assert_eq!(m.total_capacity(), 64 << 20);
    }

    #[test]
    fn hmc_of_groups_vaults() {
        let m = map();
        assert_eq!(m.hmc_of(m.vault_base(0)), 0);
        assert_eq!(m.hmc_of(m.vault_base(15)), 0);
        assert_eq!(m.hmc_of(m.vault_base(16)), 1);
        assert_eq!(m.hmc_of(m.vault_base(63)), 3);
    }

    #[test]
    fn rows_interleave_across_banks() {
        let m = map();
        // Every aligned group of 8 consecutive rows covers all 8 banks (a
        // permutation), so streaming overlaps activation with transfer.
        for g in 0..4u64 {
            let mut seen = [false; 8];
            for j in 0..8u64 {
                let loc = m.decode((g * 8 + j) * 256);
                seen[loc.bank as usize] = true;
                assert_eq!(loc.row, g, "row group {g}");
            }
            assert!(seen.iter().all(|&b| b), "group {g} misses a bank");
        }
    }

    #[test]
    fn bank_hash_breaks_power_of_two_strides() {
        // Region-aligned cursor ranges (64 KB = 256-row strides) must not
        // collapse onto one bank.
        let mut seen = std::collections::HashSet::new();
        for s in 0..64u64 {
            seen.insert(bank_of(s * 256, 8));
        }
        assert!(seen.len() >= 6, "64 KB strides hit only {} banks", seen.len());
        // 1 KB strides (4 rows) likewise.
        let mut seen = std::collections::HashSet::new();
        for s in 0..64u64 {
            seen.insert(bank_of(s * 4, 8));
        }
        assert!(seen.len() >= 6, "1 KB strides hit only {} banks", seen.len());
    }

    #[test]
    fn bank_hash_is_permutation_within_groups() {
        for g in 0..512u64 {
            let mut seen = [false; 8];
            for j in 0..8 {
                seen[bank_of(g * 8 + j, 8) as usize] = true;
            }
            assert!(seen.iter().all(|&b| b), "group {g} not a permutation");
        }
    }

    #[test]
    fn col_is_offset_in_row() {
        let m = map();
        let loc = m.decode(256 + 40);
        assert_eq!(loc.col, 40);
    }

    #[test]
    fn within_row_checks_boundary() {
        let m = map();
        assert!(m.within_row(0, 256));
        assert!(!m.within_row(0, 257));
        assert!(m.within_row(240, 16));
        assert!(!m.within_row(248, 16));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_address_panics() {
        map().vault_of(64 << 20);
    }

    #[test]
    fn partition_view_translates_vaults_and_addresses() {
        let m = map();
        // A 32-vault window spanning HMCs 1 and 2.
        let (sub, view) = m.view(16, 32);
        assert_eq!(sub.total_vaults(), 32);
        assert_eq!(sub.vault_capacity(), m.vault_capacity());
        assert_eq!(view.global_vault(0), 16);
        assert_eq!(view.global_vault(31), 47);
        assert_eq!(view.local_vault(16), Some(0));
        assert_eq!(view.local_vault(48), None);
        assert_eq!(view.local_vault(3), None);
        assert!(view.contains(47) && !view.contains(15));
        assert!(!view.is_whole());
        // Local address 0 is the base of global vault 16.
        assert_eq!(view.global_addr(0), m.vault_base(16));
        assert_eq!(m.vault_of(view.global_addr(sub.vault_base(5) + 100)), 21);
        // Sub-device windows collapse onto one HMC.
        let (sub, view) = m.view(4, 4);
        assert_eq!(sub.total_vaults(), 4);
        assert_eq!(view.global_vault(3), 7);
        // The whole-machine view is the identity.
        let (sub, view) = m.view(0, 64);
        assert_eq!(sub, m);
        assert!(view.is_whole());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_partition_view_panics() {
        map().view(60, 8);
    }
}
