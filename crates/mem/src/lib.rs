//! # mondrian-mem
//!
//! HMC-style stacked-DRAM timing and event model for the Mondrian Data
//! Engine reproduction — the substrate the paper gets from DRAMSim2 plus its
//! custom HMC extensions.
//!
//! The crate models the memory side of one vault (the HMC's unit of
//! partitioning: a vertical stack of DRAM partitions plus a dedicated
//! controller on the logic die):
//!
//! * [`VaultConfig`]/[`DramTiming`] — geometry and Table 3 timing, with
//!   [`DevicePreset`]s for the HBM / Wide I/O 2 row-buffer ablation,
//! * [`AddressMap`] — the flat physical address space of §5.1, with
//!   vault-contiguous partitions and bank-interleaved rows,
//! * [`VaultController`] — FR-FCFS command scheduling, row-buffer state,
//!   bandwidth-capped data path, activation accounting (the quantity that
//!   dominates DRAM dynamic energy, §3.1), and
//! * the **permutable region** machinery of §5.3: [`PermutableRegion`],
//!   arrival logging, and the [`PermutableOverflow`] exception path.
//!
//! Higher layers (caches, cores, networks) talk to vaults through
//! [`DramRequest`]/[`DramCompletion`] pairs; the engine crate owns the event
//! loop and polls [`VaultController::next_event_time`].

#![warn(missing_docs)]

mod addr;
mod config;
mod vault;

pub use addr::{bank_of, AddressMap, GlobalVaultId, Location, PartitionView};
pub use config::{DevicePreset, DramTiming, VaultConfig};
pub use vault::{
    drain, AccessKind, DramCompletion, DramRequest, PermutableOverflow, PermutableRegion,
    VaultController, VaultStats, QUEUE_DEPTH_BUCKETS,
};
