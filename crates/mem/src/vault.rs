//! The vault controller: per-vault DRAM command scheduling, row-buffer
//! tracking, and the paper's permutable-write extension.
//!
//! Every HMC vault has a dedicated controller on the logic die (§5.2). Ours
//! models:
//!
//! * per-bank row-buffer state (open row, activate/precharge/write-recovery
//!   timing constraints from Table 3),
//! * FR-FCFS scheduling over a bounded window — open-row hits are served
//!   first, which is the "limited reordering ability" §4.1.2 shows is
//!   insufficient to recover locality during shuffles; reads have priority
//!   over buffered writes (standard write-drain policy), so demand loads do
//!   not starve behind posted shuffle stores. The pick loop consults an
//!   incrementally maintained per-bank candidate index (`SchedQueue`)
//!   instead of rescanning the window once per bank,
//! * a shared data path capped at the vault's 8 GB/s effective bandwidth, and
//! * the **permutable region** (§5.3): writes marked permutable are appended
//!   at a sequential cursor instead of their nominal address, activating each
//!   row exactly once; arrival order is logged so the engine can commit the
//!   resulting permutation functionally.

use std::collections::VecDeque;

use mondrian_sim::{EventQueue, Stats, Time};

use crate::config::VaultConfig;

/// How a request accesses memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read of `bytes` at `addr`.
    Read,
    /// An ordinary write.
    Write,
    /// A write whose final location the controller may choose inside the
    /// vault's permutable region (one whole data object per request).
    PermutableWrite,
}

impl AccessKind {
    /// Whether this access writes memory.
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// A memory request as it arrives at a vault controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Caller-chosen tag returned in the completion.
    pub id: u64,
    /// Target physical address. For [`AccessKind::PermutableWrite`] this is
    /// only used to verify the request targets the permutable region; the
    /// controller assigns the final address.
    pub addr: u64,
    /// Payload size in bytes (8–256 for HMC).
    pub bytes: u32,
    /// Access kind.
    pub kind: AccessKind,
}

/// A completed memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCompletion {
    /// The tag from the originating [`DramRequest`].
    pub id: u64,
    /// The address actually accessed (differs from the request address for
    /// permutable writes).
    pub addr: u64,
    /// Access kind.
    pub kind: AccessKind,
    /// Completion time.
    pub finish: Time,
}

/// Error raised when a permutable write would overflow its destination
/// buffer. The paper handles this by raising an exception for the CPU, which
/// re-runs the histogram with a second round of partitioning (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermutableOverflow {
    /// The vault-relative cursor that overflowed.
    pub cursor: u64,
    /// Size of the region in bytes.
    pub region_size: u64,
}

impl std::fmt::Display for PermutableOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "permutable destination buffer overflow (cursor {} of {} bytes)",
            self.cursor, self.region_size
        )
    }
}

impl std::error::Error for PermutableOverflow {}

/// The software-visible configuration of a vault's permutable region,
/// written by the CPU into memory-mapped registers during `shuffle_begin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermutableRegion {
    /// Physical base address of the destination buffer.
    pub base: u64,
    /// Buffer size in bytes.
    pub size: u64,
    /// Data object granularity: every permutable write must carry exactly
    /// one object so inter-request permutation never splits an object (§5.3).
    pub object_bytes: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    ready: Time,
    open_row: Option<u64>,
    last_act: Time,
    last_write_end: Time,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: u64,
    addr: u64,
    bytes: u32,
    kind: AccessKind,
    bank: u32,
    row: u64,
}

/// One priority class of the FR-FCFS scheduler: the pending requests in
/// arrival order plus an incrementally maintained **ready-candidate
/// index** — per bank, the `(seq, row)` pairs of that bank's requests
/// currently inside the scheduling window. A pick consults only the
/// target bank's candidates instead of rescanning the whole window per
/// bank, turning the scheduler's inner loop from O(banks × window) per
/// issue round into O(window) total.
#[derive(Debug)]
struct SchedQueue {
    /// Requests in arrival order, tagged with a monotone arrival seq.
    queue: VecDeque<(u64, Pending)>,
    /// Scheduling-window width (only the oldest `window` requests are
    /// eligible for reordering).
    window: usize,
    /// Per bank: this bank's in-window requests as `(seq, row)`, in
    /// arrival order.
    by_bank: Vec<VecDeque<(u64, u64)>>,
    next_seq: u64,
}

impl SchedQueue {
    fn new(window: usize, banks: u32) -> Self {
        Self {
            queue: VecDeque::new(),
            window: window.max(1),
            by_bank: vec![VecDeque::new(); banks as usize],
            next_seq: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn push(&mut self, p: Pending) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // The new request enters the window iff the queue is shorter than
        // the window; it is the youngest, so push_back keeps the bank's
        // candidate list in arrival order.
        if self.queue.len() < self.window {
            self.by_bank[p.bank as usize].push_back((seq, p.row));
        }
        self.queue.push_back((seq, p));
    }

    /// FR-FCFS within the window for `bank`: the oldest open-row hit,
    /// else the oldest request for the bank. Returns the arrival seq.
    fn pick(&self, bank: u32, open: Option<u64>) -> Option<u64> {
        let cands = &self.by_bank[bank as usize];
        if let Some(open) = open {
            if let Some(&(seq, _)) = cands.iter().find(|&&(_, row)| row == open) {
                return Some(seq);
            }
        }
        cands.front().map(|&(seq, _)| seq)
    }

    /// Removes the picked request, sliding the next queued request into
    /// the window (and into its bank's candidate list).
    fn remove(&mut self, seq: u64) -> Pending {
        let idx = self.queue.binary_search_by_key(&seq, |&(s, _)| s).expect("picked seq is queued");
        let (_, p) = self.queue.remove(idx).expect("index in range");
        let cands = &mut self.by_bank[p.bank as usize];
        let pos = cands.iter().position(|&(s, _)| s == seq).expect("picked from the window");
        cands.remove(pos);
        if self.queue.len() >= self.window {
            let &(s, ref slid) = &self.queue[self.window - 1];
            self.by_bank[slid.bank as usize].push_back((s, slid.row));
        }
        p
    }

    /// Whether `bank` has an in-window candidate.
    fn bank_has_candidate(&self, bank: usize) -> bool {
        !self.by_bank[bank].is_empty()
    }
}

/// Lower bounds of the power-of-two occupancy buckets behind
/// [`VaultStats::queue_depth`]: a request arriving when its scheduler
/// queue holds `d` requests lands in the last bucket with bound `<= d`.
pub const QUEUE_DEPTH_BUCKETS: [u64; 8] = [0, 1, 2, 4, 8, 16, 32, 64];

/// Aggregated event counters for one vault.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VaultStats {
    /// Requests that hit an open row buffer.
    pub row_hits: u64,
    /// Requests that found their bank idle (activation, no precharge).
    pub row_misses: u64,
    /// Requests that had to close another row first.
    pub row_conflicts: u64,
    /// Total row activations (`row_misses + row_conflicts`).
    pub activations: u64,
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
    /// Read requests served.
    pub read_reqs: u64,
    /// Write requests served (including permutable).
    pub write_reqs: u64,
    /// Permutable writes served.
    pub perm_writes: u64,
    /// Data-path occupancy in picoseconds.
    pub busy_time: Time,
    /// Histogram of scheduler-queue occupancy observed at request
    /// arrival, bucketed by [`QUEUE_DEPTH_BUCKETS`].
    pub queue_depth: [u64; QUEUE_DEPTH_BUCKETS.len()],
}

impl VaultStats {
    /// Records one arrival that found `depth` requests already queued.
    pub fn record_queue_depth(&mut self, depth: usize) {
        let slot = QUEUE_DEPTH_BUCKETS
            .iter()
            .rposition(|&lo| lo <= depth as u64)
            .expect("bucket 0 covers every depth");
        self.queue_depth[slot] += 1;
    }

    /// Exports counters into a [`Stats`] registry under `prefix`.
    pub fn export(&self, stats: &mut Stats, prefix: &str) {
        stats.add_count(&format!("{prefix}.row_hits"), self.row_hits);
        stats.add_count(&format!("{prefix}.row_misses"), self.row_misses);
        stats.add_count(&format!("{prefix}.row_conflicts"), self.row_conflicts);
        stats.add_count(&format!("{prefix}.activations"), self.activations);
        stats.add_count(&format!("{prefix}.read_bytes"), self.read_bytes);
        stats.add_count(&format!("{prefix}.write_bytes"), self.write_bytes);
        stats.add_count(&format!("{prefix}.read_reqs"), self.read_reqs);
        stats.add_count(&format!("{prefix}.write_reqs"), self.write_reqs);
        stats.add_count(&format!("{prefix}.perm_writes"), self.perm_writes);
        stats.add_count(&format!("{prefix}.busy_ps"), self.busy_time);
        for (lo, &n) in QUEUE_DEPTH_BUCKETS.iter().zip(self.queue_depth.iter()) {
            stats.add_count(&format!("{prefix}.queue_depth.b{lo}"), n);
        }
    }
}

/// One vault's memory controller.
///
/// # Example
///
/// ```
/// use mondrian_mem::{AccessKind, DramRequest, VaultConfig, VaultController};
///
/// let mut cfg = VaultConfig::hmc();
/// cfg.capacity = 1 << 20;
/// let mut vault = VaultController::new(cfg, 0);
/// vault.enqueue(DramRequest { id: 7, addr: 64, bytes: 64, kind: AccessKind::Read }, 0).unwrap();
/// let done = mondrian_mem::drain(&mut vault);
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].id, 7);
/// ```
#[derive(Debug)]
pub struct VaultController {
    cfg: VaultConfig,
    base: u64,
    banks: Vec<Bank>,
    /// Pending reads (priority class).
    reads: SchedQueue,
    /// Posted writes, drained when no read can issue.
    writes: SchedQueue,
    bus_free: Time,
    completions: EventQueue<DramCompletion>,
    stats: VaultStats,
    perm: Option<PermutableRegion>,
    perm_cursor: u64,
    arrival_log: Vec<u64>,
}

impl VaultController {
    /// Creates a controller for the vault whose partition starts at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent (see [`VaultConfig::validate`]).
    pub fn new(cfg: VaultConfig, base: u64) -> Self {
        cfg.validate();
        Self {
            banks: vec![Bank::default(); cfg.banks as usize],
            reads: SchedQueue::new(cfg.sched_window, cfg.banks),
            writes: SchedQueue::new(cfg.sched_window, cfg.banks),
            cfg,
            base,
            bus_free: 0,
            completions: EventQueue::new(),
            stats: VaultStats::default(),
            perm: None,
            perm_cursor: 0,
            arrival_log: Vec::new(),
        }
    }

    /// The vault's configuration.
    pub fn config(&self) -> &VaultConfig {
        &self.cfg
    }

    /// The base physical address of this vault's partition.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Installs the permutable destination region for an upcoming shuffle
    /// (`shuffle_begin`). Resets the append cursor and the arrival log.
    ///
    /// # Panics
    ///
    /// Panics if the region is outside the vault or the object size does not
    /// divide the row size (objects may never straddle a row: §5.3 limits
    /// objects to 256 B precisely so the controller can permute whole
    /// objects).
    pub fn set_permutable_region(&mut self, region: PermutableRegion) {
        assert!(region.base >= self.base, "region below vault base");
        assert!(
            region.base + region.size <= self.base + self.cfg.capacity,
            "region beyond vault capacity"
        );
        assert!(region.object_bytes > 0 && region.object_bytes <= self.cfg.max_access_bytes);
        assert_eq!(
            self.cfg.row_bytes % region.object_bytes,
            0,
            "object size must divide the row size so objects never straddle rows"
        );
        assert_eq!(
            (region.base - self.base) % self.cfg.row_bytes as u64,
            0,
            "permutable region must be row-aligned"
        );
        self.perm = Some(region);
        self.perm_cursor = 0;
        self.arrival_log.clear();
    }

    /// Disables permutable handling (`shuffle_end`).
    pub fn clear_permutable_region(&mut self) {
        self.perm = None;
    }

    /// Bytes appended to the permutable region so far in this shuffle.
    pub fn permutable_bytes_written(&self) -> u64 {
        self.perm_cursor
    }

    /// The arrival-order log of permutable write tags, used by the engine to
    /// commit the physical permutation to the functional data.
    pub fn arrival_log(&self) -> &[u64] {
        &self.arrival_log
    }

    /// Accepts a request at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`PermutableOverflow`] if a permutable write does not fit in
    /// the destination region (the paper's exception path).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the vault, the payload exceeds the
    /// protocol maximum, or an ordinary access crosses a row boundary.
    pub fn enqueue(&mut self, req: DramRequest, now: Time) -> Result<(), PermutableOverflow> {
        assert!(req.bytes > 0 && req.bytes <= self.cfg.max_access_bytes);
        let addr = match req.kind {
            AccessKind::PermutableWrite => {
                let region = self.perm.expect("permutable write arrived with no region configured");
                assert_eq!(
                    req.bytes, region.object_bytes,
                    "permutable writes must carry exactly one object"
                );
                if self.perm_cursor + req.bytes as u64 > region.size {
                    return Err(PermutableOverflow {
                        cursor: self.perm_cursor,
                        region_size: region.size,
                    });
                }
                let addr = region.base + self.perm_cursor;
                self.perm_cursor += req.bytes as u64;
                self.arrival_log.push(req.id);
                self.stats.perm_writes += 1;
                addr
            }
            _ => req.addr,
        };
        assert!(
            addr >= self.base && addr + req.bytes as u64 <= self.base + self.cfg.capacity,
            "address {addr:#x} outside vault [{:#x}, {:#x})",
            self.base,
            self.base + self.cfg.capacity
        );
        let offset = addr - self.base;
        let row_index = offset / self.cfg.row_bytes as u64;
        assert_eq!(
            row_index,
            (offset + req.bytes as u64 - 1) / self.cfg.row_bytes as u64,
            "access crosses a row boundary"
        );
        let pending = Pending {
            id: req.id,
            addr,
            bytes: req.bytes,
            kind: req.kind,
            bank: crate::addr::bank_of(row_index, self.cfg.banks),
            row: row_index / self.cfg.banks as u64,
        };
        if req.kind.is_write() {
            self.stats.record_queue_depth(self.writes.len());
            self.writes.push(pending);
        } else {
            self.stats.record_queue_depth(self.reads.len());
            self.reads.push(pending);
        }
        self.try_issue(now);
        Ok(())
    }

    fn try_issue(&mut self, now: Time) {
        loop {
            let mut issued = false;
            for b in 0..self.cfg.banks {
                if self.banks[b as usize].ready > now {
                    continue;
                }
                let open = self.banks[b as usize].open_row;
                // Reads first; posted writes drain in the gaps.
                if let Some(seq) = self.reads.pick(b, open) {
                    let p = self.reads.remove(seq);
                    self.issue(p, now);
                    issued = true;
                    continue;
                }
                if let Some(seq) = self.writes.pick(b, open) {
                    let p = self.writes.remove(seq);
                    self.issue(p, now);
                    issued = true;
                }
            }
            if !issued {
                break;
            }
        }
    }

    fn issue(&mut self, p: Pending, now: Time) {
        let t = self.cfg.timing;
        let bank = &mut self.banks[p.bank as usize];
        let start = now.max(bank.ready);
        let cas_at = match bank.open_row {
            Some(r) if r == p.row => {
                self.stats.row_hits += 1;
                start
            }
            None => {
                self.stats.row_misses += 1;
                self.stats.activations += 1;
                bank.last_act = start;
                bank.open_row = Some(p.row);
                start + t.t_rcd
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.stats.activations += 1;
                let pre_at = start.max(bank.last_act + t.t_ras).max(bank.last_write_end + t.t_wr);
                let act_at = pre_at + t.t_rp;
                bank.last_act = act_at;
                bank.open_row = Some(p.row);
                act_at + t.t_rcd
            }
        };
        let transfer = self.cfg.transfer_time(p.bytes);
        let data_start = (cas_at + t.t_cas).max(self.bus_free);
        let data_end = data_start + transfer;
        self.bus_free = data_end;
        bank.ready = data_end;
        if p.kind.is_write() {
            bank.last_write_end = data_end;
            self.stats.write_bytes += p.bytes as u64;
            self.stats.write_reqs += 1;
        } else {
            self.stats.read_bytes += p.bytes as u64;
            self.stats.read_reqs += 1;
        }
        self.stats.busy_time += transfer;
        let finish = data_end + self.cfg.ctrl_overhead;
        self.completions
            .schedule(finish, DramCompletion { id: p.id, addr: p.addr, kind: p.kind, finish });
    }

    /// Advances the controller to `now` and returns completions due by then.
    pub fn poll(&mut self, now: Time) -> Vec<DramCompletion> {
        let mut done = Vec::new();
        self.poll_into(now, &mut done);
        done
    }

    /// [`Self::poll`] into a caller-owned buffer (cleared first), so hot
    /// event loops reuse one allocation per vault instead of building a
    /// fresh `Vec` on every tick.
    pub fn poll_into(&mut self, now: Time, done: &mut Vec<DramCompletion>) {
        done.clear();
        self.try_issue(now);
        while self.completions.peek_time().is_some_and(|t| t <= now) {
            done.push(self.completions.pop().expect("peeked").1);
        }
    }

    /// The next time the controller needs attention (a completion fires or a
    /// bank frees up with work pending), or `None` when fully idle.
    pub fn next_event_time(&self) -> Option<Time> {
        let mut next = self.completions.peek_time();
        // Work is pending: the earliest a stalled request can issue is when
        // the bank of some request inside the scheduling window frees up.
        // The candidate index names exactly those banks.
        for queue in [&self.reads, &self.writes] {
            for (b, bank) in self.banks.iter().enumerate() {
                if queue.bank_has_candidate(b) {
                    next = Some(next.map_or(bank.ready, |n| n.min(bank.ready)));
                }
            }
        }
        next
    }

    /// Whether requests are queued or in flight.
    pub fn busy(&self) -> bool {
        !self.reads.is_empty() || !self.writes.is_empty() || !self.completions.is_empty()
    }

    /// Event counters.
    pub fn stats(&self) -> &VaultStats {
        &self.stats
    }

    /// Resets event counters (not bank state).
    pub fn reset_stats(&mut self) {
        self.stats = VaultStats::default();
    }
}

/// Test/bench helper: runs `vault` until idle, returning all completions in
/// completion order.
pub fn drain(vault: &mut VaultController) -> Vec<DramCompletion> {
    let mut out = Vec::new();
    let mut now = 0;
    while let Some(t) = vault.next_event_time() {
        now = now.max(t);
        out.extend(vault.poll(now));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mondrian_sim::PS_PER_NS;

    fn small_vault() -> VaultController {
        let mut cfg = VaultConfig::hmc();
        cfg.capacity = 1 << 20; // 1 MB is plenty for tests
        VaultController::new(cfg, 0)
    }

    fn read(id: u64, addr: u64, bytes: u32) -> DramRequest {
        DramRequest { id, addr, bytes, kind: AccessKind::Read }
    }

    fn write(id: u64, addr: u64, bytes: u32) -> DramRequest {
        DramRequest { id, addr, bytes, kind: AccessKind::Write }
    }

    #[test]
    fn single_read_latency_is_act_cas_transfer() {
        let mut v = small_vault();
        v.enqueue(read(1, 0, 64), 0).unwrap();
        let done = drain(&mut v);
        let t = DramTimingView::from(&v);
        // Idle bank: ACT (tRCD) + CAS (tCAS) + transfer + controller overhead.
        let expect = t.t_rcd + t.t_cas + v.config().transfer_time(64) + v.config().ctrl_overhead;
        assert_eq!(done[0].finish, expect);
        assert_eq!(v.stats().activations, 1);
        assert_eq!(v.stats().row_misses, 1);
    }

    /// Convenience view of the timing for assertions.
    struct DramTimingView {
        t_rcd: Time,
        t_cas: Time,
    }
    impl From<&VaultController> for DramTimingView {
        fn from(v: &VaultController) -> Self {
            let t = v.config().timing;
            Self { t_rcd: t.t_rcd, t_cas: t.t_cas }
        }
    }

    #[test]
    fn sequential_reads_activate_each_row_once() {
        let mut v = small_vault();
        // Two full rows of 16 B accesses, in order.
        for i in 0..32u64 {
            v.enqueue(read(i, i * 16, 16), 0).unwrap();
        }
        let done = drain(&mut v);
        assert_eq!(done.len(), 32);
        assert_eq!(v.stats().activations, 2, "one activation per 256 B row");
        assert_eq!(v.stats().row_hits, 30);
    }

    #[test]
    fn random_row_reads_activate_per_access() {
        let mut v = small_vault();
        // Every access targets a distinct row: one activation each, no
        // row-buffer hits (banks spread under the XOR interleave).
        for i in 0..16u64 {
            v.enqueue(read(i, i * 2048, 16), 0).unwrap();
        }
        drain(&mut v);
        assert_eq!(v.stats().activations, 16);
        assert_eq!(v.stats().row_hits, 0);
    }

    #[test]
    fn frfcfs_prefers_open_row() {
        let mut v = small_vault();
        // First request opens row 0 (bank 0). Then a conflict request on
        // the same bank (row index 9 maps to bank 0 under the XOR hash:
        // addr 9 * 256 = 2304) followed by a row-hit request (row 0,
        // addr 64). FR-FCFS should serve the hit before the conflict even
        // though it arrived later.
        v.enqueue(read(0, 0, 16), 0).unwrap();
        v.enqueue(read(1, 2304, 16), 0).unwrap();
        v.enqueue(read(2, 64, 16), 0).unwrap();
        let done = drain(&mut v);
        let order: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(order, [0, 2, 1]);
        assert_eq!(v.stats().row_hits, 1);
    }

    #[test]
    fn fifo_when_window_is_one() {
        let mut cfg = VaultConfig::hmc();
        cfg.capacity = 1 << 20;
        cfg.sched_window = 1;
        let mut v = VaultController::new(cfg, 0);
        v.enqueue(read(0, 0, 16), 0).unwrap();
        v.enqueue(read(1, 2304, 16), 0).unwrap();
        v.enqueue(read(2, 64, 16), 0).unwrap();
        let done = drain(&mut v);
        let order: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(order, [0, 1, 2], "window of 1 cannot reorder");
        assert_eq!(v.stats().row_conflicts, 2);
    }

    #[test]
    fn window_gates_row_hit_reordering() {
        // Bank 0, rows 0 / 1 / 2, plus a late row-0 hit (addr 64). The
        // candidate index must reproduce the window semantics exactly:
        // the hit jumps the conflicts only once it slides into the window.
        let order = |window: usize| {
            let mut cfg = VaultConfig::hmc();
            cfg.capacity = 1 << 20;
            cfg.sched_window = window;
            let mut v = VaultController::new(cfg, 0);
            for r in [read(0, 0, 16), read(1, 2304, 16), read(2, 4608, 16), read(3, 64, 16)] {
                v.enqueue(r, 0).unwrap();
            }
            drain(&mut v).iter().map(|c| c.id).collect::<Vec<u64>>()
        };
        // A wide window lets the late row-0 hit overtake both conflicts.
        assert_eq!(order(16), [0, 3, 1, 2]);
        // A 2-deep window keeps it out of reach until the conflicts issue:
        // pure FIFO despite the open-row match.
        assert_eq!(order(2), [0, 1, 2, 3]);
    }

    #[test]
    fn bus_caps_bandwidth() {
        let mut v = small_vault();
        // Saturate with sequential 64 B reads across all banks.
        let n = 512u64;
        for i in 0..n {
            v.enqueue(read(i, i * 64, 64), 0).unwrap();
        }
        let done = drain(&mut v);
        let makespan = done.iter().map(|c| c.finish).max().unwrap();
        let bytes = n * 64;
        let gbps = bytes as f64 / (makespan as f64 / PS_PER_NS as f64);
        assert!(gbps <= 8.0 + 1e-9, "effective bandwidth {gbps} exceeds peak");
        assert!(gbps > 7.0, "sequential stream should near peak, got {gbps}");
    }

    #[test]
    fn permutable_writes_are_sequential_and_logged() {
        let mut v = small_vault();
        v.set_permutable_region(PermutableRegion { base: 4096, size: 1024, object_bytes: 16 });
        // Interleaved "arrivals" from two sources (ids 100.. and 200..),
        // mimicking Fig. 2's message interleaving.
        for i in 0..32u64 {
            let id = if i % 2 == 0 { 100 + i } else { 200 + i };
            v.enqueue(
                DramRequest { id, addr: 4096, bytes: 16, kind: AccessKind::PermutableWrite },
                0,
            )
            .unwrap();
        }
        let done = drain(&mut v);
        // Writes landed back-to-back: 2 rows touched → 2 activations.
        assert_eq!(v.stats().activations, 2);
        let mut addrs: Vec<u64> = done.iter().map(|c| c.addr).collect();
        addrs.sort_unstable();
        let expect: Vec<u64> = (0..32).map(|i| 4096 + i * 16).collect();
        assert_eq!(addrs, expect);
        assert_eq!(v.arrival_log().len(), 32);
        assert_eq!(v.permutable_bytes_written(), 512);
    }

    #[test]
    fn permutable_overflow_raises() {
        let mut v = small_vault();
        v.set_permutable_region(PermutableRegion { base: 0, size: 32, object_bytes: 16 });
        let req = DramRequest { id: 0, addr: 0, bytes: 16, kind: AccessKind::PermutableWrite };
        assert!(v.enqueue(req, 0).is_ok());
        assert!(v.enqueue(req, 0).is_ok());
        let err = v.enqueue(req, 0).unwrap_err();
        assert_eq!(err.cursor, 32);
        assert_eq!(err.region_size, 32);
    }

    #[test]
    #[should_panic(expected = "crosses a row boundary")]
    fn row_straddling_access_panics() {
        let mut v = small_vault();
        v.enqueue(read(0, 250, 16), 0).unwrap();
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut v = small_vault();
        // Two writes on the same bank, different rows (row 9 maps to bank 0
        // under the XOR interleave), so the second write's precharge must
        // respect tWR after the first write's data.
        v.enqueue(write(0, 0, 16), 0).unwrap();
        v.enqueue(write(1, 2304, 16), 0).unwrap();
        let done = drain(&mut v);
        let t = v.config().timing;
        let w_end = t.t_rcd + t.t_cas + v.config().transfer_time(16);
        let pre_at = (w_end + t.t_wr).max(t.t_ras);
        let expect = pre_at
            + t.t_rp
            + t.t_rcd
            + t.t_cas
            + v.config().transfer_time(16)
            + v.config().ctrl_overhead;
        assert_eq!(done[1].finish, expect);
    }

    #[test]
    fn reads_bypass_posted_write_backlog() {
        let mut v = small_vault();
        // A deep backlog of writes followed by one read: the read must not
        // wait for the whole drain.
        for i in 0..256u64 {
            v.enqueue(write(i, (i % 64) * 2048, 16), 0).unwrap();
        }
        v.enqueue(read(1000, 4096, 16), 0).unwrap();
        let done = drain(&mut v);
        let read_fin = done.iter().find(|c| c.id == 1000).unwrap().finish;
        let last = done.iter().map(|c| c.finish).max().unwrap();
        assert!(read_fin < last / 4, "read served at {read_fin}, drain ends {last}: no priority");
    }

    #[test]
    fn next_event_time_tracks_pending_work() {
        let mut v = small_vault();
        assert_eq!(v.next_event_time(), None);
        v.enqueue(read(0, 0, 64), 0).unwrap();
        assert!(v.next_event_time().is_some());
        let done = drain(&mut v);
        assert_eq!(done.len(), 1);
        assert_eq!(v.next_event_time(), None);
        assert!(!v.busy());
    }

    #[test]
    fn stats_export_prefixes() {
        let mut v = small_vault();
        v.enqueue(read(0, 0, 64), 0).unwrap();
        drain(&mut v);
        let mut s = Stats::new();
        v.stats().export(&mut s, "vault.0");
        assert_eq!(s.count("vault.0.activations"), 1);
        assert_eq!(s.count("vault.0.read_bytes"), 64);
        assert_eq!(s.count("vault.0.read_reqs"), 1);
        assert_eq!(s.count("vault.0.queue_depth.b0"), 1);
    }

    #[test]
    fn queue_depth_histogram_buckets_arrival_occupancy() {
        let mut stats = VaultStats::default();
        for depth in [0usize, 1, 2, 3, 4, 7, 8, 63, 64, 1000] {
            stats.record_queue_depth(depth);
        }
        // 0 -> b0; 1 -> b1; 2,3 -> b2; 4,7 -> b4; 8 -> b8; 63 -> b32;
        // 64,1000 -> b64.
        assert_eq!(stats.queue_depth, [1, 1, 2, 2, 1, 0, 1, 2]);

        // Arrival depth is the target queue's occupancy *before* push:
        // burst-enqueue reads while the bus is busy and the buckets climb.
        let mut v = small_vault();
        for i in 0..4 {
            v.enqueue(read(i, i * 64, 64), 0).unwrap();
        }
        let h = v.stats().queue_depth;
        assert_eq!(h.iter().sum::<u64>(), 4, "every arrival is recorded once");
        assert!(h[0] >= 1, "the first arrival sees an empty queue");
    }
}
