//! DRAM device geometry and timing configuration.
//!
//! Defaults follow Table 3 of the paper: HMC-style stacked DRAM with 256 B
//! row buffers, tCK = 1.6 ns, tRAS = 22.4 ns, tRCD = 11.2 ns, tCAS = 11.2 ns,
//! tWR = 14.4 ns, tRP = 11.2 ns, and an effective peak bandwidth of 8 GB/s
//! per vault. Presets for HBM (2 KB rows) and Wide I/O 2 (4 KB rows) support
//! the row-buffer-size ablation from §3.1.

use mondrian_sim::{Time, PS_PER_NS};

/// DRAM command timing parameters, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// DRAM command clock period.
    pub t_ck: Time,
    /// Minimum time a row must stay open after activation (ACT → PRE).
    pub t_ras: Time,
    /// Activate to column command delay (ACT → RD/WR).
    pub t_rcd: Time,
    /// Column access strobe latency (RD → first data).
    pub t_cas: Time,
    /// Write recovery time (end of write data → PRE).
    pub t_wr: Time,
    /// Precharge latency (PRE → ACT).
    pub t_rp: Time,
}

impl DramTiming {
    /// Timing from Table 3 of the paper (shared by all evaluated systems).
    pub fn table3() -> Self {
        Self {
            t_ck: (1.6 * PS_PER_NS as f64) as Time,
            t_ras: (22.4 * PS_PER_NS as f64) as Time,
            t_rcd: (11.2 * PS_PER_NS as f64) as Time,
            t_cas: (11.2 * PS_PER_NS as f64) as Time,
            t_wr: (14.4 * PS_PER_NS as f64) as Time,
            t_rp: (11.2 * PS_PER_NS as f64) as Time,
        }
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::table3()
    }
}

/// Stacked-DRAM device family, used by the row-buffer ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DevicePreset {
    /// Micron Hybrid Memory Cube: 256 B rows, the paper's default.
    Hmc,
    /// High Bandwidth Memory: 2 KB rows.
    Hbm,
    /// JEDEC Wide I/O 2: 4 KB rows.
    WideIo2,
    /// Conventional planar DDR3: 8 KB effective row (8 × 1 KB devices).
    Ddr3,
}

impl DevicePreset {
    /// Row-buffer size in bytes for this device family.
    pub fn row_bytes(self) -> u32 {
        match self {
            DevicePreset::Hmc => 256,
            DevicePreset::Hbm => 2048,
            DevicePreset::WideIo2 => 4096,
            DevicePreset::Ddr3 => 8192,
        }
    }
}

/// Full configuration of one memory vault (partition).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VaultConfig {
    /// Command timing.
    pub timing: DramTiming,
    /// Row-buffer size in bytes (256 for HMC).
    pub row_bytes: u32,
    /// Number of banks a vault can keep open concurrently.
    pub banks: u32,
    /// Vault capacity in bytes (power of two).
    pub capacity: u64,
    /// Peak effective data bandwidth of the vault in bytes per nanosecond
    /// (8.0 for the paper's 8 GB/s HMC vault).
    pub peak_bytes_per_ns: f64,
    /// Fixed controller pipeline overhead applied to every request.
    pub ctrl_overhead: Time,
    /// FR-FCFS scheduling window: how many queued requests the controller
    /// may inspect when choosing the next command. The paper (§4.1.2) notes
    /// this window is far too short to recover row locality during shuffles.
    pub sched_window: usize,
    /// Maximum request payload in bytes (HMC protocol allows 8–256 B).
    pub max_access_bytes: u32,
}

impl VaultConfig {
    /// The paper's HMC vault: 256 B rows, 8 banks, 8 GB/s, 16-entry window.
    pub fn hmc() -> Self {
        Self {
            timing: DramTiming::table3(),
            row_bytes: DevicePreset::Hmc.row_bytes(),
            banks: 8,
            capacity: 512 << 20,
            peak_bytes_per_ns: 8.0,
            ctrl_overhead: (1.6 * PS_PER_NS as f64) as Time,
            sched_window: 16,
            max_access_bytes: 256,
        }
    }

    /// A preset variant with a different row-buffer size (ablation §3.1).
    pub fn with_preset(preset: DevicePreset) -> Self {
        Self { row_bytes: preset.row_bytes(), ..Self::hmc() }
    }

    /// Transfer time for `bytes` of payload on the vault data path.
    pub fn transfer_time(&self, bytes: u32) -> Time {
        let ps_per_byte = PS_PER_NS as f64 / self.peak_bytes_per_ns;
        (bytes as f64 * ps_per_byte).round() as Time
    }

    /// Number of rows in the vault.
    pub fn rows(&self) -> u64 {
        self.capacity / self.row_bytes as u64
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero banks, capacity not
    /// a multiple of the row size, etc.). Called by the vault constructor.
    pub fn validate(&self) {
        assert!(self.banks > 0, "vault must have at least one bank");
        assert!(self.row_bytes > 0, "row size must be non-zero");
        assert!(
            self.capacity.is_multiple_of(self.row_bytes as u64),
            "capacity must be a whole number of rows"
        );
        assert!(self.peak_bytes_per_ns > 0.0, "bandwidth must be positive");
        assert!(self.sched_window >= 1, "scheduling window must be >= 1");
        assert!(self.max_access_bytes >= 8, "HMC minimum access is 8 B");
    }
}

impl Default for VaultConfig {
    fn default() -> Self {
        Self::hmc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let t = DramTiming::table3();
        assert_eq!(t.t_ck, 1_600);
        assert_eq!(t.t_ras, 22_400);
        assert_eq!(t.t_rcd, 11_200);
        assert_eq!(t.t_cas, 11_200);
        assert_eq!(t.t_wr, 14_400);
        assert_eq!(t.t_rp, 11_200);
    }

    #[test]
    fn row_sizes_match_paper() {
        assert_eq!(DevicePreset::Hmc.row_bytes(), 256);
        assert_eq!(DevicePreset::Hbm.row_bytes(), 2048);
        assert_eq!(DevicePreset::WideIo2.row_bytes(), 4096);
        // DDR3: 8 × 1 KB (§3.1: "8×1KB").
        assert_eq!(DevicePreset::Ddr3.row_bytes(), 8192);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        let cfg = VaultConfig::hmc();
        // 8 GB/s = 8 B/ns → 16 B tuple = 2 ns.
        assert_eq!(cfg.transfer_time(16), 2_000);
        assert_eq!(cfg.transfer_time(64), 8_000);
        assert_eq!(cfg.transfer_time(256), 32_000);
    }

    #[test]
    fn hmc_config_is_valid() {
        VaultConfig::hmc().validate();
        VaultConfig::with_preset(DevicePreset::Hbm).validate();
    }

    #[test]
    fn rows_count() {
        let mut cfg = VaultConfig::hmc();
        cfg.capacity = 1 << 20;
        assert_eq!(cfg.rows(), (1 << 20) / 256);
    }
}
