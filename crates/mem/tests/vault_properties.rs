//! Property-based tests for the vault DRAM model.

use proptest::prelude::*;

use mondrian_mem::{
    drain, AccessKind, DramRequest, PermutableRegion, VaultConfig, VaultController,
};

fn vault_with(window: usize) -> VaultController {
    let mut cfg = VaultConfig::hmc();
    cfg.capacity = 1 << 20;
    cfg.sched_window = window;
    VaultController::new(cfg, 0)
}

/// Strategy: a row-aligned 16 B access somewhere in the first 256 rows.
fn small_access() -> impl Strategy<Value = (u64, bool)> {
    (0u64..4096, any::<bool>()).prop_map(|(slot, is_write)| (slot * 16, is_write))
}

proptest! {
    /// Every request completes exactly once, with a finish time no earlier
    /// than the cheapest possible service (CAS + transfer).
    #[test]
    fn all_requests_complete(accesses in prop::collection::vec(small_access(), 1..200)) {
        let mut v = vault_with(16);
        for (i, &(addr, w)) in accesses.iter().enumerate() {
            let kind = if w { AccessKind::Write } else { AccessKind::Read };
            v.enqueue(DramRequest { id: i as u64, addr, bytes: 16, kind }, 0).unwrap();
        }
        let done = drain(&mut v);
        prop_assert_eq!(done.len(), accesses.len());
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        let expect: Vec<u64> = (0..accesses.len() as u64).collect();
        prop_assert_eq!(ids, expect);
        let t = v.config().timing;
        let min_service = t.t_cas + v.config().transfer_time(16);
        for c in &done {
            prop_assert!(c.finish >= min_service);
        }
    }

    /// With a window of 1 the controller is FIFO, so the activation count
    /// must exactly match a reference replay of the per-bank row sequence.
    #[test]
    fn fifo_activations_match_reference(accesses in prop::collection::vec(small_access(), 1..300)) {
        let mut v = vault_with(1);
        let cfg = *v.config();
        for (i, &(addr, _)) in accesses.iter().enumerate() {
            v.enqueue(DramRequest { id: i as u64, addr, bytes: 16, kind: AccessKind::Read }, 0)
                .unwrap();
        }
        drain(&mut v);

        // Reference: banks open rows; count transitions.
        let mut open: Vec<Option<u64>> = vec![None; cfg.banks as usize];
        let mut acts = 0u64;
        for &(addr, _) in &accesses {
            let row_index = addr / cfg.row_bytes as u64;
            let bank = mondrian_mem::bank_of(row_index, cfg.banks) as usize;
            let row = row_index / cfg.banks as u64;
            if open[bank] != Some(row) {
                acts += 1;
                open[bank] = Some(row);
            }
        }
        prop_assert_eq!(v.stats().activations, acts);
    }

    /// FR-FCFS reordering never *increases* activations relative to FIFO for
    /// the same request multiset.
    #[test]
    fn frfcfs_no_worse_than_fifo(accesses in prop::collection::vec(small_access(), 1..200)) {
        let run = |window: usize| {
            let mut v = vault_with(window);
            for (i, &(addr, _)) in accesses.iter().enumerate() {
                v.enqueue(
                    DramRequest { id: i as u64, addr, bytes: 16, kind: AccessKind::Read },
                    0,
                )
                .unwrap();
            }
            drain(&mut v);
            v.stats().activations
        };
        prop_assert!(run(16) <= run(1));
    }

    /// The shared data path never exceeds the configured peak bandwidth.
    #[test]
    fn bandwidth_is_capped(accesses in prop::collection::vec(small_access(), 10..200)) {
        let mut v = vault_with(16);
        for (i, &(addr, _)) in accesses.iter().enumerate() {
            v.enqueue(DramRequest { id: i as u64, addr, bytes: 16, kind: AccessKind::Read }, 0)
                .unwrap();
        }
        let done = drain(&mut v);
        let makespan = done.iter().map(|c| c.finish).max().unwrap();
        let bytes = (accesses.len() * 16) as f64;
        let ns = makespan as f64 / 1000.0;
        prop_assert!(bytes / ns <= v.config().peak_bytes_per_ns + 1e-9);
    }

    /// Permutable writes land at consecutive object slots regardless of the
    /// arrival interleaving, and the arrival log is a permutation of the ids.
    #[test]
    fn permutable_is_dense_permutation(n in 1usize..64) {
        let mut v = vault_with(16);
        v.set_permutable_region(PermutableRegion { base: 0, size: 4096, object_bytes: 16 });
        for i in 0..n {
            v.enqueue(
                DramRequest {
                    id: 1000 + i as u64,
                    addr: 0,
                    bytes: 16,
                    kind: AccessKind::PermutableWrite,
                },
                (i as u64) * 100,
            )
            .unwrap();
        }
        let done = drain(&mut v);
        let mut addrs: Vec<u64> = done.iter().map(|c| c.addr).collect();
        addrs.sort_unstable();
        let expect: Vec<u64> = (0..n as u64).map(|i| i * 16).collect();
        prop_assert_eq!(addrs, expect);
        let mut log: Vec<u64> = v.arrival_log().to_vec();
        log.sort_unstable();
        let ids: Vec<u64> = (0..n as u64).map(|i| 1000 + i).collect();
        prop_assert_eq!(log, ids);
        // Dense appends activate exactly ceil(n*16/256) rows.
        let rows = (n as u64 * 16).div_ceil(256);
        prop_assert_eq!(v.stats().activations, rows);
    }
}
