use mondrian_mem::{drain, AccessKind, DramRequest, VaultConfig, VaultController};
fn main() {
    let mut cfg = VaultConfig::hmc();
    cfg.capacity = 16 << 20;
    let mut v = VaultController::new(cfg, 0);
    let sources = 64u64;
    let per = 64u64;
    let mut id = 0;
    for i in 0..per {
        for s in 0..sources {
            let addr = s * 65536 + i * 16;
            v.enqueue(DramRequest { id, addr, bytes: 16, kind: AccessKind::Write }, 0).unwrap();
            id += 1;
        }
    }
    let done = drain(&mut v);
    let makespan = done.iter().map(|c| c.finish).max().unwrap();
    let n = done.len() as u64;
    println!(
        "writes={} makespan={}ps  per_write={}ps  activations={} hits={} conflicts={}",
        n,
        makespan,
        makespan / n,
        v.stats().activations,
        v.stats().row_hits,
        v.stats().row_conflicts
    );
}
