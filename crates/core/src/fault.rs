//! Structured aborts and deterministic fault injection.
//!
//! The robustness layer needs two things from the engine core:
//!
//! * **Structured aborts** — when a cooperative limit trips (event budget,
//!   wall-time deadline) or a pool worker panics, the engine unwinds with
//!   an [`Abort`] payload instead of a bare string, so the campaign layer
//!   can map the failure onto a standardized exit reason without parsing
//!   panic messages.
//! * **Deterministic fault points** — test-only trapdoors, compiled in
//!   behind the `fault-inject` feature and armed by a [`FaultPlan`], that
//!   fire at *simulation-deterministic* checkpoints (the Nth non-tick
//!   event, a vault poll, a stage digest) so an injected failure lands at
//!   the same point for every `--jobs` / `--sim-threads` value.
//!
//! Without the `fault-inject` feature every fault point compiles to a
//! no-op; aborts and limits are always live.

use std::any::Any;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why an engine run aborted — the core-side subset of the campaign
/// layer's exit-reason taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The cooperative non-tick event budget was exhausted.
    LimitEvents,
    /// The wall-time deadline passed at a cooperative checkpoint.
    LimitWallTime,
    /// A worker (pool or injected) panicked.
    WorkerPanic,
}

impl AbortReason {
    /// Stable lower-snake name, matching the campaign exit taxonomy.
    pub fn as_str(self) -> &'static str {
        match self {
            AbortReason::LimitEvents => "limit_events",
            AbortReason::LimitWallTime => "limit_wall_time",
            AbortReason::WorkerPanic => "worker_panic",
        }
    }
}

/// The structured panic payload the engine unwinds with at a tripped
/// limit or converted worker panic. Caught by the campaign layer's
/// `catch_unwind` and mapped to a per-run `exit: {reason, detail}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Abort {
    /// What class of failure tripped.
    pub reason: AbortReason,
    /// Human-readable one-liner (deterministic: derived from simulation
    /// state, never from host state).
    pub detail: String,
}

impl Abort {
    /// Unwinds with a structured [`Abort`] payload.
    pub fn throw(reason: AbortReason, detail: impl Into<String>) -> ! {
        panic_any(Abort { reason, detail: detail.into() })
    }
}

/// Best-effort extraction of a caught panic payload: a structured
/// [`Abort`]'s detail, a `&str`/`String` message, or a placeholder.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(abort) = payload.downcast_ref::<Abort>() {
        abort.detail.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// A deterministic fault plan: which run it targets and what to break.
///
/// Parsed from a manifest `[faults]` block or the `MONDRIAN_FAULT`
/// environment variable by the CLI; the engine only evaluates it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Sweep position (manifest order) the plan applies to.
    pub run: usize,
    /// Panic when the run's engine has processed this many non-tick
    /// events (cumulative across phases and stages).
    pub panic_at_event: Option<u64>,
    /// Stall the engine thread for [`FaultPlan::stall_ms`] at this
    /// non-tick event count (models a hang; proves timeouts fire).
    pub stall_at_event: Option<u64>,
    /// Milliseconds each stall lasts.
    pub stall_ms: u64,
    /// XOR a constant into this stage's recorded output digest.
    pub corrupt_digest_stage: Option<usize>,
    /// Panic inside a vault poll (serial or pooled — same message).
    pub panic_in_vault_poll: bool,
    /// How many times the fault fires before disarming (`None` = every
    /// time). `Some(1)` exercises the campaign's bounded retry.
    pub times: Option<u64>,
}

/// A shared, armed fault plan. One handle per faulted run, shared across
/// the run's first attempt and its bounded retry so `times` counts fires
/// across attempts.
#[derive(Debug, Default)]
pub struct FaultHandle {
    /// The plan being evaluated.
    pub plan: FaultPlan,
    fired: AtomicU64,
}

impl PartialEq for FaultHandle {
    fn eq(&self, other: &Self) -> bool {
        self.plan == other.plan
    }
}

impl FaultHandle {
    /// Arms `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, fired: AtomicU64::new(0) }
    }

    /// Consumes one firing charge; `false` once `times` is exhausted.
    pub fn arm(&self) -> bool {
        match self.plan.times {
            None => true,
            Some(t) => self.fired.fetch_add(1, Ordering::SeqCst) < t,
        }
    }
}

/// A fault-point site, identified by deterministic simulation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// The engine's serial event loop, carrying the machine's cumulative
    /// non-tick event count.
    Event(u64),
    /// A vault poll about to run.
    VaultPoll,
}

/// Evaluates `site` against an armed plan: panics or stalls on a match.
/// Compiled to a no-op without the `fault-inject` feature.
#[cfg(feature = "fault-inject")]
pub fn trip(handle: &FaultHandle, site: Site) {
    match site {
        Site::Event(n) => {
            if handle.plan.panic_at_event == Some(n) && handle.arm() {
                panic!("injected panic at event {n}");
            }
            if handle.plan.stall_at_event == Some(n) && handle.arm() {
                std::thread::sleep(std::time::Duration::from_millis(handle.plan.stall_ms));
            }
        }
        Site::VaultPoll => {
            if handle.plan.panic_in_vault_poll && handle.arm() {
                panic!("injected vault-poll fault");
            }
        }
    }
}

/// No-op: the `fault-inject` feature is disabled.
#[cfg(not(feature = "fault-inject"))]
pub fn trip(_handle: &FaultHandle, _site: Site) {}

/// Whether an armed plan injects a panic into the next vault poll. The
/// engine evaluates this once per tick batch — before choosing the
/// serial or pooled path — so the failure (message included) is
/// identical for every `sim_threads` value. Compiled to a constant
/// `false` without the `fault-inject` feature.
#[cfg(feature = "fault-inject")]
pub fn vault_poll_boom(handle: Option<&FaultHandle>) -> bool {
    handle.is_some_and(|h| h.plan.panic_in_vault_poll && h.arm())
}

/// Constant `false`: the `fault-inject` feature is disabled.
#[cfg(not(feature = "fault-inject"))]
pub fn vault_poll_boom(_handle: Option<&FaultHandle>) -> bool {
    false
}

/// The XOR mask to fold into stage `stage`'s recorded output digest —
/// zero unless an armed plan corrupts exactly that stage. Compiled to a
/// constant zero without the `fault-inject` feature.
#[cfg(feature = "fault-inject")]
pub fn digest_xor(handle: Option<&FaultHandle>, stage: usize) -> u64 {
    match handle {
        Some(h) if h.plan.corrupt_digest_stage == Some(stage) && h.arm() => 0xdead_beef_dead_beef,
        _ => 0,
    }
}

/// Constant zero: the `fault-inject` feature is disabled.
#[cfg(not(feature = "fault-inject"))]
pub fn digest_xor(_handle: Option<&FaultHandle>, _stage: usize) -> u64 {
    0
}

/// Evaluates a fault [`Site`](crate::fault::Site) against an optional
/// `Option<Arc<FaultHandle>>`-shaped plan. Expands to a guarded call of
/// [`fault::trip`](crate::fault::trip), which is a no-op without the
/// `fault-inject` feature.
#[macro_export]
macro_rules! faultpoint {
    ($handle:expr, $site:expr) => {
        if let Some(h) = ($handle).as_ref() {
            $crate::fault::trip(h, $site);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_round_trips_through_catch_unwind() {
        let caught = std::panic::catch_unwind(|| {
            Abort::throw(AbortReason::LimitEvents, "event budget 10 exhausted")
        })
        .unwrap_err();
        let abort = caught.downcast_ref::<Abort>().expect("structured payload");
        assert_eq!(abort.reason, AbortReason::LimitEvents);
        assert_eq!(panic_message(caught.as_ref()), "event budget 10 exhausted");
    }

    #[test]
    fn panic_message_reads_plain_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("plain message")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "plain message");
        assert_eq!(panic_message(&Box::new(7u32) as &(dyn Any + Send)), "opaque panic payload");
    }

    #[test]
    fn times_bounds_the_fires() {
        let h = FaultHandle::new(FaultPlan { times: Some(2), ..FaultPlan::default() });
        assert!(h.arm());
        assert!(h.arm());
        assert!(!h.arm());
        let unlimited = FaultHandle::new(FaultPlan::default());
        for _ in 0..10 {
            assert!(unlimited.arm());
        }
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn event_fault_fires_at_exactly_its_event() {
        let h = FaultHandle::new(FaultPlan { panic_at_event: Some(3), ..FaultPlan::default() });
        trip(&h, Site::Event(2));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            trip(&h, Site::Event(3));
        }))
        .unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "injected panic at event 3");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn digest_corruption_targets_one_stage() {
        let h =
            FaultHandle::new(FaultPlan { corrupt_digest_stage: Some(1), ..FaultPlan::default() });
        assert_eq!(digest_xor(Some(&h), 0), 0);
        assert_ne!(digest_xor(Some(&h), 1), 0);
        assert_eq!(digest_xor(None, 1), 0);
    }
}
