//! The simulated machine: cores, caches, networks and vaults wired into one
//! discrete-event loop.
//!
//! A [`Machine`] owns the hardware state of one evaluated system (Fig. 3a /
//! Fig. 5) and executes operator *phases*: the engine hands every compute
//! unit a kernel, the event loop routes the resulting memory traffic
//! through caches, meshes, SerDes links and vault controllers, and the
//! phase ends when all cores have finished and all in-flight memory (the
//! shuffle barrier of §5.4) has drained.

use std::collections::{HashMap, VecDeque};

use mondrian_cache::{Cache, Lookup, NextLinePrefetcher};
use mondrian_cores::{Core, CoreStatus, Kernel, MemKind, MemRequest, StoreKind};
use mondrian_mem::{
    AccessKind, AddressMap, DramCompletion, DramRequest, PermutableRegion, VaultController,
};
use mondrian_noc::{Mesh, MeshStats, SerDesLink, SerDesStats};
use mondrian_sim::{EventQueue, Stats, Time, PS_PER_NS};

use crate::config::{PartitionSpec, SystemConfig};
use crate::fault::{self, Abort, AbortReason};
use crate::pool::TickPool;

/// Smallest simultaneous-tick batch worth handing to the worker pool;
/// below this the channel round-trips cost more than the polls.
const MIN_PARALLEL_TICKS: usize = 2;

/// Outcome of one executed phase.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase label (for reports).
    pub label: String,
    /// Phase start time.
    pub start: Time,
    /// Phase end time (cores drained *and* memory quiesced).
    pub end: Time,
    /// Instructions retired across all compute units.
    pub instructions: u64,
    /// SIMD operations retired.
    pub simd_ops: u64,
    /// Per-core busy fraction (achieved IPC / peak) for the energy model.
    pub core_busy: Vec<f64>,
    /// Permutable writes dropped due to destination-buffer overflow (the
    /// §5.4 exception path; non-zero values fail the phase).
    pub overflows: u64,
    /// Discrete events processed by the phase's event loop, excluding
    /// vault ticks: the serial loop keeps popping tail ticks that the
    /// parallel tail drain skips, so counting them would make the figure
    /// depend on `sim_threads` and break artifact byte-identity.
    pub events: u64,
}

impl PhaseOutcome {
    /// Phase duration.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// Where a memory request originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ep {
    /// The CPU chip (CPU-centric system).
    Cpu,
    /// A vault's logic-layer tile.
    Vault(u32),
}

#[derive(Debug)]
struct Pending {
    core: usize,
    req: MemRequest,
}

/// Continuation attached to each DRAM request.
#[derive(Debug, Clone, Copy)]
enum VaultOp {
    /// Stream-buffer fill: respond to the local core.
    StreamFill { pending: usize },
    /// 64 B line fill headed to core `core`'s L1.
    L1Fill { core: usize, line: u64 },
    /// 64 B line fill headed to the shared LLC.
    LlcFill { line: u64 },
    /// Fire-and-forget (writebacks, permutable writes).
    Fire,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Advance(usize),
    VaultTick(u32),
    MemDone { pending: usize, done: Time },
    L1FillDone { core: usize, line: u64 },
    LlcFillDone { line: u64 },
}

/// Reusable per-phase working state. `run_phase` used to rebuild every one
/// of these maps, queues and buffers on each phase; operators run many
/// short phases per stage, so the machine now owns a single copy that is
/// cleared — capacity retained — at phase entry.
#[derive(Debug, Default)]
struct PhaseScratch {
    pending: Vec<Pending>,
    vault_ops: HashMap<u64, VaultOp>,
    vault_tick: Vec<Option<Time>>,
    l1_waiters: Vec<HashMap<u64, Vec<usize>>>,
    llc_waiters: HashMap<u64, Vec<(usize, u64)>>,
    stalls: Vec<VecDeque<usize>>,
    handle_reqs: VecDeque<(usize, MemRequest)>,
    out_buf: Vec<MemRequest>,
    /// The simultaneous-tick batch under assembly: `(vault, time)`.
    tick_batch: Vec<(u32, Time)>,
    /// Per-batch-slot completion buffers the tick polls write into.
    tick_done: Vec<Vec<DramCompletion>>,
}

impl PhaseScratch {
    fn reset(&mut self, vaults: usize, units: usize) {
        self.pending.clear();
        self.vault_ops.clear();
        self.vault_tick.clear();
        self.vault_tick.resize(vaults, None);
        self.l1_waiters.resize_with(units, HashMap::new);
        for w in &mut self.l1_waiters {
            w.clear();
        }
        self.llc_waiters.clear();
        self.stalls.resize_with(units, VecDeque::new);
        for s in &mut self.stalls {
            s.clear();
        }
        self.handle_reqs.clear();
        self.out_buf.clear();
        self.tick_batch.clear();
        self.tick_done.resize_with(vaults, Vec::new);
    }
}

/// One evaluated system's hardware.
pub struct Machine {
    cfg: SystemConfig,
    map: AddressMap,
    vaults: Vec<VaultController>,
    meshes: Vec<Mesh>,
    /// Per HMC: (CPU→HMC, HMC→CPU).
    cpu_links: Vec<(SerDesLink, SerDesLink)>,
    /// Directional inter-HMC links (NMP fully-connected network).
    hmc_links: HashMap<(u32, u32), SerDesLink>,
    l1s: Vec<Cache>,
    llc: Option<Cache>,
    prefetcher: NextLinePrefetcher,
    now: Time,
    /// Permutable region base per vault while a shuffle is active.
    perm_bases: HashMap<u32, u64>,
    /// Arrival metadata from the last shuffle: per vault, `(core, seq)` in
    /// arrival order.
    perm_arrivals: HashMap<u32, Vec<(usize, u64)>>,
    /// Reusable per-phase buffers (allocation diet; see [`PhaseScratch`]).
    scratch: PhaseScratch,
    /// Lazily spawned worker pool for batched vault ticks; lives for the
    /// machine's lifetime once the first parallel batch appears.
    tick_pool: Option<TickPool>,
    /// Cumulative non-tick events across every phase this machine has run
    /// — the deterministic clock the cooperative event budget and the
    /// `panic_at_event` fault point are measured against.
    events_done: u64,
    stats: Stats,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("kind", &self.cfg.kind)
            .field("vaults", &self.vaults.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Machine {
    /// Builds the machine for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate();
        let map = cfg.address_map();
        let vaults = (0..cfg.total_vaults())
            .map(|v| VaultController::new(cfg.vault, map.vault_base(v)))
            .collect();
        let meshes = (0..cfg.hmcs).map(|_| Mesh::new(cfg.mesh)).collect();
        let cpu_links = (0..cfg.hmcs)
            .map(|_| (SerDesLink::new(cfg.serdes), SerDesLink::new(cfg.serdes)))
            .collect();
        let mut hmc_links = HashMap::new();
        if cfg.kind.is_nmp() {
            for a in 0..cfg.hmcs {
                for b in 0..cfg.hmcs {
                    if a != b {
                        hmc_links.insert((a, b), SerDesLink::new(cfg.serdes));
                    }
                }
            }
        }
        let units = cfg.compute_units() as usize;
        let l1_cfg = if cfg.kind.is_mondrian() {
            mondrian_cache::CacheConfig::mondrian_l1()
        } else {
            cfg.l1
        };
        let l1s = (0..units).map(|_| Cache::new(l1_cfg)).collect();
        let llc = (!cfg.kind.is_nmp()).then(|| Cache::new(cfg.llc));
        Self {
            map,
            vaults,
            meshes,
            cpu_links,
            hmc_links,
            l1s,
            llc,
            prefetcher: NextLinePrefetcher::table3(),
            now: 0,
            perm_bases: HashMap::new(),
            perm_arrivals: HashMap::new(),
            scratch: PhaseScratch::default(),
            tick_pool: None,
            events_done: 0,
            stats: Stats::new(),
            cfg,
        }
    }

    /// Cumulative non-tick events processed over this machine's lifetime.
    pub fn events_done(&self) -> u64 {
        self.events_done
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The vault lease this machine executes under. Whole machines report
    /// the trivial lease covering every vault.
    pub fn partition(&self) -> PartitionSpec {
        self.cfg.partition.unwrap_or_else(|| PartitionSpec::whole(self.cfg.total_vaults()))
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advances the clock by `delta` without doing work — used for fixed
    /// synchronization costs such as the shuffle_begin/shuffle_end MSI
    /// barriers (§5.4).
    pub fn advance_time(&mut self, delta: Time) {
        self.now += delta;
    }

    /// The flat address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Installs per-vault permutable destination regions — the hardware
    /// half of `shuffle_begin` (§5.4). `regions[v]` applies to vault `v`.
    ///
    /// # Panics
    ///
    /// Panics if region count mismatches the vault count.
    pub fn shuffle_begin(&mut self, regions: Vec<PermutableRegion>) {
        assert_eq!(regions.len(), self.vaults.len());
        self.perm_bases.clear();
        self.perm_arrivals.clear();
        for (v, region) in regions.into_iter().enumerate() {
            self.perm_bases.insert(v as u32, region.base);
            self.vaults[v].set_permutable_region(region);
        }
    }

    /// Tears down permutable regions and collects the arrival logs — the
    /// hardware half of `shuffle_end`.
    pub fn shuffle_end(&mut self) -> HashMap<u32, Vec<(usize, u64)>> {
        for v in self.vaults.iter_mut() {
            v.clear_permutable_region();
        }
        self.perm_bases.clear();
        std::mem::take(&mut self.perm_arrivals)
    }

    fn tile_of(&self, vault: u32) -> u32 {
        vault % self.cfg.vaults_per_hmc
    }

    fn hmc_of(&self, vault: u32) -> u32 {
        vault / self.cfg.vaults_per_hmc
    }

    /// Network-interface tile on a mesh for external link `peer_slot`.
    fn ni_tile(&self, slot: u32) -> u32 {
        let w = self.cfg.mesh.width;
        let h = self.cfg.mesh.height;
        let corners = [0, w - 1, (h - 1) * w, h * w - 1];
        corners[(slot % 4) as usize]
    }

    /// Routes `bytes` of payload from `from` to vault `to`; returns the
    /// arrival time.
    fn route_to_vault(&mut self, from: Ep, to: u32, bytes: u32, t: Time) -> Time {
        let dst_hmc = self.hmc_of(to);
        let dst_tile = self.tile_of(to);
        match from {
            Ep::Cpu => {
                let t1 = self.cpu_links[dst_hmc as usize].0.send(bytes, t);
                let ni = self.ni_tile(0);
                self.meshes[dst_hmc as usize].send_unreserved(ni, dst_tile, bytes, t1)
            }
            Ep::Vault(src) => {
                let src_hmc = self.hmc_of(src);
                let src_tile = self.tile_of(src);
                if src_hmc == dst_hmc {
                    self.meshes[src_hmc as usize].send(src_tile, dst_tile, bytes, t)
                } else {
                    let ni_out = self.ni_tile(dst_hmc);
                    let t1 =
                        self.meshes[src_hmc as usize].send_unreserved(src_tile, ni_out, bytes, t);
                    let t2 = self
                        .hmc_links
                        .get_mut(&(src_hmc, dst_hmc))
                        .expect("fully-connected NMP network")
                        .send(bytes, t1);
                    let ni_in = self.ni_tile(src_hmc);
                    self.meshes[dst_hmc as usize].send_unreserved(ni_in, dst_tile, bytes, t2)
                }
            }
        }
    }

    /// Routes a response from vault `from` back to `to`.
    fn route_from_vault(&mut self, from: u32, to: Ep, bytes: u32, t: Time) -> Time {
        let src_hmc = self.hmc_of(from);
        let src_tile = self.tile_of(from);
        match to {
            Ep::Cpu => {
                let ni = self.ni_tile(0);
                let t1 = self.meshes[src_hmc as usize].send_unreserved(src_tile, ni, bytes, t);
                self.cpu_links[src_hmc as usize].1.send(bytes, t1)
            }
            Ep::Vault(dst) => {
                // Symmetric to route_to_vault.
                let dst_hmc = self.hmc_of(dst);
                if src_hmc == dst_hmc {
                    let dt = self.tile_of(dst);
                    self.meshes[src_hmc as usize].send(src_tile, dt, bytes, t)
                } else {
                    let ni_out = self.ni_tile(dst_hmc);
                    let t1 =
                        self.meshes[src_hmc as usize].send_unreserved(src_tile, ni_out, bytes, t);
                    let t2 = self
                        .hmc_links
                        .get_mut(&(src_hmc, dst_hmc))
                        .expect("fully-connected NMP network")
                        .send(bytes, t1);
                    let ni_in = self.ni_tile(src_hmc);
                    let dt = self.tile_of(dst);
                    self.meshes[dst_hmc as usize].send_unreserved(ni_in, dt, bytes, t2)
                }
            }
        }
    }

    fn endpoint(&self, core: usize) -> Ep {
        if self.cfg.kind.is_nmp() {
            Ep::Vault(core as u32)
        } else {
            Ep::Cpu
        }
    }

    /// Runs one phase: `kernels[i]` executes on compute unit `i` (`None`
    /// idles the unit).
    ///
    /// # Errors
    ///
    /// Returns the number of dropped permutable writes if any destination
    /// buffer overflowed — the exception the CPU must handle by resizing
    /// and re-running the shuffle (§5.4).
    ///
    /// # Panics
    ///
    /// Panics on kernel/machine mismatches (wrong kernel count, SIMD on
    /// non-SIMD cores, deadlock).
    pub fn run_phase(
        &mut self,
        kernels: Vec<Option<Box<dyn Kernel>>>,
        label: &str,
    ) -> Result<PhaseOutcome, u64> {
        assert_eq!(kernels.len(), self.l1s.len(), "one kernel slot per compute unit");
        let start = self.now;
        let core_cfg = self.cfg.kind.core_config();
        let mut cores: Vec<Option<Core>> = kernels
            .into_iter()
            .map(|k| {
                k.map(|kernel| {
                    let mut c = Core::new(core_cfg, kernel);
                    c.set_start(start);
                    c
                })
            })
            .collect();

        let mut queue: EventQueue<Ev> = EventQueue::new();
        // The phase working set lives on the machine (allocation reuse
        // across phases); it is taken whole so the borrow checker sees it
        // as disjoint from `self` inside the loop, and restored at exit.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.reset(self.vaults.len(), self.l1s.len());
        let PhaseScratch {
            pending,
            vault_ops,
            vault_tick,
            l1_waiters,
            llc_waiters,
            stalls,
            handle_reqs,
            out_buf,
            tick_batch,
            tick_done,
        } = &mut scratch;
        let mut overflows: u64 = 0;
        let mut next_dram_id: u64 = 0;
        let mut end = start;

        for (i, c) in cores.iter().enumerate() {
            if c.is_some() {
                queue.schedule(start, Ev::Advance(i));
            }
        }

        // VaultTick events currently in the queue; when every queued
        // event is a tick, the phase has entered its tail drain.
        let mut tick_events: usize = 0;

        // The borrow checker forbids neat closures over `self` here; the
        // loop body is written out imperatively instead.
        macro_rules! sched_vault {
            ($q:expr, $vt:expr, $v:expr) => {{
                let v = $v as usize;
                if let Some(t) = self.vaults[v].next_event_time() {
                    if $vt[v].is_none_or(|cur| t < cur) {
                        $vt[v] = Some(t);
                        tick_events += 1;
                        $q.schedule(t, Ev::VaultTick($v as u32));
                    }
                }
            }};
        }

        macro_rules! advance_core {
            ($i:expr) => {{
                let i = $i;
                if let Some(core) = cores[i].as_mut() {
                    out_buf.clear();
                    let status = core.advance(out_buf);
                    for r in out_buf.drain(..) {
                        handle_reqs.push_back((i, r));
                    }
                    if let CoreStatus::Finished(at) = status {
                        end = end.max(at);
                    }
                }
            }};
        }

        // Main event loop.
        let mut guard: u64 = 0;
        let mut events: u64 = 0;
        loop {
            // Drain newly emitted core requests first (they carry their own
            // issue timestamps).
            if !handle_reqs.is_empty() {
                while let Some((i, req)) = handle_reqs.pop_front() {
                    self.issue_request(
                        i,
                        req,
                        &mut queue,
                        pending,
                        vault_ops,
                        l1_waiters,
                        llc_waiters,
                        stalls,
                        &mut overflows,
                        &mut next_dram_id,
                    );
                }
                // Vault state may have changed.
                for v in 0..self.vaults.len() {
                    sched_vault!(queue, vault_tick, v);
                }
            }
            // Parallel tail drain: once every core has finished, no core
            // request is waiting on a response, and every in-flight DRAM
            // op is fire-and-forget, the vaults can no longer interact —
            // remaining traffic never crosses the mesh again. Each
            // remaining command queue evolves independently, so with
            // `sim_threads > 1` they drain on worker threads and merge
            // deterministically by taking the latest per-vault finish
            // (stats stay inside each controller, exported by global
            // vault id as always). Byte-identical to the serial drain.
            if self.cfg.sim_threads > 1
                && handle_reqs.is_empty()
                && queue.len() == tick_events
                && cores.iter().all(|c| c.as_ref().is_none_or(Core::finished))
                && vault_ops.values().all(|op| matches!(op, VaultOp::Fire))
            {
                end = end.max(self.parallel_tail_drain());
                break;
            }
            let Some((t, ev)) = queue.pop() else {
                break;
            };
            self.now = self.now.max(t);
            end = end.max(t);
            guard += 1;
            assert!(guard < 2_000_000_000, "event-loop runaway in phase {label}");
            if !matches!(ev, Ev::VaultTick(_)) {
                events += 1;
                self.events_done += 1;
                // Cooperative checkpoints, measured against the cumulative
                // non-tick event count: `VaultTick` events never count, so
                // the trip point is the same simulated instant for every
                // `sim_threads` value.
                crate::faultpoint!(self.cfg.fault, fault::Site::Event(self.events_done));
                if let Some(budget) = self.cfg.event_budget {
                    if self.events_done > budget {
                        Abort::throw(
                            AbortReason::LimitEvents,
                            format!("event budget {budget} exhausted in phase {label}"),
                        );
                    }
                }
            }
            match ev {
                Ev::Advance(i) => advance_core!(i),
                Ev::VaultTick(v) => {
                    tick_events -= 1;
                    vault_tick[v as usize] = None;
                    // Collect the *contiguous* run of simultaneous ticks at
                    // the head of the queue, one per distinct vault. A tick
                    // for a vault already in the batch (a stale reschedule)
                    // or any interleaved non-tick event ends the batch —
                    // exactly where the serial loop's state could still
                    // change between polls. A tick mutates only its own
                    // vault, so the batch polls in parallel; continuations
                    // then merge below in pop order, reproducing the serial
                    // event stream — seq numbers included — bit for bit.
                    tick_batch.clear();
                    tick_batch.push((v, t));
                    if self.cfg.sim_threads > 1 {
                        while tick_batch.len() < self.vaults.len() {
                            let next = queue.pop_if(|t2, ev| {
                                t2 == t
                                    && matches!(ev, Ev::VaultTick(w)
                                        if tick_batch.iter().all(|&(b, _)| b != *w))
                            });
                            let Some((_, Ev::VaultTick(w))) = next else { break };
                            guard += 1;
                            tick_events -= 1;
                            vault_tick[w as usize] = None;
                            tick_batch.push((w, t));
                        }
                    }
                    // One injection decision per batch, taken before the
                    // serial/pooled split so the failure is identical for
                    // every `sim_threads` value.
                    let boom = fault::vault_poll_boom(self.cfg.fault.as_deref());
                    if self.cfg.sim_threads > 1 && tick_batch.len() >= MIN_PARALLEL_TICKS {
                        let pool = self
                            .tick_pool
                            .take()
                            .unwrap_or_else(|| TickPool::new(self.cfg.sim_threads));
                        let polled = pool.poll_batch(&mut self.vaults, tick_batch, tick_done, boom);
                        self.tick_pool = Some(pool);
                        if let Err(msg) = polled {
                            // The pool survives (the batch drained), but
                            // this run's state is torn: unwind with the
                            // worker's own panic message.
                            Abort::throw(AbortReason::WorkerPanic, msg);
                        }
                    } else {
                        if boom {
                            panic!("injected vault-poll fault");
                        }
                        for (k, &(w, tw)) in tick_batch.iter().enumerate() {
                            self.vaults[w as usize].poll_into(tw, &mut tick_done[k]);
                        }
                    }
                    // Deterministic merge: batch (pop) order, then each
                    // vault's completion order — a stable
                    // `(time, vault tick seq, dram completion)` ordering
                    // identical to the serial loop's.
                    for (k, &(w, _)) in tick_batch.iter().enumerate() {
                        for c in &tick_done[k] {
                            let op = vault_ops.remove(&c.id).expect("continuation registered");
                            match op {
                                VaultOp::Fire => {}
                                VaultOp::StreamFill { pending: p } => {
                                    let done_at = c.finish + PS_PER_NS;
                                    queue.schedule(
                                        done_at,
                                        Ev::MemDone { pending: p, done: done_at },
                                    );
                                }
                                VaultOp::L1Fill { core, line } => {
                                    let back = self.route_from_vault(
                                        w,
                                        self.endpoint(core),
                                        self.l1s[core].config().line_bytes,
                                        c.finish,
                                    );
                                    queue.schedule(back, Ev::L1FillDone { core, line });
                                }
                                VaultOp::LlcFill { line } => {
                                    let bytes = self.cfg.llc.line_bytes;
                                    let back = self.route_from_vault(w, Ep::Cpu, bytes, c.finish);
                                    queue.schedule(back, Ev::LlcFillDone { line });
                                }
                            }
                        }
                        sched_vault!(queue, vault_tick, w);
                    }
                }
                Ev::MemDone { pending: p, done } => {
                    let core_id = pending[p].core;
                    let req = pending[p].req;
                    if let Some(core) = cores[core_id].as_mut() {
                        out_buf.clear();
                        core.complete_mem(&req, done, out_buf);
                        for r in out_buf.drain(..) {
                            handle_reqs.push_back((core_id, r));
                        }
                    }
                    queue.schedule(done, Ev::Advance(core_id));
                }
                Ev::L1FillDone { core, line } => {
                    self.l1s[core].complete_fill(line);
                    if let Some(waiters) = l1_waiters[core].remove(&line) {
                        for p in waiters {
                            let req = pending[p].req;
                            if matches!(req.kind, MemKind::Store(_)) {
                                self.l1s[core].mark_dirty(req.addr);
                            }
                            queue.schedule(t, Ev::MemDone { pending: p, done: t });
                        }
                    }
                    // Retry accesses stalled on MSHRs (they re-enter
                    // issue_request with fresh pending slots; the stalled
                    // slot itself is abandoned).
                    while let Some(p) = stalls[core].pop_front() {
                        if !self.l1s[core].mshr_available() {
                            stalls[core].push_front(p);
                            break;
                        }
                        let mut retry = pending[p].req;
                        retry.issue_at = t;
                        handle_reqs.push_back((core, retry));
                    }
                    queue.schedule(t, Ev::Advance(core));
                }
                Ev::LlcFillDone { line } => {
                    let llc = self.llc.as_mut().expect("LLC fills only on the CPU system");
                    llc.complete_fill(line);
                    if let Some(waiters) = llc_waiters.remove(&line) {
                        for (core, l1_line) in waiters {
                            queue.schedule(t + PS_PER_NS, Ev::L1FillDone { core, line: l1_line });
                        }
                    }
                }
            }
        }

        // Hand the (cleared-on-entry) working set back for the next phase.
        self.scratch = scratch;

        // All cores must have finished; otherwise we deadlocked.
        let mut instructions = 0;
        let mut simd_ops = 0;
        let mut core_busy = Vec::with_capacity(cores.len());
        for (i, c) in cores.iter().enumerate() {
            let Some(core) = c else {
                core_busy.push(0.0);
                continue;
            };
            assert!(core.finished(), "compute unit {i} deadlocked in phase {label} (window stuck)");
            instructions += core.stats().instructions;
            simd_ops += core.stats().simd_ops;
            let cycles = core.config().clock.ps_to_cycles_ceil((end - start).max(1));
            let ipc = core.stats().instructions as f64 / cycles as f64;
            core_busy.push((ipc / core.config().width as f64).min(1.0));
        }
        self.now = end;
        let outcome = PhaseOutcome {
            label: label.to_owned(),
            start,
            end,
            instructions,
            simd_ops,
            core_busy,
            overflows,
            events,
        };
        if overflows > 0 {
            return Err(overflows);
        }
        Ok(outcome)
    }

    /// Drains every busy vault to completion on up to `sim_threads`
    /// worker threads and returns the latest completion time across all
    /// of them. Only sound in the phase tail, when no completion needs a
    /// continuation (see the caller's guard): each vault touches only its
    /// own state, so the merged result does not depend on thread
    /// scheduling.
    fn parallel_tail_drain(&mut self) -> Time {
        let mut busy: Vec<&mut VaultController> =
            self.vaults.iter_mut().filter(|v| v.busy()).collect();
        if busy.is_empty() {
            return 0;
        }
        let chunk = busy.len().div_ceil(self.cfg.sim_threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = busy
                .chunks_mut(chunk)
                .map(|vaults| {
                    scope.spawn(move || {
                        let mut last: Time = 0;
                        for v in vaults.iter_mut() {
                            let mut now: Time = 0;
                            while let Some(t) = v.next_event_time() {
                                now = now.max(t);
                                v.poll(now);
                            }
                            last = last.max(now);
                        }
                        last
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("vault drain thread panicked"))
                .fold(0, Time::max)
        })
    }

    /// Issues one core memory request into caches/network/vaults.
    #[allow(clippy::too_many_arguments)]
    fn issue_request(
        &mut self,
        core: usize,
        req: MemRequest,
        queue: &mut EventQueue<Ev>,
        pending: &mut Vec<Pending>,
        vault_ops: &mut HashMap<u64, VaultOp>,
        l1_waiters: &mut [HashMap<u64, Vec<usize>>],
        llc_waiters: &mut HashMap<u64, Vec<(usize, u64)>>,
        stalls: &mut [VecDeque<usize>],
        overflows: &mut u64,
        next_dram_id: &mut u64,
    ) {
        let t = req.issue_at;
        match req.kind {
            MemKind::Load | MemKind::Store(StoreKind::Cached) => {
                let p = pending.len();
                pending.push(Pending { core, req });
                self.cached_access(
                    core,
                    p,
                    req,
                    queue,
                    vault_ops,
                    l1_waiters,
                    llc_waiters,
                    stalls,
                    next_dram_id,
                );
            }
            MemKind::Store(StoreKind::Streaming) => {
                let p = pending.len();
                pending.push(Pending { core, req });
                let vault = self.map.vault_of(req.addr);
                let arr = self.route_to_vault(self.endpoint(core), vault, req.bytes, t);
                // Posted write: the store queue entry frees once the network
                // has accepted the message (link back-pressure applies via
                // the reservation in `arr`); the DRAM write itself still
                // holds the phase open until it drains.
                queue.schedule(arr, Ev::MemDone { pending: p, done: arr });
                // Split at DRAM row boundaries (the HMC protocol would carry
                // this as one packet; the controller issues per-row column
                // commands).
                let row_bytes = self.cfg.vault.row_bytes as u64;
                let mut addr = req.addr;
                let end = req.addr + req.bytes as u64;
                while addr < end {
                    let row_end = (addr / row_bytes + 1) * row_bytes;
                    let chunk = end.min(row_end) - addr;
                    let id = *next_dram_id;
                    *next_dram_id += 1;
                    let dreq =
                        DramRequest { id, addr, bytes: chunk as u32, kind: AccessKind::Write };
                    self.vaults[vault as usize]
                        .enqueue(dreq, arr)
                        .expect("plain writes cannot overflow");
                    vault_ops.insert(id, VaultOp::Fire);
                    addr += chunk;
                }
            }
            MemKind::Store(StoreKind::Permutable { dst_vault }) => {
                // The request's address field carries the object emission
                // sequence (see the core model).
                let seq = req.addr;
                let arr = self.route_to_vault(self.endpoint(core), dst_vault, req.bytes, t);
                let id = *next_dram_id;
                *next_dram_id += 1;
                let base = *self
                    .perm_bases
                    .get(&dst_vault)
                    .expect("permutable store outside an active shuffle");
                let dreq = DramRequest {
                    id,
                    addr: base,
                    bytes: req.bytes,
                    kind: AccessKind::PermutableWrite,
                };
                match self.vaults[dst_vault as usize].enqueue(dreq, arr) {
                    Ok(()) => {
                        vault_ops.insert(id, VaultOp::Fire);
                        self.perm_arrivals.entry(dst_vault).or_default().push((core, seq));
                    }
                    Err(_) => *overflows += 1,
                }
            }
            MemKind::StreamFill { .. } => {
                let p = pending.len();
                pending.push(Pending { core, req });
                let vault = self.map.vault_of(req.addr);
                debug_assert_eq!(
                    vault, core as u32,
                    "stream buffers prefetch from the local vault only"
                );
                let id = *next_dram_id;
                *next_dram_id += 1;
                let dreq =
                    DramRequest { id, addr: req.addr, bytes: req.bytes, kind: AccessKind::Read };
                match self.vaults[vault as usize].enqueue(dreq, t + PS_PER_NS) {
                    Ok(()) => {
                        vault_ops.insert(id, VaultOp::StreamFill { pending: p });
                    }
                    Err(_) => unreachable!("reads cannot overflow"),
                }
            }
        }
    }

    /// A cacheable load/store works its way through L1 (and the LLC on the
    /// CPU system).
    #[allow(clippy::too_many_arguments)]
    fn cached_access(
        &mut self,
        core: usize,
        p: usize,
        req: MemRequest,
        queue: &mut EventQueue<Ev>,
        vault_ops: &mut HashMap<u64, VaultOp>,
        l1_waiters: &mut [HashMap<u64, Vec<usize>>],
        llc_waiters: &mut HashMap<u64, Vec<(usize, u64)>>,
        stalls: &mut [VecDeque<usize>],
        next_dram_id: &mut u64,
    ) {
        let is_write = matches!(req.kind, MemKind::Store(_));
        let core_period = self.cfg.kind.core_config().clock.period_ps();
        let t_hit = req.issue_at + self.cfg.l1_hit_cycles * core_period;
        let line = self.cfg.l1.line_of(req.addr);
        match self.l1s[core].lookup(req.addr, is_write) {
            Lookup::Hit => {
                queue.schedule(t_hit, Ev::MemDone { pending: p, done: t_hit });
            }
            Lookup::PendingMiss => {
                l1_waiters[core].entry(line).or_default().push(p);
            }
            Lookup::Miss => {
                if !self.l1s[core].can_begin_fill(line) {
                    stalls[core].push_back(p);
                    return;
                }
                l1_waiters[core].entry(line).or_default().push(p);
                self.start_l1_fill(
                    core,
                    line,
                    t_hit,
                    false,
                    queue,
                    vault_ops,
                    llc_waiters,
                    next_dram_id,
                );
                // Next-line prefetcher reacts to the demand miss.
                for cand in self.prefetcher.candidates(req.addr) {
                    if self.l1s[core].can_begin_fill(cand) {
                        self.start_l1_fill(
                            core,
                            cand,
                            t_hit,
                            true,
                            queue,
                            vault_ops,
                            llc_waiters,
                            next_dram_id,
                        );
                    }
                }
            }
        }
    }

    /// Starts an L1 line fill (demand or prefetch) and pushes it down the
    /// hierarchy.
    #[allow(clippy::too_many_arguments)]
    fn start_l1_fill(
        &mut self,
        core: usize,
        line: u64,
        t: Time,
        prefetch: bool,
        queue: &mut EventQueue<Ev>,
        vault_ops: &mut HashMap<u64, VaultOp>,
        llc_waiters: &mut HashMap<u64, Vec<(usize, u64)>>,
        next_dram_id: &mut u64,
    ) {
        let line_bytes = self.l1s[core].config().line_bytes;
        let fill = self.l1s[core].begin_fill(line, prefetch);
        if let Some(wb) = fill.writeback {
            self.writeback(core, wb, line_bytes, t, vault_ops, next_dram_id);
        }
        if self.llc.is_some() {
            // CPU system: consult the shared LLC.
            let cpu_period = self.cfg.kind.core_config().clock.period_ps();
            let t_llc = t + self.cfg.llc_hit_cycles * cpu_period;
            let llc = self.llc.as_mut().expect("checked");
            match llc.lookup(line, false) {
                Lookup::Hit => {
                    queue.schedule(t_llc, Ev::L1FillDone { core, line });
                }
                Lookup::PendingMiss => {
                    llc_waiters.entry(line).or_default().push((core, line));
                }
                Lookup::Miss => {
                    // When the LLC cannot accept another fill (MSHR pool or
                    // set exhausted), fetch the line from memory directly
                    // without allocating it in the LLC.
                    if !llc.can_begin_fill(line) {
                        self.memory_read_for_l1(core, line, t_llc, vault_ops, next_dram_id);
                        return;
                    }
                    let fill = llc.begin_fill(line, false);
                    llc_waiters.entry(line).or_default().push((core, line));
                    if let Some(wb) = fill.writeback {
                        let bytes = self.cfg.llc.line_bytes;
                        self.writeback_from_cpu(wb, bytes, t_llc, vault_ops, next_dram_id);
                    }
                    let vault = self.map.vault_of(line);
                    let arr = self.route_to_vault(Ep::Cpu, vault, 8, t_llc);
                    let id = *next_dram_id;
                    *next_dram_id += 1;
                    let bytes = self.cfg.llc.line_bytes;
                    let dreq = DramRequest { id, addr: line, bytes, kind: AccessKind::Read };
                    self.vaults[vault as usize].enqueue(dreq, arr).expect("reads cannot overflow");
                    vault_ops.insert(id, VaultOp::LlcFill { line });
                }
            }
        } else {
            // NMP systems: L1 misses go straight to DRAM.
            self.memory_read_for_l1(core, line, t, vault_ops, next_dram_id);
        }
    }

    fn memory_read_for_l1(
        &mut self,
        core: usize,
        line: u64,
        t: Time,
        vault_ops: &mut HashMap<u64, VaultOp>,
        next_dram_id: &mut u64,
    ) {
        let vault = self.map.vault_of(line);
        let arr = self.route_to_vault(self.endpoint(core), vault, 8, t);
        let id = *next_dram_id;
        *next_dram_id += 1;
        let bytes = self.l1s[core].config().line_bytes;
        let dreq = DramRequest { id, addr: line, bytes, kind: AccessKind::Read };
        self.vaults[vault as usize].enqueue(dreq, arr).expect("reads cannot overflow");
        vault_ops.insert(id, VaultOp::L1Fill { core, line });
    }

    fn writeback(
        &mut self,
        core: usize,
        addr: u64,
        bytes: u32,
        t: Time,
        vault_ops: &mut HashMap<u64, VaultOp>,
        next_dram_id: &mut u64,
    ) {
        if let Some(llc) = self.llc.as_mut() {
            // CPU: L1 writebacks land in the LLC when it holds the line.
            if let Lookup::Hit = llc.lookup(addr, true) {
                return;
            }
            self.writeback_from_cpu(addr, bytes, t, vault_ops, next_dram_id);
        } else {
            let vault = self.map.vault_of(addr);
            let arr = self.route_to_vault(self.endpoint(core), vault, bytes, t);
            let id = *next_dram_id;
            *next_dram_id += 1;
            let dreq = DramRequest { id, addr, bytes, kind: AccessKind::Write };
            self.vaults[vault as usize].enqueue(dreq, arr).expect("writes fit");
            vault_ops.insert(id, VaultOp::Fire);
        }
    }

    fn writeback_from_cpu(
        &mut self,
        addr: u64,
        bytes: u32,
        t: Time,
        vault_ops: &mut HashMap<u64, VaultOp>,
        next_dram_id: &mut u64,
    ) {
        let vault = self.map.vault_of(addr);
        let arr = self.route_to_vault(Ep::Cpu, vault, bytes, t);
        let id = *next_dram_id;
        *next_dram_id += 1;
        let dreq = DramRequest { id, addr, bytes, kind: AccessKind::Write };
        self.vaults[vault as usize].enqueue(dreq, arr).expect("writes fit");
        vault_ops.insert(id, VaultOp::Fire);
    }

    /// Exports all component statistics into one registry and returns it.
    ///
    /// A whole machine exports under the familiar local labels. A leased
    /// partition attributes its traffic to the *global* hardware it
    /// actually touched: vault counters carry global vault ids, and mesh /
    /// SerDes counters are keyed by the global vault their device window
    /// starts at, so merging the registries of concurrently leased
    /// partitions never conflates two tenants' vaults while SerDes traffic
    /// still aggregates globally under the shared `serdes.` namespace.
    pub fn export_stats(&mut self) -> Stats {
        let mut s = std::mem::take(&mut self.stats);
        let view = self.cfg.partition_view();
        let whole = view.is_whole();
        let vph = self.cfg.vaults_per_hmc;
        for (v, vault) in self.vaults.iter().enumerate() {
            let g = view.global_vault(v as u32);
            vault.stats().export(&mut s, &format!("vault.{g}"));
        }
        for (h, mesh) in self.meshes.iter().enumerate() {
            let label = if whole {
                format!("mesh.{h}")
            } else {
                format!("mesh.at_v{}", view.global_vault(h as u32 * vph))
            };
            mesh.stats().export(&mut s, &label);
        }
        for (h, (tx, rx)) in self.cpu_links.iter().enumerate() {
            let tag = if whole {
                format!("cpu{h}")
            } else {
                format!("cpu_at_v{}", view.global_vault(h as u32 * vph))
            };
            tx.stats().export(&mut s, &format!("serdes.{tag}.tx"));
            rx.stats().export(&mut s, &format!("serdes.{tag}.rx"));
        }
        for ((a, b), link) in &self.hmc_links {
            link.stats().export(&mut s, &format!("serdes.hmc{a}to{b}"));
        }
        let part = self.partition();
        for (i, l1) in self.l1s.iter().enumerate() {
            let label = if whole {
                format!("l1.{i}")
            } else if self.cfg.kind.is_nmp() {
                format!("l1.{}", view.global_vault(i as u32))
            } else {
                format!("l1.p{}.{i}", part.index)
            };
            l1.stats().export(&mut s, &label);
        }
        if let Some(llc) = &self.llc {
            llc.stats().export(&mut s, "llc");
        }
        s
    }

    /// Machine-wide NoC rollup: every mesh's traffic merged into one total
    /// (attributed to this machine's lease), and every SerDes direction —
    /// CPU links and inter-HMC links alike — merged into one globally
    /// charged total. The lessor folds these across concurrent partitions
    /// at the join barrier.
    pub fn noc_rollup(&self) -> (MeshStats, SerDesStats) {
        let mut mesh = MeshStats::default();
        for m in &self.meshes {
            mesh.merge(m.stats());
        }
        let mut serdes = SerDesStats::default();
        for (tx, rx) in &self.cpu_links {
            serdes.merge(tx.stats());
            serdes.merge(rx.stats());
        }
        for link in self.hmc_links.values() {
            serdes.merge(link.stats());
        }
        (mesh, serdes)
    }

    /// Number of SerDes link *directions* powered in this system (for idle
    /// energy).
    pub fn serdes_directions(&self) -> u32 {
        (self.cpu_links.len() * 2 + self.hmc_links.len()) as u32
    }
}
