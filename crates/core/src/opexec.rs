//! The engine-side operator registry.
//!
//! Mirrors the functional operator registry of
//! [`mondrian_ops::operator`]: every [`OperatorKind`] registers one
//! [`EngineOperator`] — the object that knows how to assemble the
//! operator's kernels, drive its phases on the [`crate::Machine`] and
//! capture its functional output. The experiment driver dispatches
//! through [`engine_operator`] instead of matching on the kind, so a new
//! stage kind plugs in by registering one more object here and one in
//! `ops` — no dispatch site changes.

use mondrian_ops::OperatorKind;

use crate::experiment::{Experiment, StageOutput};

/// One operator's engine executor: runs the operator end to end on the
/// experiment's machine and returns `(verified, summary, output)`.
pub(crate) trait EngineOperator: Sync {
    /// The operator this executor implements.
    fn kind(&self) -> OperatorKind;

    /// Runs the operator's phases on the experiment's machine.
    fn run(&self, exp: &mut Experiment) -> (bool, String, StageOutput);
}

macro_rules! engine_op {
    ($name:ident, $kind:ident, $method:ident) => {
        struct $name;

        impl EngineOperator for $name {
            fn kind(&self) -> OperatorKind {
                OperatorKind::$kind
            }

            fn run(&self, exp: &mut Experiment) -> (bool, String, StageOutput) {
                exp.$method()
            }
        }
    };
}

engine_op!(ScanExec, Scan, run_scan);
engine_op!(SortExec, Sort, run_sort);
engine_op!(GroupByExec, GroupBy, run_groupby);
engine_op!(JoinExec, Join, run_join);
engine_op!(UnionExec, Union, run_union);
engine_op!(CogroupExec, Cogroup, run_cogroup);
engine_op!(FlatMapExec, FlatMap, run_flat_map);

/// Every registered engine executor, in [`OperatorKind::ALL`] order.
static ENGINE_OPS: [&dyn EngineOperator; 7] =
    [&ScanExec, &SortExec, &GroupByExec, &JoinExec, &UnionExec, &CogroupExec, &FlatMapExec];

/// Looks an engine executor up in the registry.
///
/// # Panics
///
/// Panics if `kind` has no registered executor — a registration bug, not
/// a user error.
pub(crate) fn engine_operator(kind: OperatorKind) -> &'static dyn EngineOperator {
    ENGINE_OPS
        .iter()
        .copied()
        .find(|op| op.kind() == kind)
        .unwrap_or_else(|| panic!("no engine executor registered for {kind:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_operator_kind() {
        for kind in OperatorKind::ALL {
            assert_eq!(engine_operator(kind).kind(), kind);
        }
    }
}
