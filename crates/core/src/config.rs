//! System configurations: the six evaluated machines (§6, Table 3).

use mondrian_cache::CacheConfig;
use mondrian_cores::CoreConfig;
use mondrian_mem::{AddressMap, VaultConfig};
use mondrian_noc::{MeshConfig, SerDesConfig};
use mondrian_sim::{Time, PS_PER_NS};

/// The evaluated system configurations (§6, "Evaluated configurations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// CPU-centric baseline: 16 OoO cores, cache hierarchy, passive HMCs in
    /// a star (Fig. 5).
    Cpu,
    /// NMP baseline: one Krait400-class OoO core per vault, conventional
    /// partitioning, best probe algorithm (hash-based).
    Nmp,
    /// NMP baseline + permutable partitioning.
    NmpPerm,
    /// NMP baseline running the hash-based (random-access) probe.
    NmpRand,
    /// NMP baseline running the sort-based (sequential) probe.
    NmpSeq,
    /// Mondrian compute units (SIMD + streams) without permutability.
    MondrianNoperm,
    /// The full Mondrian Data Engine.
    Mondrian,
}

impl SystemKind {
    /// All configurations.
    pub const ALL: [SystemKind; 7] = [
        SystemKind::Cpu,
        SystemKind::Nmp,
        SystemKind::NmpPerm,
        SystemKind::NmpRand,
        SystemKind::NmpSeq,
        SystemKind::MondrianNoperm,
        SystemKind::Mondrian,
    ];

    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Cpu => "CPU",
            SystemKind::Nmp => "NMP",
            SystemKind::NmpPerm => "NMP-perm",
            SystemKind::NmpRand => "NMP-rand",
            SystemKind::NmpSeq => "NMP-seq",
            SystemKind::MondrianNoperm => "Mondrian-noperm",
            SystemKind::Mondrian => "Mondrian",
        }
    }

    /// Whether compute sits in the vaults (all but the CPU baseline).
    pub fn is_nmp(&self) -> bool {
        !matches!(self, SystemKind::Cpu)
    }

    /// Whether the partitioning phase uses permutable stores.
    pub fn uses_permutability(&self) -> bool {
        matches!(self, SystemKind::NmpPerm | SystemKind::Mondrian)
    }

    /// Whether the cores have SIMD + stream buffers (Mondrian units).
    pub fn is_mondrian(&self) -> bool {
        matches!(self, SystemKind::Mondrian | SystemKind::MondrianNoperm)
    }

    /// Whether the probe phase uses the sort-based (sequential) algorithms.
    pub fn probe_is_sorted(&self) -> bool {
        matches!(self, SystemKind::NmpSeq | SystemKind::Mondrian | SystemKind::MondrianNoperm)
    }

    /// The core model for this system.
    pub fn core_config(&self) -> CoreConfig {
        match self {
            SystemKind::Cpu => CoreConfig::cortex_a57(),
            SystemKind::Nmp | SystemKind::NmpPerm | SystemKind::NmpRand | SystemKind::NmpSeq => {
                CoreConfig::krait400()
            }
            SystemKind::Mondrian | SystemKind::MondrianNoperm => CoreConfig::mondrian_a35(),
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full machine + workload-scale configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which evaluated system.
    pub kind: SystemKind,
    /// HMC devices (4 × 8 GB in the paper).
    pub hmcs: u32,
    /// Vaults per HMC (16 × 512 MB modeled vaults).
    pub vaults_per_hmc: u32,
    /// CPU cores (16, Cloudera's 2 GB/core provisioning rule, §6).
    pub cpu_cores: u32,
    /// Vault memory model.
    pub vault: VaultConfig,
    /// Intra-HMC mesh.
    pub mesh: MeshConfig,
    /// Inter-device links.
    pub serdes: SerDesConfig,
    /// L1 cache of CPU/NMP cores.
    pub l1: CacheConfig,
    /// Shared LLC (CPU system only).
    pub llc: CacheConfig,
    /// L1 hit latency in core cycles (Table 3: 2 cycles).
    pub l1_hit_cycles: u64,
    /// Average LLC hit latency in CPU cycles (NUCA bank + on-chip hops).
    pub llc_hit_cycles: u64,
    /// Tuples per vault of the large relation (S); scaled down from the
    /// paper's 32M/vault, see DESIGN.md §2.4.
    pub tuples_per_vault: usize,
    /// |R| as a fraction denominator: |R| = |S| / r_divisor.
    pub r_divisor: usize,
    /// CPU radix bits for Join/Group-by partitioning (16 in the paper).
    pub cpu_radix_bits: u32,
    /// Fixed cost of the shuffle_begin/shuffle_end MSI barrier per phase
    /// boundary (§5.4's all-to-all notification).
    pub barrier: Time,
    /// RNG seed for dataset generation.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's topology at a laptop-scale dataset size.
    ///
    /// Vault capacity is shrunk (with proportionally scaled data) so that
    /// whole-system discrete-event simulation stays tractable; all
    /// *relative* quantities the evaluation depends on are preserved.
    pub fn scaled(kind: SystemKind) -> Self {
        let mut vault = VaultConfig::hmc();
        vault.capacity = 16 << 20; // 16 MB modeled vaults
        Self {
            kind,
            hmcs: 4,
            vaults_per_hmc: 16,
            cpu_cores: 16,
            vault,
            mesh: MeshConfig::hmc_4x4(),
            serdes: SerDesConfig::table3(),
            l1: CacheConfig::l1d(),
            llc: CacheConfig::llc(),
            l1_hit_cycles: 2,
            llc_hit_cycles: 20,
            tuples_per_vault: 8192,
            r_divisor: 1,
            cpu_radix_bits: 16,
            barrier: 200 * PS_PER_NS,
            seed: 0x6d6f6e64, // "mond"
        }
    }

    /// A minimal configuration for fast tests: 1 HMC, 4 vaults, 2 CPU
    /// cores, tiny relations.
    pub fn tiny(kind: SystemKind) -> Self {
        let mut cfg = Self::scaled(kind);
        cfg.hmcs = 1;
        cfg.vaults_per_hmc = 4;
        cfg.mesh = MeshConfig::square_for(4);
        cfg.cpu_cores = 2;
        cfg.tuples_per_vault = 256;
        cfg.cpu_radix_bits = 8;
        cfg
    }

    /// Total vault count.
    pub fn total_vaults(&self) -> u32 {
        self.hmcs * self.vaults_per_hmc
    }

    /// Number of compute units in this system.
    pub fn compute_units(&self) -> u32 {
        if self.kind.is_nmp() {
            self.total_vaults()
        } else {
            self.cpu_cores
        }
    }

    /// Radix bits used by the partitioning phase on this system: 16 on the
    /// CPU (cache-tuned), log2(vaults) on NMP systems (§6).
    pub fn partition_bits(&self) -> u32 {
        if self.kind.is_nmp() {
            self.total_vaults().trailing_zeros()
        } else {
            self.cpu_radix_bits
        }
    }

    /// The flat physical address map (§5.1).
    pub fn address_map(&self) -> AddressMap {
        AddressMap::new(
            self.hmcs,
            self.vaults_per_hmc,
            self.vault.capacity,
            self.vault.row_bytes,
            self.vault.banks,
        )
    }

    /// Validates consistency.
    ///
    /// # Panics
    ///
    /// Panics if the topology is inconsistent (mesh too small, vault count
    /// not a power of two, CPU cores not dividing the vault count, ...).
    pub fn validate(&self) {
        assert!(self.total_vaults().is_power_of_two(), "vault count must be a power of two");
        assert!(self.mesh.tiles() >= self.vaults_per_hmc, "mesh must seat every vault");
        assert!(
            self.cpu_cores > 0 && self.total_vaults().is_multiple_of(self.cpu_cores),
            "CPU cores must evenly split the vaults"
        );
        assert!(self.tuples_per_vault >= 16, "need at least one SIMD group per vault");
        assert!(self.r_divisor >= 1);
        self.vault.validate();
    }

    /// Renders the Table 3 style parameter sheet.
    pub fn table3_sheet(&self) -> String {
        let core = self.kind.core_config();
        format!(
            "{kind}: {units} compute units ({ghz:.1} GHz, {width}-wide, {window}-entry window)\n\
             DRAM: {hmcs} HMC × {vph} vaults × {cap} MB, {row} B rows, {banks} banks\n\
             NoC: {mw}×{mh} mesh, {link} B links, {hops} cycles/hop\n\
             SerDes: {gbps:.0} Gb/s per direction\n\
             Workload: {tpv} tuples/vault, partition bits {bits}",
            kind = self.kind,
            units = self.compute_units(),
            ghz = core.clock.ghz(),
            width = core.width,
            window = core.window,
            hmcs = self.hmcs,
            vph = self.vaults_per_hmc,
            cap = self.vault.capacity >> 20,
            row = self.vault.row_bytes,
            banks = self.vault.banks,
            mw = self.mesh.width,
            mh = self.mesh.height,
            link = self.mesh.link_bytes_per_cycle,
            hops = self.mesh.hop_cycles,
            gbps = self.serdes.bytes_per_ns * 8.0,
            tpv = self.tuples_per_vault,
            bits = self.partition_bits(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_matches_paper_topology() {
        let cfg = SystemConfig::scaled(SystemKind::Mondrian);
        cfg.validate();
        assert_eq!(cfg.total_vaults(), 64);
        assert_eq!(cfg.compute_units(), 64);
        assert_eq!(cfg.partition_bits(), 6, "6 bits = 64 vaults (§6)");
        let cpu = SystemConfig::scaled(SystemKind::Cpu);
        assert_eq!(cpu.compute_units(), 16);
        assert_eq!(cpu.partition_bits(), 16, "16 low-order bits on the CPU (§6)");
    }

    #[test]
    fn core_configs_match_table3() {
        assert_eq!(SystemKind::Cpu.core_config().window, 128);
        assert_eq!(SystemKind::Nmp.core_config().window, 48);
        assert!(SystemKind::Mondrian.core_config().simd);
        assert!(!SystemKind::NmpSeq.core_config().simd);
    }

    #[test]
    fn config_flags() {
        assert!(SystemKind::NmpPerm.uses_permutability());
        assert!(SystemKind::Mondrian.uses_permutability());
        assert!(!SystemKind::MondrianNoperm.uses_permutability());
        assert!(SystemKind::NmpSeq.probe_is_sorted());
        assert!(!SystemKind::NmpRand.probe_is_sorted());
        assert!(SystemKind::Mondrian.probe_is_sorted());
        assert!(!SystemKind::Cpu.is_nmp());
    }

    #[test]
    fn tiny_is_valid() {
        for kind in SystemKind::ALL {
            SystemConfig::tiny(kind).validate();
        }
    }

    #[test]
    fn table3_sheet_mentions_key_parameters() {
        let sheet = SystemConfig::scaled(SystemKind::Mondrian).table3_sheet();
        assert!(sheet.contains("64 compute units"));
        assert!(sheet.contains("256 B rows"));
        assert!(sheet.contains("160 Gb/s"));
    }
}
