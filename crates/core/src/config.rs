//! System configurations: the six evaluated machines (§6, Table 3).

use std::sync::Arc;

use crate::fault::FaultHandle;
use mondrian_cache::CacheConfig;
use mondrian_cores::CoreConfig;
use mondrian_mem::{AddressMap, PartitionView, VaultConfig};
use mondrian_noc::{MeshConfig, SerDesConfig};
use mondrian_sim::{Time, PS_PER_NS};

/// The evaluated system configurations (§6, "Evaluated configurations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// CPU-centric baseline: 16 OoO cores, cache hierarchy, passive HMCs in
    /// a star (Fig. 5).
    Cpu,
    /// NMP baseline: one Krait400-class OoO core per vault, conventional
    /// partitioning, best probe algorithm (hash-based).
    Nmp,
    /// NMP baseline + permutable partitioning.
    NmpPerm,
    /// NMP baseline running the hash-based (random-access) probe.
    NmpRand,
    /// NMP baseline running the sort-based (sequential) probe.
    NmpSeq,
    /// Mondrian compute units (SIMD + streams) without permutability.
    MondrianNoperm,
    /// The full Mondrian Data Engine.
    Mondrian,
}

impl SystemKind {
    /// All configurations.
    pub const ALL: [SystemKind; 7] = [
        SystemKind::Cpu,
        SystemKind::Nmp,
        SystemKind::NmpPerm,
        SystemKind::NmpRand,
        SystemKind::NmpSeq,
        SystemKind::MondrianNoperm,
        SystemKind::Mondrian,
    ];

    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Cpu => "CPU",
            SystemKind::Nmp => "NMP",
            SystemKind::NmpPerm => "NMP-perm",
            SystemKind::NmpRand => "NMP-rand",
            SystemKind::NmpSeq => "NMP-seq",
            SystemKind::MondrianNoperm => "Mondrian-noperm",
            SystemKind::Mondrian => "Mondrian",
        }
    }

    /// Whether compute sits in the vaults (all but the CPU baseline).
    pub fn is_nmp(&self) -> bool {
        !matches!(self, SystemKind::Cpu)
    }

    /// Whether the partitioning phase uses permutable stores.
    pub fn uses_permutability(&self) -> bool {
        matches!(self, SystemKind::NmpPerm | SystemKind::Mondrian)
    }

    /// Whether the cores have SIMD + stream buffers (Mondrian units).
    pub fn is_mondrian(&self) -> bool {
        matches!(self, SystemKind::Mondrian | SystemKind::MondrianNoperm)
    }

    /// Whether the probe phase uses the sort-based (sequential) algorithms.
    pub fn probe_is_sorted(&self) -> bool {
        matches!(self, SystemKind::NmpSeq | SystemKind::Mondrian | SystemKind::MondrianNoperm)
    }

    /// The core model for this system.
    pub fn core_config(&self) -> CoreConfig {
        match self {
            SystemKind::Cpu => CoreConfig::cortex_a57(),
            SystemKind::Nmp | SystemKind::NmpPerm | SystemKind::NmpRand | SystemKind::NmpSeq => {
                CoreConfig::krait400()
            }
            SystemKind::Mondrian | SystemKind::MondrianNoperm => CoreConfig::mondrian_a35(),
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A leased, contiguous vault subset of a machine — the handle under which
/// operators run when the machine is shared between concurrent pipeline
/// branches (machine-level multi-tenancy). The spec names the partition
/// within its parent so time, energy and NoC traffic can be attributed to
/// the physical vaults the lease covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionSpec {
    /// Lease index within the wave (used for stat attribution labels).
    pub index: u32,
    /// Global id of the partition's first vault.
    pub first_vault: u32,
    /// Number of vaults leased (a power of two).
    pub vaults: u32,
    /// Total vaults of the parent machine.
    pub total_vaults: u32,
}

impl PartitionSpec {
    /// The whole machine as a single (trivial) lease.
    pub fn whole(total_vaults: u32) -> Self {
        Self { index: 0, first_vault: 0, vaults: total_vaults, total_vaults }
    }

    /// Splits `total_vaults` into `shares` equal, disjoint, contiguous
    /// leases. Returns `None` when the machine cannot seat that many
    /// tenants (fewer vaults than shares). Shares are rounded down to the
    /// next power of two per lease, so some trailing vaults may stay idle
    /// when `shares` is not a power of two.
    pub fn split(total_vaults: u32, shares: u32) -> Option<Vec<PartitionSpec>> {
        assert!(shares > 0, "cannot split into zero shares");
        let per = (total_vaults / shares.next_power_of_two()).max(1);
        if per * shares > total_vaults {
            return None;
        }
        Some(
            (0..shares)
                .map(|i| PartitionSpec {
                    index: i,
                    first_vault: i * per,
                    vaults: per,
                    total_vaults,
                })
                .collect(),
        )
    }

    /// Whether this lease covers the whole parent machine.
    pub fn is_whole(&self) -> bool {
        self.first_vault == 0 && self.vaults == self.total_vaults
    }

    /// Splits `total_vaults` into one lease per weight, sized roughly
    /// proportionally to the weights (the planner's predicted branch
    /// costs): every lease starts at one vault, then the lease with the
    /// highest remaining weight-per-vault ratio is repeatedly doubled
    /// until no lease fits in the unassigned vaults. Sizes stay powers of
    /// two and leases are laid out largest-first, so every lease satisfies
    /// [`SystemConfig::restrict`]'s alignment rules; the returned vector is
    /// in input order with `index = i`. Deterministic (ratio ties break
    /// toward the lowest index); returns `None` exactly when
    /// [`PartitionSpec::split`] would (machine cannot seat that many
    /// tenants). Equal weights degenerate to the equal split, with any
    /// spare vaults going to the lowest-indexed branches.
    pub fn split_weighted(total_vaults: u32, weights: &[u64]) -> Option<Vec<PartitionSpec>> {
        let shares = u32::try_from(weights.len()).expect("weight count fits u32");
        assert!(shares > 0, "cannot split into zero shares");
        let per = (total_vaults / shares.next_power_of_two()).max(1);
        if per * shares > total_vaults {
            return None;
        }
        // Zero predicted cost (an empty branch) still deserves a vault of
        // progress per doubling round; clamping keeps the greedy loop from
        // starving it at a single vault forever.
        let weights: Vec<u64> = weights.iter().map(|&w| w.max(1)).collect();
        let mut sizes = vec![1u32; weights.len()];
        let mut used = shares;
        // Greedy doubling: grow the lease whose predicted cost per leased
        // vault is largest. Cross-multiplied comparison keeps this exact
        // in integers; doubling lease i consumes sizes[i] spare vaults.
        loop {
            let candidate =
                (0..weights.len()).filter(|&i| sizes[i] <= total_vaults - used).max_by(|&a, &b| {
                    let ra = weights[a] as u128 * sizes[b] as u128;
                    let rb = weights[b] as u128 * sizes[a] as u128;
                    ra.cmp(&rb).then(b.cmp(&a))
                });
            let Some(i) = candidate else { break };
            used += sizes[i];
            sizes[i] *= 2;
        }
        // Largest-first layout: offsets accumulate descending powers of
        // two, so every first_vault is a multiple of its lease size.
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(sizes[i]), i));
        let mut leases = vec![PartitionSpec::whole(total_vaults); sizes.len()];
        let mut at = 0;
        for &i in &order {
            leases[i] = PartitionSpec {
                index: u32::try_from(i).expect("lease index fits u32"),
                first_vault: at,
                vaults: sizes[i],
                total_vaults,
            };
            at += sizes[i];
        }
        Some(leases)
    }
}

/// Full machine + workload-scale configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which evaluated system.
    pub kind: SystemKind,
    /// HMC devices (4 × 8 GB in the paper).
    pub hmcs: u32,
    /// Vaults per HMC (16 × 512 MB modeled vaults).
    pub vaults_per_hmc: u32,
    /// CPU cores (16, Cloudera's 2 GB/core provisioning rule, §6).
    pub cpu_cores: u32,
    /// Vault memory model.
    pub vault: VaultConfig,
    /// Intra-HMC mesh.
    pub mesh: MeshConfig,
    /// Inter-device links.
    pub serdes: SerDesConfig,
    /// L1 cache of CPU/NMP cores.
    pub l1: CacheConfig,
    /// Shared LLC (CPU system only).
    pub llc: CacheConfig,
    /// L1 hit latency in core cycles (Table 3: 2 cycles).
    pub l1_hit_cycles: u64,
    /// Average LLC hit latency in CPU cycles (NUCA bank + on-chip hops).
    pub llc_hit_cycles: u64,
    /// Tuples per vault of the large relation (S); scaled down from the
    /// paper's 32M/vault, see DESIGN.md §2.4.
    pub tuples_per_vault: usize,
    /// |R| as a fraction denominator: |R| = |S| / r_divisor.
    pub r_divisor: usize,
    /// CPU radix bits for Join/Group-by partitioning (16 in the paper).
    pub cpu_radix_bits: u32,
    /// Fixed cost of the shuffle_begin/shuffle_end MSI barrier per phase
    /// boundary (§5.4's all-to-all notification).
    pub barrier: Time,
    /// RNG seed for dataset generation.
    pub seed: u64,
    /// When `Some`, this configuration describes a leased vault partition
    /// of a larger machine rather than a whole machine (multi-tenancy).
    pub partition: Option<PartitionSpec>,
    /// Host OS threads the simulator may use to evolve independent vault
    /// command queues in parallel: batches of simultaneous vault ticks
    /// inside the event loop poll concurrently (continuations still merge
    /// in serial pop order), and the phase tail — where vaults no longer
    /// interact through the mesh — drains fully parallel. Purely a
    /// simulation-speed knob: results are byte-identical for every value.
    /// 1 = fully serial.
    pub sim_threads: usize,
    /// Cooperative non-tick event budget over this machine's lifetime
    /// (cumulative across phases). The event loop unwinds with a
    /// structured [`crate::fault::Abort`] the moment the count would
    /// exceed the budget — the same simulated instant for every
    /// `sim_threads` value, because `VaultTick` events never count.
    pub event_budget: Option<u64>,
    /// Armed fault-injection plan for this run (no-op unless the
    /// `fault-inject` feature is compiled in).
    pub fault: Option<Arc<FaultHandle>>,
}

impl SystemConfig {
    /// The paper's topology at a laptop-scale dataset size.
    ///
    /// Vault capacity is shrunk (with proportionally scaled data) so that
    /// whole-system discrete-event simulation stays tractable; all
    /// *relative* quantities the evaluation depends on are preserved.
    pub fn scaled(kind: SystemKind) -> Self {
        let mut vault = VaultConfig::hmc();
        vault.capacity = 16 << 20; // 16 MB modeled vaults
        Self {
            kind,
            hmcs: 4,
            vaults_per_hmc: 16,
            cpu_cores: 16,
            vault,
            mesh: MeshConfig::hmc_4x4(),
            serdes: SerDesConfig::table3(),
            l1: CacheConfig::l1d(),
            llc: CacheConfig::llc(),
            l1_hit_cycles: 2,
            llc_hit_cycles: 20,
            tuples_per_vault: 8192,
            r_divisor: 1,
            cpu_radix_bits: 16,
            barrier: 200 * PS_PER_NS,
            seed: 0x6d6f6e64, // "mond"
            partition: None,
            sim_threads: 1,
            event_budget: None,
            fault: None,
        }
    }

    /// A minimal configuration for fast tests: 1 HMC, 4 vaults, 2 CPU
    /// cores, tiny relations.
    pub fn tiny(kind: SystemKind) -> Self {
        let mut cfg = Self::scaled(kind);
        cfg.hmcs = 1;
        cfg.vaults_per_hmc = 4;
        cfg.mesh = MeshConfig::square_for(4);
        cfg.cpu_cores = 2;
        cfg.tuples_per_vault = 256;
        cfg.cpu_radix_bits = 8;
        cfg
    }

    /// Total vault count.
    pub fn total_vaults(&self) -> u32 {
        self.hmcs * self.vaults_per_hmc
    }

    /// Number of compute units in this system.
    pub fn compute_units(&self) -> u32 {
        if self.kind.is_nmp() {
            self.total_vaults()
        } else {
            self.cpu_cores
        }
    }

    /// Radix bits used by the partitioning phase on this system: 16 on the
    /// CPU (cache-tuned), log2(vaults) on NMP systems (§6).
    pub fn partition_bits(&self) -> u32 {
        if self.kind.is_nmp() {
            self.total_vaults().trailing_zeros()
        } else {
            self.cpu_radix_bits
        }
    }

    /// The flat physical address map (§5.1). For a leased partition this is
    /// the partition-local (0-based) map; [`SystemConfig::partition_view`]
    /// translates back to the parent machine.
    pub fn address_map(&self) -> AddressMap {
        AddressMap::new(
            self.hmcs,
            self.vaults_per_hmc,
            self.vault.capacity,
            self.vault.row_bytes,
            self.vault.banks,
        )
    }

    /// The memory view translating this (possibly leased) machine's local
    /// vault ids and addresses back into its parent's global space. Whole
    /// machines get the identity view.
    pub fn partition_view(&self) -> PartitionView {
        let p = self.partition.unwrap_or_else(|| PartitionSpec::whole(self.total_vaults()));
        let parent = AddressMap::new(
            p.total_vaults / self.vaults_per_hmc.min(p.total_vaults),
            self.vaults_per_hmc.min(p.total_vaults),
            self.vault.capacity,
            self.vault.row_bytes,
            self.vault.banks,
        );
        parent.view(p.first_vault, p.vaults).1
    }

    /// Restricts this (whole-machine) configuration to the leased vault
    /// subset `spec`: the sub-machine keeps the per-vault hardware but owns
    /// only `spec.vaults` vaults, a proportional share of the compute (at
    /// least one CPU core on the CPU system), and partition-scoped radix
    /// bits. Mesh and SerDes configurations are inherited; the mesh is
    /// modeled per partition (dedicated bandwidth share), while SerDes
    /// traffic is still charged globally when leases are merged.
    ///
    /// # Panics
    ///
    /// Panics if the spec is misaligned (not a power-of-two, aligned,
    /// in-range subset of this machine) or if this configuration is itself
    /// already a partition.
    pub fn restrict(&self, spec: PartitionSpec) -> SystemConfig {
        assert!(self.partition.is_none(), "cannot sub-lease a leased partition");
        assert_eq!(spec.total_vaults, self.total_vaults(), "lease of a different machine");
        assert!(spec.vaults > 0 && spec.vaults.is_power_of_two(), "lease must be a power of two");
        assert!(
            spec.first_vault.is_multiple_of(spec.vaults)
                && spec.first_vault + spec.vaults <= self.total_vaults(),
            "lease [{}, {}) misaligned for {} vaults",
            spec.first_vault,
            spec.first_vault + spec.vaults,
            self.total_vaults()
        );
        let mut cfg = self.clone();
        if spec.vaults >= self.vaults_per_hmc {
            cfg.hmcs = spec.vaults / self.vaults_per_hmc;
        } else {
            cfg.hmcs = 1;
            cfg.vaults_per_hmc = spec.vaults;
        }
        cfg.cpu_cores =
            (self.cpu_cores * spec.vaults / self.total_vaults()).max(1).min(spec.vaults);
        cfg.partition = Some(spec);
        cfg.validate();
        cfg
    }

    /// Validates consistency.
    ///
    /// # Panics
    ///
    /// Panics if the topology is inconsistent (mesh too small, vault count
    /// not a power of two, CPU cores not dividing the vault count, ...).
    pub fn validate(&self) {
        assert!(self.total_vaults().is_power_of_two(), "vault count must be a power of two");
        assert!(self.mesh.tiles() >= self.vaults_per_hmc, "mesh must seat every vault");
        assert!(
            self.cpu_cores > 0 && self.total_vaults().is_multiple_of(self.cpu_cores),
            "CPU cores must evenly split the vaults"
        );
        assert!(self.tuples_per_vault >= 16, "need at least one SIMD group per vault");
        assert!(self.r_divisor >= 1);
        self.vault.validate();
    }

    /// Renders the Table 3 style parameter sheet.
    pub fn table3_sheet(&self) -> String {
        let core = self.kind.core_config();
        format!(
            "{kind}: {units} compute units ({ghz:.1} GHz, {width}-wide, {window}-entry window)\n\
             DRAM: {hmcs} HMC × {vph} vaults × {cap} MB, {row} B rows, {banks} banks\n\
             NoC: {mw}×{mh} mesh, {link} B links, {hops} cycles/hop\n\
             SerDes: {gbps:.0} Gb/s per direction\n\
             Workload: {tpv} tuples/vault, partition bits {bits}",
            kind = self.kind,
            units = self.compute_units(),
            ghz = core.clock.ghz(),
            width = core.width,
            window = core.window,
            hmcs = self.hmcs,
            vph = self.vaults_per_hmc,
            cap = self.vault.capacity >> 20,
            row = self.vault.row_bytes,
            banks = self.vault.banks,
            mw = self.mesh.width,
            mh = self.mesh.height,
            link = self.mesh.link_bytes_per_cycle,
            hops = self.mesh.hop_cycles,
            gbps = self.serdes.bytes_per_ns * 8.0,
            tpv = self.tuples_per_vault,
            bits = self.partition_bits(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_matches_paper_topology() {
        let cfg = SystemConfig::scaled(SystemKind::Mondrian);
        cfg.validate();
        assert_eq!(cfg.total_vaults(), 64);
        assert_eq!(cfg.compute_units(), 64);
        assert_eq!(cfg.partition_bits(), 6, "6 bits = 64 vaults (§6)");
        let cpu = SystemConfig::scaled(SystemKind::Cpu);
        assert_eq!(cpu.compute_units(), 16);
        assert_eq!(cpu.partition_bits(), 16, "16 low-order bits on the CPU (§6)");
    }

    #[test]
    fn core_configs_match_table3() {
        assert_eq!(SystemKind::Cpu.core_config().window, 128);
        assert_eq!(SystemKind::Nmp.core_config().window, 48);
        assert!(SystemKind::Mondrian.core_config().simd);
        assert!(!SystemKind::NmpSeq.core_config().simd);
    }

    #[test]
    fn config_flags() {
        assert!(SystemKind::NmpPerm.uses_permutability());
        assert!(SystemKind::Mondrian.uses_permutability());
        assert!(!SystemKind::MondrianNoperm.uses_permutability());
        assert!(SystemKind::NmpSeq.probe_is_sorted());
        assert!(!SystemKind::NmpRand.probe_is_sorted());
        assert!(SystemKind::Mondrian.probe_is_sorted());
        assert!(!SystemKind::Cpu.is_nmp());
    }

    #[test]
    fn tiny_is_valid() {
        for kind in SystemKind::ALL {
            SystemConfig::tiny(kind).validate();
        }
    }

    #[test]
    fn restrict_scales_topology_and_compute() {
        let cfg = SystemConfig::scaled(SystemKind::Mondrian);
        let leases = PartitionSpec::split(cfg.total_vaults(), 2).unwrap();
        let half = cfg.restrict(leases[1]);
        assert_eq!(half.total_vaults(), 32);
        assert_eq!(half.hmcs, 2);
        assert_eq!(half.compute_units(), 32, "NMP keeps one unit per leased vault");
        assert_eq!(half.partition_bits(), 5, "radix bits follow the leased vault count");
        let view = half.partition_view();
        assert_eq!(view.first_vault(), 32);
        assert_eq!(view.global_vault(0), 32);
        assert_eq!(view.parent_vaults(), 64);

        // CPU system: proportional cores, never zero.
        let cpu = SystemConfig::tiny(SystemKind::Cpu);
        let leases = PartitionSpec::split(cpu.total_vaults(), 2).unwrap();
        let half = cpu.restrict(leases[0]);
        assert_eq!(half.total_vaults(), 2);
        assert_eq!(half.cpu_cores, 1);
        assert_eq!(half.vaults_per_hmc, 2, "sub-device lease collapses onto one HMC");
    }

    #[test]
    fn split_covers_disjoint_contiguous_leases() {
        let leases = PartitionSpec::split(64, 2).unwrap();
        assert_eq!(leases.len(), 2);
        assert_eq!((leases[0].first_vault, leases[0].vaults), (0, 32));
        assert_eq!((leases[1].first_vault, leases[1].vaults), (32, 32));
        // Three tenants on 64 vaults: 16 each, 16 idle.
        let leases = PartitionSpec::split(64, 3).unwrap();
        assert_eq!(leases.iter().map(|l| l.vaults).sum::<u32>(), 48);
        // Too many tenants for the machine.
        assert!(PartitionSpec::split(2, 3).is_none());
        assert!(PartitionSpec::whole(64).is_whole());
        assert!(!leases[1].is_whole());
    }

    #[test]
    fn split_weighted_favors_heavy_branches_and_stays_aligned() {
        // Three tenants on 64 vaults: the equal split would leave 16
        // vaults idle; the weighted split hands the heavy branch a double
        // share and fills the machine.
        let three = PartitionSpec::split_weighted(64, &[1, 1, 10]).unwrap();
        assert_eq!(three[2].vaults, 32, "heavy branch gets the double share");
        assert_eq!(three.iter().map(|l| l.vaults).sum::<u32>(), 64, "spare vaults are used");
        let cfg = SystemConfig::scaled(SystemKind::Mondrian);
        for lease in &three {
            assert_eq!(cfg.restrict(*lease).total_vaults(), lease.vaults); // validates alignment
        }
        // Leases are disjoint.
        let mut spans: Vec<_> =
            three.iter().map(|l| (l.first_vault, l.first_vault + l.vaults)).collect();
        spans.sort_unstable();
        assert!(spans.windows(2).all(|w| w[0].1 <= w[1].0));

        // Equal weights degenerate to the equal split.
        let eq = PartitionSpec::split_weighted(64, &[5, 5]).unwrap();
        assert_eq!((eq[0].vaults, eq[1].vaults), (32, 32));

        // Same None condition as the equal split.
        assert!(PartitionSpec::split_weighted(2, &[1, 1, 1]).is_none());
        // All-zero weights behave like equal weights.
        let zero = PartitionSpec::split_weighted(8, &[0, 0]).unwrap();
        assert_eq!((zero[0].vaults, zero[1].vaults), (4, 4));
    }

    #[test]
    #[should_panic(expected = "cannot sub-lease")]
    fn restrict_rejects_nested_leases() {
        let cfg = SystemConfig::tiny(SystemKind::Mondrian);
        let leases = PartitionSpec::split(cfg.total_vaults(), 2).unwrap();
        cfg.restrict(leases[0]).restrict(PartitionSpec::whole(2));
    }

    #[test]
    fn table3_sheet_mentions_key_parameters() {
        let sheet = SystemConfig::scaled(SystemKind::Mondrian).table3_sheet();
        assert!(sheet.contains("64 compute units"));
        assert!(sheet.contains("256 B rows"));
        assert!(sheet.contains("160 Gb/s"));
    }
}
