//! Per-vault memory layout used by the operators.
//!
//! Each vault's contiguous partition is carved into eight equal regions.
//! Operators place their arrays at fixed region offsets, which keeps every
//! address computation explicit and lets kernels on different systems share
//! the same layout.

use mondrian_workloads::TUPLE_BYTES;

/// The eight fixed regions of a vault partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Primary input (R for joins, the relation otherwise).
    InputA,
    /// Secondary input (S for joins).
    InputB,
    /// Partition-phase destination for A / sort ping buffer.
    OutA,
    /// Partition-phase destination for B.
    OutB,
    /// Sort/merge pong buffer for A.
    PongA,
    /// Sort/merge pong buffer for B.
    PongB,
    /// Metadata: histogram counters, cursors, hash/group tables.
    Meta,
    /// Final results (join output, group aggregates, scan matches).
    Result,
}

impl Region {
    const ALL: [Region; 8] = [
        Region::InputA,
        Region::InputB,
        Region::OutA,
        Region::OutB,
        Region::PongA,
        Region::PongB,
        Region::Meta,
        Region::Result,
    ];

    fn index(self) -> u64 {
        Region::ALL.iter().position(|r| *r == self).expect("region listed") as u64
    }
}

/// Address calculator over the flat physical space.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    vault_capacity: u64,
    region_bytes: u64,
}

impl Layout {
    /// Creates the layout for vaults of `vault_capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not split into eight row-aligned
    /// regions.
    pub fn new(vault_capacity: u64) -> Self {
        assert_eq!(vault_capacity % 8, 0);
        let region_bytes = vault_capacity / 8;
        assert_eq!(region_bytes % 256, 0, "regions must be row-aligned");
        Self { vault_capacity, region_bytes }
    }

    /// Bytes per region.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }

    /// Tuple capacity of one region.
    pub fn region_tuples(&self) -> usize {
        (self.region_bytes / TUPLE_BYTES as u64) as usize
    }

    /// Base address of `region` in `vault`.
    pub fn region_base(&self, vault: u32, region: Region) -> u64 {
        vault as u64 * self.vault_capacity + region.index() * self.region_bytes
    }

    /// Address of tuple `idx` in `region` of `vault`.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds the region capacity.
    pub fn tuple_addr(&self, vault: u32, region: Region, idx: usize) -> u64 {
        assert!(idx <= self.region_tuples(), "region overflow: tuple {idx}");
        self.region_base(vault, region) + idx as u64 * TUPLE_BYTES as u64
    }

    /// Address of 8-byte metadata slot `idx` (cursors, counters) in the
    /// Meta region of `vault`.
    pub fn meta_addr(&self, vault: u32, idx: usize) -> u64 {
        let addr = self.region_base(vault, Region::Meta) + idx as u64 * 8;
        assert!(
            addr < self.region_base(vault, Region::Meta) + self.region_bytes,
            "meta overflow: slot {idx}"
        );
        addr
    }

    /// Address of 64-byte table entry `idx` in the Meta region of `vault`,
    /// offset to the region's second half so entries don't collide with
    /// counters.
    pub fn table_addr(&self, vault: u32, idx: usize) -> u64 {
        let base = self.region_base(vault, Region::Meta) + self.region_bytes / 2;
        let addr = base + idx as u64 * 64;
        assert!(
            addr + 64 <= self.region_base(vault, Region::Meta) + self.region_bytes,
            "table overflow: entry {idx}"
        );
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_cover_vault() {
        let l = Layout::new(16 << 20);
        let mut bases: Vec<u64> = Region::ALL.iter().map(|&r| l.region_base(3, r)).collect();
        bases.sort_unstable();
        for w in bases.windows(2) {
            assert_eq!(w[1] - w[0], l.region_bytes());
        }
        assert_eq!(bases[0], 3 * (16 << 20));
        assert_eq!(bases[7] + l.region_bytes(), 4 * (16 << 20));
    }

    #[test]
    fn tuple_addresses_walk_sequentially() {
        let l = Layout::new(16 << 20);
        let a0 = l.tuple_addr(0, Region::InputA, 0);
        let a1 = l.tuple_addr(0, Region::InputA, 1);
        assert_eq!(a1 - a0, 16);
    }

    #[test]
    fn meta_and_table_do_not_overlap() {
        let l = Layout::new(16 << 20);
        let meta_last = l.meta_addr(0, 1000);
        let table_first = l.table_addr(0, 0);
        assert!(meta_last < table_first);
    }

    #[test]
    #[should_panic(expected = "region overflow")]
    fn region_overflow_panics() {
        let l = Layout::new(4096 * 8);
        l.tuple_addr(0, Region::InputA, 1000);
    }
}
