//! # mondrian-core — the Mondrian Data Engine
//!
//! The paper's primary contribution, assembled from the substrate crates:
//! a near-memory-processing data-analytics engine co-designed with its
//! hardware —
//!
//! * [`config`] — the six evaluated system configurations (Table 3),
//! * [`layout`] — the flat physical address space carved into per-vault
//!   regions,
//! * [`system`] — the machine model: cores, caches, meshes, SerDes links
//!   and vault controllers in one deterministic event loop, including the
//!   permutability handshake (`shuffle_begin`/`shuffle_end`, §5.3–§5.4),
//! * [`pool`] — the persistent worker pool behind the deterministic
//!   parallel event loop (`sim_threads`): simultaneous vault ticks poll
//!   concurrently, continuations merge in serial pop order,
//! * [`experiment`] — the end-to-end driver running Scan/Sort/Group-by/Join
//!   on any system and verifying results against reference implementations,
//! * [`fault`] — structured aborts (cooperative limits, worker panics) and
//!   deterministic fault injection behind the `fault-inject` feature.
//!
//! # Quickstart
//!
//! ```
//! use mondrian_core::{ExperimentBuilder, OperatorKind, SystemKind};
//!
//! let report = ExperimentBuilder::new(OperatorKind::Scan)
//!     .system(SystemKind::Mondrian)
//!     .tiny()
//!     .tuples_per_vault(256)
//!     .run();
//! assert!(report.verified);
//! assert!(report.runtime_ps > 0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod experiment;
pub mod fault;
pub mod layout;
mod opexec;
pub mod pool;
pub mod system;

pub use config::{PartitionSpec, SystemConfig, SystemKind};
pub use experiment::{ExperimentBuilder, KeyDist, Report, StageOutput, StreamInfo};
pub use fault::{Abort, AbortReason, FaultHandle, FaultPlan};
pub use layout::{Layout, Region};
pub use mondrian_ops::OperatorKind;
pub use system::{Machine, PhaseOutcome};
