//! A persistent worker pool that polls batches of vault controllers in
//! parallel.
//!
//! The event loop in [`crate::system::Machine::run_phase`] frequently pops
//! a run of simultaneous `VaultTick` events — one per vault with DRAM work
//! due at the same picosecond. Each tick only mutates its own
//! [`VaultController`], so the polls of a batch are data-independent and
//! can execute concurrently; only the *continuations* (mesh routing,
//! event scheduling) must stay serial. This pool owns the long-lived
//! worker threads for those polls: spawning scoped threads per batch
//! would cost tens of microseconds on every one of the thousands of
//! batches in a phase, while handing a job over a channel to a parked
//! worker costs well under a microsecond.
//!
//! Determinism: the pool only *computes* `poll` results; the caller
//! merges them in batch order, so thread scheduling can never reorder
//! anything observable.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use mondrian_mem::{DramCompletion, VaultController};
use mondrian_sim::Time;

/// One poll job: advance the vault at `vault` to `time`, writing its due
/// completions into `out`.
///
/// The raw pointers make the job `Send`; soundness is the pool's
/// contract — see [`TickPool::poll_batch`].
struct Job {
    vault: *mut VaultController,
    out: *mut Vec<DramCompletion>,
    time: Time,
    /// Injected failure: the worker panics instead of polling. Exists so
    /// the panic path is testable without the `fault-inject` feature.
    boom: bool,
}

// SAFETY: a Job's pointers are only dereferenced by exactly one worker,
// target disjoint objects across the jobs of a batch (poll_batch asserts
// distinct vault indices and hands out distinct output slots), and stay
// valid for the whole batch because poll_batch blocks until every job has
// reported back before its mutable borrows end.
unsafe impl Send for Job {}

/// Long-lived poll workers fed over an mpmc-style channel
/// (`Arc<Mutex<Receiver>>`).
#[derive(Debug)]
pub struct TickPool {
    jobs: Option<Sender<Job>>,
    done: Receiver<Result<(), String>>,
    workers: Vec<JoinHandle<()>>,
}

impl TickPool {
    /// Spawns `threads` parked workers (at least one).
    pub fn new(threads: usize) -> Self {
        let (jobs_tx, jobs_rx) = channel::<Job>();
        let (done_tx, done_rx) = channel::<Result<(), String>>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let workers = (0..threads.max(1))
            .map(|_| {
                let jobs_rx = Arc::clone(&jobs_rx);
                let done_tx = done_tx.clone();
                std::thread::spawn(move || loop {
                    // Take the lock only to receive; polling runs unlocked
                    // so workers overlap.
                    let job = match jobs_rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return,
                    };
                    let Ok(job) = job else { return };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if job.boom {
                            panic!("injected vault-poll fault");
                        }
                        // SAFETY: see the Send impl — this worker is the
                        // only dereferencer of these pointers, and they
                        // outlive the batch.
                        unsafe { (*job.vault).poll_into(job.time, &mut *job.out) }
                    }))
                    .map_err(|payload| crate::fault::panic_message(payload.as_ref()));
                    let _ = done_tx.send(result);
                })
            })
            .collect();
        Self { jobs: Some(jobs_tx), done: done_rx, workers }
    }

    /// Polls `vaults[v]` at time `t` for every `(v, t)` of `batch`,
    /// writing vault `batch[k].0`'s due completions into `outs[k]`
    /// (cleared first). Blocks until the whole batch has completed.
    ///
    /// A panicking poll does **not** abort or wedge the pool: the worker
    /// catches it, the batch still drains to completion (so job and done
    /// channels stay in sync and the pool remains usable), and the first
    /// panic's message comes back as `Err`. With `boom` set, the batch's
    /// first job panics instead of polling — the deterministic injection
    /// hook for that error path.
    ///
    /// # Errors
    ///
    /// The first panic message of the batch, verbatim.
    ///
    /// # Panics
    ///
    /// Panics when the batch names a vault twice or runs past either
    /// slice.
    pub fn poll_batch(
        &self,
        vaults: &mut [VaultController],
        batch: &[(u32, Time)],
        outs: &mut [Vec<DramCompletion>],
        boom: bool,
    ) -> Result<(), String> {
        assert!(outs.len() >= batch.len(), "one output slot per batched tick");
        debug_assert!(
            {
                let mut ids: Vec<u32> = batch.iter().map(|&(v, _)| v).collect();
                ids.sort_unstable();
                ids.windows(2).all(|w| w[0] != w[1])
            },
            "batched vaults must be distinct"
        );
        let jobs = self.jobs.as_ref().expect("pool is live until dropped");
        for (k, &(v, time)) in batch.iter().enumerate() {
            let job = Job {
                vault: &mut vaults[v as usize] as *mut VaultController,
                out: &mut outs[k] as *mut Vec<DramCompletion>,
                time,
                boom: boom && k == 0,
            };
            jobs.send(job).expect("a pool worker exited early");
        }
        let mut first_err = None;
        for _ in 0..batch.len() {
            let result = self.done.recv().expect("a pool worker exited early");
            if let Err(msg) = result {
                first_err.get_or_insert(msg);
            }
        }
        match first_err {
            None => Ok(()),
            Some(msg) => Err(msg),
        }
    }
}

impl Drop for TickPool {
    fn drop(&mut self) {
        // Closing the job channel wakes every worker out of recv().
        self.jobs = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mondrian_mem::{AccessKind, DramRequest, VaultConfig};

    fn loaded_vault(base: u64, reqs: u32) -> VaultController {
        let cfg = VaultConfig::default();
        let mut vault = VaultController::new(cfg, base);
        for i in 0..reqs {
            let req = DramRequest {
                id: i as u64,
                addr: base + (i as u64) * 64,
                bytes: 64,
                kind: AccessKind::Read,
            };
            vault.enqueue(req, 0).expect("reads cannot overflow");
        }
        vault
    }

    /// The core soundness property: a batch polled on the pool yields,
    /// slot for slot, exactly what serial polls of the same vaults yield.
    #[test]
    fn pool_polls_match_serial_polls() {
        let cfg = VaultConfig::default();
        let make = || -> Vec<VaultController> {
            (0..4).map(|v| loaded_vault(v * cfg.capacity, 8)).collect()
        };
        let mut serial = make();
        let mut pooled = make();
        let pool = TickPool::new(3);
        let mut outs: Vec<Vec<DramCompletion>> = vec![Vec::new(); 4];
        // Walk both copies tick by tick until idle.
        loop {
            let batch: Vec<(u32, Time)> = serial
                .iter()
                .enumerate()
                .filter_map(|(v, vault)| vault.next_event_time().map(|t| (v as u32, t)))
                .collect();
            if batch.is_empty() {
                break;
            }
            let serial_done: Vec<Vec<DramCompletion>> =
                batch.iter().map(|&(v, t)| serial[v as usize].poll(t)).collect();
            pool.poll_batch(&mut pooled, &batch, &mut outs, false).expect("no injected fault");
            assert_eq!(&outs[..batch.len()], &serial_done[..]);
        }
        assert!(pooled.iter().all(|v| !v.busy()));
    }

    /// Same-picosecond tie-break: two vaults loaded identically complete
    /// at the same instant, and the merged completion stream is the batch
    /// order — `(time, vault, dram id)` — no matter how many workers
    /// polled or in which order they finished.
    #[test]
    fn same_picosecond_completions_merge_in_batch_order() {
        let cfg = VaultConfig::default();
        let mut vaults: Vec<VaultController> =
            (0..2).map(|v| loaded_vault(v * cfg.capacity, 1)).collect();
        let t0 = vaults[0].next_event_time().expect("loaded");
        let t1 = vaults[1].next_event_time().expect("loaded");
        assert_eq!(t0, t1, "identical load must tick at the same picosecond");

        // Drive both vaults to their (shared) completion instant.
        let pool = TickPool::new(2);
        let mut outs: Vec<Vec<DramCompletion>> = vec![Vec::new(); 2];
        let mut merged: Vec<(u32, u64, Time)> = Vec::new();
        let mut now = t0;
        for _ in 0..64 {
            let batch: Vec<(u32, Time)> = vaults
                .iter()
                .enumerate()
                .filter_map(|(v, vault)| {
                    vault.next_event_time().filter(|&t| t == now).map(|t| (v as u32, t))
                })
                .collect();
            if batch.is_empty() {
                match vaults.iter().filter_map(VaultController::next_event_time).min() {
                    Some(t) => {
                        now = t;
                        continue;
                    }
                    None => break,
                }
            }
            pool.poll_batch(&mut vaults, &batch, &mut outs, false).expect("no injected fault");
            for (k, &(v, t)) in batch.iter().enumerate() {
                for c in &outs[k] {
                    merged.push((v, c.id, t.max(c.finish)));
                }
            }
        }
        assert_eq!(merged.len(), 2, "both vaults complete");
        assert_eq!(merged[0].2, merged[1].2, "completions land on the same picosecond");
        // Stable order at the tied instant: vault 0 before vault 1.
        assert_eq!((merged[0].0, merged[1].0), (0, 1));
    }

    #[test]
    #[should_panic(expected = "one output slot per batched tick")]
    fn missing_output_slots_are_rejected() {
        let pool = TickPool::new(1);
        let mut vaults = vec![loaded_vault(0, 1)];
        let t = vaults[0].next_event_time().unwrap();
        let _ = pool.poll_batch(&mut vaults, &[(0, t)], &mut [], false);
    }

    /// A panicking vault poll neither aborts the process nor deadlocks
    /// the pool: the panic comes back as a structured `Err` carrying the
    /// payload message, and the *same* pool then serves a clean batch.
    #[test]
    fn panicking_poll_is_reported_and_pool_survives() {
        let cfg = VaultConfig::default();
        let mut vaults: Vec<VaultController> =
            (0..3).map(|v| loaded_vault(v * cfg.capacity, 4)).collect();
        let pool = TickPool::new(2);
        let mut outs: Vec<Vec<DramCompletion>> = vec![Vec::new(); 3];
        let batch: Vec<(u32, Time)> = vaults
            .iter()
            .enumerate()
            .filter_map(|(v, vault)| vault.next_event_time().map(|t| (v as u32, t)))
            .collect();
        assert_eq!(batch.len(), 3, "every vault is loaded");
        let err = pool.poll_batch(&mut vaults, &batch, &mut outs, true).unwrap_err();
        assert_eq!(err, "injected vault-poll fault", "payload message propagates verbatim");
        // The pool drained the whole batch and stays usable: drive the
        // surviving vaults to idle through the same pool instance.
        loop {
            let batch: Vec<(u32, Time)> = vaults
                .iter()
                .enumerate()
                .filter_map(|(v, vault)| vault.next_event_time().map(|t| (v as u32, t)))
                .collect();
            if batch.is_empty() {
                break;
            }
            pool.poll_batch(&mut vaults, &batch, &mut outs, false).expect("clean batch");
        }
        assert!(vaults.iter().all(|v| !v.busy()));
    }
}
