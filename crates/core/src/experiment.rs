//! The experiment driver: runs one operator on one evaluated system,
//! end to end — dataset generation, partitioning, probe, verification and
//! energy accounting.
//!
//! This module encodes §6's "Evaluated operators" and "Evaluated
//! configurations": per (operator × system) it assembles the right kernels
//! (hash-based vs sort-based, scalar vs SIMD, conventional vs permutable
//! shuffles), runs each phase on the [`Machine`], commits the functional
//! data transformation between phases, and verifies the final result
//! against reference implementations.

use std::collections::BTreeMap;
use std::sync::Arc;

use mondrian_cores::{Kernel, StoreKind};
use mondrian_energy::{
    compute_energy, CoreActivity, CoreClass, EnergyBreakdown, EnergyParams, SystemActivity,
};
use mondrian_mem::PermutableRegion;
use mondrian_ops::flat_map::{FlatMapKernel, SimdFlatMapKernel};
use mondrian_ops::groupby::{
    hash_group, sorted_group, HashAggKernel, SimdSortedAggKernel, SortedAggKernel,
    GROUP_ENTRY_BYTES,
};
use mondrian_ops::join::{
    build_index, merge_join, probe_index, HashProbeKernel, MergeJoinKernel, SimdMergeJoinKernel,
};
use mondrian_ops::operator::{operator, OpInvocation, OpSpec};
use mondrian_ops::partition::{
    exclusive_prefix, histogram_into, scatter_addresses, HistogramKernel, PermutableScatterKernel,
    ScatterKernel, SimdHistogramKernel, SimdPermutableScatterKernel, SimdScatterKernel,
};
use mondrian_ops::scan::{scan_filter, ScalarScanKernel, ScanPredicate, SimdScanKernel};
use mondrian_ops::sort::{
    bitonic_runs, merge_pass, BitonicRunKernel, QuicksortKernel, ScalarMergePassKernel,
    SimdMergePassKernel, BITONIC_RUN,
};
use mondrian_ops::{reference, Aggregates, ChainKernel, Data, OperatorKind, PartitionScheme};
use mondrian_sim::{Stats, Time};
use mondrian_workloads::{
    foreign_key_pair, uniform_relation, zipfian_relation, Tuple, TUPLE_BYTES,
};

use crate::config::{SystemConfig, SystemKind};
use crate::layout::{Layout, Region};
use crate::system::{Machine, PhaseOutcome};

/// Key distribution of the generated datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform keys — the paper's evaluation setting (§6).
    Uniform,
    /// Zipfian keys with the given skew — the future-work extension (§5.4).
    Zipf(f64),
}

/// Builder for one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    op: OperatorKind,
    cfg: SystemConfig,
    dist: KeyDist,
    /// Deliberately undersize permutable regions by this factor (failure
    /// injection for the §5.4 overflow/retry path).
    underprovision: Option<f64>,
    /// Injected input relations (replace dataset generation), in order.
    /// Single-input operators read the first; multi-input operators
    /// (union, cogroup) read all of them; for joins the first is the
    /// probe side S. Shared, not cloned: pipeline stages hand the same
    /// `Arc<[Tuple]>` to many builders.
    inputs: Vec<Arc<[Tuple]>>,
    /// Injected build relation R for joins. Without it, an injected join
    /// derives a primary-key dimension from the probe side's keys.
    build: Option<Arc<[Tuple]>>,
    /// Scan predicate override (defaults to the §6 searched-value scan).
    pred: Option<ScanPredicate>,
    /// 1→N output amplification for flat_map (None = the default of 2).
    fanout: Option<u64>,
    /// Chunked arrival of the primary input (intra-stage pipelining):
    /// the partition phase runs once per chunk instead of once over the
    /// materialized relation.
    stream: Option<Vec<Arc<[Tuple]>>>,
}

impl ExperimentBuilder {
    /// Starts from the scaled paper topology on the Mondrian system.
    pub fn new(op: OperatorKind) -> Self {
        Self {
            op,
            cfg: SystemConfig::scaled(SystemKind::Mondrian),
            dist: KeyDist::Uniform,
            underprovision: None,
            inputs: Vec::new(),
            build: None,
            pred: None,
            fanout: None,
            stream: None,
        }
    }

    /// Selects the evaluated system.
    pub fn system(mut self, kind: SystemKind) -> Self {
        let tpv = self.cfg.tuples_per_vault;
        let seed = self.cfg.seed;
        let hmcs = self.cfg.hmcs;
        let vph = self.cfg.vaults_per_hmc;
        let mut cfg = if hmcs == 1 && vph <= 4 {
            SystemConfig::tiny(kind)
        } else {
            SystemConfig::scaled(kind)
        };
        cfg.tuples_per_vault = tpv;
        cfg.seed = seed;
        self.cfg = cfg;
        self
    }

    /// Uses the minimal test topology (1 HMC × 4 vaults).
    pub fn tiny(mut self) -> Self {
        let kind = self.cfg.kind;
        let tpv = self.cfg.tuples_per_vault.min(512);
        self.cfg = SystemConfig::tiny(kind);
        self.cfg.tuples_per_vault = tpv;
        self
    }

    /// Tuples of the (large) relation per vault.
    pub fn tuples_per_vault(mut self, n: usize) -> Self {
        self.cfg.tuples_per_vault = n;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Key distribution.
    pub fn key_distribution(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Runs the operator on a leased vault partition instead of the whole
    /// machine: the experiment builds a sub-machine covering only the
    /// leased vaults (with a proportional compute share), and its report
    /// attributes time, energy and NoC traffic to that partition. Used by
    /// the pipeline scheduler to execute independent DAG branches
    /// concurrently on disjoint vault subsets.
    ///
    /// # Panics
    ///
    /// Panics if the lease is misaligned for the current configuration
    /// (see [`SystemConfig::restrict`]).
    pub fn partition(mut self, spec: crate::config::PartitionSpec) -> Self {
        self.cfg = self.cfg.restrict(spec);
        self
    }

    /// Failure injection: size permutable regions at `factor` × the needed
    /// bytes (< 1.0 forces the overflow exception and the retry round).
    pub fn underprovision_permutable(mut self, factor: f64) -> Self {
        self.underprovision = Some(factor);
        self
    }

    /// Lets the simulator execute independent vault work on up to `n`
    /// host threads: batches of simultaneous vault ticks poll in parallel
    /// throughout the phase, and the memory-drain tail runs as a parallel
    /// sweep. Simulation-speed only: continuations merge in the serial
    /// event order, so the report is byte-identical for every value.
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.cfg.sim_threads = n.max(1);
        self
    }

    /// Injects the primary input relation instead of generating a dataset:
    /// the relation is range-partitioned across vaults in order, and the
    /// run's [`Report::output`] captures the operator's actual output so
    /// multi-stage pipelines can thread relations between experiments. For
    /// joins, the injected relation is the probe side S. Replaces any
    /// previously injected inputs; use [`ExperimentBuilder::add_input`]
    /// for the further relations of multi-input operators.
    pub fn input(mut self, relation: impl Into<Arc<[Tuple]>>) -> Self {
        self.inputs = vec![relation.into()];
        self
    }

    /// Appends a further input relation — multi-input operators (union,
    /// cogroup) consume every injected relation in order.
    pub fn add_input(mut self, relation: impl Into<Arc<[Tuple]>>) -> Self {
        self.inputs.push(relation.into());
        self
    }

    /// Sets flat_map's 1→N output-amplification factor (outputs per
    /// matching input tuple). Ignored by every other operator.
    pub fn fanout(mut self, fanout: u64) -> Self {
        self.fanout = Some(fanout.max(1));
        self
    }

    /// Streams the primary input into the operator in arrival chunks
    /// instead of materializing it up front (intra-stage pipelining):
    /// the partition phase runs one histogram/scatter round per chunk —
    /// charging mesh and SerDes traffic per round — and the report
    /// records each round's simulated span ([`Report::stream`]) so a
    /// scheduler can overlap the rounds with the producer's output
    /// phase. Replaces any previously injected primary input with the
    /// chunks' concatenation; the functional output is identical to the
    /// materialized run. Only operators whose [`OpProfile`] carries
    /// `streams_input` (the partition-phase family) accept a streamed
    /// input.
    ///
    /// [`OpProfile`]: mondrian_ops::operator::OpProfile
    pub fn streamed_input(mut self, chunks: Vec<Arc<[Tuple]>>) -> Self {
        let total: Vec<Tuple> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        let total: Arc<[Tuple]> = total.into();
        if self.inputs.is_empty() {
            self.inputs.push(total);
        } else {
            self.inputs[0] = total;
        }
        self.stream = Some(chunks);
        self
    }

    /// Injects the build-side relation R of a join (used together with
    /// [`ExperimentBuilder::input`]). Without it, an injected join builds
    /// against a derived primary-key dimension over the probe keys.
    pub fn join_build(mut self, relation: impl Into<Arc<[Tuple]>>) -> Self {
        self.build = Some(relation.into());
        self
    }

    /// Overrides the Scan operator's predicate. The default remains the
    /// paper's searched-value scan (key equality with the first key).
    pub fn scan_predicate(mut self, pred: ScanPredicate) -> Self {
        self.pred = Some(pred);
        self
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or verification fails.
    pub fn run(self) -> Report {
        Experiment::new(self).run()
    }
}

/// The functional output relation of one operator run, captured so that
/// pipeline stages can feed each other. This *is* the operator IR's
/// output type — re-exported under the historical name.
pub use mondrian_ops::operator::OpOutput as StageOutput;

/// Chunked-arrival accounting of a streamed run
/// ([`ExperimentBuilder::streamed_input`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInfo {
    /// Chunks the primary input arrived in.
    pub chunks: usize,
    /// Simulated span of each chunk's partition round (histogram +
    /// scatter phases, barriers included), in arrival order. A scheduler
    /// overlapping the rounds with a producer's output phase reads the
    /// per-chunk costs from here.
    pub chunk_partition_ps: Vec<Time>,
}

/// Results of one experiment.
#[derive(Debug, Clone)]
pub struct Report {
    /// Operator evaluated.
    pub op: OperatorKind,
    /// System evaluated.
    pub system: SystemKind,
    /// Per-phase outcomes, in execution order.
    pub phases: Vec<PhaseOutcome>,
    /// End-to-end runtime.
    pub runtime_ps: Time,
    /// Instructions retired across all compute units.
    pub instructions: u64,
    /// Energy breakdown (Table 4 model).
    pub energy: EnergyBreakdown,
    /// All hardware statistics.
    pub stats: Stats,
    /// Whether the functional output matched the reference.
    pub verified: bool,
    /// Number of shuffle retry rounds taken (§5.4 overflow handling).
    pub shuffle_retries: u32,
    /// Human-readable result summary (match counts, group counts, ...).
    pub summary: String,
    /// The operator's functional output relation.
    pub output: StageOutput,
    /// The vault lease the run executed under (the whole machine unless
    /// the builder leased a partition).
    pub partition: crate::config::PartitionSpec,
    /// Machine-wide mesh traffic rollup, attributed to `partition`.
    pub mesh_totals: mondrian_noc::MeshStats,
    /// SerDes traffic rollup; always charged globally when leases merge.
    pub serdes_totals: mondrian_noc::SerDesStats,
    /// Chunked-arrival accounting when the primary input was streamed
    /// (`None` for materialized runs).
    pub stream: Option<StreamInfo>,
}

impl Report {
    /// Total time of partitioning phases.
    pub fn partition_time(&self) -> Time {
        self.phases
            .iter()
            .filter(|p| p.label.starts_with("partition."))
            .map(PhaseOutcome::duration)
            .sum()
    }

    /// Total time of probe phases.
    pub fn probe_time(&self) -> Time {
        self.phases
            .iter()
            .filter(|p| p.label.starts_with("probe."))
            .map(PhaseOutcome::duration)
            .sum()
    }

    /// Aggregate IPC across compute units (instructions / unit-cycles).
    pub fn ipc(&self) -> f64 {
        let core = self.system.core_config();
        let cycles = core.clock.ps_to_cycles_ceil(self.runtime_ps.max(1));
        let units = self.phases.first().map_or(1, |p| p.core_busy.len()) as u64;
        self.instructions as f64 / (cycles * units) as f64
    }

    /// Performance per joule, the paper's efficiency metric (Fig. 9).
    pub fn perf_per_joule(&self) -> f64 {
        1.0 / (self.runtime_ps as f64 * 1e-12 * self.energy.total_j())
    }
}

/// Per-compute-unit kernels for one phase.
type KernelSet = Vec<Option<Box<dyn Kernel>>>;

/// Destination bookkeeping of a streamed shuffle: the consumer
/// provisions its destination regions once for the whole stream, so each
/// chunk's scatter appends after the tuples earlier chunks delivered and
/// the accumulated layout equals the materialized shuffle's.
struct StreamDest {
    /// Global destination start slot of each partition, from the full
    /// stream's totals (CPU bucket space; NMP destinations are per-vault
    /// regions and ignore this).
    starts: Vec<u64>,
    /// Tuples already delivered per partition by earlier chunks.
    appended: Vec<u64>,
}

/// A relation split into per-vault partitions (shared slices, not owned
/// vectors: handing a partition to a kernel is a refcount bump).
type VaultData = Vec<Data>;

pub(crate) struct Experiment {
    op: OperatorKind,
    cfg: SystemConfig,
    dist: KeyDist,
    underprovision: Option<f64>,
    inputs: Vec<Arc<[Tuple]>>,
    build: Option<Arc<[Tuple]>>,
    pred: Option<ScanPredicate>,
    fanout: Option<u64>,
    stream: Option<Vec<Data>>,
    stream_spans: Vec<Time>,
    layout: Layout,
    machine: Machine,
    phases: Vec<PhaseOutcome>,
    shuffle_retries: u32,
}

impl Experiment {
    fn new(mut b: ExperimentBuilder) -> Self {
        if let Some(longest) = b.inputs.iter().map(|r| r.len()).max() {
            // Injected relations dictate the per-vault scale; keep the
            // configured knob consistent so capacity checks see the truth.
            let vaults = b.cfg.total_vaults() as usize;
            b.cfg.tuples_per_vault = longest.div_ceil(vaults).max(16);
        }
        b.cfg.validate();
        assert!(
            b.stream.is_none() || operator(b.op).profile().streams_input,
            "{:?} does not stream its primary input (see OpProfile::streams_input)",
            b.op
        );
        let layout = Layout::new(b.cfg.vault.capacity);
        assert!(
            b.cfg.tuples_per_vault * 2 <= layout.region_tuples(),
            "tuples_per_vault too large for the region layout"
        );
        let machine = Machine::new(b.cfg.clone());
        Self {
            op: b.op,
            cfg: b.cfg,
            dist: b.dist,
            underprovision: b.underprovision,
            inputs: b.inputs,
            build: b.build,
            pred: b.pred,
            fanout: b.fanout,
            stream: b.stream,
            stream_spans: Vec::new(),
            layout,
            machine,
            phases: Vec::new(),
            shuffle_retries: 0,
        }
    }

    /// Splits an injected relation into per-vault partitions, in order,
    /// padding trailing vaults with empty partitions.
    fn chunk_to_vaults(&self, rel: &[Tuple]) -> VaultData {
        let vaults = self.vaults();
        let per = rel.len().div_ceil(vaults).max(1);
        let mut out: VaultData = rel.chunks(per).map(Arc::from).collect();
        out.resize_with(vaults, || Vec::new().into());
        out
    }

    fn vaults(&self) -> usize {
        self.cfg.total_vaults() as usize
    }

    fn units(&self) -> usize {
        self.cfg.compute_units() as usize
    }

    /// Vaults owned by compute unit `u` (NMP: itself; CPU: a contiguous
    /// slice).
    fn vaults_of_unit(&self, u: usize) -> std::ops::Range<usize> {
        if self.cfg.kind.is_nmp() {
            u..u + 1
        } else {
            let per = self.vaults() / self.units();
            u * per..(u + 1) * per
        }
    }

    /// The vault whose Meta/scratch regions unit `u` uses.
    fn home_vault(&self, u: usize) -> u32 {
        self.vaults_of_unit(u).start as u32
    }

    fn run_phase(&mut self, kernels: KernelSet, label: &str) -> Result<PhaseOutcome, u64> {
        let outcome = self.machine.run_phase(kernels, label)?;
        self.phases.push(outcome.clone());
        self.machine.advance_time(self.cfg.barrier);
        Ok(outcome)
    }

    fn run_phase_ok(&mut self, kernels: KernelSet, label: &str) {
        self.run_phase(kernels, label)
            .unwrap_or_else(|n| panic!("phase {label}: {n} unexpected permutable overflows"));
    }

    /// Generates one relation of `total` tuples under the configured key
    /// distribution.
    fn gen_relation(&self, total: usize, key_bound: u64, seed: u64) -> Vec<Tuple> {
        match self.dist {
            KeyDist::Uniform => uniform_relation(total, key_bound, seed),
            KeyDist::Zipf(theta) => zipfian_relation(total, key_bound, theta, seed),
        }
    }

    /// Key upper bound for generated datasets: grouping operators shrink
    /// the key space per their descriptor (the paper's average group size
    /// of four, §6).
    fn generated_key_bound(&self, total: usize) -> u64 {
        let divisor = operator(self.op).profile().group_key_divisor;
        (total as u64 / divisor).max(1)
    }

    fn generate_single(&self) -> VaultData {
        if let Some(input) = self.inputs.first() {
            return self.chunk_to_vaults(input);
        }
        let n = self.cfg.tuples_per_vault;
        let total = n * self.vaults();
        let all = self.gen_relation(total, self.generated_key_bound(total), self.cfg.seed);
        all.chunks(n).map(Arc::from).collect()
    }

    fn generate_join(&self) -> (VaultData, VaultData) {
        if let Some(s) = self.inputs.first() {
            let derived: Vec<Tuple>;
            let r: &[Tuple] = match &self.build {
                Some(r) => r,
                // Derived dimension: one tuple per distinct probe key, with
                // a seeded deterministic payload.
                None => {
                    derived = mondrian_ops::operator::derive_dimension(s, self.cfg.seed);
                    &derived
                }
            };
            return (self.chunk_to_vaults(r), self.chunk_to_vaults(s));
        }
        let s_per_vault = self.cfg.tuples_per_vault;
        let r_per_vault = (s_per_vault / self.cfg.r_divisor).max(1);
        let (r, s) = foreign_key_pair(
            r_per_vault * self.vaults(),
            s_per_vault * self.vaults(),
            self.cfg.seed,
        );
        (
            r.chunks(r_per_vault).map(Arc::from).collect(),
            s.chunks(s_per_vault).map(Arc::from).collect(),
        )
    }

    /// Key upper bound of the whole dataset (for range partitioning).
    fn key_bound(&self) -> u64 {
        if !self.inputs.is_empty() {
            return self
                .inputs
                .iter()
                .flat_map(|rel| rel.iter().map(|t| t.key))
                .max()
                .map_or(1, |k| k.saturating_add(1));
        }
        self.generated_key_bound(self.cfg.tuples_per_vault * self.vaults())
    }

    fn partition_scheme(&self) -> PartitionScheme {
        let bits = self.cfg.partition_bits();
        if operator(self.op).profile().partitions_by_range {
            PartitionScheme::Range { parts: 1 << bits, key_bound: self.key_bound() }
        } else {
            PartitionScheme::LowBits { bits }
        }
    }

    /// Base address of global destination slot `slot` in `region` (CPU
    /// buckets span the region across all vaults).
    fn global_out_addr(&self, region: Region, slot: u64) -> u64 {
        let per = self.layout.region_tuples() as u64;
        self.layout.tuple_addr((slot / per) as u32, region, (slot % per) as usize)
    }

    // ----- phase builders ------------------------------------------------

    /// Histogram kernels over `input` arrays located in `region`.
    /// `meta_slot` offsets the counter array in each unit's Meta region.
    fn histogram_kernels(
        &self,
        input: &[Data],
        region: Region,
        scheme: PartitionScheme,
        meta_slot: usize,
    ) -> KernelSet {
        let simd = self.cfg.kind.is_mondrian();
        (0..self.units())
            .map(|u| {
                let counter_base = self.layout.meta_addr(self.home_vault(u), meta_slot);
                let parts: Vec<Box<dyn Kernel>> = self
                    .vaults_of_unit(u)
                    .map(|v| {
                        let base = self.layout.region_base(v as u32, region);
                        let data = input[v].clone();
                        if simd {
                            Box::new(SimdHistogramKernel::new(data, base, counter_base, scheme))
                                as Box<dyn Kernel>
                        } else {
                            Box::new(HistogramKernel::new(data, base, counter_base, scheme))
                        }
                    })
                    .collect();
                Some(Box::new(ChainKernel::new(parts)) as Box<dyn Kernel>)
            })
            .collect()
    }

    /// Conventional scatter: returns kernels plus the functional
    /// destination contents (per destination partition, in cursor order).
    /// A streamed chunk passes `stream` so its writes append after the
    /// tuples earlier chunks delivered, into regions provisioned for the
    /// whole stream — the accumulated destination layout then equals the
    /// materialized shuffle's, so downstream probe phases touch the same
    /// addresses.
    fn conventional_scatter(
        &self,
        input: &[Data],
        in_region: Region,
        out_region: Region,
        scheme: PartitionScheme,
        cursor_slot: usize,
        stream: Option<&StreamDest>,
    ) -> (KernelSet, Vec<Vec<Tuple>>) {
        let parts = scheme.parts() as usize;
        // Per-source bucket counts; sources ordered by vault index (units
        // process their vaults in order).
        let per_source: Vec<Vec<u64>> = input
            .iter()
            .map(|d| {
                let mut counts = Vec::with_capacity(parts);
                histogram_into(d, scheme, &mut counts);
                counts
            })
            .collect();
        let mut totals = vec![0u64; parts];
        for counts in &per_source {
            for (t, c) in totals.iter_mut().zip(counts) {
                *t += c;
            }
        }
        // Destination start slots.
        let starts: Vec<u64> = if self.cfg.kind.is_nmp() {
            // One partition per vault, each at the base of its out region.
            (0..parts as u64).map(|p| p * self.layout.region_tuples() as u64).collect()
        } else if let Some(stream) = stream {
            // Global bucket space provisioned from the whole stream's
            // totals, not this chunk's.
            stream.starts.clone()
        } else {
            // Global bucket space across the out regions of all vaults.
            exclusive_prefix(&totals)
        };
        // Walk sources in vault order, advancing per-destination slots
        // (streamed chunks continue where the previous chunk stopped).
        // The cursor array is one reused scratch buffer across all
        // sources, not a fresh allocation per vault.
        let mut next_in_dest: Vec<u64> =
            stream.map_or_else(|| vec![0; parts], |s| s.appended.clone());
        let mut dest_content: Vec<Vec<Tuple>> =
            totals.iter().map(|&t| Vec::with_capacity(t as usize)).collect();
        let mut source_addrs: Vec<Vec<u64>> = Vec::with_capacity(input.len());
        let mut cursors: Vec<u64> = Vec::with_capacity(parts);
        for (v, data) in input.iter().enumerate() {
            cursors.clear();
            cursors.extend((0..parts).map(|p| {
                if self.cfg.kind.is_nmp() {
                    self.layout.tuple_addr(p as u32, out_region, next_in_dest[p] as usize)
                } else {
                    self.global_out_addr(out_region, starts[p] + next_in_dest[p])
                }
            }));
            let addrs = scatter_addresses(data, scheme, &mut cursors);
            source_addrs.push(addrs);
            for (p, c) in next_in_dest.iter_mut().zip(&per_source[v]) {
                *p += c;
            }
            for t in data.iter() {
                dest_content[scheme.bucket(t.key) as usize].push(*t);
            }
            // dest_content built in source order == cursor order because
            // sources run their tuples sequentially and cursor ranges are
            // disjoint per source.
        }
        let store_kind =
            if self.cfg.kind.is_nmp() { StoreKind::Streaming } else { StoreKind::Cached };
        let simd = self.cfg.kind.is_mondrian();
        let kernels = (0..self.units())
            .map(|u| {
                let cursor_base = self.layout.meta_addr(self.home_vault(u), cursor_slot);
                let chain: Vec<Box<dyn Kernel>> = self
                    .vaults_of_unit(u)
                    .map(|v| {
                        let base = self.layout.region_base(v as u32, in_region);
                        let data = input[v].clone();
                        let addrs = source_addrs[v].clone();
                        if simd {
                            Box::new(SimdScatterKernel::new(data, base, cursor_base, addrs, scheme))
                                as Box<dyn Kernel>
                        } else {
                            Box::new(ScatterKernel::new(
                                data,
                                base,
                                cursor_base,
                                addrs,
                                store_kind,
                                scheme,
                            ))
                        }
                    })
                    .collect();
                Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
            })
            .collect();
        (kernels, dest_content)
    }

    /// Permutable scatter kernels (destination = vault = bucket).
    fn permutable_scatter_kernels(
        &self,
        input: &[Data],
        in_region: Region,
        scheme: PartitionScheme,
    ) -> KernelSet {
        assert!(self.cfg.kind.is_nmp());
        let simd = self.cfg.kind.is_mondrian();
        (0..self.units())
            .map(|u| {
                let v = u; // NMP: one vault per unit
                let base = self.layout.region_base(v as u32, in_region);
                let data = input[v].clone();
                let dsts: Vec<u32> = data.iter().map(|t| scheme.bucket(t.key)).collect();
                let k: Box<dyn Kernel> = if simd {
                    Box::new(SimdPermutableScatterKernel::new(data, base, dsts))
                } else {
                    Box::new(PermutableScatterKernel::new(data, base, dsts))
                };
                Some(k)
            })
            .collect()
    }

    /// Runs a permutable shuffle of `input` into `out_region`, handling the
    /// overflow/retry exception path. Returns the per-vault received
    /// contents in hardware arrival order. A streamed chunk passes
    /// `stream` = (destination bookkeeping, histogram meta slot): its
    /// region window opens after the tuples earlier chunks delivered (so
    /// the accumulated destination layout equals the materialized
    /// shuffle's), and the chunk's histogram kernels fuse into the
    /// scatter phase — one synchronization per consumed chunk.
    fn run_permutable_shuffle(
        &mut self,
        input: &[Data],
        in_region: Region,
        out_region: Region,
        scheme: PartitionScheme,
        label: &str,
        stream: Option<(&StreamDest, usize)>,
    ) -> Vec<Vec<Tuple>> {
        let parts = scheme.parts() as usize;
        let mut inbound = vec![0u64; parts];
        let mut counts = Vec::with_capacity(parts);
        for data in input {
            histogram_into(data, scheme, &mut counts);
            for (i, &c) in counts.iter().enumerate() {
                inbound[i] += c;
            }
        }
        let mut factor = self.underprovision.unwrap_or(1.0);
        loop {
            let row = self.cfg.vault.row_bytes as u64;
            let regions: Vec<PermutableRegion> = (0..parts)
                .map(|v| {
                    // A streamed chunk's window opens at the previous
                    // chunk's fill level, rounded down to the row
                    // boundary the §5.3 controller requires — the first
                    // arrivals of a chunk may rewrite the simulated
                    // addresses of the previous chunk's partial tail
                    // row; the arrival log, not the address trace,
                    // carries the functional content.
                    let appended = stream.map_or(0, |(s, _)| s.appended[v]) * TUPLE_BYTES as u64;
                    let exact = inbound[v] * TUPLE_BYTES as u64;
                    let size = ((exact as f64 * factor) as u64).div_ceil(256).max(1) * 256;
                    PermutableRegion {
                        base: self.layout.region_base(v as u32, out_region) + appended / row * row,
                        size,
                        object_bytes: TUPLE_BYTES,
                    }
                })
                .collect();
            self.machine.shuffle_begin(regions);
            let mut kernels = self.permutable_scatter_kernels(input, in_region, scheme);
            if let Some((_, meta_slot)) = stream {
                // §5.4 retries re-run the fused round, histogram included.
                kernels = fuse_kernel_sets(
                    self.histogram_kernels(input, in_region, scheme, meta_slot),
                    kernels,
                );
            }
            match self.run_phase(kernels, label) {
                Ok(_) => break,
                Err(_) => {
                    // §5.4: overflow raises an exception to the CPU, which
                    // re-provisions and re-runs the shuffle.
                    self.shuffle_retries += 1;
                    factor = 1.0;
                    assert!(
                        self.shuffle_retries < 4,
                        "shuffle keeps overflowing with exact sizing"
                    );
                }
            }
        }
        let arrivals = self.machine.shuffle_end();
        (0..parts as u32)
            .map(|v| {
                arrivals
                    .get(&v)
                    .map(|log| log.iter().map(|&(core, seq)| input[core][seq as usize]).collect())
                    .unwrap_or_default()
            })
            .collect()
    }

    /// Partitions one materialized relation on whatever machinery this
    /// system has. Returns per-destination contents. (Streamed chunks go
    /// through [`Experiment::partition_streamed`] instead, which fuses
    /// each chunk's histogram into its scatter round.)
    fn shuffle_relation(
        &mut self,
        input: &[Data],
        in_region: Region,
        out_region: Region,
        scheme: PartitionScheme,
        cursor_slot: usize,
        label: &str,
    ) -> Vec<Vec<Tuple>> {
        if self.cfg.kind.uses_permutability() {
            self.run_permutable_shuffle(input, in_region, out_region, scheme, label, None)
        } else {
            let (kernels, dest) =
                self.conventional_scatter(input, in_region, out_region, scheme, cursor_slot, None);
            self.run_phase_ok(kernels, label);
            dest
        }
    }

    /// Streams a relation through the partition machinery chunk by
    /// chunk: one histogram + scatter round per arrival chunk, mesh and
    /// SerDes traffic charged per round, destination contents
    /// accumulated across rounds. The simulated span of each round is
    /// recorded for the report's [`StreamInfo`], so a scheduler can
    /// overlap the rounds with the producing stage's output phase. The
    /// accumulated contents equal the materialized shuffle's up to
    /// arrival order within each destination, which every consuming
    /// probe phase canonicalizes (sorting, grouping, or canonical join
    /// rows).
    fn partition_streamed(
        &mut self,
        chunks: &[Data],
        in_region: Region,
        out_region: Region,
        scheme: PartitionScheme,
        meta_slot: usize,
        cursor_slot: usize,
    ) -> Vec<Vec<Tuple>> {
        let parts_n = scheme.parts() as usize;
        // The destination regions are provisioned once for the whole
        // stream (the bounded channel sits on the input side): CPU
        // bucket starts come from the full stream's totals, and every
        // chunk appends after the tuples earlier chunks delivered.
        let mut totals = vec![0u64; parts_n];
        let mut counts = Vec::with_capacity(parts_n);
        for chunk in chunks {
            histogram_into(chunk, scheme, &mut counts);
            for (t, &c) in totals.iter_mut().zip(&counts) {
                *t += c;
            }
        }
        let mut dest =
            StreamDest { starts: exclusive_prefix(&totals), appended: vec![0u64; parts_n] };
        let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); parts_n];
        for (k, chunk) in chunks.iter().enumerate() {
            let t0 = self.machine.now();
            let vaulted = self.chunk_to_vaults(chunk);
            let label = format!("partition.stream.c{k}");
            // One fused phase per round: the chunk's histogram chains
            // into its scatter on every compute unit, so a chunk
            // consumption step synchronizes once at its end instead of
            // once per Table 2 sub-phase — the bounded channel hands
            // over chunks, not global barriers.
            let delivered = if self.cfg.kind.uses_permutability() {
                self.run_permutable_shuffle(
                    &vaulted,
                    in_region,
                    out_region,
                    scheme,
                    &label,
                    Some((&dest, meta_slot)),
                )
            } else {
                let hist = self.histogram_kernels(&vaulted, in_region, scheme, meta_slot);
                let (scatter, delivered) = self.conventional_scatter(
                    &vaulted,
                    in_region,
                    out_region,
                    scheme,
                    cursor_slot,
                    Some(&dest),
                );
                self.run_phase_ok(fuse_kernel_sets(hist, scatter), &label);
                delivered
            };
            for ((p, d), appended) in parts.iter_mut().zip(delivered).zip(&mut dest.appended) {
                *appended += d.len() as u64;
                p.extend(d);
            }
            self.stream_spans.push(self.machine.now() - t0);
        }
        parts
    }

    // ----- operators ------------------------------------------------------

    fn run(mut self) -> Report {
        // Dispatch through the engine-side operator registry — no
        // `match OperatorKind` on the execution path.
        let (verified, summary, output) = crate::opexec::engine_operator(self.op).run(&mut self);
        self.finish(verified, summary, output)
    }

    pub(crate) fn run_scan(&mut self) -> (bool, String, StageOutput) {
        let input = self.generate_single();
        let pred = self
            .pred
            .unwrap_or_else(|| ScanPredicate::KeyEquals(input[0].first().map_or(0, |t| t.key)));
        let matches: Vec<Tuple> = input.iter().flat_map(|d| scan_filter(d, pred)).collect();
        let expect = matches.len();
        let simd = self.cfg.kind.is_mondrian();
        let kernels: KernelSet = (0..self.units())
            .map(|u| {
                let chain: Vec<Box<dyn Kernel>> = self
                    .vaults_of_unit(u)
                    .map(|v| {
                        let base = self.layout.region_base(v as u32, Region::InputA);
                        let out = self.layout.region_base(v as u32, Region::Result);
                        let data = input[v].clone();
                        if simd {
                            Box::new(SimdScanKernel::new(data, base, out, pred)) as Box<dyn Kernel>
                        } else {
                            Box::new(ScalarScanKernel::new(
                                data,
                                base,
                                out,
                                pred,
                                StoreKind::Cached,
                            ))
                        }
                    })
                    .collect();
                Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
            })
            .collect();
        self.run_phase_ok(kernels, "probe.scan");
        (true, format!("scan: {expect} matches of {pred:?}"), StageOutput::Tuples(matches))
    }

    /// Sorts each destination partition with the system's sort and returns
    /// the per-vault sorted data (for verification) plus phase bookkeeping.
    fn local_sort(
        &mut self,
        mut parts: Vec<Vec<Tuple>>,
        ping: Region,
        pong: Region,
        tag: &str,
    ) -> Vec<Vec<Tuple>> {
        let kind = self.cfg.kind;
        if !kind.is_nmp() {
            // CPU: quicksort per bucket, chained per core. Buckets live in
            // the global out space.
            let starts = {
                let counts: Vec<u64> = parts.iter().map(|p| p.len() as u64).collect();
                exclusive_prefix(&counts)
            };
            let buckets_per_unit = parts.len() / self.units();
            let kernels: KernelSet = (0..self.units())
                .map(|u| {
                    let mut chain: Vec<Box<dyn Kernel>> = Vec::new();
                    for b in u * buckets_per_unit..(u + 1) * buckets_per_unit {
                        if parts[b].is_empty() {
                            continue;
                        }
                        let base = self.global_out_addr(ping, starts[b]);
                        chain.push(Box::new(QuicksortKernel::new(&parts[b], base)));
                    }
                    Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
                })
                .collect();
            self.run_phase_ok(kernels, &format!("probe.sort.{tag}"));
            for p in &mut parts {
                p.sort_unstable();
            }
            return parts;
        }
        // NMP systems: mergesort. Mondrian opens with the SIMD bitonic pass.
        let simd = kind.is_mondrian();
        let mut run: Vec<usize> = vec![1; parts.len()];
        let mut cur: Vec<Region> = vec![ping; parts.len()];
        if simd {
            let kernels: KernelSet =
                (0..self.units())
                    .map(|v| {
                        let data = Arc::<[Tuple]>::from(parts[v].as_slice());
                        let in_base = self.layout.region_base(v as u32, ping);
                        let out_base = self.layout.region_base(v as u32, pong);
                        Some(Box::new(BitonicRunKernel::new(data, in_base, out_base))
                            as Box<dyn Kernel>)
                    })
                    .collect();
            self.run_phase_ok(kernels, &format!("probe.bitonic.{tag}"));
            for (v, p) in parts.iter_mut().enumerate() {
                *p = bitonic_runs(p, BITONIC_RUN);
                run[v] = BITONIC_RUN;
                cur[v] = pong;
            }
        }
        // Merge passes until every vault is sorted.
        let mut pass = 0u32;
        loop {
            let active: Vec<usize> =
                (0..parts.len()).filter(|&v| run[v] < parts[v].len().max(1)).collect();
            if active.is_empty() {
                break;
            }
            let kernels: KernelSet = (0..self.units())
                .map(|v| {
                    if !active.contains(&v) {
                        return None;
                    }
                    let data = Arc::<[Tuple]>::from(parts[v].as_slice());
                    let (src, dst) = if cur[v] == ping { (ping, pong) } else { (pong, ping) };
                    let in_base = self.layout.region_base(v as u32, src);
                    let out_base = self.layout.region_base(v as u32, dst);
                    let k: Box<dyn Kernel> = if simd {
                        Box::new(SimdMergePassKernel::new(data, run[v], in_base, out_base))
                    } else {
                        Box::new(ScalarMergePassKernel::new(data, run[v], in_base, out_base))
                    };
                    Some(k)
                })
                .collect();
            self.run_phase_ok(kernels, &format!("probe.merge.{tag}.{pass}"));
            for &v in &active {
                parts[v] = merge_pass(&parts[v], run[v]);
                run[v] *= 2;
                cur[v] = if cur[v] == ping { pong } else { ping };
            }
            pass += 1;
        }
        parts
    }

    pub(crate) fn run_sort(&mut self) -> (bool, String, StageOutput) {
        let scheme = self.partition_scheme();
        let cursor_slot = scheme.parts() as usize;
        let (parts, mut expect) = if let Some(chunks) = self.stream.clone() {
            let parts = self.partition_streamed(
                &chunks,
                Region::InputA,
                Region::OutA,
                scheme,
                0,
                cursor_slot,
            );
            (parts, self.inputs[0].to_vec())
        } else {
            let input = self.generate_single();
            let kernels = self.histogram_kernels(&input, Region::InputA, scheme, 0);
            self.run_phase_ok(kernels, "partition.histogram");
            let parts = self.shuffle_relation(
                &input,
                Region::InputA,
                Region::OutA,
                scheme,
                cursor_slot,
                "partition.scatter",
            );
            let whole = input.iter().flat_map(|d| d.iter().copied()).collect();
            (parts, whole)
        };
        let sorted_parts = self.local_sort(parts, Region::OutA, Region::PongA, "local");
        // Verify: concatenation in partition order is the sorted dataset.
        let mut combined: Vec<Tuple> = Vec::new();
        for p in &sorted_parts {
            combined.extend_from_slice(p);
        }
        expect.sort_unstable();
        let ok = combined == expect;
        let summary = format!("sort: {} tuples totally ordered", combined.len());
        (ok, summary, StageOutput::Tuples(combined))
    }

    pub(crate) fn run_groupby(&mut self) -> (bool, String, StageOutput) {
        let scheme = self.partition_scheme();
        let cursor_slot = scheme.parts() as usize;
        let (parts, expect) = if let Some(chunks) = self.stream.clone() {
            let parts = self.partition_streamed(
                &chunks,
                Region::InputA,
                Region::OutA,
                scheme,
                0,
                cursor_slot,
            );
            (parts, reference::grouped(&self.inputs[0]))
        } else {
            let input = self.generate_single();
            let kernels = self.histogram_kernels(&input, Region::InputA, scheme, 0);
            self.run_phase_ok(kernels, "partition.histogram");
            let parts = self.shuffle_relation(
                &input,
                Region::InputA,
                Region::OutA,
                scheme,
                cursor_slot,
                "partition.scatter",
            );
            let mut expect: BTreeMap<u64, Aggregates> = BTreeMap::new();
            for d in &input {
                for (k, a) in reference::grouped(d) {
                    expect.entry(k).or_default().merge(&a);
                }
            }
            (parts, expect)
        };
        let mut got: BTreeMap<u64, Aggregates> = BTreeMap::new();
        if self.cfg.kind.probe_is_sorted() {
            let sorted_parts = self.local_sort(parts, Region::OutA, Region::PongA, "groupby");
            let simd = self.cfg.kind.is_mondrian();
            let kernels: KernelSet = (0..self.units())
                .map(|v| {
                    let data = Arc::<[Tuple]>::from(sorted_parts[v].as_slice());
                    // The sorted copy lives in whichever buffer the last
                    // merge pass targeted; the base only affects addresses,
                    // use OutA consistently (ping/pong tracked in
                    // local_sort's phases).
                    let base = self.layout.region_base(v as u32, Region::OutA);
                    let out = self.layout.region_base(v as u32, Region::Result);
                    let k: Box<dyn Kernel> = if simd {
                        Box::new(SimdSortedAggKernel::new(data, base, out))
                    } else {
                        Box::new(SortedAggKernel::new(data, base, out))
                    };
                    Some(k)
                })
                .collect();
            self.run_phase_ok(kernels, "probe.aggregate");
            for p in &sorted_parts {
                for (k, a) in mondrian_ops::groupby::sorted_group(p) {
                    got.entry(k).or_default().merge(&a);
                }
            }
        } else if self.cfg.kind.is_nmp() {
            // NMP-rand: hash aggregation per vault. The table is sized
            // for the worst case (every key distinct): injected pipeline
            // relations — e.g. an already-grouped stage output — carry no
            // average-group-size guarantee, so the generated datasets'
            // 4-tuple groups cannot be assumed here.
            let kernels: KernelSet = (0..self.units())
                .map(|v| {
                    let data = Arc::<[Tuple]>::from(parts[v].as_slice());
                    let bits = table_bits(parts[v].len());
                    let base = self.layout.region_base(v as u32, Region::OutA);
                    let table = self.layout.table_addr(v as u32, 0);
                    Some(Box::new(HashAggKernel::new(data, base, table, bits)) as Box<dyn Kernel>)
                })
                .collect();
            self.run_phase_ok(kernels, "probe.aggregate");
            for p in &parts {
                for (k, a) in mondrian_ops::groupby::hash_group(p, table_bits(p.len())) {
                    got.entry(k).or_default().merge(&a);
                }
            }
        } else {
            // CPU: per-bucket hash aggregation, cache-resident scratch.
            let starts = {
                let counts: Vec<u64> = parts.iter().map(|p| p.len() as u64).collect();
                exclusive_prefix(&counts)
            };
            let buckets_per_unit = parts.len() / self.units();
            let kernels: KernelSet = (0..self.units())
                .map(|u| {
                    let table = self.layout.table_addr(self.home_vault(u), 0);
                    let mut chain: Vec<Box<dyn Kernel>> = Vec::new();
                    for b in u * buckets_per_unit..(u + 1) * buckets_per_unit {
                        if parts[b].is_empty() {
                            continue;
                        }
                        let base = self.global_out_addr(Region::OutA, starts[b]);
                        let bits = table_bits(parts[b].len());
                        chain.push(Box::new(HashAggKernel::new(
                            Arc::<[Tuple]>::from(parts[b].as_slice()),
                            base,
                            table,
                            bits,
                        )));
                    }
                    Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
                })
                .collect();
            self.run_phase_ok(kernels, "probe.aggregate");
            for p in &parts {
                if p.is_empty() {
                    continue;
                }
                for (k, a) in mondrian_ops::groupby::hash_group(p, table_bits(p.len())) {
                    got.entry(k).or_default().merge(&a);
                }
            }
        }
        let ok = got == expect;
        let summary = format!("group by: {} groups aggregated", got.len());
        (ok, summary, StageOutput::Groups(got))
    }

    pub(crate) fn run_join(&mut self) -> (bool, String, StageOutput) {
        let (r_in, s_in) = self.generate_join();
        let scheme = self.partition_scheme();
        let parts_n = scheme.parts() as usize;
        let (r_parts, s_parts) = if let Some(chunks) = self.stream.clone() {
            // The build side R partitions once up front; the probe side
            // S streams through the partition machinery chunk by chunk.
            let kernels = self.histogram_kernels(&r_in, Region::InputA, scheme, 0);
            self.run_phase_ok(kernels, "partition.histogram");
            let r_parts = self.shuffle_relation(
                &r_in,
                Region::InputA,
                Region::OutA,
                scheme,
                parts_n,
                "partition.scatter",
            );
            let s_parts = self.partition_streamed(
                &chunks,
                Region::InputB,
                Region::OutB,
                scheme,
                parts_n * 2,
                parts_n * 3,
            );
            (r_parts, s_parts)
        } else {
            // Histograms for both relations (separate counter arrays).
            let kernels = self.histogram_kernels(&r_in, Region::InputA, scheme, 0);
            self.run_phase_ok(kernels, "partition.histogram");
            let kernels = self.histogram_kernels(&s_in, Region::InputB, scheme, parts_n * 2);
            self.run_phase_ok(kernels, "partition.histogram.s");
            let r_parts = self.shuffle_relation(
                &r_in,
                Region::InputA,
                Region::OutA,
                scheme,
                parts_n,
                "partition.scatter",
            );
            let s_parts = self.shuffle_relation(
                &s_in,
                Region::InputB,
                Region::OutB,
                scheme,
                parts_n * 3,
                "partition.scatter.s",
            );
            (r_parts, s_parts)
        };
        let mut rows: Vec<reference::JoinRow> = Vec::new();
        if self.cfg.kind.probe_is_sorted() {
            let r_sorted = self.local_sort(r_parts, Region::OutA, Region::PongA, "r");
            let s_sorted = self.local_sort(s_parts, Region::OutB, Region::PongB, "s");
            let simd = self.cfg.kind.is_mondrian();
            let kernels: KernelSet = (0..self.units())
                .map(|v| {
                    let r = Arc::<[Tuple]>::from(r_sorted[v].as_slice());
                    let s = Arc::<[Tuple]>::from(s_sorted[v].as_slice());
                    let rb = self.layout.region_base(v as u32, Region::OutA);
                    let sb = self.layout.region_base(v as u32, Region::OutB);
                    let out = self.layout.region_base(v as u32, Region::Result);
                    let k: Box<dyn Kernel> = if simd {
                        Box::new(SimdMergeJoinKernel::new(r, s, rb, sb, out))
                    } else {
                        Box::new(MergeJoinKernel::new(r, s, rb, sb, out, StoreKind::Streaming))
                    };
                    Some(k)
                })
                .collect();
            self.run_phase_ok(kernels, "probe.mergejoin");
            for v in 0..self.vaults() {
                rows.extend(merge_join(&r_sorted[v], &s_sorted[v]));
            }
        } else if self.cfg.kind.is_nmp() {
            // NMP-rand: per-vault index build (histogram + reorder) + probe.
            let kernels: KernelSet = (0..self.units())
                .map(|v| {
                    let r = Arc::<[Tuple]>::from(r_parts[v].as_slice());
                    let s = Arc::<[Tuple]>::from(s_parts[v].as_slice());
                    let bits = index_bits(r.len());
                    let idx = Arc::new(build_index(&r, bits));
                    let rb = self.layout.region_base(v as u32, Region::OutA);
                    let reordered = self.layout.region_base(v as u32, Region::PongA);
                    let sb = self.layout.region_base(v as u32, Region::OutB);
                    let out = self.layout.region_base(v as u32, Region::Result);
                    let counter = self.layout.meta_addr(v as u32, 0);
                    let build_scheme = PartitionScheme::HashBits { bits };
                    let mut cursors: Vec<u64> = idx.offsets[..idx.offsets.len() - 1]
                        .iter()
                        .map(|&o| reordered + o as u64 * TUPLE_BYTES as u64)
                        .collect();
                    let addrs = scatter_addresses(&r, build_scheme, &mut cursors);
                    let chain: Vec<Box<dyn Kernel>> = vec![
                        Box::new(HistogramKernel::new(r.clone(), rb, counter, build_scheme)),
                        Box::new(ScatterKernel::new(
                            r.clone(),
                            rb,
                            counter,
                            addrs,
                            StoreKind::Streaming,
                            build_scheme,
                        )),
                        Box::new(HashProbeKernel::new(
                            s,
                            idx,
                            sb,
                            reordered,
                            out,
                            StoreKind::Streaming,
                        )),
                    ];
                    Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
                })
                .collect();
            self.run_phase_ok(kernels, "probe.hashjoin");
            for v in 0..self.vaults() {
                let idx = build_index(&r_parts[v], index_bits(r_parts[v].len()));
                rows.extend(probe_index(&idx, &s_parts[v]));
            }
        } else {
            // CPU: per-bucket hash join over cache-resident buckets.
            let r_starts = {
                let counts: Vec<u64> = r_parts.iter().map(|p| p.len() as u64).collect();
                exclusive_prefix(&counts)
            };
            let s_starts = {
                let counts: Vec<u64> = s_parts.iter().map(|p| p.len() as u64).collect();
                exclusive_prefix(&counts)
            };
            let buckets_per_unit = parts_n / self.units();
            let kernels: KernelSet = (0..self.units())
                .map(|u| {
                    let hv = self.home_vault(u);
                    let counter = self.layout.meta_addr(hv, 0);
                    let scratch = self.layout.region_base(hv, Region::PongA);
                    let out = self.layout.region_base(hv, Region::Result);
                    let mut chain: Vec<Box<dyn Kernel>> = Vec::new();
                    for b in u * buckets_per_unit..(u + 1) * buckets_per_unit {
                        if s_parts[b].is_empty() {
                            continue;
                        }
                        let r = Arc::<[Tuple]>::from(r_parts[b].as_slice());
                        let s = Arc::<[Tuple]>::from(s_parts[b].as_slice());
                        let rb = self.global_out_addr(Region::OutA, r_starts[b]);
                        let sb = self.global_out_addr(Region::OutB, s_starts[b]);
                        let bits = index_bits(r.len().max(2));
                        let idx = Arc::new(build_index(&r, bits));
                        let build_scheme = PartitionScheme::HashBits { bits };
                        let mut cursors: Vec<u64> = idx.offsets[..idx.offsets.len() - 1]
                            .iter()
                            .map(|&o| scratch + o as u64 * TUPLE_BYTES as u64)
                            .collect();
                        let addrs = scatter_addresses(&r, build_scheme, &mut cursors);
                        chain.push(Box::new(HistogramKernel::new(
                            r.clone(),
                            rb,
                            counter,
                            build_scheme,
                        )));
                        chain.push(Box::new(ScatterKernel::new(
                            r.clone(),
                            rb,
                            counter,
                            addrs,
                            StoreKind::Cached,
                            build_scheme,
                        )));
                        chain.push(Box::new(HashProbeKernel::new(
                            s,
                            idx,
                            sb,
                            scratch,
                            out,
                            StoreKind::Cached,
                        )));
                    }
                    Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
                })
                .collect();
            self.run_phase_ok(kernels, "probe.hashjoin");
            for b in 0..parts_n {
                if s_parts[b].is_empty() {
                    continue;
                }
                let idx = build_index(&r_parts[b], index_bits(r_parts[b].len().max(2)));
                rows.extend(probe_index(&idx, &s_parts[b]));
            }
        }
        let rows = reference::canonical(rows);
        let matches = rows.len();
        // Independent match count: per-key R multiplicities folded over S.
        // For the paper's foreign-key datasets this equals |S|; it also
        // covers injected relations with arbitrary key multiplicity.
        let expect: usize = {
            let mut r_count: BTreeMap<u64, usize> = BTreeMap::new();
            for t in r_in.iter().flat_map(|c| c.iter()) {
                *r_count.entry(t.key).or_insert(0) += 1;
            }
            s_in.iter()
                .flat_map(|c| c.iter())
                .map(|t| r_count.get(&t.key).copied().unwrap_or(0))
                .sum()
        };
        let ok = matches == expect;
        let summary = format!("join: {matches} matched rows (expected {expect})");
        (ok, summary, StageOutput::Rows(rows))
    }

    /// Union: the multi-input concatenating scan. Every input relation is
    /// chunked across the vaults and each compute unit chains a match-all
    /// scan over each input's chunk, appending to its vault's Result
    /// region — so the simulated traffic is exactly the concatenation's.
    pub(crate) fn run_union(&mut self) -> (bool, String, StageOutput) {
        let rels: Vec<Data> = if self.inputs.is_empty() {
            // Standalone: the configured dataset split into two seeded
            // halves, so the operator is exercised as a true multi-input.
            let total = self.cfg.tuples_per_vault * self.vaults();
            let bound = self.generated_key_bound(total);
            let half = (total / 2).max(1);
            vec![
                self.gen_relation(half, bound, self.cfg.seed).into(),
                self.gen_relation(total - half, bound, self.cfg.seed ^ 0x0075_6e69_6f6e).into(),
            ]
        } else {
            self.inputs.clone()
        };
        assert!(rels.len() >= 2, "union needs at least two input relations");
        let chunked: Vec<VaultData> = rels.iter().map(|r| self.chunk_to_vaults(r)).collect();
        for v in 0..self.vaults() {
            let appended: usize = chunked.iter().map(|c| c[v].len()).sum();
            assert!(
                appended <= self.layout.region_tuples(),
                "union output overflows the result region of vault {v}"
            );
        }
        let simd = self.cfg.kind.is_mondrian();
        let kernels: KernelSet = (0..self.units())
            .map(|u| {
                let mut chain: Vec<Box<dyn Kernel>> = Vec::new();
                for v in self.vaults_of_unit(u) {
                    let out_base = self.layout.region_base(v as u32, Region::Result);
                    let mut written = 0u64;
                    for (k, input) in chunked.iter().enumerate() {
                        // Inputs alternate between the two input regions;
                        // they are scanned sequentially, so reuse is a
                        // modeling choice, not a correctness one.
                        let region = if k % 2 == 0 { Region::InputA } else { Region::InputB };
                        let data = input[v].clone();
                        if data.is_empty() {
                            continue;
                        }
                        let base = self.layout.region_base(v as u32, region);
                        let out = out_base + written * TUPLE_BYTES as u64;
                        written += data.len() as u64;
                        if simd {
                            chain.push(Box::new(SimdScanKernel::new(
                                data,
                                base,
                                out,
                                ScanPredicate::All,
                            )));
                        } else {
                            chain.push(Box::new(ScalarScanKernel::new(
                                data,
                                base,
                                out,
                                ScanPredicate::All,
                                StoreKind::Cached,
                            )));
                        }
                    }
                }
                Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
            })
            .collect();
        self.run_phase_ok(kernels, "probe.union");
        // Reassemble the functional output from the *chunked* per-vault
        // data (input-major, vault order) — the reference comparison then
        // actually exercises the vault chunking, not just a re-concat of
        // the original relations.
        let tuples: Vec<Tuple> =
            chunked.iter().flat_map(|c| c.iter().flat_map(|chunk| chunk.iter().copied())).collect();
        let inputs_ref: Vec<&[Tuple]> = rels.iter().map(|r| &r[..]).collect();
        let expect = operator(OperatorKind::Union).reference(
            &OpSpec::new(OperatorKind::Union),
            &OpInvocation { inputs: &inputs_ref, build: None, seed: self.cfg.seed },
        );
        let got = StageOutput::Tuples(tuples);
        let ok = expect == got;
        let summary = format!("union: {} tuples from {} inputs", got.rows(), rels.len());
        (ok, summary, got)
    }

    /// FlatMap: the 1→N expanding scan. The kernels issue `fanout`× the
    /// stores of a plain scan, so the memory/mesh/SerDes accounting
    /// carries the output-amplification factor, and the captured
    /// [`StageOutput::Expanded`] records it for downstream consumers.
    pub(crate) fn run_flat_map(&mut self) -> (bool, String, StageOutput) {
        let input = self.generate_single();
        let fanout = self.fanout.unwrap_or(2).max(1);
        let pred = self.pred.unwrap_or(ScanPredicate::All);
        let max_chunk = input.iter().map(|d| d.len()).max().unwrap_or(0);
        assert!(
            max_chunk.saturating_mul(fanout as usize) <= self.layout.region_tuples(),
            "flat_map fanout {fanout} overflows the result region ({max_chunk} tuples/vault)"
        );
        let simd = self.cfg.kind.is_mondrian();
        let kernels: KernelSet = (0..self.units())
            .map(|u| {
                let chain: Vec<Box<dyn Kernel>> = self
                    .vaults_of_unit(u)
                    .map(|v| {
                        let base = self.layout.region_base(v as u32, Region::InputA);
                        let out = self.layout.region_base(v as u32, Region::Result);
                        let data = input[v].clone();
                        if simd {
                            Box::new(SimdFlatMapKernel::new(data, base, out, pred, fanout))
                                as Box<dyn Kernel>
                        } else {
                            Box::new(FlatMapKernel::new(
                                data,
                                base,
                                out,
                                pred,
                                fanout,
                                StoreKind::Cached,
                            ))
                        }
                    })
                    .collect();
                Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
            })
            .collect();
        self.run_phase_ok(kernels, "probe.flat_map");
        // Expand each vault's chunk and reassemble in vault order; the
        // reference runs over the unchunked relation, so the comparison
        // exercises the chunk/reassemble round trip (chunking preserves
        // input order, expansion is per-tuple).
        let tuples: Vec<Tuple> = input
            .iter()
            .flat_map(|chunk| mondrian_ops::flat_map::flat_map_expand(chunk, pred, fanout))
            .collect();
        let whole: Vec<Tuple>;
        let reference_input: &[Tuple] = match self.inputs.first() {
            Some(rel) => rel,
            None => {
                whole = input.iter().flat_map(|d| d.iter().copied()).collect();
                &whole
            }
        };
        let expect = operator(OperatorKind::FlatMap).reference(
            &OpSpec { kind: OperatorKind::FlatMap, pred: Some(pred), fanout },
            &OpInvocation { inputs: &[reference_input], build: None, seed: self.cfg.seed },
        );
        let got = StageOutput::Expanded { tuples, fanout };
        let ok = expect == got;
        let matches = got.rows() / fanout as usize;
        let summary =
            format!("flat_map: {matches} matches expanded x{fanout} to {} tuples", got.rows());
        (ok, summary, got)
    }

    /// Cogroup: the multi-input grouped join. Both relations shuffle on
    /// the partition machinery (separate histogram/scatter rounds, like a
    /// join's two sides), then each partition groups *both* sides by key
    /// — sorted aggregation on the sort-based family, hash aggregation on
    /// the hash-based one — and the per-key groups are paired.
    pub(crate) fn run_cogroup(&mut self) -> (bool, String, StageOutput) {
        let (a_full, b_full): (Data, Data) = match self.inputs.len() {
            2 => (self.inputs[0].clone(), self.inputs[1].clone()),
            0 => {
                let total = self.cfg.tuples_per_vault * self.vaults();
                let bound = self.generated_key_bound(total);
                (
                    self.gen_relation(total, bound, self.cfg.seed).into(),
                    self.gen_relation(total, bound, self.cfg.seed ^ 0x0063_6f67_726f_7570).into(),
                )
            }
            n => panic!("cogroup takes exactly two input relations, got {n}"),
        };
        let b_in = self.chunk_to_vaults(&b_full);
        let scheme = self.partition_scheme();
        let parts_n = scheme.parts() as usize;
        let (a_parts, b_parts) = if let Some(chunks) = self.stream.clone() {
            // The materialized side B partitions once up front; the
            // streamed side A follows chunk by chunk (and is never
            // materialized into per-vault slices here).
            let kernels = self.histogram_kernels(&b_in, Region::InputB, scheme, parts_n * 2);
            self.run_phase_ok(kernels, "partition.histogram.b");
            let b_parts = self.shuffle_relation(
                &b_in,
                Region::InputB,
                Region::OutB,
                scheme,
                parts_n * 3,
                "partition.scatter.b",
            );
            let a_parts =
                self.partition_streamed(&chunks, Region::InputA, Region::OutA, scheme, 0, parts_n);
            (a_parts, b_parts)
        } else {
            let a_in = self.chunk_to_vaults(&a_full);
            let kernels = self.histogram_kernels(&a_in, Region::InputA, scheme, 0);
            self.run_phase_ok(kernels, "partition.histogram");
            let kernels = self.histogram_kernels(&b_in, Region::InputB, scheme, parts_n * 2);
            self.run_phase_ok(kernels, "partition.histogram.b");
            let a_parts = self.shuffle_relation(
                &a_in,
                Region::InputA,
                Region::OutA,
                scheme,
                parts_n,
                "partition.scatter",
            );
            let b_parts = self.shuffle_relation(
                &b_in,
                Region::InputB,
                Region::OutB,
                scheme,
                parts_n * 3,
                "partition.scatter.b",
            );
            (a_parts, b_parts)
        };
        // Side-symmetric merge: fold one partition's groups into the
        // `side` half of the paired aggregates.
        fn merge_groups(
            got: &mut BTreeMap<u64, (Aggregates, Aggregates)>,
            side: usize,
            groups: impl IntoIterator<Item = (u64, Aggregates)>,
        ) {
            for (k, agg) in groups {
                let entry = got.entry(k).or_default();
                let slot = if side == 0 { &mut entry.0 } else { &mut entry.1 };
                slot.merge(&agg);
            }
        }
        let side_regions = [Region::OutA, Region::OutB];
        let mut got: BTreeMap<u64, (Aggregates, Aggregates)> = BTreeMap::new();
        if self.cfg.kind.probe_is_sorted() {
            let sorted = [
                self.local_sort(a_parts, Region::OutA, Region::PongA, "cg.a"),
                self.local_sort(b_parts, Region::OutB, Region::PongB, "cg.b"),
            ];
            let simd = self.cfg.kind.is_mondrian();
            // The two sides' aggregate streams share the Result region,
            // side B offset into the upper half; guard the split like
            // union/flat_map guard their result writes (one
            // GROUP_ENTRY_BYTES record per group, groups ≤ tuples).
            let half_bytes = self.layout.region_tuples() as u64 / 2 * TUPLE_BYTES as u64;
            for side in &sorted {
                for (v, p) in side.iter().enumerate() {
                    assert!(
                        p.len() as u64 * GROUP_ENTRY_BYTES as u64 <= half_bytes,
                        "cogroup aggregate output overflows the result region of vault {v}"
                    );
                }
            }
            let kernels: KernelSet = (0..self.units())
                .map(|v| {
                    let out = self.layout.region_base(v as u32, Region::Result);
                    let chain: Vec<Box<dyn Kernel>> = (0..2)
                        .map(|side| {
                            let data = Arc::<[Tuple]>::from(sorted[side][v].as_slice());
                            let base = self.layout.region_base(v as u32, side_regions[side]);
                            let out = out + side as u64 * half_bytes;
                            if simd {
                                Box::new(SimdSortedAggKernel::new(data, base, out))
                                    as Box<dyn Kernel>
                            } else {
                                Box::new(SortedAggKernel::new(data, base, out))
                            }
                        })
                        .collect();
                    Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
                })
                .collect();
            self.run_phase_ok(kernels, "probe.cogroup");
            for (side, parts) in sorted.iter().enumerate() {
                for p in parts {
                    merge_groups(&mut got, side, sorted_group(p));
                }
            }
        } else if self.cfg.kind.is_nmp() {
            // NMP-rand: per-vault hash aggregation, both sides chained on
            // the vault's unit (side B's table base offset one entry — the
            // sides run back to back, so the scratch space is shared).
            // Tables sized for all-distinct keys, like group-by: injected
            // sides carry no group-size guarantee.
            let sides = [&a_parts, &b_parts];
            let kernels: KernelSet = (0..self.units())
                .map(|v| {
                    let chain: Vec<Box<dyn Kernel>> = (0..2)
                        .map(|side| {
                            let data = Arc::<[Tuple]>::from(sides[side][v].as_slice());
                            let bits = table_bits(data.len());
                            let base = self.layout.region_base(v as u32, side_regions[side]);
                            Box::new(HashAggKernel::new(
                                data,
                                base,
                                self.layout.table_addr(v as u32, side),
                                bits,
                            )) as Box<dyn Kernel>
                        })
                        .collect();
                    Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
                })
                .collect();
            self.run_phase_ok(kernels, "probe.cogroup");
            for (side, parts) in sides.iter().enumerate() {
                for p in parts.iter() {
                    merge_groups(&mut got, side, hash_group(p, table_bits(p.len())));
                }
            }
        } else {
            // CPU: per-bucket hash aggregation of both sides over the
            // global bucket space, cache-resident scratch tables.
            let sides = [&a_parts, &b_parts];
            let starts: Vec<Vec<u64>> = sides
                .iter()
                .map(|parts| {
                    let counts: Vec<u64> = parts.iter().map(|p| p.len() as u64).collect();
                    exclusive_prefix(&counts)
                })
                .collect();
            let buckets_per_unit = parts_n / self.units();
            let kernels: KernelSet = (0..self.units())
                .map(|u| {
                    let hv = self.home_vault(u);
                    let mut chain: Vec<Box<dyn Kernel>> = Vec::new();
                    for bkt in u * buckets_per_unit..(u + 1) * buckets_per_unit {
                        for (side, parts) in sides.iter().enumerate() {
                            if parts[bkt].is_empty() {
                                continue;
                            }
                            chain.push(Box::new(HashAggKernel::new(
                                Arc::<[Tuple]>::from(parts[bkt].as_slice()),
                                self.global_out_addr(side_regions[side], starts[side][bkt]),
                                self.layout.table_addr(hv, side),
                                table_bits(parts[bkt].len()),
                            )));
                        }
                    }
                    Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
                })
                .collect();
            self.run_phase_ok(kernels, "probe.cogroup");
            for (side, parts) in sides.iter().enumerate() {
                for p in parts.iter() {
                    if p.is_empty() {
                        continue;
                    }
                    merge_groups(&mut got, side, hash_group(p, table_bits(p.len())));
                }
            }
        }
        let expect = operator(OperatorKind::Cogroup).reference(
            &OpSpec::new(OperatorKind::Cogroup),
            &OpInvocation { inputs: &[&a_full, &b_full], build: None, seed: self.cfg.seed },
        );
        let got = StageOutput::CoGroups(got);
        let ok = expect == got;
        let summary = format!(
            "cogroup: {} keys across {} + {} tuples",
            got.rows(),
            a_full.len(),
            b_full.len()
        );
        (ok, summary, got)
    }

    fn finish(mut self, verified: bool, summary: String, output: StageOutput) -> Report {
        let runtime = self.machine.now();
        let partition = self.machine.partition();
        let (mesh_totals, serdes_totals) = self.machine.noc_rollup();
        let stats = self.machine.export_stats();
        // Weighted per-core busy fractions across phases.
        let units = self.units();
        let mut busy = vec![0.0f64; units];
        let mut total_dur = 0u128;
        for p in &self.phases {
            let d = p.duration() as u128;
            total_dur += d;
            for (b, pb) in busy.iter_mut().zip(&p.core_busy) {
                *b += pb * d as f64;
            }
        }
        if total_dur > 0 {
            for b in &mut busy {
                *b /= total_dur as f64;
            }
        }
        let class = match self.cfg.kind {
            SystemKind::Cpu => CoreClass::Cpu,
            SystemKind::Mondrian | SystemKind::MondrianNoperm => CoreClass::Mondrian,
            _ => CoreClass::Nmp,
        };
        let dram_bits =
            (stats.sum_by_suffix("read_bytes") + stats.sum_by_suffix("write_bytes")) * 8.0;
        let serdes_bits = stats.sum_by_prefix("serdes.");
        // serdes busy bits: sum only the busy_bits entries.
        let serdes_busy: f64 = stats
            .iter()
            .filter(|(k, _)| k.starts_with("serdes.") && k.ends_with("busy_bits"))
            .map(|(_, s)| s.as_f64())
            .sum();
        let _ = serdes_bits;
        let llc_accesses =
            stats.count("llc.hits") + stats.count("llc.misses") + stats.count("llc.pending_hits");
        let activity = SystemActivity {
            runtime_ps: runtime.max(1),
            cores: busy.iter().map(|&b| CoreActivity { class, busy_fraction: b }).collect(),
            row_activations: stats.sum_by_suffix("activations") as u64,
            dram_bits_accessed: dram_bits as u64,
            hmc_cubes: self.cfg.hmcs,
            serdes_directions: self.machine.serdes_directions(),
            serdes_busy_bits: serdes_busy as u64,
            noc_bit_mm: stats.sum_by_suffix("bit_mm"),
            noc_meshes: self.cfg.hmcs,
            llc_accesses,
            has_llc: !self.cfg.kind.is_nmp(),
        };
        let energy = compute_energy(&EnergyParams::table4(), &activity);
        let instructions = self.phases.iter().map(|p| p.instructions).sum();
        let stream = self.stream.as_ref().map(|chunks| StreamInfo {
            chunks: chunks.len(),
            chunk_partition_ps: std::mem::take(&mut self.stream_spans),
        });
        Report {
            op: self.op,
            system: self.cfg.kind,
            phases: std::mem::take(&mut self.phases),
            runtime_ps: runtime,
            instructions,
            energy,
            stats,
            verified,
            shuffle_retries: self.shuffle_retries,
            summary,
            output,
            partition,
            mesh_totals,
            serdes_totals,
            stream,
        }
    }
}

/// Chains two per-unit kernel sets into one phase: each unit runs `a`'s
/// kernel, then `b`'s (a unit idle on one side runs the other's alone).
/// Streamed partition rounds use this to consume a chunk — histogram
/// then scatter — behind a single end-of-round barrier. Both sets must
/// cover the same compute units.
fn fuse_kernel_sets(a: KernelSet, b: KernelSet) -> KernelSet {
    assert_eq!(a.len(), b.len(), "fused kernel sets must cover the same units");
    a.into_iter()
        .zip(b)
        .map(|(x, y)| {
            let chain: Vec<Box<dyn Kernel>> = x.into_iter().chain(y).collect();
            Some(Box::new(ChainKernel::new(chain)) as Box<dyn Kernel>)
        })
        .collect()
}

/// Hash-table bits for roughly 2× occupancy over `entries` (group tables).
fn table_bits(entries: usize) -> u32 {
    (entries.max(2) * 2).next_power_of_two().trailing_zeros()
}

/// Join-index bits: ~2 R tuples per index range, the radix-join
/// convention — probes walk a short dependence chain.
fn index_bits(r_len: usize) -> u32 {
    (r_len.max(4) / 2).next_power_of_two().trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_experiment_runs_and_attributes_globally() {
        let cfg = SystemConfig::tiny(SystemKind::Mondrian);
        let leases = crate::config::PartitionSpec::split(cfg.total_vaults(), 2).unwrap();
        let input: Vec<Tuple> = (0..128).map(|i| Tuple::new(i % 13, i)).collect();
        let report = ExperimentBuilder::new(OperatorKind::Scan)
            .config(cfg)
            .partition(leases[1])
            .input(input)
            .scan_predicate(ScanPredicate::All)
            .run();
        assert!(report.verified);
        assert_eq!(report.partition.first_vault, 2);
        assert_eq!(report.partition.vaults, 2);
        // Stats attribute traffic to the leased global vaults (2, 3) only.
        assert!(report.stats.iter().any(|(k, _)| k.starts_with("vault.2.")));
        assert!(report.stats.iter().any(|(k, _)| k.starts_with("vault.3.")));
        assert!(!report.stats.iter().any(|(k, _)| k.starts_with("vault.0.")));
        assert!(report.mesh_totals.messages > 0, "scan traffic crosses the partition mesh");
    }

    /// The determinism contract of the parallel event loop: a
    /// shuffle-heavy operator simulated with batched parallel vault ticks
    /// must report the exact same machine — time, instructions, energy and
    /// every hardware counter — as the serial simulation, on every system
    /// shape (CPU with its LLC, NMP without one, Mondrian with permutable
    /// shuffles).
    #[test]
    fn sim_threads_do_not_change_results() {
        for (system, op) in [
            (SystemKind::Mondrian, OperatorKind::GroupBy),
            (SystemKind::NmpRand, OperatorKind::Join),
            (SystemKind::Cpu, OperatorKind::Sort),
        ] {
            let run = |threads: usize| {
                ExperimentBuilder::new(op)
                    .system(system)
                    .tiny()
                    .tuples_per_vault(128)
                    .sim_threads(threads)
                    .run()
            };
            let serial = run(1);
            for threads in [2, 4, 8] {
                let parallel = run(threads);
                assert!(serial.verified && parallel.verified);
                assert_eq!(serial.runtime_ps, parallel.runtime_ps, "{system:?}/{op:?}");
                assert_eq!(serial.instructions, parallel.instructions, "{system:?}/{op:?}");
                assert_eq!(
                    serial.stats, parallel.stats,
                    "hardware counters diverged: {system:?}/{op:?} x{threads}"
                );
                assert_eq!(serial.energy.total_j(), parallel.energy.total_j());
                assert_eq!(
                    serial.phases.iter().map(|p| (p.start, p.end)).collect::<Vec<_>>(),
                    parallel.phases.iter().map(|p| (p.start, p.end)).collect::<Vec<_>>(),
                );
            }
        }
    }

    /// The streamed-input contract: chunked arrival changes the phase
    /// schedule (per-chunk histogram/scatter rounds) but never the
    /// functional output — for every partition-phase operator.
    #[test]
    fn streamed_input_is_functionally_identical() {
        let rel: Vec<Tuple> = (0..256).map(|i| Tuple::new(i % 17, i * 3 + 1)).collect();
        let side_b: Vec<Tuple> = (0..192).map(|i| Tuple::new(i % 11, i)).collect();
        let chunks: Vec<Arc<[Tuple]>> = rel.chunks(64).map(Arc::from).collect();
        for op in [OperatorKind::Sort, OperatorKind::GroupBy, OperatorKind::Join] {
            let base = || {
                ExperimentBuilder::new(op).system(SystemKind::Mondrian).tiny().tuples_per_vault(64)
            };
            let materialized = base().input(rel.clone()).run();
            let streamed = base().streamed_input(chunks.clone()).run();
            assert!(materialized.verified && streamed.verified, "{op:?} failed");
            assert_eq!(materialized.output, streamed.output, "{op:?} output diverged");
            assert_eq!(materialized.stream, None);
            let info = streamed.stream.expect("streamed run records chunk accounting");
            assert_eq!(info.chunks, 4);
            assert_eq!(info.chunk_partition_ps.len(), 4);
            assert!(info.chunk_partition_ps.iter().all(|&t| t > 0));
            assert!(
                info.chunk_partition_ps.iter().sum::<Time>() <= streamed.runtime_ps,
                "chunk rounds are a slice of the run"
            );
        }
        // Cogroup streams side A past a materialized side B.
        let materialized = ExperimentBuilder::new(OperatorKind::Cogroup)
            .system(SystemKind::Cpu)
            .tiny()
            .input(rel.clone())
            .add_input(side_b.clone())
            .run();
        let streamed = ExperimentBuilder::new(OperatorKind::Cogroup)
            .system(SystemKind::Cpu)
            .tiny()
            .input(rel)
            .add_input(side_b)
            .streamed_input(chunks)
            .run();
        assert!(materialized.verified && streamed.verified);
        assert_eq!(materialized.output, streamed.output, "cogroup output diverged");
    }

    #[test]
    #[should_panic(expected = "does not stream its primary input")]
    fn streaming_a_scan_is_rejected() {
        let rel: Vec<Tuple> = (0..64).map(|i| Tuple::new(i, i)).collect();
        let chunks: Vec<Arc<[Tuple]>> = rel.chunks(16).map(Arc::from).collect();
        let _ = ExperimentBuilder::new(OperatorKind::Scan).tiny().streamed_input(chunks).run();
    }

    #[test]
    fn table_bits_gives_headroom() {
        assert_eq!(table_bits(2), 2);
        assert_eq!(table_bits(4), 3);
        assert_eq!(table_bits(100), 8);
        assert!(1usize << table_bits(1000) >= 2000);
    }
}
