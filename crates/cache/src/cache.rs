//! Set-associative cache with pending-fill (MSHR) tracking.

use mondrian_sim::Stats;

/// Cache geometry and limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Maximum outstanding fills (MSHRs).
    pub mshrs: u32,
}

impl CacheConfig {
    /// The CPU/NMP L1 data cache: 32 KB, 2-way, 64 B lines, 32 MSHRs.
    pub fn l1d() -> Self {
        Self { capacity: 32 << 10, ways: 2, line_bytes: 64, mshrs: 32 }
    }

    /// The Mondrian compute unit's small cache: 8 KB (§5.2), 2-way.
    pub fn mondrian_l1() -> Self {
        Self { capacity: 8 << 10, ways: 2, line_bytes: 64, mshrs: 8 }
    }

    /// The shared LLC: 4 MB, 16-way, 64 B lines.
    pub fn llc() -> Self {
        Self { capacity: 4 << 20, ways: 16, line_bytes: 64, mshrs: 64 }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity / (self.ways as u64 * self.line_bytes as u64)
    }

    /// The line-aligned base address containing `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64 * self.line_bytes as u64
    }
}

/// Result of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line is resident and ready.
    Hit,
    /// The line has an outstanding fill; the access merges onto it (no new
    /// memory traffic, but the requester must wait for the fill).
    PendingMiss,
    /// The line is absent; a fill must be started.
    Miss,
}

/// Result of starting a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// A dirty victim line that must be written back to memory, if any.
    pub writeback: Option<u64>,
}

/// Event counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Ready hits.
    pub hits: u64,
    /// Accesses that merged onto an outstanding fill.
    pub pending_hits: u64,
    /// Demand misses that started a fill.
    pub misses: u64,
    /// Fills triggered by the prefetcher.
    pub prefetch_fills: u64,
    /// Clean evictions.
    pub evictions_clean: u64,
    /// Dirty evictions (each produces a memory write).
    pub evictions_dirty: u64,
}

impl CacheStats {
    /// Total accesses observed (hits + pending hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.pending_hits + self.misses
    }

    /// Exports counters into a [`Stats`] registry under `prefix`.
    pub fn export(&self, stats: &mut Stats, prefix: &str) {
        stats.add_count(&format!("{prefix}.hits"), self.hits);
        stats.add_count(&format!("{prefix}.pending_hits"), self.pending_hits);
        stats.add_count(&format!("{prefix}.misses"), self.misses);
        stats.add_count(&format!("{prefix}.prefetch_fills"), self.prefetch_fills);
        stats.add_count(&format!("{prefix}.evictions_dirty"), self.evictions_dirty);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    Invalid,
    /// Fill in flight; data not yet usable.
    Pending,
    Valid {
        dirty: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    lru: u64,
}

/// A set-associative, write-back/write-allocate cache with true LRU and
/// MSHR-style pending-fill tracking.
///
/// The cache is a *state* model: `lookup` classifies an access, `begin_fill`
/// allocates a victim way and reports any dirty writeback, and
/// `complete_fill` makes the line usable. The embedding engine provides all
/// timing (when the fill's memory request completes, it calls
/// [`Cache::complete_fill`]).
///
/// # Example
///
/// ```
/// use mondrian_cache::{Cache, CacheConfig, Lookup};
/// let mut c = Cache::new(CacheConfig::l1d());
/// assert_eq!(c.lookup(0x40, false), Lookup::Miss);
/// c.begin_fill(0x40, false);
/// assert_eq!(c.lookup(0x40, false), Lookup::PendingMiss);
/// c.complete_fill(0x40);
/// assert_eq!(c.lookup(0x40, true), Lookup::Hit); // and now dirty
/// ```
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    outstanding: u32,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways/line).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.line_bytes > 0, "degenerate geometry");
        let sets = cfg.sets();
        assert!(sets > 0, "capacity too small for one set");
        assert!(
            cfg.capacity == sets * cfg.ways as u64 * cfg.line_bytes as u64,
            "capacity must factor exactly into sets × ways × line"
        );
        Self {
            sets: vec![
                vec![Line { tag: 0, state: LineState::Invalid, lru: 0 }; cfg.ways as usize];
                sets as usize
            ],
            cfg,
            tick: 0,
            outstanding: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes as u64;
        let set = (line % self.cfg.sets()) as usize;
        let tag = line / self.cfg.sets();
        (set, tag)
    }

    /// Classifies an access to `addr` and updates LRU/dirty state on a hit.
    pub fn lookup(&mut self, addr: u64, write: bool) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        for line in &mut self.sets[set] {
            if line.tag != tag {
                continue;
            }
            match line.state {
                LineState::Valid { dirty } => {
                    line.lru = tick;
                    if write {
                        line.state = LineState::Valid { dirty: true };
                    } else {
                        line.state = LineState::Valid { dirty };
                    }
                    self.stats.hits += 1;
                    return Lookup::Hit;
                }
                LineState::Pending => {
                    line.lru = tick;
                    self.stats.pending_hits += 1;
                    return Lookup::PendingMiss;
                }
                LineState::Invalid => {}
            }
        }
        self.stats.misses += 1;
        Lookup::Miss
    }

    /// Whether the line containing `addr` is resident and ready (no LRU or
    /// statistics side effects).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|l| l.tag == tag && matches!(l.state, LineState::Valid { .. }))
    }

    /// Whether the line containing `addr` is resident *or* has a fill in
    /// flight (no side effects) — used by prefetch filtering.
    pub fn tracked(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|l| l.tag == tag && l.state != LineState::Invalid)
    }

    /// Whether an MSHR is available for a new fill.
    pub fn mshr_available(&self) -> bool {
        self.outstanding < self.cfg.mshrs
    }

    /// Whether a fill for `addr`'s line can start right now: an MSHR is
    /// free, the line is absent, and its set has an evictable way (a set
    /// whose ways are all mid-fill cannot accept another fill).
    pub fn can_begin_fill(&self, addr: u64) -> bool {
        if !self.mshr_available() {
            return false;
        }
        let (set, tag) = self.index(addr);
        let mut evictable = false;
        for l in &self.sets[set] {
            if l.tag == tag && l.state != LineState::Invalid {
                return false; // already present or pending
            }
            evictable |= l.state != LineState::Pending;
        }
        evictable
    }

    /// Starts a fill for the line containing `addr`, evicting the LRU valid
    /// way. Set `prefetch` for prefetcher-initiated fills (counted
    /// separately).
    ///
    /// Returns the dirty victim to write back, if any.
    ///
    /// # Panics
    ///
    /// Panics if no MSHR is available or the line is already present or
    /// pending (callers must consult [`Cache::lookup`]/
    /// [`Cache::mshr_available`] first).
    pub fn begin_fill(&mut self, addr: u64, prefetch: bool) -> FillOutcome {
        assert!(self.mshr_available(), "no MSHR available");
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        assert!(
            !self.sets[set].iter().any(|l| l.tag == tag && l.state != LineState::Invalid),
            "line already present"
        );
        if prefetch {
            self.stats.prefetch_fills += 1;
        }
        self.outstanding += 1;
        let sets_count = self.cfg.sets();
        let line_bytes = self.cfg.line_bytes as u64;
        // Victim: an invalid way if any, else the LRU way that is not
        // pending (pending lines cannot be evicted mid-fill).
        let set_lines = &mut self.sets[set];
        if let Some(way) = set_lines.iter_mut().find(|l| l.state == LineState::Invalid) {
            *way = Line { tag, state: LineState::Pending, lru: tick };
            return FillOutcome { writeback: None };
        }
        let victim = set_lines
            .iter_mut()
            .filter(|l| matches!(l.state, LineState::Valid { .. }))
            .min_by_key(|l| l.lru)
            .expect("set entirely pending: callers must check can_begin_fill");
        let writeback = match victim.state {
            LineState::Valid { dirty: true } => {
                self.stats.evictions_dirty += 1;
                Some((victim.tag * sets_count + set as u64) * line_bytes)
            }
            _ => {
                self.stats.evictions_clean += 1;
                None
            }
        };
        *victim = Line { tag, state: LineState::Pending, lru: tick };
        FillOutcome { writeback }
    }

    /// Completes a previously started fill, making the line usable.
    ///
    /// # Panics
    ///
    /// Panics if no fill is pending for that line.
    pub fn complete_fill(&mut self, addr: u64) {
        let (set, tag) = self.index(addr);
        let line = self.sets[set]
            .iter_mut()
            .find(|l| l.tag == tag && l.state == LineState::Pending)
            .expect("no pending fill for line");
        line.state = LineState::Valid { dirty: false };
        self.outstanding -= 1;
    }

    /// Marks a resident line dirty (used when a write merges with a fill).
    ///
    /// Does nothing if the line is not resident.
    pub fn mark_dirty(&mut self, addr: u64) {
        let (set, tag) = self.index(addr);
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.tag == tag && matches!(l.state, LineState::Valid { .. }))
        {
            line.state = LineState::Valid { dirty: true };
        }
    }

    /// Number of fills currently outstanding.
    pub fn outstanding_fills(&self) -> u32 {
        self.outstanding
    }

    /// Event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Invalidates all contents and resets statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.state = LineState::Invalid;
            }
        }
        self.tick = 0;
        self.outstanding = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines = 256 B.
        Cache::new(CacheConfig { capacity: 256, ways: 2, line_bytes: 64, mshrs: 4 })
    }

    fn fill(c: &mut Cache, addr: u64) -> FillOutcome {
        let out = c.begin_fill(addr, false);
        c.complete_fill(addr);
        out
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::l1d();
        assert_eq!(c.sets(), 256);
        assert_eq!(CacheConfig::llc().sets(), 4096);
        assert_eq!(c.line_of(0x7f), 0x40);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(0, false), Lookup::Miss);
        fill(&mut c, 0);
        assert_eq!(c.lookup(0, false), Lookup::Hit);
        assert_eq!(c.lookup(63, false), Lookup::Hit, "same line");
        assert_eq!(c.lookup(64, false), Lookup::Miss, "next line");
    }

    #[test]
    fn pending_fill_merges() {
        let mut c = tiny();
        assert_eq!(c.lookup(0, false), Lookup::Miss);
        c.begin_fill(0, false);
        assert_eq!(c.lookup(0, false), Lookup::PendingMiss);
        assert_eq!(c.stats().pending_hits, 1);
        c.complete_fill(0);
        assert_eq!(c.lookup(0, false), Lookup::Hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 128 (2 sets × 64 B ⇒ stride 128).
        fill(&mut c, 0);
        fill(&mut c, 128);
        c.lookup(0, false); // touch 0 → LRU is 128
        fill(&mut c, 256); // evicts 128
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        fill(&mut c, 0);
        c.lookup(0, true); // dirty, but then 128 is filled later → 0 is LRU
        fill(&mut c, 128);
        let out = c.begin_fill(256, false);
        assert_eq!(out.writeback, Some(0), "dirty LRU line 0 must write back");
        assert_eq!(c.stats().evictions_dirty, 1);
        c.complete_fill(256);
        // Touch 128, then evict: victim is 256 (filled earlier), clean.
        c.lookup(128, false);
        let out = c.begin_fill(0, false);
        assert_eq!(out.writeback, None);
        assert_eq!(c.stats().evictions_clean, 1);
    }

    #[test]
    fn writeback_address_reconstruction() {
        let mut c = tiny();
        // Line at 0x1080: line index 66, set = 66 % 2 = 0, tag = 33.
        fill(&mut c, 0x1080);
        c.lookup(0x1080, true);
        fill(&mut c, 0x80); // same set (line 2, set 0)
        let out = c.begin_fill(0x180, false); // set 1? line 6 → set 0. evict LRU = 0x1080
        assert_eq!(out.writeback, Some(0x1080));
    }

    #[test]
    fn mshr_limit() {
        let mut c = Cache::new(CacheConfig { capacity: 512, ways: 2, line_bytes: 64, mshrs: 2 });
        c.begin_fill(0, false);
        c.begin_fill(64, false);
        assert!(!c.mshr_available());
        c.complete_fill(0);
        assert!(c.mshr_available());
        assert_eq!(c.outstanding_fills(), 1);
    }

    #[test]
    fn write_hit_marks_dirty_for_later_eviction() {
        let mut c = tiny();
        fill(&mut c, 0);
        assert_eq!(c.lookup(0, true), Lookup::Hit);
        fill(&mut c, 128);
        c.lookup(128, false);
        // Evicting line 0 must now produce a writeback.
        let out = c.begin_fill(256, false);
        assert_eq!(out.writeback, Some(0));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn double_fill_panics() {
        let mut c = tiny();
        fill(&mut c, 0);
        c.begin_fill(0, false);
    }

    #[test]
    fn reset_clears_all() {
        let mut c = tiny();
        fill(&mut c, 0);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.stats().accesses(), 0);
    }
}
