//! Next-line prefetcher.
//!
//! Table 3: "Both the CPU and the NMP baseline systems feature a next-line
//! prefetcher, capable of issuing prefetches for up to three next cache
//! lines." The prefetcher reacts to demand misses; the engine filters the
//! candidates against cache contents and MSHR availability before issuing
//! fills.

/// A next-N-line prefetcher.
///
/// # Example
///
/// ```
/// use mondrian_cache::NextLinePrefetcher;
/// let pf = NextLinePrefetcher::new(3, 64);
/// assert_eq!(pf.candidates(0x1000), vec![0x1040, 0x1080, 0x10c0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextLinePrefetcher {
    depth: u32,
    line_bytes: u32,
}

impl NextLinePrefetcher {
    /// Creates a prefetcher fetching up to `depth` lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is zero.
    pub fn new(depth: u32, line_bytes: u32) -> Self {
        assert!(line_bytes > 0, "line size must be non-zero");
        Self { depth, line_bytes }
    }

    /// The paper's configuration: three lines ahead, 64 B lines.
    pub fn table3() -> Self {
        Self::new(3, 64)
    }

    /// Prefetch depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Line addresses to prefetch after a demand miss on the line containing
    /// `miss_addr`.
    pub fn candidates(&self, miss_addr: u64) -> Vec<u64> {
        let line = miss_addr / self.line_bytes as u64 * self.line_bytes as u64;
        (1..=self.depth as u64).map(|i| line + i * self.line_bytes as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_are_next_lines() {
        let pf = NextLinePrefetcher::table3();
        assert_eq!(pf.candidates(130), vec![192, 256, 320]);
    }

    #[test]
    fn zero_depth_is_disabled() {
        let pf = NextLinePrefetcher::new(0, 64);
        assert!(pf.candidates(0).is_empty());
    }

    #[test]
    fn unaligned_addresses_align_to_line() {
        let pf = NextLinePrefetcher::new(1, 64);
        assert_eq!(pf.candidates(63), vec![64]);
        assert_eq!(pf.candidates(64), vec![128]);
    }
}
