//! # mondrian-cache
//!
//! Cache-hierarchy models for the Mondrian Data Engine reproduction.
//!
//! The CPU-centric baseline (Table 3) relies on a classic hierarchy — 32 KB
//! 2-way L1d caches per core, a shared 4 MB 16-way NUCA LLC, 32 MSHRs and a
//! next-3-line prefetcher — which is exactly the machinery the paper argues
//! is mismatched with large-scale analytics (§3). The NMP baseline keeps the
//! same L1s near each vault. This crate provides:
//!
//! * [`Cache`] — a set-associative, write-back/write-allocate cache with
//!   true-LRU replacement and **pending-fill** (MSHR) states so that a line
//!   is usable only after its memory fill actually completes; secondary
//!   misses merge onto the outstanding fill,
//! * [`NextLinePrefetcher`] — the paper's next-line prefetcher (up to three
//!   lines ahead), and
//! * [`CacheStats`] — hit/miss/writeback accounting for the energy model.
//!
//! Timing is owned by the engine crate: `Cache` decides *what* happens
//! (hit, merged miss, fill, eviction), the engine decides *when*.

#![warn(missing_docs)]

mod cache;
mod prefetch;

pub use cache::{Cache, CacheConfig, CacheStats, FillOutcome, Lookup};
pub use prefetch::NextLinePrefetcher;
