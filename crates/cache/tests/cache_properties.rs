//! Property-based tests for the cache model.

use std::collections::HashMap;

use proptest::prelude::*;

use mondrian_cache::{Cache, CacheConfig, Lookup};

/// Reference model for a direct-mapped cache: one tag per set.
#[derive(Default)]
struct DirectMappedRef {
    sets: HashMap<u64, (u64, bool)>, // set -> (tag, dirty)
    line_bytes: u64,
    set_count: u64,
}

impl DirectMappedRef {
    fn new(cfg: &CacheConfig) -> Self {
        Self { sets: HashMap::new(), line_bytes: cfg.line_bytes as u64, set_count: cfg.sets() }
    }

    /// Returns (hit, writeback address).
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let line = addr / self.line_bytes;
        let set = line % self.set_count;
        let tag = line / self.set_count;
        match self.sets.get_mut(&set) {
            Some((t, dirty)) if *t == tag => {
                *dirty |= write;
                (true, None)
            }
            Some((t, dirty)) => {
                let wb = dirty.then(|| (*t * self.set_count + set) * self.line_bytes);
                *t = tag;
                *dirty = write;
                (false, wb)
            }
            None => {
                self.sets.insert(set, (tag, write));
                (false, None)
            }
        }
    }
}

fn small_cfg() -> CacheConfig {
    CacheConfig { capacity: 1024, ways: 1, line_bytes: 64, mshrs: 4 }
}

proptest! {
    /// A direct-mapped instance of the general model must agree exactly with
    /// the naive reference on hits, misses and writebacks when fills
    /// complete synchronously.
    #[test]
    fn direct_mapped_matches_reference(
        accesses in prop::collection::vec((0u64..8192, any::<bool>()), 1..500)
    ) {
        let cfg = small_cfg();
        let mut dut = Cache::new(cfg);
        let mut reference = DirectMappedRef::new(&cfg);
        for &(addr, write) in &accesses {
            let (ref_hit, ref_wb) = reference.access(addr, write);
            match dut.lookup(addr, write) {
                Lookup::Hit => prop_assert!(ref_hit, "dut hit, ref miss @{addr:#x}"),
                Lookup::Miss => {
                    prop_assert!(!ref_hit, "dut miss, ref hit @{addr:#x}");
                    let out = dut.begin_fill(addr, false);
                    prop_assert_eq!(out.writeback, ref_wb);
                    dut.complete_fill(addr);
                    if write {
                        dut.mark_dirty(addr);
                    }
                }
                Lookup::PendingMiss => prop_assert!(false, "no fills outstanding"),
            }
        }
    }

    /// The cache never holds more valid lines than its capacity allows, and
    /// every access after a synchronous fill hits.
    #[test]
    fn fills_make_lines_resident(
        addrs in prop::collection::vec(0u64..65536, 1..200)
    ) {
        let mut c = Cache::new(CacheConfig { capacity: 2048, ways: 4, line_bytes: 64, mshrs: 8 });
        for &addr in &addrs {
            if c.lookup(addr, false) == Lookup::Miss {
                c.begin_fill(addr, false);
                c.complete_fill(addr);
            }
            prop_assert!(c.probe(addr), "line must be resident after fill");
        }
        // Re-touching the most recent line always hits.
        let last = *addrs.last().unwrap();
        prop_assert_eq!(c.lookup(last, false), Lookup::Hit);
    }

    /// Outstanding fills never exceed the MSHR budget and always settle to
    /// zero after completion.
    #[test]
    fn mshr_budget_respected(lines in prop::collection::vec(0u64..64, 1..64)) {
        let mut c = Cache::new(CacheConfig { capacity: 8192, ways: 2, line_bytes: 64, mshrs: 4 });
        let mut in_flight: Vec<u64> = Vec::new();
        for &l in &lines {
            let addr = l * 64;
            if in_flight.contains(&addr) || c.probe(addr) {
                continue;
            }
            if !c.mshr_available() {
                // Drain one.
                let done = in_flight.remove(0);
                c.complete_fill(done);
            }
            if c.lookup(addr, false) == Lookup::Miss {
                c.begin_fill(addr, false);
                in_flight.push(addr);
            }
            prop_assert!(c.outstanding_fills() <= 4);
        }
        for addr in in_flight {
            c.complete_fill(addr);
        }
        prop_assert_eq!(c.outstanding_fills(), 0);
    }
}
