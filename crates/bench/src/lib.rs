//! # mondrian-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§7). Each `benches/*.rs` target is a standalone
//! binary (`harness = false`) that runs the relevant experiments on the
//! simulated systems and prints the same rows/series the paper reports:
//!
//! * `table5_partition` — partition-phase speedups vs CPU (Table 5),
//! * `fig6_probe` — probe-phase speedups per operator (Fig. 6),
//! * `fig7_overall` — end-to-end speedups (Fig. 7),
//! * `fig8_energy` — energy breakdowns (Fig. 8),
//! * `fig9_efficiency` — performance/energy vs CPU (Fig. 9),
//! * `tables_1_2` — the static operator-characterization tables,
//! * `ablations` — row-buffer size, SIMD width, stream-buffer, window and
//!   object-size sweeps backing the design discussion, and
//! * `micro` — Criterion micro-benchmarks of the substrate models.
//!
//! Scale knobs come from the environment so `cargo bench` stays fast by
//! default: `MONDRIAN_BENCH_TPV` (tuples per vault, default 1024) and
//! `MONDRIAN_BENCH_SEED`.

#![warn(missing_docs)]

use mondrian_core::{ExperimentBuilder, OperatorKind, Report, SystemKind};

/// Tuples per vault for bench runs (`MONDRIAN_BENCH_TPV`, default 1024).
pub fn bench_tpv() -> usize {
    std::env::var("MONDRIAN_BENCH_TPV").ok().and_then(|v| v.parse().ok()).unwrap_or(1024)
}

/// Dataset seed for bench runs (`MONDRIAN_BENCH_SEED`, default paper seed).
pub fn bench_seed() -> u64 {
    std::env::var("MONDRIAN_BENCH_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0x6d6f6e64)
}

/// Runs one experiment at bench scale, asserting functional correctness.
pub fn run(op: OperatorKind, system: SystemKind) -> Report {
    let report = ExperimentBuilder::new(op)
        .system(system)
        .tuples_per_vault(bench_tpv())
        .seed(bench_seed())
        .run();
    assert!(report.verified, "{op} on {system} failed verification");
    report
}

/// Formats a speedup ("49.2x") or "1.0x" baseline cell.
pub fn speedup(base: u64, this: u64) -> String {
    format!("{:.1}x", base as f64 / this.max(1) as f64)
}

/// Prints the standard bench header.
pub fn header(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!(
        "(reproduces {paper_ref}; tuples/vault = {}, seed = {:#x})",
        bench_tpv(),
        bench_seed()
    );
    println!("note: magnitudes are shape-comparable, not absolute — see EXPERIMENTS.md\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert!(bench_tpv() >= 16);
        assert_eq!(speedup(100, 10), "10.0x");
        assert_eq!(speedup(100, 0), "100.0x");
    }
}
