//! Whole-pipeline speedups: the three-stage Filter → ReduceByKey →
//! SortByKey query on every evaluated system, relative to the CPU
//! baseline. Extends the per-operator evaluation (Figs. 6–7) to the
//! multi-stage queries the paper's Table 1 motivates.

use mondrian_bench::{bench_seed, bench_tpv, header, speedup};
use mondrian_core::SystemKind;
use mondrian_pipeline::{Pipeline, PipelineConfig, StageSpec};

fn main() {
    header("Pipeline: Filter -> ReduceByKey -> SortByKey", "Table 1 / Fig. 7 extension");
    let pipeline = Pipeline::new(vec![
        StageSpec::Filter { modulus: 10, remainder: 0 },
        StageSpec::ReduceByKey,
        StageSpec::SortByKey,
    ]);
    let run = |system: SystemKind| {
        let mut cfg = PipelineConfig::new(system);
        cfg.tuples_per_vault = bench_tpv();
        cfg.seed = bench_seed();
        let report = pipeline.run(&cfg);
        assert!(report.verified(), "pipeline failed verification on {system}");
        report
    };
    let cpu = run(SystemKind::Cpu);
    println!(
        "{:<16} {:>14} {:>12} {:>12} {:>10}",
        "system", "runtime µs", "energy µJ", "speedup", "rows out"
    );
    for system in SystemKind::ALL {
        // The baseline is already simulated; don't pay for the most
        // expensive system twice.
        let report = if system == SystemKind::Cpu { cpu.clone() } else { run(system) };
        println!(
            "{:<16} {:>14.3} {:>12.3} {:>12} {:>10}",
            system.name(),
            report.runtime_ps() as f64 / 1e6,
            report.energy_j() * 1e6,
            speedup(cpu.runtime_ps(), report.runtime_ps()),
            report.output.len(),
        );
    }
}
