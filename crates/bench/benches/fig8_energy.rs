//! Figure 8: energy breakdown per system and operator, in the paper's four
//! categories — DRAM dynamic, DRAM static, cores (incl. caches), and
//! SerDes + NoC.
//!
//! Paper shape: the CPU's energy is dominated by its cores; the NMP
//! systems by DRAM static and SerDes; Mondrian's static share shrinks
//! because it finishes sooner at higher utilization.

use mondrian_bench::{header, run};
use mondrian_core::{OperatorKind, SystemKind};

fn main() {
    header("Figure 8: energy breakdown", "Fig. 8 (§7.2)");
    let systems = [SystemKind::Cpu, SystemKind::Nmp, SystemKind::NmpPerm, SystemKind::Mondrian];
    println!(
        "{:<10} {:<12} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "Operator", "System", "DRAM dyn", "DRAM stat", "cores", "SerDes+NoC", "total µJ"
    );
    for op in OperatorKind::BASIC {
        for &system in &systems {
            let report = run(op, system);
            let shares = report.energy.fig8_shares();
            println!(
                "{:<10} {:<12} {:>9.1}% {:>9.1}% {:>9.1}% {:>11.1}% {:>12.3}",
                op.name(),
                system.name(),
                shares[0] * 100.0,
                shares[1] * 100.0,
                shares[2] * 100.0,
                shares[3] * 100.0,
                report.energy.total_j() * 1e6
            );
        }
        println!();
    }
}
