//! Table 5: partition-phase speedup over the CPU baseline.
//!
//! Paper values: NMP 58×, NMP-perm 98×, Mondrian-noperm 142×, Mondrian 273×.
//! The partition phase is nearly identical across operators, so — like the
//! paper — we report it for Join.

use mondrian_bench::{header, run, speedup};
use mondrian_core::{OperatorKind, SystemKind};

fn main() {
    header("Table 5: partition speedup vs CPU", "Table 5 (§7.1)");
    let systems = [
        SystemKind::Cpu,
        SystemKind::Nmp,
        SystemKind::NmpPerm,
        SystemKind::MondrianNoperm,
        SystemKind::Mondrian,
    ];
    let paper = ["1x", "58x", "98x", "142x", "273x"];
    let reports: Vec<_> = systems.iter().map(|&s| run(OperatorKind::Join, s)).collect();
    let cpu = reports[0].partition_time();
    println!("{:<18} {:>12} {:>10} {:>10}", "System", "partition µs", "measured", "paper");
    for ((report, system), paper) in reports.iter().zip(&systems).zip(&paper) {
        println!(
            "{:<18} {:>12.3} {:>10} {:>10}",
            system.name(),
            report.partition_time() as f64 / 1e6,
            speedup(cpu, report.partition_time()),
            paper
        );
    }
}
