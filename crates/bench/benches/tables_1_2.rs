//! Tables 1 and 2: the static operator characterization, regenerated from
//! the code (the mapping and phase metadata are unit-tested in
//! `mondrian-ops`; this bench renders them as the paper prints them).

use mondrian_ops::phases::{OperatorKind, PhaseInfo};
use mondrian_ops::spark::SparkOp;

fn main() {
    println!("\n=== Table 1: characterization of Spark operators ===\n");
    println!("{:<12} Spark operators", "Basic op");
    // All seven IR operators: the paper's four plus the dedicated
    // Union/Cogroup/FlatMap stage kinds, so every Table 1 row appears.
    for basic in OperatorKind::ALL {
        let spark: Vec<&str> = SparkOp::ALL
            .iter()
            .filter(|s| s.basic_operator() == basic)
            .map(|s| match s {
                SparkOp::Filter => "Filter",
                SparkOp::Union => "Union",
                SparkOp::LookupKey => "LookupKey",
                SparkOp::Map => "Map",
                SparkOp::FlatMap => "FlatMap",
                SparkOp::MapValues => "MapValues",
                SparkOp::GroupByKey => "GroupByKey",
                SparkOp::Cogroup => "Cogroup",
                SparkOp::ReduceByKey => "ReduceByKey",
                SparkOp::Reduce => "Reduce",
                SparkOp::CountByKey => "CountByKey",
                SparkOp::AggregateByKey => "AggregateByKey",
                SparkOp::Join => "Join",
                SparkOp::SortByKey => "SortByKey",
            })
            .collect();
        println!("{:<12} {}", basic.name(), spark.join(", "));
    }

    println!("\n=== Table 2: phases of basic data operators ===\n");
    println!(
        "{:<10} {:<32} {:<20} {:<20} Operation",
        "Operator", "Histogram build", "Distribution", "Hash table build"
    );
    for op in [OperatorKind::Scan, OperatorKind::Join, OperatorKind::GroupBy, OperatorKind::Sort] {
        let p = PhaseInfo::of(op);
        println!(
            "{:<10} {:<32} {:<20} {:<20} {}",
            op.name(),
            p.histogram.unwrap_or("-"),
            p.distribution.unwrap_or("-"),
            p.hash_table_build.unwrap_or("-"),
            p.operation
        );
    }
    println!();
}
