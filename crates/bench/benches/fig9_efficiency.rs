//! Figure 9: efficiency (performance per energy) improvement over the CPU
//! baseline, log scale, for NMP, NMP-perm and Mondrian.
//!
//! Paper shape: efficiency follows the performance trends but with smaller
//! gains (Mondrian draws more dynamic power for its higher utilization):
//! Mondrian peaks at 28× vs CPU and ~5× vs the best NMP.

use mondrian_bench::{header, run};
use mondrian_core::{OperatorKind, SystemKind};

fn main() {
    header("Figure 9: efficiency improvement vs CPU", "Fig. 9 (§7.2)");
    let systems = [SystemKind::Nmp, SystemKind::NmpPerm, SystemKind::Mondrian];
    println!("{:<10} {:>12} {:>12} {:>12}", "Operator", "NMP", "NMP-perm", "Mondrian");
    for op in OperatorKind::BASIC {
        let cpu = run(op, SystemKind::Cpu).perf_per_joule();
        let mut cells = Vec::new();
        for &system in &systems {
            cells.push(format!("{:.1}x", run(op, system).perf_per_joule() / cpu));
        }
        println!("{:<10} {:>12} {:>12} {:>12}", op.name(), cells[0], cells[1], cells[2]);
    }
}
