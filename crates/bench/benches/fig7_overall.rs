//! Figure 7: overall (partition + probe) speedup over the CPU baseline for
//! NMP, NMP-perm and Mondrian.
//!
//! Paper shape: Mondrian peaks at 49× vs CPU and 5× vs the best NMP
//! baseline (NMP-perm partitioning + NMP-rand probe).

use mondrian_bench::{header, run, speedup};
use mondrian_core::{OperatorKind, SystemKind};

fn main() {
    header("Figure 7: overall speedup vs CPU", "Fig. 7 (§7.1)");
    let systems = [SystemKind::Nmp, SystemKind::NmpPerm, SystemKind::Mondrian];
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "Operator", "CPU µs", "NMP", "NMP-perm", "Mondrian"
    );
    for op in OperatorKind::BASIC {
        let cpu = run(op, SystemKind::Cpu).runtime_ps;
        let mut cells = Vec::new();
        for &system in &systems {
            cells.push(speedup(cpu, run(op, system).runtime_ps));
        }
        println!(
            "{:<10} {:>12.3} {:>12} {:>12} {:>12}",
            op.name(),
            cpu as f64 / 1e6,
            cells[0],
            cells[1],
            cells[2]
        );
    }
}
