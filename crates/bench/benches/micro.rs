//! Criterion micro-benchmarks of the substrate models themselves: how fast
//! the simulator simulates. These guard against performance regressions in
//! the hot paths (vault scheduling, mesh routing, functional operators).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mondrian_mem::{drain, AccessKind, DramRequest, VaultConfig, VaultController};
use mondrian_noc::{Mesh, MeshConfig};
use mondrian_ops::sort::{mergesort, BITONIC_RUN};
use mondrian_ops::{join, PartitionScheme};
use mondrian_workloads::{foreign_key_pair, uniform_relation};

fn bench_vault(c: &mut Criterion) {
    c.bench_function("vault_4k_random_writes", |b| {
        b.iter(|| {
            let mut cfg = VaultConfig::hmc();
            cfg.capacity = 1 << 20;
            let mut v = VaultController::new(cfg, 0);
            for i in 0..4096u64 {
                v.enqueue(
                    DramRequest {
                        id: i,
                        addr: (i * 2048) % (1 << 20),
                        bytes: 16,
                        kind: AccessKind::Write,
                    },
                    0,
                )
                .expect("enqueue");
            }
            black_box(drain(&mut v).len())
        })
    });
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_10k_messages", |b| {
        b.iter(|| {
            let mut mesh = Mesh::new(MeshConfig::hmc_4x4());
            let mut last = 0;
            for i in 0..10_000u64 {
                last = mesh.send((i % 16) as u32, ((i * 7) % 16) as u32, 16, i * 2_000);
            }
            black_box(last)
        })
    });
}

fn bench_operators(c: &mut Criterion) {
    let rel = uniform_relation(1 << 14, 1 << 14, 42);
    c.bench_function("mergesort_16k", |b| {
        b.iter(|| black_box(mergesort(&rel, BITONIC_RUN).0.len()))
    });
    let (r, s) = foreign_key_pair(1 << 12, 1 << 14, 43);
    c.bench_function("hash_join_16k", |b| {
        b.iter(|| {
            let idx = join::build_index(&r, 11);
            black_box(join::probe_index(&idx, &s).len())
        })
    });
    let scheme = PartitionScheme::LowBits { bits: 6 };
    c.bench_function("partition_16k", |b| {
        b.iter(|| black_box(mondrian_ops::partition::partition_tuples(&rel, scheme).len()))
    });
}

criterion_group!(benches, bench_vault, bench_mesh, bench_operators);
criterion_main!(benches);
