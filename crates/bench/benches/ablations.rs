//! Ablations backing the paper's design arguments:
//!
//! * **row-buffer size** (§3.1): activation-energy share of a DRAM access
//!   as the row grows from HMC's 256 B to HBM's 2 KB and Wide I/O 2's 4 KB,
//!   for whole-row and 8 B accesses;
//! * **permutability** (§5.3): row activations with and without permutable
//!   appends under shuffle interleaving;
//! * **scheduling window** (§4.1.2): FR-FCFS window size cannot recover
//!   shuffle locality;
//! * **object size** (§5.3): destination row locality vs object size.

use mondrian_bench::header;
use mondrian_mem::{
    drain, AccessKind, DevicePreset, DramRequest, PermutableRegion, VaultConfig, VaultController,
};

fn activation_share(row_bytes: u32, access_bytes: u32) -> f64 {
    // Table 4: 0.65 nJ per activation, 2 pJ/bit moved. One activation
    // amortized over however much of the row the access pattern consumes.
    let act = 0.65e-9;
    let per_access = access_bytes as f64 * 8.0 * 2.0e-12;
    let accesses_per_row = (row_bytes / access_bytes).max(1) as f64;
    // Random fine-grained pattern: one activation per access.
    let _ = accesses_per_row;
    act / (act + per_access)
}

fn shuffle_activations(window: usize, perm: bool) -> u64 {
    let mut cfg = VaultConfig::hmc();
    cfg.capacity = 1 << 20;
    cfg.sched_window = window;
    let mut vault = VaultController::new(cfg, 0);
    let sources = 32u64;
    let per = 32u64;
    if perm {
        vault.set_permutable_region(PermutableRegion {
            base: 0,
            size: sources * per * 16,
            object_bytes: 16,
        });
    }
    let mut id = 0;
    for i in 0..per {
        for s in 0..sources {
            let (addr, kind) = if perm {
                (0, AccessKind::PermutableWrite)
            } else {
                (s * per * 16 + i * 16, AccessKind::Write)
            };
            vault.enqueue(DramRequest { id, addr, bytes: 16, kind }, 0).expect("enqueue");
            id += 1;
        }
    }
    drain(&mut vault);
    vault.stats().activations
}

fn main() {
    header("Ablations", "§3.1, §4.1.2, §5.3 design arguments");

    println!("--- row-buffer size vs activation-energy share (§3.1) ---");
    println!(
        "{:<10} {:>10} {:>22} {:>22}",
        "Device", "row bytes", "share @ full row", "share @ 8B access"
    );
    for preset in [DevicePreset::Hmc, DevicePreset::Hbm, DevicePreset::WideIo2, DevicePreset::Ddr3]
    {
        let row = preset.row_bytes();
        println!(
            "{:<10} {:>10} {:>21.1}% {:>21.1}%",
            format!("{preset:?}"),
            row,
            activation_share(row, row) * 100.0,
            activation_share(row, 8) * 100.0
        );
    }
    println!("(paper: 14% at a full 256 B HMC row, ~80% at 8 B)");

    println!("\n--- shuffle row activations: conventional vs permutable (§5.3) ---");
    println!("{:<22} {:>14} {:>14}", "FR-FCFS window", "conventional", "permutable");
    for window in [1usize, 4, 16, 64] {
        println!(
            "{:<22} {:>14} {:>14}",
            window,
            shuffle_activations(window, false),
            shuffle_activations(window, true)
        );
    }
    println!("(1024 writes over 64 rows: a bigger scheduling window barely helps the");
    println!(" conventional shuffle — §4.1.2 — while permutable appends touch each row once)");

    println!("\n--- object size vs destination locality (§5.3) ---");
    println!("{:<14} {:>14} {:>18}", "object bytes", "activations", "writes/activation");
    for object in [16u32, 32, 64, 128, 256] {
        let mut cfg = VaultConfig::hmc();
        cfg.capacity = 1 << 20;
        let mut vault = VaultController::new(cfg, 0);
        let total_bytes = 64 * 1024u64;
        vault.set_permutable_region(PermutableRegion {
            base: 0,
            size: total_bytes,
            object_bytes: object,
        });
        let n = total_bytes / object as u64;
        for id in 0..n {
            vault
                .enqueue(
                    DramRequest { id, addr: 0, bytes: object, kind: AccessKind::PermutableWrite },
                    0,
                )
                .expect("enqueue");
        }
        drain(&mut vault);
        let acts = vault.stats().activations;
        println!("{:<14} {:>14} {:>18.1}", object, acts, n as f64 / acts as f64);
    }
    println!("(permutable appends always activate each destination row exactly once,");
    println!(" so activations depend only on bytes moved — objects just shrink message count)");
}
