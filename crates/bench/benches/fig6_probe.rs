//! Figure 6: probe-phase speedup over the CPU baseline (log scale in the
//! paper), per operator, for NMP-rand, NMP-seq and Mondrian.
//!
//! Paper shape: Scan — NMP ≈ 2.4×, Mondrian ≈ 2.6× over NMP; Sort — the
//! NMP/Mondrian gaps grow; Group-by/Join — NMP-rand beats NMP-seq (the
//! log n algorithmic surcharge outweighs sequentiality without SIMD), and
//! Mondrian absorbs it, peaking at 22× vs CPU.

use mondrian_bench::{header, run, speedup};
use mondrian_core::{OperatorKind, SystemKind};

fn main() {
    header("Figure 6: probe speedup vs CPU", "Fig. 6 (§7.1)");
    let systems = [SystemKind::NmpRand, SystemKind::NmpSeq, SystemKind::Mondrian];
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>12}",
        "Operator", "CPU probe µs", "NMP-rand", "NMP-seq", "Mondrian"
    );
    for op in OperatorKind::BASIC {
        let cpu = run(op, SystemKind::Cpu).probe_time();
        let mut cells = Vec::new();
        for &system in &systems {
            let probe = run(op, system).probe_time();
            cells.push(speedup(cpu, probe));
        }
        println!(
            "{:<10} {:>14.3} {:>12} {:>12} {:>12}",
            op.name(),
            cpu as f64 / 1e6,
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!("\n(Scan has no rand/seq distinction: both NMP columns run the same scan code.)");
}
