//! A hand-rolled binary codec for the persisted result types.
//!
//! The repository deliberately carries no serialization dependency, so the
//! store encodes the [`PipelineReport`] tree the same way the CLI renders
//! JSON: by hand, field by field. The format is little-endian,
//! length-prefixed, and strictly versioned by [`crate::STORE_FORMAT_VERSION`]
//! — any layout change must bump that constant, which rotates the on-disk
//! directory instead of attempting migration.
//!
//! Every decoder returns `Option`: a short buffer, an invalid enum tag, an
//! implausible length, or malformed UTF-8 yields `None`, which the store
//! treats as a cache miss (the entry is re-simulated and overwritten).

use std::collections::BTreeMap;
use std::sync::Arc;

use mondrian_core::{OperatorKind, PartitionSpec, PhaseOutcome, Report, StreamInfo, SystemKind};
use mondrian_energy::EnergyBreakdown;
use mondrian_noc::{MeshStats, SerDesStats};
use mondrian_ops::reference::JoinRow;
use mondrian_ops::{Aggregates, OpOutput};
use mondrian_pipeline::{
    BranchSchedule, BuildSide, Concurrency, FusedEdge, PipelineReport, PlanReport,
    PlannedEdgeReport, PlannedLease, PlannedWaveReport, ScheduleReport, StageEntry, StageInput,
    StageOutcome, StageSpec, WaveReport,
};
use mondrian_sim::{Stat, Stats};
use mondrian_workloads::Tuple;

/// Byte sink for the encoders.
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Bounds-checked byte source for the decoders.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Whether every byte was consumed — trailing garbage is corruption.
    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn str(&mut self) -> Option<String> {
        let len = self.len(1)?;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    /// A length prefix, sanity-bounded by the remaining bytes: a corrupted
    /// length field must fail the decode, not attempt a huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> Option<usize> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_elem_bytes.max(1))? > remaining {
            return None;
        }
        Some(n)
    }
}

fn w_tuple(e: &mut Enc, t: &Tuple) {
    e.u64(t.key);
    e.u64(t.payload);
}

fn r_tuple(d: &mut Dec) -> Option<Tuple> {
    Some(Tuple { key: d.u64()?, payload: d.u64()? })
}

fn w_tuples(e: &mut Enc, rel: &[Tuple]) {
    e.usize(rel.len());
    for t in rel {
        w_tuple(e, t);
    }
}

fn r_tuples(d: &mut Dec) -> Option<Vec<Tuple>> {
    let n = d.len(16)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r_tuple(d)?);
    }
    Some(v)
}

fn w_system(e: &mut Enc, s: SystemKind) {
    e.u8(match s {
        SystemKind::Cpu => 0,
        SystemKind::Nmp => 1,
        SystemKind::NmpPerm => 2,
        SystemKind::NmpRand => 3,
        SystemKind::NmpSeq => 4,
        SystemKind::MondrianNoperm => 5,
        SystemKind::Mondrian => 6,
    });
}

fn r_system(d: &mut Dec) -> Option<SystemKind> {
    Some(match d.u8()? {
        0 => SystemKind::Cpu,
        1 => SystemKind::Nmp,
        2 => SystemKind::NmpPerm,
        3 => SystemKind::NmpRand,
        4 => SystemKind::NmpSeq,
        5 => SystemKind::MondrianNoperm,
        6 => SystemKind::Mondrian,
        _ => return None,
    })
}

fn w_op_kind(e: &mut Enc, op: OperatorKind) {
    e.u8(match op {
        OperatorKind::Scan => 0,
        OperatorKind::Join => 1,
        OperatorKind::GroupBy => 2,
        OperatorKind::Sort => 3,
        OperatorKind::Union => 4,
        OperatorKind::Cogroup => 5,
        OperatorKind::FlatMap => 6,
    });
}

fn r_op_kind(d: &mut Dec) -> Option<OperatorKind> {
    Some(match d.u8()? {
        0 => OperatorKind::Scan,
        1 => OperatorKind::Join,
        2 => OperatorKind::GroupBy,
        3 => OperatorKind::Sort,
        4 => OperatorKind::Union,
        5 => OperatorKind::Cogroup,
        6 => OperatorKind::FlatMap,
        _ => return None,
    })
}

fn w_concurrency(e: &mut Enc, c: Concurrency) {
    e.u8(match c {
        Concurrency::Serial => 0,
        Concurrency::Branch => 1,
        Concurrency::Stream => 2,
        Concurrency::Auto => 3,
    });
}

fn r_concurrency(d: &mut Dec) -> Option<Concurrency> {
    Some(match d.u8()? {
        0 => Concurrency::Serial,
        1 => Concurrency::Branch,
        2 => Concurrency::Stream,
        3 => Concurrency::Auto,
        _ => return None,
    })
}

fn w_stage_input(e: &mut Enc, i: StageInput) {
    match i {
        StageInput::Prev => e.u8(0),
        StageInput::Source => e.u8(1),
        StageInput::Stage(j) => {
            e.u8(2);
            e.usize(j);
        }
    }
}

fn r_stage_input(d: &mut Dec) -> Option<StageInput> {
    Some(match d.u8()? {
        0 => StageInput::Prev,
        1 => StageInput::Source,
        2 => StageInput::Stage(d.usize()?),
        _ => return None,
    })
}

fn w_stage_spec(e: &mut Enc, s: &StageSpec) {
    match *s {
        StageSpec::Filter { modulus, remainder } => {
            e.u8(0);
            e.u64(modulus);
            e.u64(remainder);
        }
        StageSpec::LookupKey { key } => {
            e.u8(1);
            e.u64(key);
        }
        StageSpec::Map { key_mul, key_add } => {
            e.u8(2);
            e.u64(key_mul);
            e.u64(key_add);
        }
        StageSpec::MapValues { mul, add } => {
            e.u8(3);
            e.u64(mul);
            e.u64(add);
        }
        StageSpec::Union => e.u8(4),
        StageSpec::FlatMap { fanout } => {
            e.u8(5);
            e.u64(fanout);
        }
        StageSpec::Cogroup => e.u8(6),
        StageSpec::GroupByKey => e.u8(7),
        StageSpec::ReduceByKey => e.u8(8),
        StageSpec::CountByKey => e.u8(9),
        StageSpec::AggregateByKey => e.u8(10),
        StageSpec::SortByKey => e.u8(11),
        StageSpec::Join { build } => {
            e.u8(12);
            match build {
                BuildSide::Dimension => e.u8(0),
                BuildSide::Stage(j) => {
                    e.u8(1);
                    e.usize(j);
                }
            }
        }
    }
}

fn r_stage_spec(d: &mut Dec) -> Option<StageSpec> {
    Some(match d.u8()? {
        0 => StageSpec::Filter { modulus: d.u64()?, remainder: d.u64()? },
        1 => StageSpec::LookupKey { key: d.u64()? },
        2 => StageSpec::Map { key_mul: d.u64()?, key_add: d.u64()? },
        3 => StageSpec::MapValues { mul: d.u64()?, add: d.u64()? },
        4 => StageSpec::Union,
        5 => StageSpec::FlatMap { fanout: d.u64()? },
        6 => StageSpec::Cogroup,
        7 => StageSpec::GroupByKey,
        8 => StageSpec::ReduceByKey,
        9 => StageSpec::CountByKey,
        10 => StageSpec::AggregateByKey,
        11 => StageSpec::SortByKey,
        12 => StageSpec::Join {
            build: match d.u8()? {
                0 => BuildSide::Dimension,
                1 => BuildSide::Stage(d.usize()?),
                _ => return None,
            },
        },
        _ => return None,
    })
}

fn w_phase(e: &mut Enc, p: &PhaseOutcome) {
    e.str(&p.label);
    e.u64(p.start);
    e.u64(p.end);
    e.u64(p.instructions);
    e.u64(p.simd_ops);
    e.usize(p.core_busy.len());
    for &b in &p.core_busy {
        e.f64(b);
    }
    e.u64(p.overflows);
    e.u64(p.events);
}

fn r_phase(d: &mut Dec) -> Option<PhaseOutcome> {
    let label = d.str()?;
    let start = d.u64()?;
    let end = d.u64()?;
    let instructions = d.u64()?;
    let simd_ops = d.u64()?;
    let n = d.len(8)?;
    let mut core_busy = Vec::with_capacity(n);
    for _ in 0..n {
        core_busy.push(d.f64()?);
    }
    Some(PhaseOutcome {
        label,
        start,
        end,
        instructions,
        simd_ops,
        core_busy,
        overflows: d.u64()?,
        events: d.u64()?,
    })
}

fn w_energy(e: &mut Enc, b: &EnergyBreakdown) {
    e.f64(b.cores_j);
    e.f64(b.llc_j);
    e.f64(b.dram_dynamic_j);
    e.f64(b.dram_static_j);
    e.f64(b.serdes_j);
    e.f64(b.noc_j);
}

fn r_energy(d: &mut Dec) -> Option<EnergyBreakdown> {
    Some(EnergyBreakdown {
        cores_j: d.f64()?,
        llc_j: d.f64()?,
        dram_dynamic_j: d.f64()?,
        dram_static_j: d.f64()?,
        serdes_j: d.f64()?,
        noc_j: d.f64()?,
    })
}

fn w_stats(e: &mut Enc, s: &Stats) {
    e.usize(s.len());
    for (k, stat) in s.iter() {
        e.str(k);
        match stat {
            Stat::Count(c) => {
                e.u8(0);
                e.u64(c);
            }
            Stat::Value(v) => {
                e.u8(1);
                e.f64(v);
            }
        }
    }
}

fn r_stats(d: &mut Dec) -> Option<Stats> {
    let n = d.len(17)?;
    let mut s = Stats::new();
    for _ in 0..n {
        let key = d.str()?;
        let stat = match d.u8()? {
            0 => Stat::Count(d.u64()?),
            1 => Stat::Value(d.f64()?),
            _ => return None,
        };
        s.set(&key, stat);
    }
    Some(s)
}

fn w_mesh(e: &mut Enc, m: &MeshStats) {
    e.u64(m.messages);
    e.u64(m.hops);
    e.f64(m.bit_mm);
    e.u64(m.busy_time);
}

fn r_mesh(d: &mut Dec) -> Option<MeshStats> {
    Some(MeshStats { messages: d.u64()?, hops: d.u64()?, bit_mm: d.f64()?, busy_time: d.u64()? })
}

fn w_serdes(e: &mut Enc, s: &SerDesStats) {
    e.u64(s.packets);
    e.u64(s.busy_bits);
    e.u64(s.busy_time);
}

fn r_serdes(d: &mut Dec) -> Option<SerDesStats> {
    Some(SerDesStats { packets: d.u64()?, busy_bits: d.u64()?, busy_time: d.u64()? })
}

fn w_partition(e: &mut Enc, p: &PartitionSpec) {
    e.u32(p.index);
    e.u32(p.first_vault);
    e.u32(p.vaults);
    e.u32(p.total_vaults);
}

fn r_partition(d: &mut Dec) -> Option<PartitionSpec> {
    Some(PartitionSpec {
        index: d.u32()?,
        first_vault: d.u32()?,
        vaults: d.u32()?,
        total_vaults: d.u32()?,
    })
}

fn w_aggregates(e: &mut Enc, a: &Aggregates) {
    e.u64(a.count);
    e.u64(a.sum);
    e.u128(a.sum_sq);
    e.u64(a.min);
    e.u64(a.max);
}

fn r_aggregates(d: &mut Dec) -> Option<Aggregates> {
    Some(Aggregates {
        count: d.u64()?,
        sum: d.u64()?,
        sum_sq: d.u128()?,
        min: d.u64()?,
        max: d.u64()?,
    })
}

fn w_op_output(e: &mut Enc, o: &OpOutput) {
    match o {
        OpOutput::Tuples(rel) => {
            e.u8(0);
            w_tuples(e, rel);
        }
        OpOutput::Expanded { tuples, fanout } => {
            e.u8(1);
            w_tuples(e, tuples);
            e.u64(*fanout);
        }
        OpOutput::Groups(groups) => {
            e.u8(2);
            e.usize(groups.len());
            for (&k, a) in groups {
                e.u64(k);
                w_aggregates(e, a);
            }
        }
        OpOutput::CoGroups(groups) => {
            e.u8(3);
            e.usize(groups.len());
            for (&k, (a, b)) in groups {
                e.u64(k);
                w_aggregates(e, a);
                w_aggregates(e, b);
            }
        }
        OpOutput::Rows(rows) => {
            e.u8(4);
            e.usize(rows.len());
            for &(k, r, s) in rows {
                e.u64(k);
                e.u64(r);
                e.u64(s);
            }
        }
    }
}

fn r_op_output(d: &mut Dec) -> Option<OpOutput> {
    Some(match d.u8()? {
        0 => OpOutput::Tuples(r_tuples(d)?),
        1 => OpOutput::Expanded { tuples: r_tuples(d)?, fanout: d.u64()? },
        2 => {
            let n = d.len(48)?;
            let mut groups = BTreeMap::new();
            for _ in 0..n {
                let k = d.u64()?;
                groups.insert(k, r_aggregates(d)?);
            }
            OpOutput::Groups(groups)
        }
        3 => {
            let n = d.len(88)?;
            let mut groups = BTreeMap::new();
            for _ in 0..n {
                let k = d.u64()?;
                let a = r_aggregates(d)?;
                let b = r_aggregates(d)?;
                groups.insert(k, (a, b));
            }
            OpOutput::CoGroups(groups)
        }
        4 => {
            let n = d.len(24)?;
            let mut rows: Vec<JoinRow> = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push((d.u64()?, d.u64()?, d.u64()?));
            }
            OpOutput::Rows(rows)
        }
        _ => return None,
    })
}

fn w_stream_info(e: &mut Enc, s: &Option<StreamInfo>) {
    match s {
        None => e.u8(0),
        Some(info) => {
            e.u8(1);
            e.usize(info.chunks);
            e.usize(info.chunk_partition_ps.len());
            for &t in &info.chunk_partition_ps {
                e.u64(t);
            }
        }
    }
}

fn r_stream_info(d: &mut Dec) -> Option<Option<StreamInfo>> {
    Some(match d.u8()? {
        0 => None,
        1 => {
            let chunks = d.usize()?;
            let n = d.len(8)?;
            let mut chunk_partition_ps = Vec::with_capacity(n);
            for _ in 0..n {
                chunk_partition_ps.push(d.u64()?);
            }
            Some(StreamInfo { chunks, chunk_partition_ps })
        }
        _ => return None,
    })
}

fn w_report(e: &mut Enc, r: &Report) {
    w_op_kind(e, r.op);
    w_system(e, r.system);
    e.usize(r.phases.len());
    for p in &r.phases {
        w_phase(e, p);
    }
    e.u64(r.runtime_ps);
    e.u64(r.instructions);
    w_energy(e, &r.energy);
    w_stats(e, &r.stats);
    e.bool(r.verified);
    e.u32(r.shuffle_retries);
    e.str(&r.summary);
    w_op_output(e, &r.output);
    w_partition(e, &r.partition);
    w_mesh(e, &r.mesh_totals);
    w_serdes(e, &r.serdes_totals);
    w_stream_info(e, &r.stream);
}

fn r_report(d: &mut Dec) -> Option<Report> {
    let op = r_op_kind(d)?;
    let system = r_system(d)?;
    let n = d.len(1)?;
    let mut phases = Vec::with_capacity(n);
    for _ in 0..n {
        phases.push(r_phase(d)?);
    }
    Some(Report {
        op,
        system,
        phases,
        runtime_ps: d.u64()?,
        instructions: d.u64()?,
        energy: r_energy(d)?,
        stats: r_stats(d)?,
        verified: d.bool()?,
        shuffle_retries: d.u32()?,
        summary: d.str()?,
        output: r_op_output(d)?,
        partition: r_partition(d)?,
        mesh_totals: r_mesh(d)?,
        serdes_totals: r_serdes(d)?,
        stream: r_stream_info(d)?,
    })
}

fn w_stage_outcome(e: &mut Enc, s: &StageOutcome) {
    w_stage_spec(e, &s.spec);
    e.usize(s.inputs.len());
    for &i in &s.inputs {
        w_stage_input(e, i);
    }
    e.usize(s.wave);
    e.usize(s.branch);
    e.bool(s.concurrent);
    e.bool(s.streamed);
    e.u64(s.serial_runtime_ps);
    e.bool(s.matches_serial);
    e.u64(s.output_digest);
    e.usize(s.input_rows);
    e.usize(s.output_rows);
    e.bool(s.reference_ok);
    w_report(e, &s.report);
}

fn r_stage_outcome(d: &mut Dec) -> Option<StageOutcome> {
    let spec = r_stage_spec(d)?;
    let n = d.len(1)?;
    let mut inputs = Vec::with_capacity(n);
    for _ in 0..n {
        inputs.push(r_stage_input(d)?);
    }
    Some(StageOutcome {
        spec,
        inputs,
        wave: d.usize()?,
        branch: d.usize()?,
        concurrent: d.bool()?,
        streamed: d.bool()?,
        serial_runtime_ps: d.u64()?,
        matches_serial: d.bool()?,
        output_digest: d.u64()?,
        input_rows: d.usize()?,
        output_rows: d.usize()?,
        reference_ok: d.bool()?,
        report: r_report(d)?,
    })
}

fn w_branch(e: &mut Enc, b: &BranchSchedule) {
    e.usize(b.branch);
    e.usize(b.stages.len());
    for &s in &b.stages {
        e.usize(s);
    }
    e.u32(b.first_vault);
    e.u32(b.vaults);
    e.u64(b.runtime_ps);
    e.bool(b.critical);
    w_mesh(e, &b.mesh);
}

fn r_branch(d: &mut Dec) -> Option<BranchSchedule> {
    let branch = d.usize()?;
    let n = d.len(8)?;
    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        stages.push(d.usize()?);
    }
    Some(BranchSchedule {
        branch,
        stages,
        first_vault: d.u32()?,
        vaults: d.u32()?,
        runtime_ps: d.u64()?,
        critical: d.bool()?,
        mesh: r_mesh(d)?,
    })
}

fn w_wave(e: &mut Enc, w: &WaveReport) {
    e.usize(w.wave);
    e.bool(w.concurrent);
    e.u64(w.runtime_ps);
    e.u64(w.serial_runtime_ps);
    e.usize(w.branches.len());
    for b in &w.branches {
        w_branch(e, b);
    }
    w_serdes(e, &w.serdes);
}

fn r_wave(d: &mut Dec) -> Option<WaveReport> {
    let wave = d.usize()?;
    let concurrent = d.bool()?;
    let runtime_ps = d.u64()?;
    let serial_runtime_ps = d.u64()?;
    let n = d.len(1)?;
    let mut branches = Vec::with_capacity(n);
    for _ in 0..n {
        branches.push(r_branch(d)?);
    }
    Some(WaveReport {
        wave,
        concurrent,
        runtime_ps,
        serial_runtime_ps,
        branches,
        serdes: r_serdes(d)?,
    })
}

fn w_fused(e: &mut Enc, f: &FusedEdge) {
    e.usize(f.producer);
    e.usize(f.consumer);
    e.usize(f.chunks);
    e.bool(f.streamed);
    e.u64(f.streamed_ps);
    e.u64(f.unfused_ps);
}

fn r_fused(d: &mut Dec) -> Option<FusedEdge> {
    Some(FusedEdge {
        producer: d.usize()?,
        consumer: d.usize()?,
        chunks: d.usize()?,
        streamed: d.bool()?,
        streamed_ps: d.u64()?,
        unfused_ps: d.u64()?,
    })
}

fn w_planned(e: &mut Enc, p: &PlanReport) {
    e.usize(p.stage_predicted_ps.len());
    for &t in &p.stage_predicted_ps {
        e.u64(t);
    }
    e.u64(p.predicted_makespan_ps);
    e.bool(p.planner_won);
    e.usize(p.waves.len());
    for w in &p.waves {
        e.usize(w.wave);
        e.usize(w.leases.len());
        for l in &w.leases {
            e.usize(l.branch);
            e.u32(l.first_vault);
            e.u32(l.vaults);
        }
    }
    e.usize(p.edges.len());
    for edge in &p.edges {
        e.usize(edge.producer);
        e.usize(edge.consumer);
        e.usize(edge.chunks);
    }
}

fn r_planned(d: &mut Dec) -> Option<PlanReport> {
    let n = d.len(8)?;
    let mut stage_predicted_ps = Vec::with_capacity(n);
    for _ in 0..n {
        stage_predicted_ps.push(d.u64()?);
    }
    let predicted_makespan_ps = d.u64()?;
    let planner_won = d.bool()?;
    let n = d.len(1)?;
    let mut waves = Vec::with_capacity(n);
    for _ in 0..n {
        let wave = d.usize()?;
        let k = d.len(8)?;
        let mut leases = Vec::with_capacity(k);
        for _ in 0..k {
            leases.push(PlannedLease {
                branch: d.usize()?,
                first_vault: d.u32()?,
                vaults: d.u32()?,
            });
        }
        waves.push(PlannedWaveReport { wave, leases });
    }
    let n = d.len(8)?;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        edges.push(PlannedEdgeReport {
            producer: d.usize()?,
            consumer: d.usize()?,
            chunks: d.usize()?,
        });
    }
    Some(PlanReport { stage_predicted_ps, predicted_makespan_ps, planner_won, waves, edges })
}

fn w_schedule(e: &mut Enc, s: &ScheduleReport) {
    w_concurrency(e, s.mode);
    e.usize(s.waves.len());
    for w in &s.waves {
        w_wave(e, w);
    }
    e.usize(s.fused.len());
    for f in &s.fused {
        w_fused(e, f);
    }
    e.u64(s.makespan_ps);
}

fn r_schedule(d: &mut Dec) -> Option<ScheduleReport> {
    let mode = r_concurrency(d)?;
    let n = d.len(1)?;
    let mut waves = Vec::with_capacity(n);
    for _ in 0..n {
        waves.push(r_wave(d)?);
    }
    let n = d.len(1)?;
    let mut fused = Vec::with_capacity(n);
    for _ in 0..n {
        fused.push(r_fused(d)?);
    }
    Some(ScheduleReport { mode, waves, fused, makespan_ps: d.u64()? })
}

/// Serializes a full-run [`PipelineReport`].
pub(crate) fn encode_pipeline_report(r: &PipelineReport) -> Vec<u8> {
    let mut e = Enc::new();
    w_system(&mut e, r.system);
    e.usize(r.source_rows);
    e.usize(r.stages.len());
    for s in &r.stages {
        w_stage_outcome(&mut e, s);
    }
    w_schedule(&mut e, &r.schedule);
    match &r.planned {
        Some(p) => {
            e.bool(true);
            w_planned(&mut e, p);
        }
        None => e.bool(false),
    }
    w_tuples(&mut e, &r.output);
    e.into_bytes()
}

/// Deserializes a full-run [`PipelineReport`]; `None` on any corruption.
pub(crate) fn decode_pipeline_report(buf: &[u8]) -> Option<PipelineReport> {
    let mut d = Dec::new(buf);
    let system = r_system(&mut d)?;
    let source_rows = d.usize()?;
    let n = d.len(1)?;
    let mut stages = Vec::with_capacity(n);
    for _ in 0..n {
        stages.push(r_stage_outcome(&mut d)?);
    }
    let schedule = r_schedule(&mut d)?;
    let planned = if d.bool()? { Some(r_planned(&mut d)?) } else { None };
    let output = r_tuples(&mut d)?;
    if !d.done() {
        return None;
    }
    Some(PipelineReport { system, source_rows, stages, schedule, planned, output })
}

/// Serializes a per-stage [`StageEntry`].
pub(crate) fn encode_stage_entry(entry: &StageEntry) -> Vec<u8> {
    let mut e = Enc::new();
    e.usize(entry.input_rows);
    e.bool(entry.reference_ok);
    w_report(&mut e, &entry.report);
    w_tuples(&mut e, &entry.projected);
    e.into_bytes()
}

/// Deserializes a per-stage [`StageEntry`]; `None` on any corruption.
pub(crate) fn decode_stage_entry(buf: &[u8]) -> Option<StageEntry> {
    let mut d = Dec::new(buf);
    let input_rows = d.usize()?;
    let reference_ok = d.bool()?;
    let report = r_report(&mut d)?;
    let projected: Arc<[Tuple]> = r_tuples(&mut d)?.into();
    if !d.done() {
        return None;
    }
    Some(StageEntry { input_rows, reference_ok, report, projected })
}

/// Serializes a reference-prefix relation.
pub(crate) fn encode_rel(rel: &[Tuple]) -> Vec<u8> {
    let mut e = Enc::new();
    w_tuples(&mut e, rel);
    e.into_bytes()
}

/// Deserializes a reference-prefix relation; `None` on any corruption.
pub(crate) fn decode_rel(buf: &[u8]) -> Option<Arc<[Tuple]>> {
    let mut d = Dec::new(buf);
    let rel = r_tuples(&mut d)?;
    if !d.done() {
        return None;
    }
    Some(rel.into())
}
