//! The persistent cross-campaign result store.
//!
//! The engine's two in-memory memoization layers — the effective-key
//! full-run memo and the cross-system reference-prefix [`ExecCache`]
//! backing — die with the process. This crate persists both to disk, so a
//! repeated campaign simulates nothing and an edited manifest re-simulates
//! only the affected DAG suffix:
//!
//! * **run entries** — full [`PipelineReport`]s keyed by the campaign's
//!   effective key extended with the plan digest,
//! * **stage entries** — per-stage serial-pass results keyed by the
//!   `(stage spec, source identity, input digests, build digest)` chain,
//! * **ref entries** — pure reference-prefix relations under the same
//!   digest-chain keying.
//!
//! Layout: one flat directory `<root>/v<FORMAT>-<fingerprint>/` whose name
//! binds the store format version and the engine fingerprint — a layout or
//! schema change rotates the directory instead of attempting migration.
//! Each entry is a checksummed file written atomically (tempfile + rename)
//! that embeds its complete key material; a checksum, magic, key, or codec
//! mismatch is treated as a miss and the entry is re-simulated and
//! overwritten. A `journal.log` of touch generations drives deterministic
//! least-recently-used eviction for `prune`.
//!
//! [`ExecCache`]: mondrian_pipeline::ExecCache

#![warn(missing_docs)]

mod codec;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mondrian_pipeline::{ExecStore, PipelineReport, StageEntry};
use mondrian_workloads::Tuple;

/// On-disk layout version: bump on any codec or entry-format change.
pub const STORE_FORMAT_VERSION: u32 = 2;

/// Entry-file magic.
const MAGIC: [u8; 4] = *b"MNDS";

/// File-name prefixes of the three entry kinds.
const KINDS: [&str; 3] = ["run", "stage", "ref"];

fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Resolves the store's base directory, in precedence order: the
/// `--cache-dir` flag, the `MONDRIAN_CACHE` environment variable, then
/// `$HOME/.cache/mondrian`. `None` when nothing resolves (no `$HOME`).
pub fn resolve_root(flag: Option<&str>) -> Option<PathBuf> {
    if let Some(dir) = flag {
        return Some(PathBuf::from(dir));
    }
    if let Ok(dir) = std::env::var("MONDRIAN_CACHE") {
        if !dir.is_empty() {
            return Some(PathBuf::from(dir));
        }
    }
    std::env::var_os("HOME").map(|home| PathBuf::from(home).join(".cache").join("mondrian"))
}

/// A snapshot of one store's hit/miss/traffic counters, by entry kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Full-run reports served from disk.
    pub run_hits: u64,
    /// Full-run probes that missed (absent, corrupt, or key-mismatched).
    pub run_misses: u64,
    /// Per-stage serial-pass results served from disk.
    pub stage_hits: u64,
    /// Per-stage probes that missed.
    pub stage_misses: u64,
    /// Reference-prefix relations served from disk.
    pub ref_hits: u64,
    /// Reference-prefix probes that missed.
    pub ref_misses: u64,
    /// Payload bytes read by hits.
    pub bytes_read: u64,
    /// Payload bytes written by saves.
    pub bytes_written: u64,
}

impl CacheCounters {
    /// Total hits across every entry kind.
    pub fn hits(&self) -> u64 {
        self.run_hits + self.stage_hits + self.ref_hits
    }

    /// Total misses across every entry kind.
    pub fn misses(&self) -> u64 {
        self.run_misses + self.stage_misses + self.ref_misses
    }

    /// Total bytes moved (read + written).
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Per-kind entry counts and sizes, as reported by [`Store::stats`].
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// `(kind, entry count, total bytes)` for each entry kind, in
    /// [`KINDS`] order.
    pub kinds: Vec<(String, u64, u64)>,
    /// Entries across all kinds.
    pub total_entries: u64,
    /// Bytes across all kinds.
    pub total_bytes: u64,
}

/// What [`Store::prune`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Entries examined.
    pub examined: u64,
    /// Entries evicted (least recently used first).
    pub evicted: u64,
    /// Bytes freed by eviction.
    pub freed_bytes: u64,
    /// Entries remaining after the prune.
    pub remaining_entries: u64,
    /// Bytes remaining after the prune.
    pub remaining_bytes: u64,
}

/// The content-addressed on-disk store. Thread-safe: campaign workers on
/// separate OS threads share one instance behind an `Arc`. Every
/// operation is best-effort — I/O errors degrade to misses (loads) or
/// no-ops (saves), never into the simulation results.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    /// The touch generation this session writes; loaded as (max journaled
    /// generation + 1) so each session's touches sort after every earlier
    /// session's.
    generation: u64,
    /// Entry file names touched (saved or hit) this session, flushed to
    /// the journal sorted — so journal content is deterministic for any
    /// `--jobs`/`--sim-threads` value.
    touched: Mutex<BTreeSet<String>>,
    run_hits: AtomicU64,
    run_misses: AtomicU64,
    stage_hits: AtomicU64,
    stage_misses: AtomicU64,
    ref_hits: AtomicU64,
    ref_misses: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl Store {
    /// Opens (creating if necessary) the versioned store under `root`.
    /// `salt` folds caller-level versioning — the artifact schema — into
    /// the engine fingerprint, so entries never leak across schemas.
    ///
    /// # Errors
    ///
    /// Returns the error when the store directory cannot be created.
    pub fn open(root: &Path, salt: &str) -> std::io::Result<Store> {
        let fingerprint = fnv1a(
            format!("mondrian-store|v{STORE_FORMAT_VERSION}|{salt}|{}", env!("CARGO_PKG_VERSION"))
                .bytes(),
        );
        let dir = root.join(format!("v{STORE_FORMAT_VERSION}-{fingerprint:016x}"));
        fs::create_dir_all(&dir)?;
        let generation =
            read_journal(&dir.join("journal.log")).values().copied().max().unwrap_or(0) + 1;
        Ok(Store {
            dir,
            generation,
            touched: Mutex::new(BTreeSet::new()),
            run_hits: AtomicU64::new(0),
            run_misses: AtomicU64::new(0),
            stage_hits: AtomicU64::new(0),
            stage_misses: AtomicU64::new(0),
            ref_hits: AtomicU64::new(0),
            ref_misses: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// The store's versioned directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A snapshot of the session's hit/miss/traffic counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            run_hits: self.run_hits.load(Ordering::Relaxed),
            run_misses: self.run_misses.load(Ordering::Relaxed),
            stage_hits: self.stage_hits.load(Ordering::Relaxed),
            stage_misses: self.stage_misses.load(Ordering::Relaxed),
            ref_hits: self.ref_hits.load(Ordering::Relaxed),
            ref_misses: self.ref_misses.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Loads a full-run report. Any corruption is a miss.
    pub fn load_run(&self, key: &str) -> Option<PipelineReport> {
        match self.load("run", key.as_bytes()).and_then(|p| codec::decode_pipeline_report(&p)) {
            Some(report) => {
                self.run_hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                self.run_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a full-run report (atomic tempfile + rename; best-effort).
    pub fn save_run(&self, key: &str, report: &PipelineReport) {
        self.save("run", key.as_bytes(), &codec::encode_pipeline_report(report));
    }

    /// The file name an entry lives under: kind prefix + key hash. The
    /// full key material is embedded in (and verified against) the entry
    /// itself, so hash collisions degrade to misses, never wrong results.
    fn file_name(kind: &str, key: &[u8]) -> String {
        format!("{kind}-{:016x}.bin", fnv1a(key.iter().copied()))
    }

    fn load(&self, kind: &str, key: &[u8]) -> Option<Vec<u8>> {
        let name = Self::file_name(kind, key);
        let raw = fs::read(self.dir.join(&name)).ok()?;
        let payload = decode_entry(&raw, key)?;
        self.bytes_read.fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.touch(name);
        Some(payload)
    }

    fn save(&self, kind: &str, key: &[u8], payload: &[u8]) {
        let name = Self::file_name(kind, key);
        let tmp = self.dir.join(format!(".{name}.{}.tmp", std::process::id()));
        let bytes = encode_entry(key, payload);
        let written = fs::write(&tmp, &bytes).and_then(|()| fs::rename(&tmp, self.dir.join(&name)));
        match written {
            Ok(()) => {
                self.bytes_written.fetch_add(payload.len() as u64, Ordering::Relaxed);
                self.touch(name);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    fn touch(&self, name: String) {
        self.touched.lock().expect("store poisoned").insert(name);
    }

    /// Appends this session's touches to the journal, sorted — called at
    /// campaign end (and on drop), so journal order is deterministic for
    /// any worker count: one generation per session, file names sorted
    /// within it.
    pub fn flush_journal(&self) {
        let touched = std::mem::take(&mut *self.touched.lock().expect("store poisoned"));
        if touched.is_empty() {
            return;
        }
        let mut out = String::new();
        for name in &touched {
            out.push_str(&format!("{} {name}\n", self.generation));
        }
        let _ = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join("journal.log"))
            .and_then(|mut f| f.write_all(out.as_bytes()));
    }

    /// Per-kind entry counts and sizes, from a sorted directory walk.
    ///
    /// # Errors
    ///
    /// Returns the error when the store directory cannot be read.
    pub fn stats(&self) -> std::io::Result<StoreStats> {
        let mut stats = StoreStats::default();
        let entries = self.entries()?;
        for kind in KINDS {
            let (mut count, mut bytes) = (0, 0);
            for (name, size) in &entries {
                if name.starts_with(&format!("{kind}-")) {
                    count += 1;
                    bytes += size;
                }
            }
            stats.kinds.push((kind.to_string(), count, bytes));
            stats.total_entries += count;
            stats.total_bytes += bytes;
        }
        Ok(stats)
    }

    /// Deletes every entry and the journal.
    ///
    /// # Errors
    ///
    /// Returns the first deletion error.
    pub fn clear(&self) -> std::io::Result<()> {
        for (name, _) in self.entries()? {
            fs::remove_file(self.dir.join(name))?;
        }
        let _ = fs::remove_file(self.dir.join("journal.log"));
        self.touched.lock().expect("store poisoned").clear();
        Ok(())
    }

    /// Evicts least-recently-used entries until the store holds at most
    /// `max_bytes` of entries. Deterministic: entries order by (journaled
    /// touch generation, file name) — a full campaign touches its entries
    /// in one generation, so eviction follows campaign recency with a
    /// stable name tiebreak, independent of thread scheduling.
    ///
    /// # Errors
    ///
    /// Returns the first directory-walk or deletion error.
    pub fn prune(&self, max_bytes: u64) -> std::io::Result<PruneReport> {
        self.flush_journal();
        let journal_path = self.dir.join("journal.log");
        let generations = read_journal(&journal_path);
        let entries = self.entries()?;
        let mut report = PruneReport {
            examined: entries.len() as u64,
            remaining_entries: entries.len() as u64,
            remaining_bytes: entries.iter().map(|(_, s)| s).sum(),
            ..PruneReport::default()
        };
        // An entry absent from the journal belongs to a writer that has
        // not flushed yet (a concurrent session racing this prune):
        // treat it as newest, never as oldest — evicting it would delete
        // an entry younger than every generation this prune read. Its
        // writer journals it at the true generation on its own flush.
        let mut order: Vec<(u64, &String, u64)> = entries
            .iter()
            .map(|(name, size)| (generations.get(name).copied().unwrap_or(u64::MAX), name, *size))
            .collect();
        order.sort();
        let mut evicted: BTreeSet<&String> = BTreeSet::new();
        for &(_, name, size) in &order {
            if report.remaining_bytes <= max_bytes {
                break;
            }
            fs::remove_file(self.dir.join(name))?;
            evicted.insert(name);
            report.evicted += 1;
            report.freed_bytes += size;
            report.remaining_entries -= 1;
            report.remaining_bytes -= size;
        }
        if report.evicted > 0 {
            // Rewrite the journal for the survivors so it never regrows
            // stale names; keep (generation, name) order. Unjournaled
            // survivors stay out — their writer owns their first entry.
            let mut out = String::new();
            for &(generation, name, _) in &order {
                if !evicted.contains(name) && generations.contains_key(name) {
                    out.push_str(&format!("{generation} {name}\n"));
                }
            }
            fs::write(&journal_path, out)?;
        }
        Ok(report)
    }

    /// Every entry file `(name, size)`, sorted by name.
    fn entries(&self) -> std::io::Result<Vec<(String, u64)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".bin") && KINDS.iter().any(|k| name.starts_with(&format!("{k}-"))) {
                out.push((name, entry.metadata()?.len()));
            }
        }
        out.sort();
        Ok(out)
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        self.flush_journal();
    }
}

impl ExecStore for Store {
    fn load_ref(&self, key: &[u8]) -> Option<std::sync::Arc<[Tuple]>> {
        match self.load("ref", key).and_then(|p| codec::decode_rel(&p)) {
            Some(rel) => {
                self.ref_hits.fetch_add(1, Ordering::Relaxed);
                Some(rel)
            }
            None => {
                self.ref_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn save_ref(&self, key: &[u8], rel: &[Tuple]) {
        self.save("ref", key, &codec::encode_rel(rel));
    }

    fn load_stage(&self, key: &[u8]) -> Option<StageEntry> {
        match self.load("stage", key).and_then(|p| codec::decode_stage_entry(&p)) {
            Some(entry) => {
                self.stage_hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.stage_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn save_stage(&self, key: &[u8], entry: &StageEntry) {
        self.save("stage", key, &codec::encode_stage_entry(entry));
    }
}

/// Entry file layout: magic, format version, key length + key material,
/// payload length + payload, FNV-1a checksum over everything before it.
fn encode_entry(key: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 + 8 + key.len() + 8 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(key.len() as u64).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a(out.iter().copied());
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Validates magic, version, checksum, and the embedded key (a hash
/// collision or a truncated/flipped file is a miss), returning the
/// payload.
fn decode_entry(raw: &[u8], key: &[u8]) -> Option<Vec<u8>> {
    let body_len = raw.len().checked_sub(8)?;
    let (body, tail) = raw.split_at(body_len);
    let checksum = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a(body.iter().copied()) != checksum {
        return None;
    }
    let mut pos = 0;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let end = pos.checked_add(n)?;
        if end > body.len() {
            return None;
        }
        let s = &body[*pos..end];
        *pos = end;
        Some(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
    if version != STORE_FORMAT_VERSION {
        return None;
    }
    let key_len = usize::try_from(u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?)).ok()?;
    if take(&mut pos, key_len)? != key {
        return None;
    }
    let payload_len =
        usize::try_from(u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?)).ok()?;
    let payload = take(&mut pos, payload_len)?.to_vec();
    if pos != body.len() {
        return None;
    }
    Some(payload)
}

fn read_journal(path: &Path) -> BTreeMap<String, u64> {
    let mut generations = BTreeMap::new();
    if let Ok(text) = fs::read_to_string(path) {
        for line in text.lines() {
            if let Some((generation, name)) = line.split_once(' ') {
                if let Ok(generation) = generation.parse::<u64>() {
                    let slot = generations.entry(name.to_string()).or_insert(0);
                    *slot = (*slot).max(generation);
                }
            }
        }
    }
    generations
}

#[cfg(test)]
mod tests {
    use super::*;
    use mondrian_core::SystemKind;
    use mondrian_pipeline::{Pipeline, PipelineConfig, StageSpec};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mondrian-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report() -> PipelineReport {
        let pipeline = Pipeline::new(vec![
            StageSpec::Filter { modulus: 10, remainder: 0 },
            StageSpec::CountByKey,
        ]);
        let mut cfg = PipelineConfig::tiny(SystemKind::Mondrian);
        cfg.tuples_per_vault = 32;
        pipeline.run(&cfg)
    }

    #[test]
    fn run_entries_roundtrip_byte_identically() {
        let root = tmp_root("roundtrip");
        let store = Store::open(&root, "test").unwrap();
        let report = sample_report();
        assert!(store.load_run("k1").is_none(), "empty store misses");
        store.save_run("k1", &report);
        let loaded = store.load_run("k1").expect("saved entry loads");
        // The codec must preserve everything the artifact serializes —
        // compare the strongest available equivalences.
        assert_eq!(loaded.output, report.output);
        assert_eq!(loaded.stages.len(), report.stages.len());
        assert_eq!(loaded.makespan_ps(), report.makespan_ps());
        assert_eq!(loaded.events(), report.events());
        assert_eq!(format!("{loaded:?}"), format!("{report:?}"));
        assert_eq!(store.counters().run_hits, 1);
        assert_eq!(store.counters().run_misses, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn planned_blocks_roundtrip() {
        use mondrian_pipeline::Concurrency;
        let root = tmp_root("planned");
        let store = Store::open(&root, "test").unwrap();
        let pipeline = Pipeline::new(vec![
            StageSpec::Filter { modulus: 10, remainder: 0 },
            StageSpec::CountByKey,
        ]);
        let mut cfg = PipelineConfig::tiny(SystemKind::Mondrian);
        cfg.tuples_per_vault = 32;
        cfg.concurrency = Concurrency::Auto;
        let report = pipeline.run(&cfg);
        assert!(report.planned.is_some(), "auto runs record their plan");
        store.save_run("auto", &report);
        let loaded = store.load_run("auto").expect("saved entry loads");
        assert_eq!(format!("{loaded:?}"), format!("{report:?}"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let root = tmp_root("corrupt");
        let store = Store::open(&root, "test").unwrap();
        let report = sample_report();
        store.save_run("k1", &report);
        let name = Store::file_name("run", b"k1");
        let path = store.dir().join(&name);
        // Flip one payload byte: the checksum must catch it.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_run("k1").is_none(), "bit flip must miss");
        // Truncate: the checksum (and lengths) must catch it.
        store.save_run("k1", &report);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.load_run("k1").is_none(), "truncation must miss");
        // A different key hashing to the same file (simulated by writing
        // under the other key's name) must miss on key verification.
        store.save_run("k1", &report);
        let other = store.dir().join(Store::file_name("run", b"k2"));
        fs::copy(&path, &other).unwrap();
        assert!(store.load_run("k2").is_none(), "key mismatch must miss");
        // And a fresh save overwrites the corruption.
        store.save_run("k1", &report);
        assert!(store.load_run("k1").is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn prune_evicts_deterministically_by_generation_then_name() {
        let root = tmp_root("prune");
        let report = sample_report();
        // Session 1 writes k1, k2; session 2 writes k3 and touches k1.
        {
            let store = Store::open(&root, "test").unwrap();
            store.save_run("k1", &report);
            store.save_run("k2", &report);
        }
        let store = Store::open(&root, "test").unwrap();
        store.save_run("k3", &report);
        assert!(store.load_run("k1").is_some());
        store.flush_journal();
        let stats = store.stats().unwrap();
        assert_eq!(stats.total_entries, 3);
        let entry_bytes = stats.total_bytes / 3;
        // Budget for two entries: k2 (only touched in generation 1) must
        // be the eviction victim; k1 (re-touched) and k3 survive.
        let pruned = store.prune(2 * entry_bytes).unwrap();
        assert_eq!(pruned.evicted, 1);
        assert_eq!(pruned.remaining_entries, 2);
        assert!(store.load_run("k1").is_some(), "recently used survives");
        assert!(store.load_run("k3").is_some(), "newest survives");
        assert!(store.load_run("k2").is_none(), "LRU entry evicted");
        // Prune with room is a no-op.
        let idle = store.prune(u64::MAX).unwrap();
        assert_eq!(idle.evicted, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn prune_never_evicts_a_concurrent_writers_fresh_entries() {
        let root = tmp_root("prune-race");
        let report = sample_report();
        // Session 1 journals k1 and k2 at generation 1.
        {
            let store = Store::open(&root, "test").unwrap();
            store.save_run("k1", &report);
            store.save_run("k2", &report);
        }
        // Session 2: a pruner and a concurrent writer share the store.
        // The writer saves k3 but has not flushed its journal when the
        // prune walks the directory — the entry is younger than every
        // generation the pruner read, so it must never be the victim.
        let pruner = Store::open(&root, "test").unwrap();
        let writer = Store::open(&root, "test").unwrap();
        writer.save_run("k3", &report);
        let stats = pruner.stats().unwrap();
        assert_eq!(stats.total_entries, 3);
        let entry_bytes = stats.total_bytes / 3;
        let pruned = pruner.prune(2 * entry_bytes).unwrap();
        assert_eq!(pruned.evicted, 1, "budget for two of three entries");
        assert!(writer.load_run("k3").is_some(), "the in-flight entry survives");
        // The victim came from the journaled generation-1 pair, and the
        // rewritten journal does not adopt the writer's unflushed entry
        // — the writer journals it at its own generation on flush.
        let survivors = fs::read_to_string(pruner.dir().join("journal.log")).unwrap();
        assert!(!survivors.contains(&Store::file_name("run", b"k3")));
        writer.flush_journal();
        let journaled = read_journal(&pruner.dir().join("journal.log"));
        assert_eq!(
            journaled.get(&Store::file_name("run", b"k3")).copied(),
            Some(writer.generation),
            "the writer's flush records the true generation"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn losing_an_eviction_race_is_a_miss_not_corruption() {
        let root = tmp_root("lost-race");
        let store = Store::open(&root, "test").unwrap();
        let report = sample_report();
        store.save_run("k1", &report);
        // Another process prunes the entry away between this session's
        // save and its next load: the read must degrade to a clean miss.
        fs::remove_file(store.dir().join(Store::file_name("run", b"k1"))).unwrap();
        assert!(store.load_run("k1").is_none(), "a lost race reads as a miss");
        assert_eq!(store.counters().run_misses, 1);
        // The miss path re-simulates and overwrites; the store recovers.
        store.save_run("k1", &report);
        assert!(store.load_run("k1").is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn clear_empties_the_store() {
        let root = tmp_root("clear");
        let store = Store::open(&root, "test").unwrap();
        store.save_run("k1", &sample_report());
        assert_eq!(store.stats().unwrap().total_entries, 1);
        store.clear().unwrap();
        assert_eq!(store.stats().unwrap().total_entries, 0);
        assert!(store.load_run("k1").is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn salt_and_version_rotate_the_directory() {
        let root = tmp_root("salt");
        let a = Store::open(&root, "schema7").unwrap();
        let b = Store::open(&root, "schema8").unwrap();
        assert_ne!(a.dir(), b.dir(), "a schema bump must not see old entries");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn resolve_root_precedence() {
        assert_eq!(resolve_root(Some("/x/y")), Some(PathBuf::from("/x/y")));
        // Flag beats everything; the env/HOME branches depend on process
        // state and are exercised by the CLI integration tests.
    }
}
