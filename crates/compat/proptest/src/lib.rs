//! Offline stand-in for the slice of the `proptest` API the workspace's
//! property tests use: the `proptest!` macro, range / tuple / `prop_map` /
//! `any::<bool>()` strategies, `prop::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! The build environment has no access to crates.io, so instead of the
//! real framework each property runs a fixed number of cases (64) drawn
//! from a generator seeded deterministically from the test's name: runs
//! are reproducible, failures name the offending inputs through the
//! standard assertion messages. Shrinking is intentionally out of scope.

#![warn(missing_docs)]

/// Cases generated per property.
pub const CASES: u32 = 64;

/// Deterministic test-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so every property gets an
    /// independent, reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty strategy range");
        lo + self.next_u64() % (hi - lo)
    }
}

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u32, u64, usize);

macro_rules! tuple_strategy {
    ($($s:ident => $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 => s0, S1 => s1);
tuple_strategy!(S0 => s0, S1 => s1, S2 => s2);
tuple_strategy!(S0 => s0, S1 => s1, S2 => s2, S3 => s3);
tuple_strategy!(S0 => s0, S1 => s1, S2 => s2, S3 => s3, S4 => s4);
tuple_strategy!(S0 => s0, S1 => s1, S2 => s2, S3 => s3, S4 => s4, S5 => s5);
tuple_strategy!(S0 => s0, S1 => s1, S2 => s2, S3 => s3, S4 => s4, S5 => s5, S6 => s6);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from a range (see [`vec`]).
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Namespace mirror of the real crate (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The common imports of the real crate.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Defines property tests: each `fn name(binding in strategy) { body }`
/// becomes a `#[test]` running [`CASES`](crate::CASES) generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($arg:ident in $strategy:expr) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let strategy = $strategy;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::CASES {
                    let $arg = $crate::Strategy::generate(&strategy, &mut rng);
                    $body
                }
            }
        )+
    };
}

/// Property assertion; identical to `assert!` in this stand-in.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; identical to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// The macro, range/tuple/map/vec strategies and assertions all
        /// compose.
        #[test]
        fn smoke(v in prop::collection::vec((0u64..100, any::<bool>()).prop_map(|(a, b)| (a * 2, b)), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for &(a, _) in &v {
                prop_assert_eq!(a % 2, 0);
                prop_assert!(a < 200);
            }
        }
    }

    #[test]
    fn named_streams_differ() {
        let mut a = super::TestRng::deterministic("a");
        let mut b = super::TestRng::deterministic("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
