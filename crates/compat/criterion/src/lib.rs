//! Offline stand-in for the slice of the `criterion` API the workspace's
//! micro-benchmarks use: `Criterion::bench_function`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no access to crates.io. This shim measures
//! with `std::time::Instant` — one warm-up batch, then enough batches to
//! fill a short measurement window — and prints a `name: time/iter` line.
//! It is a smoke-and-regression harness, not a statistics engine.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Per-invocation timing context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` repeatedly and prints the per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up and calibration: one iteration tells us how many fit in
        // the measurement window.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let window = Duration::from_millis(200);
        let iters = (window.as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;

        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per = b.elapsed.as_secs_f64() / iters as f64;
        println!("{name:<32} {:>12.3} µs/iter ({iters} iters)", per * 1e6);
        self
    }
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark of this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(group, sample_bench);

    #[test]
    fn group_runs() {
        group();
    }
}
