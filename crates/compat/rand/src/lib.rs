//! Offline stand-in for the tiny slice of the `rand` crate API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` over `u64` ranges, and `SliceRandom::shuffle`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this deterministic implementation instead. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! workload generation and, crucially, **stable across platforms and
//! releases**, which the simulator's byte-identical-artifact guarantee
//! relies on. It makes no cryptographic claims.

#![warn(missing_docs)]

/// Types drawable from a generator via [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A source of random bits plus the derived sampling helpers.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws one value of an inferrable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "cannot sample from an empty range");
        let span = range.end - range.start;
        // Modulo bias is < 2^-53 for every span this workspace uses.
        range.start + self.next_u64() % span
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Expands `state` into a full generator seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The SplitMix64 output function, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; SplitMix64 cannot
            // produce four zero words from any seed, but keep the guard.
            if s == [0; 4] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut below_half = 0u32;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_500..5_500).contains(&below_half), "heavily biased: {below_half}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<u64>>(), "shuffle left input in place");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
    }
}
