//! Relation generators.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::tuple::Tuple;
use crate::zipf::Zipf;

/// Generates `n` tuples with keys drawn uniformly from `[0, key_bound)` and
/// random payloads (the paper's default distribution, §6).
///
/// # Panics
///
/// Panics if `key_bound` is zero.
///
/// # Example
///
/// ```
/// use mondrian_workloads::uniform_relation;
/// let r = uniform_relation(100, 1 << 20, 42);
/// assert_eq!(r.len(), 100);
/// assert!(r.iter().all(|t| t.key < (1 << 20)));
/// ```
pub fn uniform_relation(n: usize, key_bound: u64, seed: u64) -> Vec<Tuple> {
    assert!(key_bound > 0, "key bound must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Tuple::new(rng.gen_range(0..key_bound), rng.gen())).collect()
}

/// Generates the paper's Join inputs: a primary-key relation `R` of
/// `r_size` tuples with unique dense keys (shuffled), and a foreign-key
/// relation `S` of `s_size` tuples, each guaranteed to match exactly one
/// tuple of `R` (§6: "every tuple in S is guaranteed to find exactly one
/// join match in R").
///
/// # Panics
///
/// Panics if `r_size` is zero (S would have nothing to reference).
pub fn foreign_key_pair(r_size: usize, s_size: usize, seed: u64) -> (Vec<Tuple>, Vec<Tuple>) {
    assert!(r_size > 0, "R must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = (0..r_size as u64).collect();
    keys.shuffle(&mut rng);
    let r: Vec<Tuple> = keys.iter().map(|&k| Tuple::new(k, rng.gen())).collect();
    let s: Vec<Tuple> =
        (0..s_size).map(|_| Tuple::new(rng.gen_range(0..r_size as u64), rng.gen())).collect();
    (r, s)
}

/// Generates `n` tuples spread over `groups` distinct keys — the group-by
/// workload. With `groups = n / 4` this matches the paper's "average group
/// size of four tuples" (§6).
///
/// # Panics
///
/// Panics if `groups` is zero.
pub fn grouped_relation(n: usize, groups: u64, seed: u64) -> Vec<Tuple> {
    uniform_relation(n, groups.max(1), seed)
}

/// Generates `n` tuples with Zipfian-skewed keys over `[0, universe)` —
/// the skewed datasets the paper defers to future work (§5.4). `theta`
/// controls skew (0 = uniform; 0.99 = classic high skew).
///
/// # Panics
///
/// Panics if `universe` is zero or `theta` is negative.
pub fn zipfian_relation(n: usize, universe: u64, theta: f64, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(universe, theta);
    (0..n).map(|_| Tuple::new(zipf.sample(&mut rng), rng.gen())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(uniform_relation(50, 100, 7), uniform_relation(50, 100, 7));
        assert_ne!(uniform_relation(50, 100, 7), uniform_relation(50, 100, 8));
    }

    #[test]
    fn foreign_keys_always_match() {
        let (r, s) = foreign_key_pair(128, 512, 3);
        assert_eq!(r.len(), 128);
        assert_eq!(s.len(), 512);
        let r_keys: HashSet<u64> = r.iter().map(|t| t.key).collect();
        assert_eq!(r_keys.len(), 128, "R keys must be unique");
        assert!(s.iter().all(|t| r_keys.contains(&t.key)), "every S tuple matches");
    }

    #[test]
    fn grouped_has_expected_average_group_size() {
        let n = 4096;
        let rel = grouped_relation(n, (n / 4) as u64, 11);
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for t in &rel {
            *counts.entry(t.key).or_default() += 1;
        }
        let avg = n as f64 / counts.len() as f64;
        assert!((3.0..5.5).contains(&avg), "average group size {avg} not ≈ 4");
    }

    #[test]
    fn zipf_skews_towards_small_keys() {
        let rel = zipfian_relation(10_000, 1_000, 0.99, 5);
        let head = rel.iter().filter(|t| t.key < 10).count();
        // Under uniform, ~1% of keys land below 10; Zipf 0.99 concentrates
        // far more.
        assert!(head > 1_000, "zipf head too light: {head}");
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let rel = zipfian_relation(10_000, 1_000, 0.0, 5);
        let head = rel.iter().filter(|t| t.key < 100).count();
        assert!((500..1_500).contains(&head), "theta=0 should be uniform, head={head}");
    }
}
