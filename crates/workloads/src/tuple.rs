//! The 16-byte key/payload tuple used throughout the evaluation.

/// Size of one [`Tuple`] in memory (8 B key + 8 B payload).
pub const TUPLE_BYTES: u32 = 16;

/// A 16-byte data tuple: 8-byte integer key, 8-byte integer payload (§6).
///
/// Tuples order by key first (payload breaks ties) so that sorted relations
/// are deterministic.
///
/// # Example
///
/// ```
/// use mondrian_workloads::Tuple;
/// let mut v = vec![Tuple::new(3, 0), Tuple::new(1, 9)];
/// v.sort_unstable();
/// assert_eq!(v[0].key, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(C)]
pub struct Tuple {
    /// 8-byte join/sort key.
    pub key: u64,
    /// 8-byte payload (opaque to the operators).
    pub payload: u64,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(key: u64, payload: u64) -> Self {
        Self { key, payload }
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.key, self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_bytes() {
        assert_eq!(std::mem::size_of::<Tuple>(), TUPLE_BYTES as usize);
    }

    #[test]
    fn orders_by_key_then_payload() {
        let mut v = vec![Tuple::new(2, 1), Tuple::new(1, 5), Tuple::new(1, 2)];
        v.sort_unstable();
        assert_eq!(v, vec![Tuple::new(1, 2), Tuple::new(1, 5), Tuple::new(2, 1)]);
    }
}
