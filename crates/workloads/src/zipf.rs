//! Zipfian key distribution.

use rand::Rng;

/// A Zipfian sampler over `[0, universe)` with skew parameter `theta`.
///
/// Uses an inverse-CDF table, which is exact and fast for the universes in
/// this repository (≤ a few million keys).
///
/// # Example
///
/// ```
/// use mondrian_workloads::Zipf;
/// use rand::SeedableRng;
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let k = zipf.sample(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is zero or `theta` is negative/non-finite.
    pub fn new(universe: u64, theta: f64) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(universe as usize);
        let mut acc = 0.0;
        for i in 1..=universe {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of distinct keys.
    pub fn universe(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws one key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_universe() {
        let zipf = Zipf::new(64, 0.99);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 64);
        }
    }

    #[test]
    fn rank_one_is_most_frequent() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let max = counts.iter().copied().max().unwrap();
        assert_eq!(counts[0], max, "key 0 must be the mode");
        assert!(counts[0] > counts[99] * 10, "head/tail ratio too flat");
    }

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let zipf = Zipf::new(1000, 0.5);
        assert_eq!(zipf.universe(), 1000);
        let cdf = &zipf.cdf;
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }
}
