//! # mondrian-workloads
//!
//! Dataset generators for the Mondrian Data Engine reproduction.
//!
//! The paper evaluates all operators on collections of **16-byte tuples**
//! — an 8-byte integer key plus an 8-byte integer payload — "representing
//! an in-memory columnar database" (§6), with uniformly distributed keys.
//! Join inputs follow a foreign-key relationship (every tuple of the outer
//! relation S matches exactly one tuple of the inner relation R); the
//! group-by workload has an average group size of four tuples.
//!
//! Beyond the paper's uniform datasets, [`zipfian_relation`] generates
//! skewed keys for the skew-handling extension the paper defers to future
//! work (§5.4).

#![warn(missing_docs)]

mod gen;
mod tuple;
mod zipf;

pub use gen::{foreign_key_pair, grouped_relation, uniform_relation, zipfian_relation};
pub use tuple::{Tuple, TUPLE_BYTES};
pub use zipf::Zipf;
