//! Deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Time;

/// A binary-heap event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same timestamp pop in the order they were
/// scheduled, which keeps whole-system simulations reproducible regardless of
/// heap internals. The payload type `E` is chosen by the embedding engine.
///
/// # Example
///
/// ```
/// use mondrian_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(10, 'b');
/// q.schedule(10, 'c');
/// q.schedule(5, 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// Scheduling in the past is allowed (the event fires "now" from the
    /// caller's perspective); the engine asserts monotonicity at pop time.
    pub fn schedule(&mut self, time: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Removes and returns the earliest event only when `pred` accepts it;
    /// otherwise the queue is untouched. Engines use this to collect a
    /// *contiguous* run of events (e.g. every simultaneous vault tick at
    /// the head of the queue) without disturbing the FIFO tie-break of
    /// whatever follows.
    pub fn pop_if(&mut self, pred: impl FnOnce(Time, &E) -> bool) -> Option<(Time, E)> {
        let Reverse(head) = self.heap.peek()?;
        if pred(head.time, &head.event) {
            self.heap.pop().map(|Reverse(e)| (e.time, e.event))
        } else {
            None
        }
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(42, ());
        q.schedule(41, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(41));
    }

    #[test]
    fn pop_if_takes_only_accepted_heads() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        q.schedule(10, "b");
        q.schedule(20, "c");
        // Contiguous same-time prefix pops; the rejected head stays put.
        assert_eq!(q.pop_if(|t, _| t == 10), Some((10, "a")));
        assert_eq!(q.pop_if(|t, e| t == 10 && *e != "b"), None);
        assert_eq!(q.len(), 2, "rejection must not consume the head");
        assert_eq!(q.pop_if(|t, _| t == 10), Some((10, "b")));
        assert_eq!(q.pop_if(|t, _| t == 10), None);
        assert_eq!(q.pop(), Some((20, "c")));
        assert_eq!(q.pop_if(|_, _| true), None, "empty queue");
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, "a");
        assert_eq!(q.pop(), Some((10, "a")));
        q.schedule(5, "b");
        q.schedule(15, "c");
        assert_eq!(q.pop(), Some((5, "b")));
        q.schedule(12, "d");
        assert_eq!(q.pop(), Some((12, "d")));
        assert_eq!(q.pop(), Some((15, "c")));
    }
}
