//! Global time base and per-domain clocks.

/// Simulation time in **picoseconds**.
///
/// A `u64` picosecond counter wraps after ~213 days of simulated time, far
/// beyond any experiment in this repository (the longest paper experiment
/// simulates milliseconds).
pub type Time = u64;

/// Picoseconds per nanosecond.
pub const PS_PER_NS: Time = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: Time = 1_000_000;

/// A frequency domain: converts between local clock cycles and global
/// picosecond time.
///
/// All timing models in the repository are written in terms of their natural
/// clock (core cycles, DRAM tCK multiples) and converted at the boundary.
///
/// # Example
///
/// ```
/// use mondrian_sim::Clock;
/// let cpu = Clock::from_ghz(2.0); // paper's ARM Cortex-A57 cores
/// assert_eq!(cpu.period_ps(), 500);
/// assert_eq!(cpu.cycles_to_ps(4), 2_000);
/// assert_eq!(cpu.ps_to_cycles_ceil(1_200), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    period_ps: Time,
}

impl Clock {
    /// Creates a clock from its period in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `period_ps` is zero.
    pub fn from_period_ps(period_ps: Time) -> Self {
        assert!(period_ps > 0, "clock period must be non-zero");
        Self { period_ps }
    }

    /// Creates a clock from a frequency in GHz.
    ///
    /// The period is rounded to the nearest picosecond; e.g. 1.6 ns DRAM tCK
    /// is exactly representable, as are all frequencies used by the paper.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Self::from_period_ps((1000.0 / ghz).round() as Time)
    }

    /// The clock period in picoseconds.
    pub fn period_ps(&self) -> Time {
        self.period_ps
    }

    /// The clock frequency in GHz.
    pub fn ghz(&self) -> f64 {
        1000.0 / self.period_ps as f64
    }

    /// Converts a cycle count into picoseconds.
    pub fn cycles_to_ps(&self, cycles: u64) -> Time {
        cycles * self.period_ps
    }

    /// Converts picoseconds to whole cycles, rounding up (a component cannot
    /// act mid-cycle).
    pub fn ps_to_cycles_ceil(&self, ps: Time) -> u64 {
        ps.div_ceil(self.period_ps)
    }

    /// Converts picoseconds to whole elapsed cycles, rounding down.
    pub fn ps_to_cycles_floor(&self, ps: Time) -> u64 {
        ps / self.period_ps
    }

    /// The first edge of this clock at or after `ps`.
    pub fn next_edge(&self, ps: Time) -> Time {
        self.ps_to_cycles_ceil(ps) * self.period_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_round_trip() {
        for &f in &[0.625, 1.0, 2.0, 10.0] {
            let c = Clock::from_ghz(f);
            assert!((c.ghz() - f).abs() < 1e-9, "{f} GHz");
        }
    }

    #[test]
    fn period_of_paper_clocks() {
        assert_eq!(Clock::from_ghz(2.0).period_ps(), 500); // CPU cores
        assert_eq!(Clock::from_ghz(1.0).period_ps(), 1000); // NMP logic
        assert_eq!(Clock::from_period_ps(1600).period_ps(), 1600); // DRAM tCK
    }

    #[test]
    fn cycle_conversions() {
        let c = Clock::from_ghz(1.0);
        assert_eq!(c.cycles_to_ps(3), 3000);
        assert_eq!(c.ps_to_cycles_ceil(1), 1);
        assert_eq!(c.ps_to_cycles_ceil(1000), 1);
        assert_eq!(c.ps_to_cycles_ceil(1001), 2);
        assert_eq!(c.ps_to_cycles_floor(1999), 1);
    }

    #[test]
    fn next_edge_aligns() {
        let c = Clock::from_period_ps(1600);
        assert_eq!(c.next_edge(0), 0);
        assert_eq!(c.next_edge(1), 1600);
        assert_eq!(c.next_edge(1600), 1600);
        assert_eq!(c.next_edge(1601), 3200);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = Clock::from_period_ps(0);
    }
}
