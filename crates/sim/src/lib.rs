//! # mondrian-sim
//!
//! Discrete-event simulation substrate for the Mondrian Data Engine
//! reproduction.
//!
//! The paper evaluates its systems on Flexus, a full-system cycle-accurate
//! simulator. This crate provides the equivalent foundation for our models:
//!
//! * a global **picosecond** time base ([`Time`]) so that components running
//!   at different frequencies (2 GHz CPU cores, 1 GHz NMP logic, DRAM command
//!   clock, 10 GHz SerDes lanes) can interoperate without rounding drift,
//! * [`Clock`], a frequency-domain helper converting between cycles and
//!   picoseconds,
//! * [`EventQueue`], a deterministic binary-heap event queue generic over the
//!   event payload type (the engine crate instantiates it with its unified
//!   message enum), and
//! * [`Stats`], a hierarchical counter registry used by the energy model and
//!   the benchmark harness, and
//! * [`StealQueue`], a work-stealing task queue the sweep executors use to
//!   keep workers busy on uneven task lists.
//!
//! # Example
//!
//! ```
//! use mondrian_sim::{Clock, EventQueue};
//!
//! let clock = Clock::from_ghz(1.0);
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(clock.cycles_to_ps(5), "five");
//! q.schedule(clock.cycles_to_ps(2), "two");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (2_000, "two"));
//! ```

#![warn(missing_docs)]

mod clock;
mod queue;
mod stats;
mod worksteal;

pub use clock::{Clock, Time, PS_PER_NS, PS_PER_US};
pub use queue::EventQueue;
pub use stats::{Stat, Stats};
pub use worksteal::StealQueue;
