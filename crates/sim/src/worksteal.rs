//! A minimal work-stealing task queue for the sweep executors.
//!
//! Each worker owns one deque; it pops its own work from the front and,
//! when empty, steals from the *back* of a victim's deque (round-robin
//! over the other workers). The structure balances uneven task lists —
//! a worker that finishes its share early drains the stragglers' tails
//! instead of idling at a chunk barrier.
//!
//! Scheduling is intentionally **not** deterministic: which worker runs
//! which task depends on timing. Callers must keep results deterministic
//! the way the campaign engine does — tasks are self-contained
//! simulations of disjoint sweep points, and results are assembled by
//! task *position*, never by completion order.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Per-worker deques with round-robin stealing.
#[derive(Debug)]
pub struct StealQueue<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> StealQueue<T> {
    /// Distributes `items` round-robin across `workers` deques, preserving
    /// item order within each deque (worker `w` initially holds items
    /// `w, w + workers, w + 2·workers, …` in that order).
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn seed(items: impl IntoIterator<Item = T>, workers: usize) -> Self {
        assert!(workers > 0, "a steal queue needs at least one worker");
        let mut queues: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back(item);
        }
        Self { queues: queues.into_iter().map(Mutex::new).collect() }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Takes the next task for `worker`: the front of its own deque, or —
    /// when that is empty — the back of the first non-empty victim deque
    /// (scanning `worker + 1, worker + 2, …` cyclically). Returns `None`
    /// only when every deque is empty at the moment of the scan.
    ///
    /// # Panics
    ///
    /// Panics when `worker` is out of range or a deque mutex is poisoned.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let n = self.queues.len();
        assert!(worker < n, "worker index out of range");
        if let Some(item) = self.queues[worker].lock().expect("steal queue poisoned").pop_front() {
            return Some(item);
        }
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(item) = self.queues[victim].lock().expect("steal queue poisoned").pop_back()
            {
                return Some(item);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn seed_distributes_round_robin() {
        let q = StealQueue::seed(0..7, 3);
        assert_eq!(q.workers(), 3);
        // Worker 0 owns 0, 3, 6 and pops them front-first.
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), Some(3));
        assert_eq!(q.pop(0), Some(6));
    }

    #[test]
    fn idle_workers_steal_from_victims_tails() {
        let q = StealQueue::seed(0..4, 2); // worker 0: [0, 2]; worker 1: [1, 3]
        assert_eq!(q.pop(1), Some(1));
        assert_eq!(q.pop(1), Some(3));
        // Worker 1 is dry: it steals worker 0's *back* item.
        assert_eq!(q.pop(1), Some(2));
        assert_eq!(q.pop(0), Some(0));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn every_task_is_taken_exactly_once_under_contention() {
        let q = StealQueue::seed(0..100u32, 4);
        let taken: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..4 {
                let q = &q;
                let taken = &taken;
                scope.spawn(move || {
                    while let Some(item) = q.pop(w) {
                        taken.lock().unwrap().push(item);
                    }
                });
            }
        });
        let taken = taken.into_inner().unwrap();
        assert_eq!(taken.len(), 100);
        assert_eq!(taken.iter().copied().collect::<BTreeSet<_>>().len(), 100);
    }

    #[test]
    fn single_worker_degenerates_to_fifo() {
        let q = StealQueue::seed(0..5, 1);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop(0)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
