//! Hierarchical statistics registry.
//!
//! Components keep their hot counters in plain struct fields and export them
//! into a [`Stats`] registry at reporting time. Keys are `.`-separated paths
//! (`"vault.3.row_activations"`), which the energy model and the benchmark
//! harness aggregate by prefix.

use std::collections::BTreeMap;
use std::fmt;

/// A single named statistic value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stat {
    /// An event count (row activations, instructions, ...).
    Count(u64),
    /// A continuous quantity (energy in joules, utilization, ...).
    Value(f64),
}

impl Stat {
    /// The statistic as a float regardless of flavor.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Stat::Count(c) => c as f64,
            Stat::Value(v) => v,
        }
    }

    /// The statistic as a count.
    ///
    /// # Panics
    ///
    /// Panics if the statistic is a [`Stat::Value`].
    pub fn as_count(&self) -> u64 {
        match *self {
            Stat::Count(c) => c,
            Stat::Value(v) => panic!("stat is a value ({v}), not a count"),
        }
    }
}

/// An ordered map of named statistics.
///
/// # Example
///
/// ```
/// use mondrian_sim::Stats;
/// let mut s = Stats::new();
/// s.add_count("vault.0.activations", 10);
/// s.add_count("vault.1.activations", 32);
/// assert_eq!(s.sum_by_suffix("activations"), 42.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    entries: BTreeMap<String, Stat>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter at `key`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `key` already holds a [`Stat::Value`].
    pub fn add_count(&mut self, key: &str, n: u64) {
        match self.entries.entry(key.to_owned()).or_insert(Stat::Count(0)) {
            Stat::Count(c) => *c += n,
            Stat::Value(_) => panic!("stat {key} is a value, not a count"),
        }
    }

    /// Adds `v` to the value at `key`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `key` already holds a [`Stat::Count`].
    pub fn add_value(&mut self, key: &str, v: f64) {
        match self.entries.entry(key.to_owned()).or_insert(Stat::Value(0.0)) {
            Stat::Value(x) => *x += v,
            Stat::Count(_) => panic!("stat {key} is a count, not a value"),
        }
    }

    /// Sets `key` to `stat`, replacing any previous value.
    pub fn set(&mut self, key: &str, stat: Stat) {
        self.entries.insert(key.to_owned(), stat);
    }

    /// Looks up a statistic.
    pub fn get(&self, key: &str) -> Option<Stat> {
        self.entries.get(key).copied()
    }

    /// Looks up a count, defaulting to zero.
    pub fn count(&self, key: &str) -> u64 {
        self.get(key).map(|s| s.as_count()).unwrap_or(0)
    }

    /// Looks up a value, defaulting to zero.
    pub fn value(&self, key: &str) -> f64 {
        self.get(key).map(|s| s.as_f64()).unwrap_or(0.0)
    }

    /// Sums every statistic whose key ends with `.{suffix}` or equals
    /// `suffix`.
    pub fn sum_by_suffix(&self, suffix: &str) -> f64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.as_str() == suffix || k.ends_with(&format!(".{suffix}")))
            .map(|(_, s)| s.as_f64())
            .sum()
    }

    /// Sums every statistic whose key starts with `prefix`.
    pub fn sum_by_prefix(&self, prefix: &str) -> f64 {
        self.entries.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, s)| s.as_f64()).sum()
    }

    /// Iterates over `(key, stat)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Stat)> {
        self.entries.iter().map(|(k, s)| (k.as_str(), *s))
    }

    /// Merges another registry into this one, adding overlapping entries.
    ///
    /// # Panics
    ///
    /// Panics if an overlapping key has mismatched flavors.
    pub fn merge(&mut self, other: &Stats) {
        for (k, s) in other.iter() {
            match s {
                Stat::Count(c) => self.add_count(k, c),
                Stat::Value(v) => self.add_value(k, v),
            }
        }
    }

    /// Number of registered statistics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, s) in &self.entries {
            match s {
                Stat::Count(c) => writeln!(f, "{k} = {c}")?,
                Stat::Value(v) => writeln!(f, "{k} = {v:.6}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut s = Stats::new();
        s.add_count("a.b", 1);
        s.add_count("a.b", 2);
        assert_eq!(s.count("a.b"), 3);
        assert_eq!(s.count("missing"), 0);
    }

    #[test]
    fn values_accumulate() {
        let mut s = Stats::new();
        s.add_value("e", 0.5);
        s.add_value("e", 0.25);
        assert!((s.value("e") - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "is a value")]
    fn flavor_mismatch_panics() {
        let mut s = Stats::new();
        s.add_value("x", 1.0);
        s.add_count("x", 1);
    }

    #[test]
    fn suffix_and_prefix_sums() {
        let mut s = Stats::new();
        s.add_count("vault.0.acts", 1);
        s.add_count("vault.1.acts", 2);
        s.add_count("vault.1.reads", 100);
        s.add_count("acts", 4);
        assert_eq!(s.sum_by_suffix("acts"), 7.0);
        assert_eq!(s.sum_by_prefix("vault.1."), 102.0);
        // "facts" must not match the ".acts" suffix.
        s.add_count("vault.2.facts", 1000);
        assert_eq!(s.sum_by_suffix("acts"), 7.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = Stats::new();
        a.add_count("c", 1);
        a.add_value("v", 1.0);
        let mut b = Stats::new();
        b.add_count("c", 2);
        b.add_value("v", 0.5);
        b.add_count("only_b", 9);
        a.merge(&b);
        assert_eq!(a.count("c"), 3);
        assert!((a.value("v") - 1.5).abs() < 1e-12);
        assert_eq!(a.count("only_b"), 9);
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = Stats::new();
        s.add_count("k", 1);
        assert!(format!("{s}").contains("k = 1"));
    }
}
