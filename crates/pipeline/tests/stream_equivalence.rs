//! Differential lockdown of intra-stage pipelining: every streamed
//! schedule must produce stage outputs byte-identical to the serial
//! reference executor, and the reported makespan must be monotone
//! (`stream ≤ branch ≤ serial`) — across random Table 1 chains and DAGs,
//! key distributions, and the four representative systems (both probe
//! families, both partitioning mechanisms). Streaming reorders simulated
//! events (per-chunk histogram/scatter rounds, interleaved destination
//! arrival), so the byte-identity assertions here are the proof that the
//! overlap model never leaks into the functional results.

use mondrian_core::{KeyDist, SystemKind};
use mondrian_pipeline::{
    BuildSide, Concurrency, Pipeline, PipelineConfig, PipelineReport, Stage, StageInput, StageSpec,
};
use proptest::prelude::*;

/// The four representative systems the differential properties sweep.
const SYSTEMS: [SystemKind; 4] =
    [SystemKind::Cpu, SystemKind::NmpRand, SystemKind::NmpSeq, SystemKind::Mondrian];

/// A streaming producer drawn from the Table 1 scan family.
fn producer(sel: u64, param: u64) -> StageSpec {
    match sel % 4 {
        0 => StageSpec::Filter { modulus: param.max(2), remainder: 0 },
        1 => StageSpec::Map { key_mul: 1, key_add: param },
        2 => StageSpec::MapValues { mul: 3, add: param },
        _ => StageSpec::FlatMap { fanout: param % 3 + 1 },
    }
}

/// A partition-phase consumer.
fn consumer(sel: u64) -> StageSpec {
    match sel % 6 {
        0 => StageSpec::GroupByKey,
        1 => StageSpec::ReduceByKey,
        2 => StageSpec::CountByKey,
        3 => StageSpec::AggregateByKey,
        4 => StageSpec::SortByKey,
        _ => StageSpec::Join { build: BuildSide::Dimension },
    }
}

/// The swept key distributions: the paper's uniform evaluation setting
/// plus two Zipfian skews (§5.4's future-work axis).
fn key_dist(sel: u64) -> KeyDist {
    match sel % 3 {
        0 => KeyDist::Uniform,
        1 => KeyDist::Zipf(0.6),
        _ => KeyDist::Zipf(1.0),
    }
}

/// Runs one pipeline under all three schedules and enforces the
/// differential contract: byte-identical stage digests and final
/// relations, and monotone makespans.
fn assert_stream_contract(
    pipeline: &Pipeline,
    mut cfg: PipelineConfig,
) -> (PipelineReport, PipelineReport, PipelineReport) {
    cfg.concurrency = Concurrency::Serial;
    let serial = pipeline.run(&cfg);
    cfg.concurrency = Concurrency::Branch;
    let branch = pipeline.run(&cfg);
    cfg.concurrency = Concurrency::Stream;
    let stream = pipeline.run(&cfg);

    assert!(serial.verified(), "serial run failed on {}", cfg.system);
    assert!(branch.verified(), "branch run failed on {}", cfg.system);
    assert!(stream.verified(), "stream run failed on {}", cfg.system);
    for (s, st) in serial.stages.iter().zip(&stream.stages) {
        assert_eq!(
            s.output_digest, st.output_digest,
            "stage {} diverged under streaming on {}",
            s.spec, cfg.system
        );
        assert_eq!(s.output_rows, st.output_rows);
        assert!(st.matches_serial, "stage {} lost serial equivalence", st.spec);
    }
    assert_eq!(&serial.output, &stream.output, "final relations diverged on {}", cfg.system);
    assert_eq!(&serial.output, &branch.output);
    assert!(
        stream.makespan_ps() <= branch.makespan_ps(),
        "stream slower than branch on {}: {} > {} ps",
        cfg.system,
        stream.makespan_ps(),
        branch.makespan_ps()
    );
    assert!(
        branch.makespan_ps() <= serial.makespan_ps(),
        "branch slower than serial on {}: {} > {} ps",
        cfg.system,
        branch.makespan_ps(),
        serial.makespan_ps()
    );
    (serial, branch, stream)
}

proptest! {
    /// Random producer→consumer chains (the common linear Table 1
    /// shape): both fused pairs verify byte-identical to serial and the
    /// makespan stays monotone, for random operators, predicates,
    /// fanouts, key distributions, seeds and scales on all four
    /// representative systems.
    #[test]
    fn streamed_chains_byte_identical_and_monotone(
        params in (0u64..4, (0u64..4, 2u64..9, 0u64..6), (0u64..4, 2u64..9, 0u64..6), 0u64..3, 0u64..1000, 16usize..40)
    ) {
        let (sys, a, b, dist, seed, tpv) = params;
        let pipeline = Pipeline::from_stages(vec![
            Stage::chained(producer(a.0, a.1)),
            Stage::chained(consumer(a.2)),
            Stage::chained(producer(b.0, b.1)),
            Stage::chained(consumer(b.2)),
        ]);
        let mut cfg = PipelineConfig::tiny(SYSTEMS[sys as usize]);
        cfg.tuples_per_vault = tpv;
        cfg.seed = seed;
        cfg.dist = key_dist(dist);
        let (_, _, stream) = assert_stream_contract(&pipeline, cfg);
        prop_assert_eq!(stream.schedule.fused.len(), 2, "both edges are stream-fusable");
        // A fallback pair still reports its materialized slot unchanged.
        for f in &stream.schedule.fused {
            prop_assert!(f.chunks >= 1);
            if !f.streamed {
                prop_assert!(f.streamed_ps >= f.unfused_ps);
            }
        }
    }
}

proptest! {
    /// Random two-branch DAGs (the PR 2 scheduler-equivalence shape with
    /// streaming producers inside each branch): branch-level tenancy and
    /// intra-branch streaming compose without breaking byte-identity or
    /// monotonicity.
    #[test]
    fn streamed_dags_byte_identical_and_monotone(
        params in (0u64..4, (0u64..4, 2u64..9, 0u64..4), (0u64..4, 2u64..9, 0u64..4), 0u64..3, 0u64..1000, 16usize..40)
    ) {
        let (sys, a, b, dist, seed, tpv) = params;
        // Two independent producer→consumer chains joined at the end:
        // wave 0 runs the chains concurrently on leases *and* streams
        // within each chain; the join materializes both sides.
        let pipeline = Pipeline::from_stages(vec![
            Stage::chained(producer(a.0, a.1)),
            Stage::chained(consumer(a.2 % 4)),
            Stage::with_input(producer(b.0, b.1), StageInput::Source),
            Stage::chained(consumer(b.2 % 4)),
            Stage::with_input(StageSpec::Join { build: BuildSide::Stage(3) }, StageInput::Stage(1)),
        ]);
        let mut cfg = PipelineConfig::tiny(SYSTEMS[sys as usize]);
        cfg.tuples_per_vault = tpv;
        cfg.seed = seed;
        cfg.dist = key_dist(dist);
        let (_, _, stream) = assert_stream_contract(&pipeline, cfg);
        prop_assert_eq!(stream.schedule.fused.len(), 2, "one fused pair per chain");
    }
}

/// The integration matrix (all seven operators as streamed producers or
/// consumers, both algorithm families): scan→sort, flat_map→cogroup
/// (`Expanded` fanout accounting across chunk boundaries), union→group-by
/// and scan→join all fuse, verify byte-identical to serial, and stay
/// monotone on the four representative systems.
#[test]
fn all_seven_operators_stream_in_one_plan() {
    let pipeline = Pipeline::from_stages(vec![
        // 0: scan producer feeding a sort consumer.
        Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
        Stage::chained(StageSpec::SortByKey),
        // 2-3: a second feeder chain ending in an expanding flat_map.
        Stage::with_input(StageSpec::Filter { modulus: 3, remainder: 1 }, StageInput::Source),
        Stage::chained(StageSpec::FlatMap { fanout: 3 }),
        // 4: the flat_map streams into the cogroup's primary side; side B
        // (stage 2) is read by stages 3 and 4, so it materializes.
        Stage::with_inputs(StageSpec::Cogroup, vec![StageInput::Stage(3), StageInput::Stage(2)]),
        // 5-6: a union producer streams into a group-by consumer.
        Stage::with_inputs(StageSpec::Union, vec![StageInput::Stage(1), StageInput::Stage(4)]),
        Stage::chained(StageSpec::GroupByKey),
        // 7-8: a map (scan) producer streams into a join consumer whose
        // build side materializes from the cogroup.
        Stage::chained(StageSpec::Map { key_mul: 1, key_add: 1 }),
        Stage::chained(StageSpec::Join { build: BuildSide::Stage(4) }),
    ]);
    let dag = pipeline.dag();
    let pairs = dag.fused_pairs(pipeline.stages());
    assert_eq!(pairs, vec![(0, 1), (3, 4), (5, 6), (7, 8)], "four fused pairs planned");

    for system in SYSTEMS {
        let mut cfg = PipelineConfig::tiny(system);
        cfg.tuples_per_vault = 48;
        cfg.seed = 11;
        let (serial, _, stream) = assert_stream_contract(&pipeline, cfg);
        assert_eq!(stream.schedule.fused.len(), 4);

        // The flat_map→cogroup edge chunks the Expanded 1→N relation:
        // with fanout 3 the chunk boundaries must not align with the
        // fanout groups, so the cogroup's per-chunk partition rounds see
        // split groups — the accounting the differential digests lock in.
        let fm_cg = stream
            .schedule
            .fused
            .iter()
            .find(|f| (f.producer, f.consumer) == (3, 4))
            .expect("flat_map→cogroup pair is planned");
        assert!(fm_cg.chunks > 1, "the expanded relation streams in several chunks");
        let expanded_rows = serial.stages[3].output_rows;
        let per_chunk = expanded_rows.div_ceil(fm_cg.chunks);
        assert_ne!(per_chunk % 3, 0, "a chunk boundary falls inside a fanout group");

        // Charged streamed stages carry the per-chunk accounting in
        // their engine report.
        for s in &stream.stages {
            if s.streamed {
                let info = s.report.stream.as_ref().expect("streamed stage records chunks");
                assert!(info.chunk_partition_ps.len() == info.chunks && info.chunks > 0);
            }
        }
    }
}

/// The acceptance scenario, deterministically: on a linear chain (where
/// branch scheduling cannot help at all) the stream schedule must be
/// strictly faster than both serial and branch on at least one system,
/// with byte-identical outputs everywhere.
#[test]
fn stream_schedule_strictly_faster_on_some_system() {
    let pipeline = Pipeline::from_stages(vec![
        Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
        Stage::chained(StageSpec::GroupByKey),
        Stage::chained(StageSpec::Map { key_mul: 1, key_add: 1 }),
        Stage::chained(StageSpec::SortByKey),
    ]);
    let mut strictly_faster = Vec::new();
    for system in SystemKind::ALL {
        let mut cfg = PipelineConfig::tiny(system);
        cfg.tuples_per_vault = 128;
        cfg.seed = 7;
        let (_, branch, stream) = assert_stream_contract(&pipeline, cfg);
        assert_eq!(
            branch.makespan_ps(),
            branch.runtime_ps(),
            "a linear chain gains nothing from branch tenancy on {system}"
        );
        if stream.makespan_ps() < branch.makespan_ps() {
            assert!(stream.schedule.any_streamed(), "a strict win must come from a fused pair");
            strictly_faster.push(system);
        }
    }
    assert!(
        !strictly_faster.is_empty(),
        "no system gained from intra-stage pipelining on the chain"
    );
    assert!(
        strictly_faster.contains(&SystemKind::Cpu),
        "the checked-in acceptance win is on CPU; got {strictly_faster:?}"
    );
}
