//! Integration tests for the pipeline subsystem: determinism, per-stage
//! agreement with the `ops::reference` executors, and whole-pipeline
//! verification on every evaluated system.

use mondrian_core::{KeyDist, SystemKind};
use mondrian_ops::{reference, ScanPredicate};
use mondrian_pipeline::{
    BuildSide, Concurrency, Pipeline, PipelineConfig, Stage, StageInput, StageSpec,
};
use mondrian_workloads::Tuple;

fn three_stage() -> Pipeline {
    Pipeline::new(vec![
        StageSpec::Filter { modulus: 10, remainder: 0 },
        StageSpec::ReduceByKey,
        StageSpec::SortByKey,
    ])
}

#[test]
fn pipeline_runs_are_deterministic_for_a_fixed_seed() {
    let cfg = PipelineConfig::tiny(SystemKind::Mondrian);
    let a = three_stage().run(&cfg);
    let b = three_stage().run(&cfg);
    assert_eq!(a.runtime_ps(), b.runtime_ps(), "same seed must give same cycles");
    assert_eq!(a.instructions(), b.instructions());
    assert_eq!(a.output, b.output, "same seed must give the same output relation");
    for (sa, sb) in a.stages.iter().zip(&b.stages) {
        assert_eq!(sa.report.runtime_ps, sb.report.runtime_ps);
        assert_eq!(sa.output_rows, sb.output_rows);
    }
    // A different seed changes the data but not correctness.
    let mut other = PipelineConfig::tiny(SystemKind::Mondrian);
    other.seed = cfg.seed + 1;
    let c = three_stage().run(&other);
    assert!(c.verified());
    assert_ne!(a.output, c.output);
}

/// Each stage's output relation must match what the naive `ops::reference`
/// executors produce from the same input — computed here, independently of
/// the pipeline's own verification.
#[test]
fn stage_outputs_match_reference_executors() {
    let cfg = PipelineConfig::tiny(SystemKind::Mondrian);
    let pipeline = Pipeline::new(vec![
        StageSpec::Filter { modulus: 10, remainder: 0 },
        StageSpec::CountByKey,
        StageSpec::SortByKey,
    ]);
    let report = pipeline.run(&cfg);
    assert!(report.verified());

    // Stage 0 (Filter → Scan): reference::filtered on the source relation.
    let source = cfg.source_relation();
    let filtered =
        reference::filtered(&source, ScanPredicate::PayloadModNot { modulus: 10, remainder: 0 });
    let stage0 = &report.stages[0];
    assert_eq!(stage0.output_rows, filtered.len());

    // Stage 1 (CountByKey → Group-by): reference::grouped counts.
    let expect_counts: Vec<Tuple> =
        reference::grouped(&filtered).iter().map(|(&k, a)| Tuple::new(k, a.count)).collect();
    assert_eq!(report.stages[1].output_rows, expect_counts.len());

    // Stage 2 (SortByKey → Sort): reference::sorted of the counts, which is
    // also the pipeline's final output.
    let expect_sorted = reference::sorted(&expect_counts);
    assert_eq!(report.output, expect_sorted);
}

#[test]
fn three_stage_pipeline_verifies_on_every_system() {
    for system in SystemKind::ALL {
        let report = three_stage().run(&PipelineConfig::tiny(system));
        assert!(report.verified(), "pipeline failed on {system}");
        assert_eq!(report.stages.len(), 3);
        assert!(report.runtime_ps() > 0);
        assert!(report.instructions() > 0);
        assert!(report.energy_j() > 0.0);
        for stage in &report.stages {
            assert!(stage.report.verified, "{} engine check failed on {system}", stage.spec);
            assert!(stage.reference_ok, "{} reference check failed on {system}", stage.spec);
        }
    }
}

#[test]
fn join_against_derived_dimension_verifies() {
    for system in [SystemKind::Mondrian, SystemKind::Cpu, SystemKind::NmpRand] {
        let pipeline = Pipeline::new(vec![
            StageSpec::Filter { modulus: 4, remainder: 0 },
            StageSpec::Join { build: BuildSide::Dimension },
            StageSpec::AggregateByKey,
        ]);
        let report = pipeline.run(&PipelineConfig::tiny(system));
        assert!(report.verified(), "dimension join failed on {system}");
        // A PK dimension over the probe keys matches every probe tuple
        // exactly once.
        assert_eq!(report.stages[1].output_rows, report.stages[1].input_rows);
    }
}

#[test]
fn join_build_side_can_reference_an_earlier_stage() {
    // count_by_key shrinks the relation to one tuple per key; joining the
    // original filtered relation against it annotates every tuple with its
    // group size — a genuinely DAG-shaped plan.
    let pipeline = Pipeline::new(vec![
        StageSpec::Filter { modulus: 2, remainder: 0 },
        StageSpec::CountByKey,
        StageSpec::Join { build: BuildSide::Stage(1) },
    ]);
    let report = pipeline.run(&PipelineConfig::tiny(SystemKind::Mondrian));
    assert!(report.verified());
    // Stage 2's probe side is stage 1's output (the counts), joined against
    // itself-as-build: every count tuple matches exactly once.
    assert_eq!(report.stages[2].output_rows, report.stages[2].input_rows);
}

#[test]
fn zipfian_sources_still_verify() {
    let mut cfg = PipelineConfig::tiny(SystemKind::Mondrian);
    cfg.dist = KeyDist::Zipf(0.9);
    let report = three_stage().run(&cfg);
    assert!(report.verified());
}

#[test]
fn scan_only_pipeline_preserves_row_counts() {
    let cfg = PipelineConfig::tiny(SystemKind::Nmp);
    let pipeline = Pipeline::new(vec![
        StageSpec::Map { key_mul: 1, key_add: 1 },
        StageSpec::MapValues { mul: 3, add: 1 },
    ]);
    let report = pipeline.run(&cfg);
    assert!(report.verified());
    let n = cfg.source_relation().len();
    assert_eq!(report.output.len(), n, "map stages are 1:1");
    // Map re-keyed everything: keys shifted by one.
    let source = cfg.source_relation();
    assert_eq!(report.stages[0].output_rows, n);
    assert!(report.stages.iter().all(|s| s.basic_operator() == mondrian_ops::OperatorKind::Scan));
    assert!(source.iter().map(|t| t.key).min() < report.output.iter().map(|t| t.key).min());
}

/// The DAG exercising every opened stage kind: two feeder chains (one
/// amplified by flat_map), then a union and a cogroup of the same two
/// edges — mutually independent multi-input stages sharing a wave — and
/// a final sort over the union.
fn multi_input_pipeline(fanout: u64) -> Pipeline {
    Pipeline::from_stages(vec![
        Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
        Stage::chained(StageSpec::FlatMap { fanout }),
        Stage::with_input(StageSpec::Filter { modulus: 3, remainder: 1 }, StageInput::Source),
        Stage::with_inputs(StageSpec::Union, vec![StageInput::Stage(1), StageInput::Stage(2)]),
        Stage::with_inputs(StageSpec::Cogroup, vec![StageInput::Stage(1), StageInput::Stage(2)]),
        Stage::with_input(StageSpec::SortByKey, StageInput::Stage(3)),
    ])
}

/// The acceptance matrix for the opened operator layer: union, cogroup
/// and flat_map run end to end on the four representative systems
/// (covering both algorithm families), serial and branch-concurrent,
/// with every stage's engine output byte-identical to its naive
/// reference executor and the two schedules byte-identical to each other.
#[test]
fn new_stage_kinds_verify_on_representative_systems() {
    let pipeline = multi_input_pipeline(3);
    for system in [SystemKind::Cpu, SystemKind::NmpRand, SystemKind::NmpSeq, SystemKind::Mondrian] {
        let mut cfg = PipelineConfig::tiny(system);
        cfg.tuples_per_vault = 96;
        let serial = pipeline.run(&cfg);
        assert!(serial.verified(), "serial run failed on {system}");
        for stage in &serial.stages {
            assert!(stage.report.verified, "{} engine check failed on {system}", stage.spec);
            assert!(stage.reference_ok, "{} reference check failed on {system}", stage.spec);
        }
        // flat_map amplifies the filter output exactly by its fanout.
        assert_eq!(serial.stages[1].output_rows, serial.stages[0].output_rows * 3);
        // union concatenates both edges.
        assert_eq!(
            serial.stages[3].output_rows,
            serial.stages[1].output_rows + serial.stages[2].output_rows,
        );
        // union and cogroup sum their edges into input_rows.
        assert_eq!(
            serial.stages[4].input_rows,
            serial.stages[1].output_rows + serial.stages[2].output_rows,
        );

        cfg.concurrency = Concurrency::Branch;
        let branch = pipeline.run(&cfg);
        assert!(branch.verified(), "branch run failed on {system}");
        for (s, b) in serial.stages.iter().zip(&branch.stages) {
            assert_eq!(s.output_digest, b.output_digest, "{} diverged on {system}", s.spec);
            assert!(b.matches_serial);
        }
        assert_eq!(serial.output, branch.output);
        assert!(branch.makespan_ps() <= serial.makespan_ps(), "branch slower on {system}");
    }
}

/// Cogroup's projected payload packs both sides' group sizes
/// (`count_a · 2³² + count_b`), checked against independently recomputed
/// group sizes of the two feeder relations.
#[test]
fn cogroup_payload_encodes_both_group_sizes() {
    let pipeline = multi_input_pipeline(2);
    let cfg = PipelineConfig::tiny(SystemKind::Mondrian);
    let report = pipeline.run(&cfg);
    assert!(report.verified());
    // Recompute the two feeder relations functionally.
    let source = cfg.source_relation();
    let filtered =
        reference::filtered(&source, ScanPredicate::PayloadModNot { modulus: 10, remainder: 0 });
    let amplified = reference::flat_mapped(&filtered, ScanPredicate::All, 2);
    let side_b =
        reference::filtered(&source, ScanPredicate::PayloadModNot { modulus: 3, remainder: 1 });
    let cg = reference::cogrouped(&amplified, &side_b);
    assert_eq!(report.stages[4].output_rows, cg.len());
}

#[test]
fn summary_table_mentions_every_stage() {
    let report = three_stage().run(&PipelineConfig::tiny(SystemKind::Mondrian));
    let table = report.summary_table();
    for stage in &report.stages {
        assert!(table.contains(stage.spec.name()), "missing {}", stage.spec.name());
    }
    assert!(table.contains("verified"));
}
