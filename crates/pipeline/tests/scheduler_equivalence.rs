//! Scheduler equivalence: the concurrent branch executor must produce
//! byte-identical stage outputs and a monotone non-increasing makespan
//! versus the serial reference executor, across the four representative
//! systems (CPU, NMP-rand, NMP-seq, Mondrian — covering both probe
//! families and both partitioning mechanisms).

use mondrian_core::SystemKind;
use mondrian_pipeline::{
    BuildSide, Concurrency, Pipeline, PipelineConfig, Stage, StageInput, StageSpec,
};
use proptest::prelude::*;

/// The four representative systems the equivalence property sweeps.
const SYSTEMS: [SystemKind; 4] =
    [SystemKind::Cpu, SystemKind::NmpRand, SystemKind::NmpSeq, SystemKind::Mondrian];

/// The second stage of a generated branch.
fn branch_tail(sel: u64) -> StageSpec {
    match sel % 4 {
        0 => StageSpec::GroupByKey,
        1 => StageSpec::ReduceByKey,
        2 => StageSpec::CountByKey,
        _ => StageSpec::SortByKey,
    }
}

/// A join over two independent scan→tail chains, with generated
/// predicates and tails.
fn two_branch_pipeline(mod_a: u64, tail_a: u64, mod_b: u64, tail_b: u64) -> Pipeline {
    Pipeline::from_stages(vec![
        Stage::chained(StageSpec::Filter { modulus: mod_a, remainder: 0 }),
        Stage::chained(branch_tail(tail_a)),
        Stage::with_input(StageSpec::Filter { modulus: mod_b, remainder: 1 }, StageInput::Source),
        Stage::chained(branch_tail(tail_b)),
        Stage::with_input(StageSpec::Join { build: BuildSide::Stage(3) }, StageInput::Stage(1)),
    ])
}

proptest! {
    /// For random two-branch DAGs, seeds and dataset scales, branch
    /// execution is functionally indistinguishable from serial execution
    /// (identical per-stage digests and final relation) and never slower.
    #[test]
    fn branch_outputs_byte_identical_and_makespan_monotone(
        params in (0u64..4, 2u64..9, 0u64..4, 2u64..9, 0u64..4, 0u64..1000, 16usize..48)
    ) {
        let (sys, mod_a, tail_a, mod_b, tail_b, seed, tpv) = params;
        let pipeline = two_branch_pipeline(mod_a, tail_a, mod_b, tail_b);
        let mut cfg = PipelineConfig::tiny(SYSTEMS[sys as usize]);
        cfg.tuples_per_vault = tpv;
        cfg.seed = seed;
        let serial = pipeline.run(&cfg);
        cfg.concurrency = Concurrency::Branch;
        let branch = pipeline.run(&cfg);

        prop_assert!(serial.verified(), "serial run failed on {}", cfg.system);
        prop_assert!(branch.verified(), "branch run failed on {}", cfg.system);
        // Byte-identical stage outputs between the two schedules.
        for (s, b) in serial.stages.iter().zip(&branch.stages) {
            prop_assert_eq!(s.output_digest, b.output_digest, "stage {} diverged", s.spec);
            prop_assert_eq!(s.output_rows, b.output_rows);
            prop_assert!(b.matches_serial);
        }
        prop_assert_eq!(&serial.output, &branch.output, "final relations diverged");
        // Monotone non-increasing makespan.
        prop_assert!(
            branch.makespan_ps() <= serial.makespan_ps(),
            "branch schedule slower on {}: {} > {} ps",
            cfg.system,
            branch.makespan_ps(),
            serial.makespan_ps()
        );
        // The serial schedule is a sum of its stages in both reports.
        prop_assert_eq!(serial.makespan_ps(), serial.runtime_ps());
    }
}

/// A DAG whose second wave holds two *multi-input* stages — a union and a
/// cogroup of the same two feeder chains — so the branch scheduler feeds
/// concurrent stages from multiple DAG edges.
fn multi_input_wave_pipeline(mod_a: u64, mod_b: u64, fanout: u64) -> Pipeline {
    Pipeline::from_stages(vec![
        Stage::chained(StageSpec::Filter { modulus: mod_a, remainder: 0 }),
        Stage::chained(StageSpec::FlatMap { fanout }),
        Stage::with_input(StageSpec::Filter { modulus: mod_b, remainder: 1 }, StageInput::Source),
        Stage::with_inputs(StageSpec::Union, vec![StageInput::Stage(1), StageInput::Stage(2)]),
        Stage::with_inputs(StageSpec::Cogroup, vec![StageInput::Stage(1), StageInput::Stage(2)]),
        Stage::with_input(StageSpec::SortByKey, StageInput::Stage(3)),
    ])
}

proptest! {
    /// Multi-input stages inside a branch wave: for random predicates,
    /// fanouts, seeds and scales, the union and cogroup branches execute
    /// concurrently on leases yet stay byte-identical to serial, and the
    /// makespan stays monotone — on all four representative systems.
    #[test]
    fn multi_input_branch_wave_byte_identical_and_monotone(
        params in (0u64..4, 2u64..9, 2u64..9, 1u64..5, 0u64..1000, 16usize..48)
    ) {
        let (sys, mod_a, mod_b, fanout, seed, tpv) = params;
        let pipeline = multi_input_wave_pipeline(mod_a, mod_b, fanout);
        let mut cfg = PipelineConfig::tiny(SYSTEMS[sys as usize]);
        cfg.tuples_per_vault = tpv;
        cfg.seed = seed;
        let serial = pipeline.run(&cfg);
        cfg.concurrency = Concurrency::Branch;
        let branch = pipeline.run(&cfg);

        prop_assert!(serial.verified(), "serial run failed on {}", cfg.system);
        prop_assert!(branch.verified(), "branch run failed on {}", cfg.system);
        for (s, b) in serial.stages.iter().zip(&branch.stages) {
            prop_assert_eq!(s.output_digest, b.output_digest, "stage {} diverged", s.spec);
            prop_assert!(b.matches_serial);
        }
        prop_assert_eq!(&serial.output, &branch.output);
        prop_assert!(branch.makespan_ps() <= serial.makespan_ps());
        // The union and cogroup stages share a wave (mutually
        // independent branches fed from the same two DAG edges).
        prop_assert_eq!(branch.stages[3].wave, branch.stages[4].wave);
        prop_assert!(branch.stages[3].branch != branch.stages[4].branch);
    }
}

/// The acceptance scenario, deterministically: a two-branch DAG on the
/// tiny topology must see a strict makespan win on at least one system
/// while producing byte-identical artifacts on all of them.
#[test]
fn branch_schedule_strictly_faster_on_some_system() {
    let pipeline = two_branch_pipeline(10, 0, 3, 0);
    let mut strictly_faster = Vec::new();
    for system in SystemKind::ALL {
        let mut cfg = PipelineConfig::tiny(system);
        cfg.tuples_per_vault = 128;
        cfg.seed = 7;
        let serial = pipeline.run(&cfg);
        cfg.concurrency = Concurrency::Branch;
        let branch = pipeline.run(&cfg);
        assert!(branch.verified(), "branch run failed on {system}");
        assert!(branch.makespan_ps() <= serial.makespan_ps(), "slower on {system}");
        assert_eq!(serial.output, branch.output);
        if branch.makespan_ps() < serial.makespan_ps() {
            strictly_faster.push(system);
            assert!(
                branch.schedule.any_concurrent(),
                "a strict win must come from a concurrent wave"
            );
        }
    }
    assert!(
        !strictly_faster.is_empty(),
        "no system gained from branch concurrency on the two-branch DAG"
    );
}

/// Wave structure and lease accounting of a concurrent run.
#[test]
fn concurrent_waves_lease_disjoint_partitions() {
    let pipeline = two_branch_pipeline(10, 0, 3, 0);
    let mut cfg = PipelineConfig::tiny(SystemKind::Cpu);
    cfg.tuples_per_vault = 128;
    cfg.concurrency = Concurrency::Branch;
    let report = pipeline.run(&cfg);
    assert!(report.verified());
    assert_eq!(report.schedule.waves.len(), 2, "two chains, then the join");
    let wave0 = &report.schedule.waves[0];
    assert_eq!(wave0.branches.len(), 2);
    if wave0.concurrent {
        let (a, b) = (&wave0.branches[0], &wave0.branches[1]);
        assert_eq!(a.first_vault, 0);
        assert_eq!(b.first_vault, a.vaults, "leases are disjoint and contiguous");
        assert_eq!(a.vaults + b.vaults, 4, "tiny topology splits its 4 vaults");
        assert_eq!(wave0.runtime_ps, a.runtime_ps.max(b.runtime_ps));
        assert!(wave0.branches.iter().any(|br| br.critical));
        assert!(a.mesh.messages > 0, "mesh traffic attributed to the branch's lease");
    }
    // The join runs alone on the whole machine.
    let wave1 = &report.schedule.waves[1];
    assert!(!wave1.concurrent);
    assert_eq!(wave1.branches[0].vaults, 4);
    // Makespan is the sum of charged wave times.
    let sum: u64 = report.schedule.waves.iter().map(|w| w.runtime_ps).sum();
    assert_eq!(report.makespan_ps(), sum);
}
