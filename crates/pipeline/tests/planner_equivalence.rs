//! Differential lockdown of the adaptive planner: `Concurrency::Auto`
//! must produce artifacts byte-identical to the serial reference and a
//! makespan no worse than the best fixed schedule, across random Table 1
//! DAGs, key distributions, and the four representative systems. The
//! planner only ever *proposes* — the executor races the proposal
//! against the default stream schedule and charges the measured winner —
//! so these properties hold by construction; the sweep here is the proof
//! that no code path leaks a planned decision into the functional
//! results or charges an unverified win.

use mondrian_core::{KeyDist, SystemKind};
use mondrian_pipeline::{
    BuildSide, Concurrency, Pipeline, PipelineConfig, Stage, StageInput, StageSpec,
};
use proptest::prelude::*;

/// The four representative systems the differential properties sweep.
const SYSTEMS: [SystemKind; 4] =
    [SystemKind::Cpu, SystemKind::NmpRand, SystemKind::NmpSeq, SystemKind::Mondrian];

/// A streaming producer drawn from the Table 1 scan family.
fn producer(sel: u64, param: u64) -> StageSpec {
    match sel % 4 {
        0 => StageSpec::Filter { modulus: param.max(2), remainder: 0 },
        1 => StageSpec::Map { key_mul: 1, key_add: param },
        2 => StageSpec::MapValues { mul: 3, add: param },
        _ => StageSpec::FlatMap { fanout: param % 3 + 1 },
    }
}

/// A partition-phase consumer.
fn consumer(sel: u64) -> StageSpec {
    match sel % 6 {
        0 => StageSpec::GroupByKey,
        1 => StageSpec::ReduceByKey,
        2 => StageSpec::CountByKey,
        3 => StageSpec::AggregateByKey,
        4 => StageSpec::SortByKey,
        _ => StageSpec::Join { build: BuildSide::Dimension },
    }
}

/// The swept key distributions.
fn key_dist(sel: u64) -> KeyDist {
    match sel % 3 {
        0 => KeyDist::Uniform,
        1 => KeyDist::Zipf(0.6),
        _ => KeyDist::Zipf(1.0),
    }
}

/// Runs one pipeline under all four schedules and enforces the planner
/// contract: auto is byte-identical to serial (per-stage digests and
/// final relation) and its makespan never exceeds the best of the three
/// fixed schedules.
fn assert_planner_contract(pipeline: &Pipeline, mut cfg: PipelineConfig) {
    cfg.concurrency = Concurrency::Serial;
    let serial = pipeline.run(&cfg);
    cfg.concurrency = Concurrency::Branch;
    let branch = pipeline.run(&cfg);
    cfg.concurrency = Concurrency::Stream;
    let stream = pipeline.run(&cfg);
    cfg.concurrency = Concurrency::Auto;
    let auto = pipeline.run(&cfg);

    assert!(serial.verified(), "serial run failed on {}", cfg.system);
    assert!(auto.verified(), "auto run failed on {}", cfg.system);
    for (s, a) in serial.stages.iter().zip(&auto.stages) {
        assert_eq!(
            s.output_digest, a.output_digest,
            "stage {} diverged under auto on {}",
            s.spec, cfg.system
        );
        assert_eq!(s.output_rows, a.output_rows);
        assert!(a.matches_serial, "stage {} lost serial equivalence", a.spec);
    }
    assert_eq!(&serial.output, &auto.output, "final relations diverged on {}", cfg.system);

    let best = serial.makespan_ps().min(branch.makespan_ps()).min(stream.makespan_ps());
    assert!(
        auto.makespan_ps() <= best,
        "auto slower than the best fixed schedule on {}: {} > {} ps",
        cfg.system,
        auto.makespan_ps(),
        best
    );

    let planned = auto.planned.as_ref().expect("auto records its planner decisions");
    assert_eq!(planned.stage_predicted_ps.len(), pipeline.stages().len());
    assert!(planned.predicted_makespan_ps > 0);
    assert!(serial.planned.is_none() && branch.planned.is_none() && stream.planned.is_none());
}

proptest! {
    /// Random producer→consumer chains: auto matches serial
    /// byte-for-byte and never charges more than the best fixed
    /// schedule, for random operators, predicates, fanouts, key
    /// distributions, seeds and scales on all four systems.
    #[test]
    fn auto_chains_byte_identical_and_never_worse(
        params in (0u64..4, (0u64..4, 2u64..9, 0u64..6), (0u64..4, 2u64..9, 0u64..6), 0u64..3, 0u64..1000, 16usize..40)
    ) {
        let (sys, a, b, dist, seed, tpv) = params;
        let pipeline = Pipeline::from_stages(vec![
            Stage::chained(producer(a.0, a.1)),
            Stage::chained(consumer(a.2)),
            Stage::chained(producer(b.0, b.1)),
            Stage::chained(consumer(b.2)),
        ]);
        let mut cfg = PipelineConfig::tiny(SYSTEMS[sys as usize]);
        cfg.tuples_per_vault = tpv;
        cfg.seed = seed;
        cfg.dist = key_dist(dist);
        assert_planner_contract(&pipeline, cfg);
    }
}

proptest! {
    /// Random multi-branch DAGs: the weighted-lease proposals face the
    /// wave barrier semantics (a skewed wave is exactly where the
    /// planner re-splits the vaults), and auto still stays
    /// byte-identical and never-worse.
    #[test]
    fn auto_dags_byte_identical_and_never_worse(
        params in (0u64..4, (0u64..4, 2u64..9, 0u64..4), (0u64..4, 2u64..9, 0u64..4), 0u64..3, 0u64..1000, 16usize..40)
    ) {
        let (sys, a, b, dist, seed, tpv) = params;
        // Two independent producer→consumer chains joined at the end:
        // wave 0 runs the chains concurrently on (possibly re-weighted)
        // leases and streams within each chain; the join materializes
        // both sides.
        let pipeline = Pipeline::from_stages(vec![
            Stage::chained(producer(a.0, a.1)),
            Stage::chained(consumer(a.2 % 4)),
            Stage::with_input(producer(b.0, b.1), StageInput::Source),
            Stage::chained(consumer(b.2 % 4)),
            Stage::with_input(StageSpec::Join { build: BuildSide::Stage(3) }, StageInput::Stage(1)),
        ]);
        let mut cfg = PipelineConfig::tiny(SYSTEMS[sys as usize]);
        cfg.tuples_per_vault = tpv;
        cfg.seed = seed;
        cfg.dist = key_dist(dist);
        assert_planner_contract(&pipeline, cfg);
    }
}

/// Deterministic skew scenario: a three-branch wave where one branch
/// carries a sort over the whole source while the other two are cheap
/// scans — the shape the weighted lease split exists for. Auto must
/// verify, match serial, and never lose, on every system.
#[test]
fn skewed_waves_exercise_weighted_leases() {
    let pipeline = Pipeline::from_stages(vec![
        Stage::with_input(StageSpec::Filter { modulus: 7, remainder: 0 }, StageInput::Source),
        Stage::with_input(StageSpec::Filter { modulus: 5, remainder: 1 }, StageInput::Source),
        Stage::with_input(StageSpec::SortByKey, StageInput::Source),
        Stage::with_inputs(StageSpec::Union, vec![StageInput::Stage(0), StageInput::Stage(1)]),
        Stage::with_inputs(StageSpec::Cogroup, vec![StageInput::Stage(3), StageInput::Stage(2)]),
    ]);
    for system in SystemKind::ALL {
        let mut cfg = PipelineConfig::tiny(system);
        cfg.tuples_per_vault = 96;
        cfg.seed = 13;
        assert_planner_contract(&pipeline, cfg.clone());
        cfg.concurrency = Concurrency::Auto;
        let auto = pipeline.run(&cfg);
        let planned = auto.planned.as_ref().expect("auto records its plan");
        // The planner saw three branches with one clearly heavier; its
        // prediction for the sort stage must dominate the scans'.
        assert!(
            planned.stage_predicted_ps[2] > planned.stage_predicted_ps[0],
            "the sort must be predicted slower than a scan on {system}"
        );
    }
}
