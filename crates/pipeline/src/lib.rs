//! # mondrian-pipeline
//!
//! Multi-stage analytic queries on the Mondrian Data Engine.
//!
//! Table 1 of the paper maps the common Spark transformations onto four
//! basic physical operators (Scan, Sort, Group-by, Join); the engine's
//! experiment driver simulates one operator at a time. This crate closes
//! the gap to real analytics: a [`Pipeline`] is a chain of declarative
//! [`StageSpec`]s — `Filter → ReduceByKey → SortByKey`, say — and the
//! executor lowers every stage onto its Table 1 operator, runs it on the
//! simulated system, and threads the stage's **actual output relation**
//! into the next stage. Join stages may take their build side from any
//! earlier stage's output, so plans are DAGs, not just chains.
//!
//! Every stage is verified twice: the engine's own functional check
//! against its reference implementations, and the pipeline's end-to-end
//! check that the projected stage output matches the stage's pure
//! functional semantics ([`StageSpec::reference_output`]).
//!
//! # Quickstart
//!
//! ```
//! use mondrian_pipeline::{Pipeline, PipelineConfig, StageSpec};
//! use mondrian_core::SystemKind;
//!
//! let pipeline = Pipeline::new(vec![
//!     StageSpec::Filter { modulus: 10, remainder: 0 },
//!     StageSpec::ReduceByKey,
//!     StageSpec::SortByKey,
//! ]);
//! let report = pipeline.run(&PipelineConfig::tiny(SystemKind::Mondrian));
//! assert!(report.verified());
//! assert_eq!(report.stages.len(), 3);
//! ```

#![warn(missing_docs)]

mod exec;
mod report;
mod stage;

pub use exec::{Pipeline, PipelineConfig};
pub use report::{PipelineReport, StageOutcome};
pub use stage::{derive_dimension, BuildSide, StageSpec};
