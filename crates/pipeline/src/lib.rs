//! # mondrian-pipeline
//!
//! Multi-stage analytic queries on the Mondrian Data Engine.
//!
//! Table 1 of the paper maps the common Spark transformations onto four
//! basic physical operators; the engine's experiment driver simulates
//! one operator at a time. This crate closes the gap to real analytics:
//! a [`Pipeline`] is a DAG of declarative [`Stage`]s — each a
//! [`StageSpec`] plus an explicit list of input edges ([`StageInput`]) —
//! and the executor lowers every stage onto its Table 1 operator (via
//! the open operator IR, including the multi-input `union`/`cogroup`
//! and the 1→N `flat_map`), runs it on the simulated system, and
//! threads each stage's **actual output relation** into its consumers.
//! Join stages may take their build side from any earlier stage's
//! output; multi-input stages name every feeder edge explicitly.
//!
//! Because the paper's vaults are independent execution partitions, the
//! executor can also **lease the machine out**: under
//! [`Concurrency::Branch`], independent DAG branches (e.g. a join's two
//! input chains) run concurrently on disjoint vault partitions, joined at
//! wave barriers, with the serial schedule kept as the reference executor
//! the concurrent one is verified against — every partitioned stage's
//! output must be byte-identical to the serial run, and a wave only
//! charges the concurrent makespan when it beats the serial schedule.
//!
//! [`Concurrency::Stream`] adds **intra-stage pipelining** on top:
//! eligible producer→consumer edges ([`Dag::fused_pairs`]) chunk the
//! producer's output relation through a bounded channel into the
//! consumer's partition phase, overlapping the producer's probe/output
//! phase with the consumer's histogram/scatter rounds instead of
//! materializing the relation at a wave barrier. Streamed stages verify
//! byte-identical to the serial reference too, and a per-pair fallback
//! keeps the streamed schedule never charged slower than the branch one.
//!
//! Every stage is verified against the engine's own functional check and
//! the stage's pure functional semantics
//! ([`StageSpec::reference_output`]); branch runs add the
//! serial-equivalence check on top.
//!
//! # Quickstart
//!
//! ```
//! use mondrian_pipeline::{Pipeline, PipelineConfig, StageSpec};
//! use mondrian_core::SystemKind;
//!
//! let pipeline = Pipeline::new(vec![
//!     StageSpec::Filter { modulus: 10, remainder: 0 },
//!     StageSpec::ReduceByKey,
//!     StageSpec::SortByKey,
//! ]);
//! let report = pipeline.run(&PipelineConfig::tiny(SystemKind::Mondrian));
//! assert!(report.verified());
//! assert_eq!(report.stages.len(), 3);
//! ```

#![warn(missing_docs)]

mod exec;
mod observe;
pub mod plan;
mod report;
mod schedule;
mod stage;

pub use exec::{ExecCache, ExecStore, Pipeline, PipelineConfig, StageEntry};
pub use observe::{run_metrics, trace_run};
pub use report::{
    relation_digest, BranchSchedule, FusedEdge, PipelineReport, PlanReport, PlannedEdgeReport,
    PlannedLease, PlannedWaveReport, ScheduleReport, StageOutcome, WaveReport,
};
pub use schedule::{Concurrency, Dag};
pub use stage::{derive_dimension, BuildSide, Stage, StageInput, StageSpec};
