//! Branch-wave scheduling of pipeline DAGs onto machine leases.
//!
//! A pipeline's stages form a DAG: every stage depends on the stage that
//! produces its input relation, and join stages additionally depend on
//! their build side. The scheduler decomposes the DAG into **branches**
//! (maximal single-successor chains) and groups the branches into
//! topological **waves**: every branch in a wave has all of its external
//! dependencies satisfied by earlier waves, so the branches of one wave
//! are mutually independent and can execute concurrently on disjoint
//! vault partitions of the same machine ([`mondrian_core::PartitionSpec`]).
//!
//! The concurrent executor in [`crate::Pipeline::run`] always keeps the
//! serial schedule as its reference: every partitioned stage's output is
//! verified byte-identical to the serial run, and a wave only charges the
//! concurrent makespan when it actually beats executing its stages back
//! to back (otherwise it falls back to the serial schedule, so a branch
//! run is never reported slower than a serial one).

use crate::stage::{BuildSide, Stage, StageInput, StageSpec};

/// How the executor schedules a pipeline's stages onto the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Concurrency {
    /// One stage at a time over all vaults — the reference executor.
    #[default]
    Serial,
    /// Independent DAG branches run concurrently on disjoint vault
    /// partitions, verified against (and never slower than) the serial
    /// schedule.
    Branch,
    /// Branch scheduling plus intra-stage pipelining: eligible
    /// producer→consumer edges ([`Dag::fused_pairs`]) stream the
    /// producer's output through a bounded chunk channel into the
    /// consumer's partition phase, overlapping the two instead of
    /// materializing at a wave barrier. Every streamed stage is verified
    /// byte-identical to the serial reference, and a per-pair fallback
    /// keeps the schedule never slower than the branch one.
    Stream,
    /// Cost-model-driven planning ([`crate::plan`]): the planner predicts
    /// per-stage makespans from `OpProfile` cost hints, the serial pass's
    /// cardinalities and the system's timing parameters, then picks the
    /// vault-lease split per wave and the chunk count per fused edge. The
    /// executor runs the default stream schedule *and* the planned one and
    /// charges whichever is faster, so `auto` is never slower than the
    /// best of serial/branch/stream while staying byte-identical to the
    /// serial reference.
    Auto,
}

impl Concurrency {
    /// The manifest spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Concurrency::Serial => "serial",
            Concurrency::Branch => "branch",
            Concurrency::Stream => "stream",
            Concurrency::Auto => "auto",
        }
    }
}

/// The stage a pipeline input edge reads, if any (`Source` edges read
/// the pipeline's source relation).
fn edge_target(input: StageInput, stage: usize) -> Option<usize> {
    match input {
        StageInput::Prev => stage.checked_sub(1),
        StageInput::Source => None,
        StageInput::Stage(j) => Some(j),
    }
}

/// The scheduled shape of a pipeline: dependencies, branch decomposition
/// and topological waves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dag {
    /// Per stage: the earlier stages it reads (input and build edges),
    /// ascending and deduplicated.
    pub deps: Vec<Vec<usize>>,
    /// Per stage: the branch it belongs to.
    pub branch_of: Vec<usize>,
    /// Per branch: its stages in execution order.
    pub branches: Vec<Vec<usize>>,
    /// Per wave: the branches it runs, all mutually independent.
    pub waves: Vec<Vec<usize>>,
}

impl Dag {
    /// Builds the schedule shape for a validated stage list.
    pub fn build(stages: &[Stage]) -> Dag {
        let n = stages.len();
        let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (i, stage) in stages.iter().enumerate() {
            let mut d = Vec::new();
            // Every input edge contributes a dependency — multi-input
            // stages (union, cogroup) depend on all of their feeders.
            for &input in &stage.inputs {
                if let Some(j) = edge_target(input, i) {
                    d.push(j);
                }
            }
            if let StageSpec::Join { build: BuildSide::Stage(j) } = stage.spec {
                d.push(j);
            }
            d.sort_unstable();
            d.dedup();
            deps.push(d);
        }

        // Branch decomposition: a stage continues its sole dependency's
        // branch if it is the first stage to do so; everything else —
        // source readers, multi-input stages, second consumers of a shared
        // stage — opens a new branch.
        let mut branch_of: Vec<usize> = Vec::with_capacity(n);
        let mut branches: Vec<Vec<usize>> = Vec::new();
        let mut extended = vec![false; n];
        for (i, d) in deps.iter().enumerate() {
            match d.as_slice() {
                [d] if !extended[*d] => {
                    extended[*d] = true;
                    let b = branch_of[*d];
                    branch_of.push(b);
                    branches[b].push(i);
                }
                _ => {
                    branch_of.push(branches.len());
                    branches.push(vec![i]);
                }
            }
        }

        // Topological levels over branches. Branch ids are assigned in
        // stage order, so every cross-branch dependency points at a lower
        // branch id and one ascending pass suffices.
        let mut level = vec![0usize; branches.len()];
        for i in 0..n {
            let b = branch_of[i];
            for &d in &deps[i] {
                let db = branch_of[d];
                if db != b {
                    level[b] = level[b].max(level[db] + 1);
                }
            }
        }
        let wave_count = level.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); wave_count];
        for (b, &l) in level.iter().enumerate() {
            waves[l].push(b);
        }
        Dag { deps, branch_of, branches, waves }
    }

    /// The wave a stage executes in.
    pub fn wave_of(&self, stage: usize) -> usize {
        let b = self.branch_of[stage];
        self.waves.iter().position(|w| w.contains(&b)).expect("every branch is scheduled")
    }

    /// Producer→consumer edges eligible for intra-stage pipelining
    /// ([`Concurrency::Stream`]), in consumer order. An edge fuses when:
    ///
    /// * the producer's operator streams its output phase (the scan
    ///   family: scan, union, flat_map — `OpProfile::streams_output`),
    /// * the consumer's partition phase streams its primary input (the
    ///   partition-phase family: sort, group-by, join, cogroup —
    ///   `OpProfile::streams_input`),
    /// * the consumer is the producer's **only** reader (any second
    ///   reader — input edge or join build side — needs the materialized
    ///   relation at the wave barrier), and
    /// * the consumer reads the producer through its **primary** (first)
    ///   input edge — the side the engine chunks: a join's probe side, a
    ///   cogroup's side A.
    ///
    /// The operator typing makes pairs disjoint by construction: no
    /// operator both streams its output and its input, so a stage can
    /// appear in at most one pair on each side.
    pub fn fused_pairs(&self, stages: &[Stage]) -> Vec<(usize, usize)> {
        // Readers of each stage: every input edge plus join build
        // references, duplicates kept (a double reader disqualifies).
        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); stages.len()];
        for (i, stage) in stages.iter().enumerate() {
            for &input in &stage.inputs {
                if let Some(j) = edge_target(input, i) {
                    readers[j].push(i);
                }
            }
            if let StageSpec::Join { build: BuildSide::Stage(j) } = stage.spec {
                readers[j].push(i);
            }
        }
        let mut pairs = Vec::new();
        for (c, stage) in stages.iter().enumerate() {
            let Some(p) = stage.inputs.first().and_then(|&edge| edge_target(edge, c)) else {
                continue;
            };
            let producer = mondrian_ops::operator(stages[p].basic_operator()).profile();
            let consumer = mondrian_ops::operator(stage.basic_operator()).profile();
            if producer.streams_output && consumer.streams_input && readers[p] == [c] {
                pairs.push((p, c));
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_branch_join() -> Vec<Stage> {
        vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::GroupByKey),
            Stage::with_input(StageSpec::Filter { modulus: 3, remainder: 1 }, StageInput::Source),
            Stage::chained(StageSpec::GroupByKey),
            Stage::with_input(StageSpec::Join { build: BuildSide::Stage(3) }, StageInput::Stage(1)),
        ]
    }

    #[test]
    fn chain_is_one_branch_per_wave() {
        let stages = vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::ReduceByKey),
            Stage::chained(StageSpec::SortByKey),
        ];
        let dag = Dag::build(&stages);
        assert_eq!(dag.branches, vec![vec![0, 1, 2]]);
        assert_eq!(dag.waves, vec![vec![0]]);
        assert_eq!(dag.deps[2], vec![1]);
    }

    #[test]
    fn join_over_two_chains_makes_two_concurrent_branches() {
        let dag = Dag::build(&two_branch_join());
        assert_eq!(dag.branches, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert_eq!(dag.waves, vec![vec![0, 1], vec![2]], "two independent chains, then the join");
        assert_eq!(dag.deps[4], vec![1, 3]);
        assert_eq!(dag.wave_of(3), 0);
        assert_eq!(dag.wave_of(4), 1);
    }

    #[test]
    fn multi_input_stages_wait_for_all_feeders() {
        // Two source chains, then a union of both and a cogroup of both:
        // the multi-input stages depend on both feeders, open their own
        // branches, and (being mutually independent) share a wave.
        let stages = vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::with_input(StageSpec::Filter { modulus: 3, remainder: 1 }, StageInput::Source),
            Stage::with_inputs(StageSpec::Union, vec![StageInput::Stage(0), StageInput::Stage(1)]),
            Stage::with_inputs(
                StageSpec::Cogroup,
                vec![StageInput::Stage(0), StageInput::Stage(1)],
            ),
        ];
        let dag = Dag::build(&stages);
        assert_eq!(dag.deps[2], vec![0, 1]);
        assert_eq!(dag.deps[3], vec![0, 1]);
        assert_eq!(dag.branches.len(), 4);
        assert_eq!(dag.waves, vec![vec![0, 1], vec![2, 3]], "union ∥ cogroup in one wave");
    }

    #[test]
    fn fused_pairs_follow_the_streamable_facts() {
        // filter → group_by → sort_by: the scan streams into the
        // group-by; the group-by (not a streaming producer) does not
        // stream into the sort.
        let chain = vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::GroupByKey),
            Stage::chained(StageSpec::SortByKey),
        ];
        let dag = Dag::build(&chain);
        assert_eq!(dag.fused_pairs(&chain), vec![(0, 1)]);

        // flat_map → cogroup fuses through the cogroup's primary edge
        // even though the pair crosses a branch boundary.
        let cg = vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::FlatMap { fanout: 2 }),
            Stage::with_input(StageSpec::Filter { modulus: 3, remainder: 1 }, StageInput::Source),
            Stage::with_inputs(
                StageSpec::Cogroup,
                vec![StageInput::Stage(1), StageInput::Stage(2)],
            ),
        ];
        let dag = Dag::build(&cg);
        assert_eq!(dag.fused_pairs(&cg), vec![(1, 3)], "cogroup streams its primary edge only");
        assert!(dag.branch_of[1] != dag.branch_of[3], "the pair crosses branches");

        // A second reader of the producer (here: the join's build side)
        // disqualifies the pair, and so does reading the producer through
        // a non-primary edge.
        let shared = vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::GroupByKey),
            Stage::with_input(StageSpec::Map { key_mul: 1, key_add: 1 }, StageInput::Source),
            Stage::with_inputs(
                StageSpec::Join { build: BuildSide::Stage(2) },
                vec![StageInput::Stage(2)],
            ),
        ];
        let dag = Dag::build(&shared);
        assert_eq!(dag.fused_pairs(&shared), vec![(0, 1)], "stage 2 is read twice by stage 3");
    }

    #[test]
    fn shared_stage_consumers_fork_branches() {
        // Stage 1 and 2 both read stage 0: 1 continues the branch, 2 forks.
        let stages = vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::GroupByKey),
            Stage::with_input(StageSpec::SortByKey, StageInput::Stage(0)),
        ];
        let dag = Dag::build(&stages);
        assert_eq!(dag.branches.len(), 2);
        assert_eq!(dag.branch_of, vec![0, 0, 1]);
        // The fork depends on branch 0's stage 0, which shares a branch
        // with stage 1 — so it must wait for wave 1.
        assert_eq!(dag.waves[0], vec![0]);
        assert_eq!(dag.waves[1], vec![1]);
    }
}
