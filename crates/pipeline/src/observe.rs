//! Post-hoc observability over a finished run: the simulated-timeline
//! trace replay and the unified metrics rollup.
//!
//! Both derive entirely from the deterministic [`PipelineReport`] — the
//! trace is *replayed* from the charged schedule rather than recorded
//! live, so it is byte-identical for every `--jobs` value and thread
//! interleaving by construction, exactly like the artifact itself.

use mondrian_obs::{Arg, Counters, Tracer};
use mondrian_sim::{Stat, Time};

use crate::report::{PipelineReport, StageOutcome};

/// Trace-lane ids within one run's process. Kept in disjoint ranges so
/// schedule, branch, phase, and stream lanes never collide.
const LANE_SCHEDULE: u64 = 0;
const LANE_COUNTERS: u64 = 1;
const LANE_BRANCH_BASE: u64 = 10;
const LANE_PHASE_BASE: u64 = 1000;
const LANE_STREAM_BASE: u64 = 2000;

/// Maps one engine stat key onto its unified-registry path: per-device
/// instances aggregate away (`vault.3.read_bytes` → `mem.read_bytes`,
/// `mesh.at_v8.hops` → `noc.mesh_hops`, `l1.p0.2.misses` →
/// `cache.l1_misses`), while structured suffixes like the queue-depth
/// histogram buckets survive whole.
fn metric_key(stat_key: &str) -> String {
    let last = || stat_key.rsplit('.').next().expect("split yields at least one piece");
    if let Some(rest) = stat_key.strip_prefix("vault.") {
        let suffix = rest.split_once('.').map_or(rest, |(_, s)| s);
        format!("mem.{suffix}")
    } else if stat_key.starts_with("mesh.") {
        format!("noc.mesh_{}", last())
    } else if stat_key.starts_with("serdes.") {
        format!("noc.serdes_{}", last())
    } else if stat_key.starts_with("l1.") {
        format!("cache.l1_{}", last())
    } else if stat_key.starts_with("llc.") {
        format!("cache.llc_{}", last())
    } else {
        stat_key.to_string()
    }
}

/// Rolls one run's charged stage reports up into the unified counter
/// registry: engine totals, per-phase simulated time, and the memory /
/// NoC / cache traffic aggregated across device instances.
pub fn run_metrics(report: &PipelineReport) -> Counters {
    let mut c = Counters::new();
    c.add_count("engine.instructions", report.instructions());
    c.add_count("engine.events", report.events());
    c.add_count(
        "engine.simd_ops",
        report.stages.iter().flat_map(|s| &s.report.phases).map(|p| p.simd_ops).sum(),
    );
    for stage in &report.stages {
        for phase in &stage.report.phases {
            c.add_count(&format!("phase_ps.{}", phase.label), phase.duration());
        }
        for (k, stat) in stage.report.stats.iter() {
            let key = metric_key(k);
            match stat {
                Stat::Count(n) => c.add_count(&key, n),
                Stat::Value(v) => c.add_value(&key, v),
            }
        }
    }
    c
}

/// The consumer-slot duration a stage was charged under the executed
/// schedule: its fused edge's streamed slot when the stream scheduler
/// charged the overlap, the charged report's runtime otherwise.
fn slot_ps(report: &PipelineReport, i: usize) -> Time {
    let stage = &report.stages[i];
    if stage.streamed {
        if let Some(edge) = report.schedule.fused.iter().find(|f| f.consumer == i && f.streamed) {
            return edge.streamed_ps;
        }
    }
    stage.report.runtime_ps
}

fn stage_args(stage: &StageOutcome, first_vault: u32, vaults: u32) -> Vec<(String, Arg)> {
    vec![
        ("operator".into(), Arg::Str(stage.basic_operator().name().to_string())),
        ("rows_in".into(), Arg::Int(stage.input_rows as i64)),
        ("rows_out".into(), Arg::Int(stage.output_rows as i64)),
        ("first_vault".into(), Arg::Int(first_vault as i64)),
        ("vaults".into(), Arg::Int(vaults as i64)),
    ]
}

/// Replays `report`'s charged schedule into `tracer` as process `pid`:
/// wave spans on the schedule lane, stage spans on per-branch lanes,
/// engine phases on per-stage lanes (with vault-lease attribution),
/// chunk rounds on per-stage stream lanes, and cumulative traffic
/// counter samples at every stage-slot end.
///
/// Every timestamp is a simulated-picosecond offset from the run's
/// start; nothing here reads the host clock.
pub fn trace_run(tracer: &mut Tracer, pid: u64, label: &str, report: &PipelineReport) {
    tracer.set_process_name(pid, label);
    tracer.set_thread_name(pid, LANE_SCHEDULE, "schedule");
    tracer.set_thread_name(pid, LANE_COUNTERS, "counters");

    // (ts at slot end, dram bytes of the slot's stage, energy in joules):
    // accumulated into cumulative counter samples after the walk, in
    // timestamp order.
    let mut samples: Vec<(Time, f64, f64)> = Vec::new();
    let mut cursor: Time = 0;
    for wave in &report.schedule.waves {
        let wave_start = cursor;
        let wave_end = cursor + wave.runtime_ps;
        tracer.begin_span(
            pid,
            LANE_SCHEDULE,
            &format!("wave {}", wave.wave),
            "wave",
            wave_start,
            vec![
                ("concurrent".into(), Arg::Str(wave.concurrent.to_string())),
                ("serial_runtime_ps".into(), Arg::Int(wave.serial_runtime_ps as i64)),
            ],
        );
        // Concurrent waves start every branch at the wave start; serial
        // layouts run the branches back to back — mirroring how the
        // schedulers charged the wave.
        let mut serial_cursor = wave_start;
        for branch in &wave.branches {
            let lane = LANE_BRANCH_BASE + branch.branch as u64;
            tracer.set_thread_name(pid, lane, &format!("branch {}", branch.branch));
            let mut at = if wave.concurrent { wave_start } else { serial_cursor };
            for &i in &branch.stages {
                let stage = &report.stages[i];
                let slot = slot_ps(report, i);
                let slot_end = at + slot;
                tracer.begin_span(
                    pid,
                    lane,
                    stage.spec.name(),
                    "stage",
                    at,
                    stage_args(stage, branch.first_vault, branch.vaults),
                );
                tracer.end_span(pid, lane, slot_end);

                // Engine phases, anchored so they *end* at the slot end: a
                // streamed consumer's early phases overlap its producer's
                // output phase, starting before the consumer's slot.
                let phase_lane = LANE_PHASE_BASE + i as u64;
                tracer.set_thread_name(pid, phase_lane, &format!("stage {i} phases"));
                let base = slot_end.saturating_sub(stage.report.runtime_ps);
                for phase in &stage.report.phases {
                    tracer.begin_span(
                        pid,
                        phase_lane,
                        &phase.label,
                        "phase",
                        base + phase.start,
                        vec![
                            ("instructions".into(), Arg::Int(phase.instructions as i64)),
                            ("events".into(), Arg::Int(phase.events as i64)),
                        ],
                    );
                    tracer.end_span(pid, phase_lane, base + phase.end);
                }
                if let Some(stream) =
                    stage.streamed.then_some(stage.report.stream.as_ref()).flatten()
                {
                    let stream_lane = LANE_STREAM_BASE + i as u64;
                    tracer.set_thread_name(pid, stream_lane, &format!("stage {i} stream"));
                    let mut t = base;
                    for (round, &span) in stream.chunk_partition_ps.iter().enumerate() {
                        tracer.begin_span(
                            pid,
                            stream_lane,
                            &format!("chunk {round}"),
                            "stream",
                            t,
                            vec![],
                        );
                        t += span;
                        tracer.end_span(pid, stream_lane, t);
                    }
                }

                let dram_bytes = stage.report.stats.iter().fold(0u64, |acc, (k, s)| {
                    if k.ends_with(".read_bytes") || k.ends_with(".write_bytes") {
                        if let Stat::Count(n) = s {
                            return acc + n;
                        }
                    }
                    acc
                });
                samples.push((slot_end, dram_bytes as f64, stage.report.energy.total_j()));
                at = slot_end;
            }
            serial_cursor = at;
        }
        tracer.end_span(pid, LANE_SCHEDULE, wave_end);
        cursor = wave_end;
    }

    samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("simulated times are finite"));
    let (mut bytes, mut joules) = (0.0, 0.0);
    for (ts, b, j) in samples {
        bytes += b;
        joules += j;
        tracer.counter(
            pid,
            LANE_COUNTERS,
            "cumulative",
            ts,
            &[("dram_bytes", bytes), ("energy_j", joules)],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_keys_map_to_unified_paths() {
        assert_eq!(metric_key("vault.3.read_bytes"), "mem.read_bytes");
        assert_eq!(metric_key("vault.12.queue_depth.b4"), "mem.queue_depth.b4");
        assert_eq!(metric_key("mesh.0.hops"), "noc.mesh_hops");
        assert_eq!(metric_key("mesh.at_v8.bit_mm"), "noc.mesh_bit_mm");
        assert_eq!(metric_key("serdes.cpu0.tx.packets"), "noc.serdes_packets");
        assert_eq!(metric_key("serdes.hmc0to1.busy_ps"), "noc.serdes_busy_ps");
        assert_eq!(metric_key("l1.p0.2.misses"), "cache.l1_misses");
        assert_eq!(metric_key("llc.hits"), "cache.llc_hits");
        assert_eq!(metric_key("something_else"), "something_else");
    }
}
