//! The pipeline executor: lowers a stage DAG onto the simulated engine.
//!
//! Three schedules are supported ([`Concurrency`]):
//!
//! * **Serial** — one stage at a time over the whole machine, in stage
//!   order. This is the reference executor.
//! * **Branch** — the scheduler decomposes the plan into branch waves
//!   ([`crate::schedule::Dag`]); the branches of one wave lease disjoint
//!   vault partitions ([`PartitionSpec`]) of the same machine and execute
//!   concurrently, joining at a barrier. Every partitioned stage's output
//!   is verified byte-identical to the serial reference run, and a wave
//!   only charges the concurrent makespan when it beats running its
//!   stages back to back — the branch schedule is never reported slower
//!   than the serial one.
//! * **Stream** — branch scheduling plus intra-stage pipelining: for
//!   every fused producer→consumer edge ([`Dag::fused_pairs`]) the
//!   consumer re-executes with its primary input arriving as a bounded
//!   stream of chunks ([`mondrian_core::ExperimentBuilder::streamed_input`]),
//!   and the wave timeline overlaps the producer's probe/output phase
//!   with the consumer's per-chunk partition rounds instead of
//!   materializing the relation at a wave barrier. Streamed runs are
//!   verified byte-identical to the serial reference like partitioned
//!   ones, and two fallbacks bound the timing model: a pair never
//!   charges more than its materialized slot, and a wave never charges
//!   more than the branch schedule — so `stream ≤ branch ≤ serial`
//!   holds by construction.
//! * **Auto** — the cost-model planner ([`crate::plan`]) predicts
//!   per-stage makespans from the serial pass's actual cardinalities and
//!   proposes weighted vault leases per wave plus tuned chunk counts per
//!   fused edge. The executor races the default stream schedule against
//!   the planned one and charges whichever measured faster, so
//!   `auto ≤ min(serial, branch, stream)` holds by construction and a
//!   wrong prediction can never regress a run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mondrian_core::fault::{Abort, AbortReason, FaultHandle};
use mondrian_core::{ExperimentBuilder, KeyDist, PartitionSpec, Report, SystemConfig, SystemKind};
use mondrian_noc::{MeshStats, SerDesStats};
use mondrian_obs::{ProgressEvent, ProgressSink};
use mondrian_sim::Time;
use mondrian_workloads::{uniform_relation, zipfian_relation, Tuple};

use crate::plan::{Plan, StageShape};
use crate::report::{
    relation_digest, BranchSchedule, FusedEdge, PipelineReport, PlanReport, PlannedEdgeReport,
    PlannedLease, PlannedWaveReport, ScheduleReport, StageOutcome, WaveReport,
};
use crate::schedule::{Concurrency, Dag};
use crate::stage::{BuildSide, Stage, StageInput, StageSpec};

/// A shared stage relation: stage edges hand these around by refcount
/// bump instead of deep-cloning tuple vectors.
type Rel = Arc<[Tuple]>;

/// A multi-stage analytic query: a DAG of Table 1 transformations, each
/// lowered onto one of the four basic operators. Stages name their input
/// edge explicitly ([`StageInput`]) and joins may reference any earlier
/// stage as their build side, so plans with independent branches — e.g. a
/// join over two separate scan→group-by chains — are first class.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Builds a pure chain: every stage consumes its predecessor's output.
    pub fn new(specs: Vec<StageSpec>) -> Self {
        Self { stages: specs.into_iter().map(Stage::chained).collect() }
    }

    /// Builds a pipeline from explicit stages (specification + input edge).
    pub fn from_stages(stages: Vec<Stage>) -> Self {
        Self { stages }
    }

    /// Builds a pipeline from bare Spark transformations using each one's
    /// default lowering parameters.
    ///
    /// # Errors
    ///
    /// Returns the offending transformation's name if it has no standalone
    /// lowering (`Union`, `Cogroup`, `FlatMap`, `Reduce`).
    pub fn from_spark_ops(ops: &[mondrian_ops::spark::SparkOp]) -> Result<Self, String> {
        let specs = ops
            .iter()
            .map(|&op| {
                StageSpec::default_for(op)
                    .ok_or_else(|| format!("{op:?} has no standalone lowering"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(specs))
    }

    /// The stage list.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The scheduled shape of the plan: dependencies, branches and waves.
    pub fn dag(&self) -> Dag {
        Dag::build(&self.stages)
    }

    /// Validates the plan shape.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: an empty
    /// plan, an input or join build side referencing a non-earlier stage,
    /// or a stage whose input-edge count violates its operator's arity
    /// (read from the operator registry, not a `match`).
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("pipeline has no stages".into());
        }
        for (i, stage) in self.stages.iter().enumerate() {
            let profile = mondrian_ops::operator(stage.basic_operator()).profile();
            let edges = stage.inputs.len();
            if edges < profile.min_inputs {
                return Err(format!(
                    "stage {i} ({}) needs at least {} input edges, got {edges}",
                    stage.name(),
                    profile.min_inputs,
                ));
            }
            if edges > profile.max_inputs {
                return Err(format!(
                    "stage {i} ({}) takes at most {} input edges, got {edges}",
                    stage.name(),
                    profile.max_inputs,
                ));
            }
            for &input in &stage.inputs {
                if let StageInput::Stage(j) = input {
                    if j >= i {
                        return Err(format!(
                            "stage {i} reads stage {j}, which is not an earlier stage"
                        ));
                    }
                }
            }
            if let StageSpec::Join { build: BuildSide::Stage(j) } = stage.spec {
                if j >= i {
                    return Err(format!(
                        "stage {i} (join) references stage {j}, which is not an earlier stage"
                    ));
                }
            }
        }
        Ok(())
    }

    /// A fingerprint of the plan: the digest of every stage's
    /// specification and input wiring, in order. Campaign runners fold it
    /// into persistent full-run cache keys so a manifest edit that
    /// changes the plan invalidates exactly the runs it affects.
    pub fn plan_key(&self) -> u64 {
        crate::report::fnv1a(format!("{:?}", self.stages).bytes())
    }

    /// Runs the pipeline under `cfg`, honoring `cfg.concurrency`.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid (see [`Pipeline::validate`]) or the
    /// underlying experiment hits an inconsistent configuration.
    pub fn run(&self, cfg: &PipelineConfig) -> PipelineReport {
        self.run_cached(cfg, &ExecCache::default())
    }

    /// Like [`Pipeline::run`], but reuses `cache` across runs: pure
    /// per-stage reference outputs are memoized by (plan, source, stage
    /// prefix), so sweeping the same pipeline over many systems stops
    /// recomputing identical prefix semantics.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid (see [`Pipeline::validate`]).
    pub fn run_cached(&self, cfg: &PipelineConfig, cache: &ExecCache) -> PipelineReport {
        self.run_observed(cfg, cache, "", &())
    }

    /// Like [`Pipeline::run_cached`], additionally streaming
    /// [`ProgressEvent`]s to `sink` as the run executes, tagged with
    /// `label`. Stage events fire from the serial reference pass in
    /// stage order; wave events fire from the schedulers in wave order.
    /// Purely observational: the report is byte-identical to an
    /// unobserved run.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid (see [`Pipeline::validate`]).
    pub fn run_observed(
        &self,
        cfg: &PipelineConfig,
        cache: &ExecCache,
        label: &str,
        sink: &dyn ProgressSink,
    ) -> PipelineReport {
        self.validate().expect("invalid pipeline");
        let dag = self.dag();
        let source: Rel = cfg.source_relation().into();

        // Serial reference pass: every stage on the whole machine, in
        // stage order. The branch schedule is verified against (and its
        // inputs resolved from) these outputs. With `threads > 1` the
        // pure reference executor for a stage runs concurrently with the
        // stage's engine simulation — they consume the same inputs and
        // only meet at the final comparison.
        let mut outputs: Vec<Rel> = Vec::new();
        let mut serial: Vec<StageRun> = Vec::new();
        // Non-tick events consumed by completed stages: the run-wide
        // `max_events` budget is metered here, at stage boundaries, and
        // the in-flight stage's remainder is enforced inside its own
        // event loop — both counts are `sim_threads`-invariant.
        let mut events_used: u64 = 0;
        for (i, stage) in self.stages.iter().enumerate() {
            check_deadline(cfg);
            let mut remaining_budget = None;
            if let Some(budget) = cfg.max_events {
                let remaining = budget.saturating_sub(events_used);
                if remaining == 0 {
                    Abort::throw(
                        AbortReason::LimitEvents,
                        format!("event budget {budget} exhausted before stage {i}"),
                    );
                }
                remaining_budget = Some(remaining);
            }
            sink.emit(
                label,
                &ProgressEvent::StageStarted { stage: i, op: stage.name().to_string() },
            );
            let inputs = resolve_inputs(stage, i, &source, &outputs);
            let build = resolve_build(&stage.spec, &outputs);
            // Persistent-store fast path: a stage whose digest chain
            // (spec, source, input digests, build digest) is unchanged is
            // served from disk — its engine simulation *and* reference
            // execution are both skipped, and the loop's event metering
            // and progress events proceed from the stored report exactly
            // as they would from a live one. An edited manifest therefore
            // re-simulates only the affected DAG suffix: the first
            // changed stage misses (new spec or new input digest), and
            // the divergent digests cascade downstream.
            let stage_key = cache.stage_key(cfg, stage, &inputs, build.as_deref());
            let stored = stage_key.as_deref().and_then(|key| cache.load_stage_run(key));
            let run = if let Some(run) = stored {
                run
            } else {
                let mut sys = cfg.system_config();
                sys.event_budget = remaining_budget;
                let run = if cfg.threads > 1 {
                    std::thread::scope(|scope| {
                        let sys = sys.clone();
                        let engine = scope.spawn(|| {
                            run_stage_engine(cfg, sys, stage, inputs.clone(), build.clone(), None)
                        });
                        let expected =
                            cache.reference_output(cfg, stage, &inputs, build.as_deref());
                        // Propagate the engine thread's panic *payload* —
                        // structured aborts (limits, injected faults) must
                        // reach the campaign's catch_unwind intact.
                        let mut run = match engine.join() {
                            Ok(run) => run,
                            Err(payload) => std::panic::resume_unwind(payload),
                        };
                        run.reference_ok = run.projected[..] == expected[..];
                        run
                    })
                } else {
                    let expected = cache.reference_output(cfg, stage, &inputs, build.as_deref());
                    let mut run = run_stage_engine(cfg, sys, stage, inputs.clone(), build, None);
                    run.reference_ok = run.projected[..] == expected[..];
                    run
                };
                if let Some(key) = &stage_key {
                    cache.save_stage_run(key, &run);
                }
                run
            };
            events_used += run.report.phases.iter().map(|p| p.events).sum::<u64>();
            sink.emit(
                label,
                &ProgressEvent::StageFinished {
                    stage: i,
                    op: stage.name().to_string(),
                    output_rows: run.projected.len(),
                    runtime_ps: run.report.runtime_ps,
                },
            );
            outputs.push(run.projected.clone());
            serial.push(run);
        }

        let obs = Observer { label, sink };
        match cfg.concurrency {
            Concurrency::Serial => self.assemble_serial(cfg, &dag, source.len(), serial, outputs),
            Concurrency::Branch => {
                self.run_branches(cfg, &dag, source.len(), &source, serial, outputs, obs)
            }
            Concurrency::Stream => {
                self.run_stream(cfg, &dag, source.len(), &source, serial, outputs, obs)
            }
            Concurrency::Auto => {
                self.run_auto(cfg, &dag, source.len(), &source, serial, outputs, obs)
            }
        }
    }

    /// Assembles the report of a serial run: every wave charges the sum of
    /// its stage runtimes.
    fn assemble_serial(
        &self,
        cfg: &PipelineConfig,
        dag: &Dag,
        source_rows: usize,
        serial: Vec<StageRun>,
        outputs: Vec<Rel>,
    ) -> PipelineReport {
        let total_vaults = cfg.system_config().total_vaults();
        let mut waves = Vec::new();
        let mut makespan: Time = 0;
        for (w, wave_branches) in dag.waves.iter().enumerate() {
            let wave = serial_wave(w, wave_branches, dag, &serial, total_vaults);
            makespan += wave.runtime_ps;
            waves.push(wave);
        }
        let stages = self
            .stages
            .iter()
            .zip(serial)
            .enumerate()
            .map(|(i, (stage, run))| {
                let serial_runtime = run.report.runtime_ps;
                stage_outcome(
                    cfg,
                    i,
                    stage,
                    run,
                    StagePlacement {
                        wave: dag.wave_of(i),
                        branch: dag.branch_of[i],
                        concurrent: false,
                        streamed: false,
                    },
                    serial_runtime,
                    true,
                )
            })
            .collect();
        PipelineReport {
            system: cfg.system,
            source_rows,
            stages,
            schedule: ScheduleReport {
                mode: Concurrency::Serial,
                waves,
                fused: Vec::new(),
                makespan_ps: makespan,
            },
            planned: None,
            output: outputs.into_iter().next_back().expect("validated non-empty").to_vec(),
        }
    }

    /// The branch-mode wave execution shared by the branch and stream
    /// schedulers: waves with two or more ready branches lease disjoint
    /// vault partitions and execute concurrently; each partitioned stage
    /// is verified byte-identical to the serial pass (`matches`), its
    /// run parked in `chosen` when the wave charges the concurrent
    /// layout, and a wave falls back to the serial schedule when
    /// concurrency does not pay. A plan may override a wave's equal
    /// lease split with its weighted proposal.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn exec_waves(
        &self,
        cfg: &PipelineConfig,
        dag: &Dag,
        source: &Rel,
        serial: &[StageRun],
        outputs: &[Rel],
        chosen: &mut [Option<StageRun>],
        matches: &mut [bool],
        obs: Observer<'_>,
        plan: Option<&Plan>,
    ) -> Vec<WaveExec> {
        let base = cfg.system_config();
        let total_vaults = base.total_vaults();
        let mut execs = Vec::with_capacity(dag.waves.len());

        for (w, wave_branches) in dag.waves.iter().enumerate() {
            // Wave boundaries are the branch/stream schedulers'
            // cooperative wall-time checkpoints.
            check_deadline(cfg);
            let serial_sum: Time = wave_branches
                .iter()
                .flat_map(|&b| &dag.branches[b])
                .map(|&i| serial[i].report.runtime_ps)
                .sum();
            let leases = if wave_branches.len() >= 2 {
                plan.and_then(|p| p.wave_leases(w))
                    .filter(|leases| leases.len() == wave_branches.len())
                    .or_else(|| PartitionSpec::split(total_vaults, wave_branches.len() as u32))
            } else {
                None
            };
            let Some(leases) = leases else {
                // Singleton wave, or more tenants than vaults: the serial
                // schedule is the only schedule.
                let report = serial_wave(w, wave_branches, dag, serial, total_vaults);
                obs.emit(&ProgressEvent::WaveCompleted {
                    wave: w,
                    concurrent: false,
                    runtime_ps: report.runtime_ps,
                });
                execs.push(WaveExec { report, leases: None });
                continue;
            };

            // Execute every branch of the wave on its lease. Inputs come
            // from the verified serial outputs, so cross-branch edges from
            // earlier waves resolve identically in both schedules. With
            // `threads > 1` the branches run on real OS threads — the
            // simulation of each branch is self-contained and
            // deterministic, so the merged result is byte-identical to
            // the in-order execution regardless of thread scheduling.
            let run_branch = |slot: usize, b: usize, sim_threads: usize| -> Vec<StageRun> {
                dag.branches[b]
                    .iter()
                    .map(|&i| {
                        let stage = &self.stages[i];
                        let inputs = resolve_inputs(stage, i, source, outputs);
                        let build = resolve_build(&stage.spec, outputs);
                        let mut sys = base.restrict(leases[slot]);
                        sys.sim_threads = sim_threads;
                        run_stage_engine(cfg, sys, stage, inputs, build, None)
                    })
                    .collect()
            };
            let branch_runs: Vec<Vec<StageRun>> = if cfg.threads > 1 {
                // Branch-level threads spend the whole per-run budget:
                // their machines drain serially (sim_threads = 1) and at
                // most `cfg.threads` branches run at once, so the run's
                // OS-thread total is bounded by `cfg.threads` instead of
                // multiplying wave width by drain threads. Slots are
                // handed out through a work-stealing queue — the old
                // chunked barrier stalled a whole chunk on its slowest
                // branch — and the merge assembles by slot position, so
                // the nondeterministic steal order never reaches the
                // report.
                let workers = cfg.threads.min(wave_branches.len());
                let queue = mondrian_sim::StealQueue::seed(0..wave_branches.len(), workers);
                let mut runs: Vec<Option<Vec<StageRun>>> =
                    (0..wave_branches.len()).map(|_| None).collect();
                let slots = Mutex::new(&mut runs);
                std::thread::scope(|scope| {
                    for w in 0..workers {
                        let queue = &queue;
                        let slots = &slots;
                        let run_branch = &run_branch;
                        scope.spawn(move || {
                            while let Some(slot) = queue.pop(w) {
                                let out = run_branch(slot, wave_branches[slot], 1);
                                slots.lock().expect("branch worker panicked")[slot] = Some(out);
                            }
                        });
                    }
                });
                runs.into_iter().map(|r| r.expect("every slot executed")).collect()
            } else {
                (0..wave_branches.len())
                    .map(|slot| run_branch(slot, wave_branches[slot], 1))
                    .collect()
            };
            let mut branch_runs = branch_runs;
            for (slot, &b) in wave_branches.iter().enumerate() {
                for (&i, run) in dag.branches[b].iter().zip(&branch_runs[slot]) {
                    matches[i] = run.projected[..] == outputs[i][..];
                }
            }
            let branch_times: Vec<Time> = branch_runs
                .iter()
                .map(|runs| runs.iter().map(|r| r.report.runtime_ps).sum())
                .collect();
            let concurrent_time = branch_times.iter().copied().max().unwrap_or(0);
            let concurrent = concurrent_time < serial_sum;

            // Wave report: per-branch mesh traffic stays attributed to the
            // branch's partition; SerDes traffic merges into one globally
            // charged total.
            let mut serdes = SerDesStats::default();
            let mut branches = Vec::with_capacity(wave_branches.len());
            for (slot, &b) in wave_branches.iter().enumerate() {
                let runs: &[StageRun] = if concurrent {
                    &branch_runs[slot]
                } else {
                    // Fallback: report the serial execution's accounting.
                    &[]
                };
                let mut mesh = MeshStats::default();
                let mut runtime: Time = 0;
                if concurrent {
                    for r in runs {
                        mesh.merge(&r.report.mesh_totals);
                        serdes.merge(&r.report.serdes_totals);
                        runtime += r.report.runtime_ps;
                    }
                } else {
                    for &i in &dag.branches[b] {
                        mesh.merge(&serial[i].report.mesh_totals);
                        serdes.merge(&serial[i].report.serdes_totals);
                        runtime += serial[i].report.runtime_ps;
                    }
                }
                let (first_vault, vaults) = if concurrent {
                    (leases[slot].first_vault, leases[slot].vaults)
                } else {
                    (0, total_vaults)
                };
                branches.push(BranchSchedule {
                    branch: b,
                    stages: dag.branches[b].clone(),
                    first_vault,
                    vaults,
                    runtime_ps: runtime,
                    critical: false,
                    mesh,
                });
            }
            mark_critical(&mut branches);
            let charged = if concurrent { concurrent_time } else { serial_sum };
            obs.emit(&ProgressEvent::WaveCompleted { wave: w, concurrent, runtime_ps: charged });
            execs.push(WaveExec {
                report: WaveReport {
                    wave: w,
                    concurrent,
                    runtime_ps: charged,
                    serial_runtime_ps: serial_sum,
                    branches,
                    serdes,
                },
                leases: concurrent.then_some(leases),
            });

            if concurrent {
                for (slot, &b) in wave_branches.iter().enumerate() {
                    let runs = std::mem::take(&mut branch_runs[slot]);
                    for (&i, run) in dag.branches[b].iter().zip(runs) {
                        chosen[i] = Some(run);
                    }
                }
            }
        }
        execs
    }

    /// The branch scheduler: branch-mode wave execution, assembled as the
    /// charged schedule.
    #[allow(clippy::too_many_arguments)]
    fn run_branches(
        &self,
        cfg: &PipelineConfig,
        dag: &Dag,
        source_rows: usize,
        source: &Rel,
        serial: Vec<StageRun>,
        outputs: Vec<Rel>,
        obs: Observer<'_>,
    ) -> PipelineReport {
        let n = self.stages.len();
        let mut chosen: Vec<Option<StageRun>> = (0..n).map(|_| None).collect();
        let mut matches = vec![true; n];
        let execs = self.exec_waves(
            cfg,
            dag,
            source,
            &serial,
            &outputs,
            &mut chosen,
            &mut matches,
            obs,
            None,
        );
        let concurrent: Vec<bool> = chosen.iter().map(Option::is_some).collect();
        let assembly = Assembly {
            mode: Concurrency::Branch,
            source_rows,
            serial,
            outputs,
            chosen,
            matches,
            concurrent,
            streamed: vec![false; n],
            waves: execs.into_iter().map(|we| we.report).collect(),
            fused: Vec::new(),
            planned: None,
        };
        self.assemble_scheduled(cfg, dag, assembly)
    }

    /// The stream scheduler: branch-mode wave execution first (leases,
    /// serial-equivalence checks, per-wave fallback), then intra-stage
    /// pipelining on top. Every fused producer→consumer edge
    /// ([`Dag::fused_pairs`]) re-executes the consumer with its primary
    /// input arriving as a bounded chunk stream, and the wave timeline
    /// overlaps the producer's output phase with the consumer's
    /// per-chunk partition rounds. The overlap model claims only what
    /// the fallbacks bound — a pair never charges more than its
    /// materialized slot, a wave never more than the branch schedule —
    /// so `stream ≤ branch ≤ serial` holds by construction, while the
    /// functional contract stays independent of the timing model: every
    /// streamed run's projected output must be byte-identical to the
    /// serial reference pass, charged or not.
    #[allow(clippy::too_many_arguments)]
    fn run_stream(
        &self,
        cfg: &PipelineConfig,
        dag: &Dag,
        source_rows: usize,
        source: &Rel,
        serial: Vec<StageRun>,
        outputs: Vec<Rel>,
        obs: Observer<'_>,
    ) -> PipelineReport {
        let sched = self.exec_stream_schedule(cfg, dag, source, &serial, &outputs, obs, None);
        let assembly = Assembly {
            mode: Concurrency::Stream,
            source_rows,
            serial,
            outputs,
            chosen: sched.chosen,
            matches: sched.matches,
            concurrent: sched.concurrent,
            streamed: sched.streamed,
            waves: sched.waves,
            fused: sched.fused,
            planned: None,
        };
        self.assemble_scheduled(cfg, dag, assembly)
    }

    /// The adaptive scheduler: builds a cost-model plan from the serial
    /// pass's actual cardinalities ([`crate::plan::plan_pipeline`]), then
    /// races the default stream schedule against the planned one (weighted
    /// leases, tuned chunk counts) and charges whichever measured faster.
    /// The default candidate is byte-for-byte the `Concurrency::Stream`
    /// execution, so `auto ≤ min(serial, branch, stream)` holds by
    /// construction; the `planned` block records the predictions and who
    /// won so artifacts can attribute the outcome.
    #[allow(clippy::too_many_arguments)]
    fn run_auto(
        &self,
        cfg: &PipelineConfig,
        dag: &Dag,
        source_rows: usize,
        source: &Rel,
        serial: Vec<StageRun>,
        outputs: Vec<Rel>,
        obs: Observer<'_>,
    ) -> PipelineReport {
        let sys = cfg.system_config();
        let shapes: Vec<StageShape> = self
            .stages
            .iter()
            .enumerate()
            .map(|(i, stage)| StageShape {
                rows_in: serial[i].input_rows,
                rows_build: resolve_build(&stage.spec, &outputs).map_or(0, |r| r.len()),
                rows_out: outputs[i].len(),
            })
            .collect();
        let plan = crate::plan::plan_pipeline(&self.stages, dag, &shapes, &sys, STREAM_CHUNKS);

        // Candidate D: the default stream schedule (emits the progress
        // events). Candidate P: the planned schedule, raced silently —
        // observation must not depend on which candidate wins.
        let default = self.exec_stream_schedule(cfg, dag, source, &serial, &outputs, obs, None);
        let silent = ();
        let planned_exec = plan.proposes_changes().then(|| {
            self.exec_stream_schedule(
                cfg,
                dag,
                source,
                &serial,
                &outputs,
                Observer { label: obs.label, sink: &silent },
                Some(&plan),
            )
        });
        let planner_won =
            planned_exec.as_ref().is_some_and(|p| p.makespan_ps() < default.makespan_ps());
        let (winner, loser) = if planner_won {
            (planned_exec.expect("planner_won implies a planned candidate"), Some(default))
        } else {
            (default, planned_exec)
        };
        // Every candidate run was verified against the serial outputs;
        // a mismatch in either candidate fails the run, charged or not.
        let mut matches = winner.matches;
        if let Some(loser) = &loser {
            for (m, &lm) in matches.iter_mut().zip(&loser.matches) {
                *m &= lm;
            }
        }
        let planned = PlanReport {
            stage_predicted_ps: plan.stage_predicted_ps.clone(),
            predicted_makespan_ps: plan.predicted_makespan_ps,
            planner_won,
            waves: plan
                .waves
                .iter()
                .map(|w| PlannedWaveReport {
                    wave: w.wave,
                    leases: w
                        .leases
                        .iter()
                        .enumerate()
                        .map(|(slot, l)| PlannedLease {
                            branch: dag.waves[w.wave][slot],
                            first_vault: l.first_vault,
                            vaults: l.vaults,
                        })
                        .collect(),
                })
                .collect(),
            edges: plan
                .edges
                .iter()
                .map(|e| PlannedEdgeReport {
                    producer: e.producer,
                    consumer: e.consumer,
                    chunks: e.chunks,
                })
                .collect(),
        };
        let assembly = Assembly {
            mode: Concurrency::Auto,
            source_rows,
            serial,
            outputs,
            chosen: winner.chosen,
            matches,
            concurrent: winner.concurrent,
            streamed: winner.streamed,
            waves: winner.waves,
            fused: winner.fused,
            planned: Some(planned),
        };
        self.assemble_scheduled(cfg, dag, assembly)
    }

    /// One complete stream-schedule execution — the shared engine behind
    /// `Concurrency::Stream` (no plan) and both `Concurrency::Auto`
    /// candidates (the planned one overrides leases and chunk counts).
    /// Runs branch-mode waves, re-executes fused consumers with chunked
    /// input, and walks the wave timeline; every fallback of the ladder
    /// applies per candidate, so each candidate is never-worse than the
    /// branch schedule on its own.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn exec_stream_schedule(
        &self,
        cfg: &PipelineConfig,
        dag: &Dag,
        source: &Rel,
        serial: &[StageRun],
        outputs: &[Rel],
        obs: Observer<'_>,
        plan: Option<&Plan>,
    ) -> SchedExec {
        let n = self.stages.len();
        let mut chosen: Vec<Option<StageRun>> = (0..n).map(|_| None).collect();
        let mut matches = vec![true; n];
        let execs = self.exec_waves(
            cfg,
            dag,
            source,
            serial,
            outputs,
            &mut chosen,
            &mut matches,
            obs,
            plan,
        );
        let concurrent: Vec<bool> = chosen.iter().map(Option::is_some).collect();
        let base = cfg.system_config();

        // Streamed consumer runs for every candidate pair. The consumer
        // re-executes under the same lease its branch-mode charged run
        // used, with the producer's verified serial output as the chunk
        // stream, and is held to the same differential contract as
        // partitioned runs: projected output byte-identical to serial.
        let mut pairs: Vec<PairExec> = Vec::new();
        for (producer, consumer) in dag.fused_pairs(&self.stages) {
            let unfused_ps = chosen[consumer]
                .as_ref()
                .map_or(serial[consumer].report.runtime_ps, |r| r.report.runtime_ps);
            // An empty producer output has no partition rounds to overlap:
            // fusing it would charge the consumer a round for zero tuples.
            // Skip the fusion and keep the materialized slot.
            if outputs[producer].is_empty() {
                pairs.push(PairExec::fallback(producer, consumer, unfused_ps));
                continue;
            }
            let chunk_count =
                plan.and_then(|p| p.edge_chunks(producer, consumer)).unwrap_or(STREAM_CHUNKS);
            let chunks = chunk_stream(&outputs[producer], chunk_count);
            let wave = &execs[dag.wave_of(consumer)];
            let sys = match &wave.leases {
                Some(leases) => {
                    let slot = wave
                        .report
                        .branches
                        .iter()
                        .position(|b| b.branch == dag.branch_of[consumer])
                        .expect("consumer's branch is in its wave");
                    let mut sys = base.restrict(leases[slot]);
                    sys.sim_threads = 1;
                    sys
                }
                None => cfg.system_config(),
            };
            let stage = &self.stages[consumer];
            let inputs = resolve_inputs(stage, consumer, source, outputs);
            let build = resolve_build(&stage.spec, outputs);
            let run = run_stage_engine(cfg, sys, stage, inputs, build, Some(chunks));
            matches[consumer] &= run.projected[..] == outputs[consumer][..];
            // An engine path that records no per-chunk rounds cannot be
            // overlapped in the timeline walk — fall back to the
            // materialized slot instead of panicking (the run is still
            // held to the differential contract above).
            let Some((spans, rest)) = stream_rounds(&run) else {
                pairs.push(PairExec::fallback(producer, consumer, unfused_ps));
                continue;
            };
            pairs.push(PairExec {
                producer,
                consumer,
                active: true,
                avail: Vec::new(),
                spans,
                rest,
                fused_ps: unfused_ps,
                unfused_ps,
                run: Some(run),
            });
        }

        // Timeline walk: process the waves in order on an absolute clock,
        // replaying each wave's charged layout (concurrent branches from
        // the wave start, or back-to-back serial order) with fused-pair
        // overlap applied. Producers record when each chunk of their
        // output becomes available; consumers fold the chunk arrivals
        // and their partition rounds into the pipelined completion time.
        let mut streamed = vec![false; n];
        let mut clock: Time = 0;
        let mut waves = Vec::with_capacity(execs.len());
        // Cross-branch producers of the wave being walked (pair indices);
        // their chunk availability is clamped once the wave's charged
        // time is known.
        let mut cross_wave: Vec<usize> = Vec::new();
        for we in execs {
            let mut report = we.report;
            let branch_charged = report.runtime_ps;
            let mut adjusted: Vec<Time> = Vec::with_capacity(report.branches.len());
            let mut cursor = clock; // serial layout: branches back to back
            for branch in &report.branches {
                let mut at = if report.concurrent { clock } else { cursor };
                let start = at;
                for &i in &branch.stages {
                    let unfused = chosen[i]
                        .as_ref()
                        .map_or(serial[i].report.runtime_ps, |r| r.report.runtime_ps);
                    let mut duration = unfused;
                    if let Some(pair) = pairs.iter_mut().find(|p| p.active && p.consumer == i) {
                        // Pipelined completion: each chunk partitions as
                        // soon as it arrives and the previous round is
                        // done; the probe tail follows the last round.
                        let mut done: Time = 0;
                        for (&arrival, &round) in pair.avail.iter().zip(&pair.spans) {
                            done = done.max(arrival) + round;
                        }
                        pair.fused_ps = done.max(at) + pair.rest - at;
                        if pair.fused_ps < unfused {
                            streamed[i] = true;
                            duration = pair.fused_ps;
                        }
                    }
                    if let Some(pi) = pairs.iter().position(|p| p.active && p.producer == i) {
                        let report = chosen[i].as_ref().map_or(&serial[i].report, |r| &r.report);
                        let out_ps = report.probe_time();
                        let pre = report.runtime_ps - out_ps;
                        let pair = &mut pairs[pi];
                        let k = pair.spans.len() as u64;
                        if dag.branch_of[pair.producer] == dag.branch_of[pair.consumer] {
                            // Same lease: the consumer's rounds overlap
                            // the producer's output phase chunk by chunk.
                            pair.avail =
                                (1..=k).map(|j| at + pre + (out_ps * j).div_ceil(k)).collect();
                        } else {
                            // Cross-branch: the consumer owns no lease
                            // while the producer's wave runs, so the
                            // chunks buffer until the producer's branch
                            // retires its lease; the wave's end-of-walk
                            // pass then decides which rounds fit on the
                            // freed vaults before the barrier and defers
                            // the rest into the consumer's slot.
                            pair.avail = vec![at + pre + out_ps; k as usize];
                            cross_wave.push(pi);
                        }
                    }
                    at += duration;
                }
                adjusted.push(at - start);
                cursor = at;
            }
            let layout_time: Time = if report.concurrent {
                adjusted.iter().copied().max().unwrap_or(0)
            } else {
                adjusted.iter().sum()
            };
            let charged = layout_time.min(branch_charged);
            // Cross-branch chunks are consumable only while idle vaults
            // exist: rounds that fit between the producer's branch
            // retiring its lease and this wave's barrier complete there;
            // the rest defer into the consumer's own slot (a
            // serial-layout wave keeps the whole machine busy to its
            // end, so everything defers).
            let barrier = clock + charged;
            for &pi in &cross_wave {
                let pair = &mut pairs[pi];
                let mut done: Time = 0;
                let mut fit = 0;
                if report.concurrent {
                    for (&arrival, &round) in pair.avail.iter().zip(&pair.spans) {
                        let t = done.max(arrival) + round;
                        if t > barrier {
                            break;
                        }
                        done = t;
                        fit += 1;
                    }
                }
                let deferred: Time = pair.spans[fit..].iter().sum();
                pair.avail.clear();
                pair.rest += deferred;
            }
            cross_wave.clear();
            // The walk's adjusted layout is the stream schedule's
            // accounting even when the wave's charged time did not
            // improve — a pair streamed in a non-critical branch still
            // charges its streamed run, so the branch table must say so.
            for (b, &t) in report.branches.iter_mut().zip(&adjusted) {
                b.runtime_ps = t;
                b.critical = false;
            }
            mark_critical(&mut report.branches);
            report.runtime_ps = charged;
            clock += charged;
            waves.push(report);
        }

        // Charge the streamed runs and record every fused edge (with its
        // per-pair verdict) in the schedule report.
        let mut fused = Vec::with_capacity(pairs.len());
        for pair in &mut pairs {
            debug_assert!(
                pair.active || pair.fused_ps == pair.unfused_ps,
                "a fallback pair must charge its materialized slot"
            );
            if streamed[pair.consumer] {
                chosen[pair.consumer] = pair.run.take();
            }
            fused.push(FusedEdge {
                producer: pair.producer,
                consumer: pair.consumer,
                chunks: pair.spans.len(),
                streamed: streamed[pair.consumer],
                streamed_ps: pair.fused_ps,
                unfused_ps: pair.unfused_ps,
            });
        }

        // NoC accounting follows the charged runs: a wave holding a
        // streamed consumer re-merges its branch mesh totals and its
        // globally-charged SerDes from the runs actually charged (the
        // streamed run's per-chunk rounds produce different traffic than
        // the materialized one exec_waves merged).
        for wave in waves
            .iter_mut()
            .filter(|w| w.branches.iter().any(|b| b.stages.iter().any(|&i| streamed[i])))
        {
            let mut serdes = SerDesStats::default();
            for branch in &mut wave.branches {
                let mut mesh = MeshStats::default();
                for &i in &branch.stages {
                    let rep = chosen[i].as_ref().map_or(&serial[i].report, |r| &r.report);
                    mesh.merge(&rep.mesh_totals);
                    serdes.merge(&rep.serdes_totals);
                }
                branch.mesh = mesh;
            }
            wave.serdes = serdes;
        }

        SchedExec { chosen, matches, concurrent, streamed, waves, fused }
    }

    /// Assembles the report of a scheduled (branch or stream) run from
    /// whichever execution was charged per stage.
    fn assemble_scheduled(
        &self,
        cfg: &PipelineConfig,
        dag: &Dag,
        mut assembly: Assembly,
    ) -> PipelineReport {
        let makespan = assembly.waves.iter().map(|w| w.runtime_ps).sum();
        let mut stages = Vec::with_capacity(self.stages.len());
        for (i, (stage, run)) in self.stages.iter().zip(assembly.serial).enumerate() {
            let serial_runtime = run.report.runtime_ps;
            let serial_reference_ok = run.reference_ok;
            let run = match assembly.chosen[i].take() {
                Some(mut scheduled_run) => {
                    // The scheduled (partitioned or streamed) run was
                    // checked against the serial output, not the pure
                    // reference directly; its reference verdict follows
                    // transitively (identical to a serial output that
                    // itself matched the reference).
                    scheduled_run.reference_ok = assembly.matches[i] && serial_reference_ok;
                    scheduled_run
                }
                None => run,
            };
            stages.push(stage_outcome(
                cfg,
                i,
                stage,
                run,
                StagePlacement {
                    wave: dag.wave_of(i),
                    branch: dag.branch_of[i],
                    concurrent: assembly.concurrent[i],
                    streamed: assembly.streamed[i],
                },
                serial_runtime,
                assembly.matches[i],
            ));
        }
        PipelineReport {
            system: cfg.system,
            source_rows: assembly.source_rows,
            stages,
            schedule: ScheduleReport {
                mode: assembly.mode,
                waves: assembly.waves,
                fused: assembly.fused,
                makespan_ps: makespan,
            },
            planned: assembly.planned,
            output: assembly.outputs.into_iter().next_back().expect("validated non-empty").to_vec(),
        }
    }
}

/// The run label and progress sink the schedulers report through.
/// Observation only — nothing the sink does can influence the report.
#[derive(Clone, Copy)]
struct Observer<'a> {
    label: &'a str,
    sink: &'a dyn ProgressSink,
}

impl Observer<'_> {
    fn emit(&self, event: &ProgressEvent) {
        self.sink.emit(self.label, event);
    }
}

/// One wave of the branch-mode execution, kept with the leases its
/// concurrent layout ran on (the stream scheduler re-runs fused
/// consumers under the same lease).
struct WaveExec {
    report: WaveReport,
    leases: Option<Vec<PartitionSpec>>,
}

/// One fused producer→consumer candidate of a stream run.
struct PairExec {
    producer: usize,
    consumer: usize,
    /// Whether the timeline walk may stream this pair. A fallback pair
    /// (empty producer output, or an engine path without per-chunk
    /// rounds) stays in the report but always charges its materialized
    /// slot.
    active: bool,
    /// Absolute availability time of each chunk, recorded when the
    /// timeline walk passes the producer.
    avail: Vec<Time>,
    /// The consumer's per-chunk partition rounds (engine-simulated).
    spans: Vec<Time>,
    /// The streamed run's time after the last partition round.
    rest: Time,
    /// The consumer's slot duration under streaming (set by the walk).
    fused_ps: Time,
    /// The consumer's slot duration under the materialized schedule.
    unfused_ps: Time,
    /// The streamed run, taken when the pair charges it.
    run: Option<StageRun>,
}

impl PairExec {
    /// A pair the walk skips: it records the edge (zero chunks) and
    /// keeps the consumer's materialized slot charged.
    fn fallback(producer: usize, consumer: usize, unfused_ps: Time) -> Self {
        PairExec {
            producer,
            consumer,
            active: false,
            avail: Vec::new(),
            spans: Vec::new(),
            rest: 0,
            fused_ps: unfused_ps,
            unfused_ps,
            run: None,
        }
    }
}

/// One complete stream-schedule execution, before report assembly.
/// `run_stream` charges its only execution; `run_auto` races two and
/// charges the faster.
struct SchedExec {
    chosen: Vec<Option<StageRun>>,
    matches: Vec<bool>,
    concurrent: Vec<bool>,
    streamed: Vec<bool>,
    waves: Vec<WaveReport>,
    fused: Vec<FusedEdge>,
}

impl SchedExec {
    fn makespan_ps(&self) -> Time {
        self.waves.iter().map(|w| w.runtime_ps).sum()
    }
}

/// Inputs of the scheduled-report assembly beyond the stages themselves.
struct Assembly {
    mode: Concurrency,
    source_rows: usize,
    serial: Vec<StageRun>,
    outputs: Vec<Rel>,
    chosen: Vec<Option<StageRun>>,
    matches: Vec<bool>,
    concurrent: Vec<bool>,
    streamed: Vec<bool>,
    waves: Vec<WaveReport>,
    fused: Vec<FusedEdge>,
    planned: Option<PlanReport>,
}

/// How many arrival chunks a fused edge streams through by default: the
/// bounded channel between a producer's output phase and its consumer's
/// partition phase. Deterministic — the chunking is part of the
/// schedule's identity; the planner may override it per edge.
const STREAM_CHUNKS: usize = 8;

/// Splits a producer's output relation into its bounded-channel arrival
/// chunks: up to `chunks` equal slices, at least one tuple each. Empty
/// relations never stream — their fused edges fall back to the
/// materialized slot before chunking.
fn chunk_stream(rel: &Rel, chunks: usize) -> Vec<Rel> {
    assert!(!rel.is_empty(), "empty producer outputs skip fusion");
    let per = rel.len().div_ceil(chunks.clamp(1, rel.len()));
    rel.chunks(per).map(Arc::from).collect()
}

/// Extracts a streamed run's per-chunk partition rounds and its time
/// past the last round. `None` when the engine path recorded no stream
/// info — the caller falls back to the materialized slot.
fn stream_rounds(run: &StageRun) -> Option<(Vec<Time>, Time)> {
    let info = run.report.stream.as_ref()?;
    let spans = info.chunk_partition_ps.clone();
    let rest = run.report.runtime_ps.saturating_sub(spans.iter().sum::<Time>());
    Some((spans, rest))
}

/// One executed stage (on the whole machine or on a lease).
struct StageRun {
    input_rows: usize,
    report: Report,
    projected: Rel,
    reference_ok: bool,
}

/// Runs one stage's engine simulation on `sys_cfg` and projects its
/// output. Multi-input stages hand every resolved edge relation to the
/// builder, in edge order; a streamed run replaces its primary edge with
/// the chunked arrival stream. The reference verdict is filled in by the
/// caller (serial runs compare against the pure reference executor,
/// partition and streamed runs against the serial outputs), so the
/// simulation can overlap with whichever check applies.
fn run_stage_engine(
    cfg: &PipelineConfig,
    sys_cfg: SystemConfig,
    stage: &Stage,
    inputs: Vec<Rel>,
    build: Option<Rel>,
    stream: Option<Vec<Rel>>,
) -> StageRun {
    let input_rows = inputs.iter().map(|r| r.len()).sum();
    let mut edges = inputs.into_iter();
    let mut builder = ExperimentBuilder::new(stage.spec.basic_operator())
        .config(sys_cfg)
        .input(edges.next().expect("validated: every stage has an input edge"));
    for rel in edges {
        builder = builder.add_input(rel);
    }
    if let Some(chunks) = stream {
        builder = builder.streamed_input(chunks);
    }
    if let StageSpec::FlatMap { fanout } = stage.spec {
        builder = builder.fanout(fanout);
    }
    if let Some(pred) = stage.spec.scan_predicate() {
        builder = builder.scan_predicate(pred);
    }
    if let Some(r) = build {
        builder = builder.join_build(r);
    }
    if let Some(f) = cfg.underprovision {
        builder = builder.underprovision_permutable(f);
    }
    let report = builder.run();
    let projected: Rel = stage.spec.project_output(&report.output).into();
    StageRun { input_rows, report, projected, reference_ok: false }
}

/// Cooperative wall-time checkpoint: unwinds with a structured
/// `limit_wall_time` abort once the run's deadline has passed.
fn check_deadline(cfg: &PipelineConfig) {
    if let Some(deadline) = cfg.deadline {
        if Instant::now() >= deadline {
            Abort::throw(AbortReason::LimitWallTime, "wall-time budget exhausted");
        }
    }
}

/// Where the schedule placed a stage and how it executed there.
struct StagePlacement {
    wave: usize,
    branch: usize,
    concurrent: bool,
    streamed: bool,
}

fn stage_outcome(
    cfg: &PipelineConfig,
    index: usize,
    stage: &Stage,
    run: StageRun,
    placement: StagePlacement,
    serial_runtime_ps: Time,
    matches_serial: bool,
) -> StageOutcome {
    StageOutcome {
        spec: stage.spec,
        inputs: stage.inputs.clone(),
        wave: placement.wave,
        branch: placement.branch,
        concurrent: placement.concurrent,
        streamed: placement.streamed,
        serial_runtime_ps,
        matches_serial,
        // The digest-corruption fault point: the artifact records a
        // digest that no longer matches the (correct) relation, which an
        // `assertions.stage_digests` block then catches at assembly.
        output_digest: relation_digest(&run.projected)
            ^ mondrian_core::fault::digest_xor(cfg.fault.as_deref(), index),
        input_rows: run.input_rows,
        output_rows: run.projected.len(),
        reference_ok: run.reference_ok,
        report: run.report,
    }
}

/// A wave charged under the serial schedule (singleton waves, fallbacks,
/// and every wave of a serial run).
fn serial_wave(
    w: usize,
    wave_branches: &[usize],
    dag: &Dag,
    serial: &[StageRun],
    total_vaults: u32,
) -> WaveReport {
    let mut serdes = SerDesStats::default();
    let mut branches = Vec::with_capacity(wave_branches.len());
    let mut sum: Time = 0;
    for &b in wave_branches {
        let mut mesh = MeshStats::default();
        let mut runtime: Time = 0;
        for &i in &dag.branches[b] {
            mesh.merge(&serial[i].report.mesh_totals);
            serdes.merge(&serial[i].report.serdes_totals);
            runtime += serial[i].report.runtime_ps;
        }
        sum += runtime;
        branches.push(BranchSchedule {
            branch: b,
            stages: dag.branches[b].clone(),
            first_vault: 0,
            vaults: total_vaults,
            runtime_ps: runtime,
            critical: false,
            mesh,
        });
    }
    mark_critical(&mut branches);
    WaveReport {
        wave: w,
        concurrent: false,
        runtime_ps: sum,
        serial_runtime_ps: sum,
        branches,
        serdes,
    }
}

fn mark_critical(branches: &mut [BranchSchedule]) {
    if let Some(max) = branches.iter().map(|b| b.runtime_ps).max() {
        if let Some(b) = branches.iter_mut().find(|b| b.runtime_ps == max) {
            b.critical = true;
        }
    }
}

fn resolve_input(input: StageInput, i: usize, source: &Rel, outputs: &[Rel]) -> Rel {
    match input {
        StageInput::Source => source.clone(),
        StageInput::Prev => {
            if i == 0 {
                source.clone()
            } else {
                outputs[i - 1].clone()
            }
        }
        StageInput::Stage(j) => outputs[j].clone(),
    }
}

/// Resolves every input edge of a stage, in edge order — the scheduler
/// feeds multi-input stages from multiple DAG edges with refcount bumps,
/// not copies.
fn resolve_inputs(stage: &Stage, i: usize, source: &Rel, outputs: &[Rel]) -> Vec<Rel> {
    stage.inputs.iter().map(|&input| resolve_input(input, i, source, outputs)).collect()
}

fn resolve_build(spec: &StageSpec, outputs: &[Rel]) -> Option<Rel> {
    match spec {
        StageSpec::Join { build: BuildSide::Stage(j) } => Some(outputs[*j].clone()),
        _ => None,
    }
}

/// Identity of a run's source relation: everything that determines the
/// generated tuples, independent of the evaluated system.
type SourceKey = (bool, usize, u64, Option<u64>, Option<u64>);

/// One persisted serial-pass stage result: exactly the state the serial
/// reference pass produces for a stage, so a backed [`ExecCache`] can
/// serve the stage without running either the engine or the reference
/// executor.
#[derive(Debug, Clone)]
pub struct StageEntry {
    /// Rows consumed across every input edge.
    pub input_rows: usize,
    /// Whether the engine output matched the pure reference executor.
    pub reference_ok: bool,
    /// The engine's full stage report.
    pub report: Report,
    /// The stage's projected output relation.
    pub projected: Rel,
}

/// A persistent backing for [`ExecCache`]: per-stage serial results and
/// pure reference-prefix relations, addressed by opaque key bytes the
/// cache derives from each entry's digest chain. Implementations must
/// treat corruption as a miss and tolerate concurrent use — the cache
/// calls them from every campaign worker.
pub trait ExecStore: Send + Sync + std::fmt::Debug {
    /// Loads a reference-prefix relation; `None` is a miss.
    fn load_ref(&self, key: &[u8]) -> Option<Rel>;
    /// Persists a reference-prefix relation (best-effort).
    fn save_ref(&self, key: &[u8], rel: &[Tuple]);
    /// Loads a serial-pass stage result; `None` is a miss.
    fn load_stage(&self, key: &[u8]) -> Option<StageEntry>;
    /// Persists a serial-pass stage result (best-effort).
    fn save_stage(&self, key: &[u8], entry: &StageEntry);
}

/// Cross-run cache of pure per-stage reference outputs, keyed by
/// `(stage spec, source identity, input-edge digests, build digest)` —
/// multi-input stages fold every edge's relation digest into one key
/// component. Campaigns sweeping one plan over many systems share
/// identical stage-prefix semantics; the cache computes each prefix's
/// reference output once. The digests guard against poisoning: should a
/// run's engine output diverge from the reference chain, its downstream
/// inputs differ and miss the cache instead of overwriting another
/// system's expected values. The stage index and plan identity are *not*
/// part of the key — the input-digest chain already pins the prefix
/// semantics, so two plans sharing a prefix share its entries.
///
/// An optional persistent backing ([`ExecCache::with_backing`]) extends
/// both layers across processes: reference relations and whole
/// serial-pass stage results (engine report included) are written
/// through to the store and consulted on memory misses. Runs with an
/// armed fault plan never touch the backing, in either direction.
///
/// The cache is thread-safe — campaign workers running sweep points on
/// separate OS threads share one instance. Cached *values* are identical
/// whichever thread computes them (the reference executors are pure), so
/// sharing never changes results; only the hit/miss counters depend on
/// scheduling (two threads may both miss on the same prefix at once and
/// compute it redundantly rather than block one another).
#[derive(Debug, Default)]
pub struct ExecCache {
    #[allow(clippy::type_complexity)]
    reference: Mutex<HashMap<(u64, SourceKey, u64, Option<u64>), Rel>>,
    reference_hits: AtomicU64,
    reference_misses: AtomicU64,
    backing: Option<Arc<dyn ExecStore>>,
}

impl ExecCache {
    /// A cache that extends both memo layers through `store`.
    pub fn with_backing(store: Arc<dyn ExecStore>) -> Self {
        Self { backing: Some(store), ..Self::default() }
    }

    fn reference_output(
        &self,
        cfg: &PipelineConfig,
        stage: &Stage,
        inputs: &[Rel],
        build: Option<&[Tuple]>,
    ) -> Rel {
        let inputs_digest =
            crate::report::fnv1a(inputs.iter().flat_map(|rel| relation_digest(rel).to_le_bytes()));
        let spec_digest = crate::report::fnv1a(format!("{:?}", stage.spec).bytes());
        let build_digest = build.map(relation_digest);
        let key = (spec_digest, cfg.source_key(), inputs_digest, build_digest);
        if let Some(v) = self.reference.lock().expect("cache poisoned").get(&key) {
            self.reference_hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        // The reference output is system-independent pure semantics, so
        // the persistent key carries no system, underprovisioning, or
        // budget component — only the digest chain.
        let store_key = (cfg.fault.is_none() && self.backing.is_some())
            .then(|| format!("ref1|{:?}", key).into_bytes());
        if let (Some(store), Some(store_key)) = (&self.backing, &store_key) {
            if let Some(v) = store.load_ref(store_key) {
                self.reference_hits.fetch_add(1, Ordering::Relaxed);
                self.reference.lock().expect("cache poisoned").insert(key, v.clone());
                return v;
            }
        }
        // Compute outside the lock: a long reference computation must not
        // serialize unrelated cache lookups from other workers.
        let input_refs: Vec<&[Tuple]> = inputs.iter().map(|rel| &rel[..]).collect();
        let v: Rel = stage.spec.reference_output(&input_refs, build, cfg.seed).into();
        self.reference_misses.fetch_add(1, Ordering::Relaxed);
        self.reference.lock().expect("cache poisoned").insert(key, v.clone());
        if let (Some(store), Some(store_key)) = (&self.backing, &store_key) {
            store.save_ref(store_key, &v);
        }
        v
    }

    /// The persistent key of a serial-pass stage result, or `None` when
    /// the result must not be persisted (no backing, or a fault plan is
    /// armed — an injected fault may corrupt anything downstream of its
    /// site, and PR 8's exclusion rule keeps such state out of every
    /// memo layer). Unlike reference entries the key carries the system,
    /// the (permutability-normalized) underprovisioning factor, and the
    /// event budget: the stored engine report depends on all three.
    /// Thread counts and the concurrency mode are deliberately absent —
    /// the serial pass is byte-identical across them.
    fn stage_key(
        &self,
        cfg: &PipelineConfig,
        stage: &Stage,
        inputs: &[Rel],
        build: Option<&[Tuple]>,
    ) -> Option<Vec<u8>> {
        if self.backing.is_none() || cfg.fault.is_some() {
            return None;
        }
        let inputs_digest =
            crate::report::fnv1a(inputs.iter().flat_map(|rel| relation_digest(rel).to_le_bytes()));
        let underprovision = cfg
            .system
            .uses_permutability()
            .then_some(cfg.underprovision)
            .flatten()
            .map(f64::to_bits);
        let key = (
            cfg.system,
            cfg.source_key(),
            underprovision,
            cfg.max_events,
            format!("{:?}", stage.spec),
            inputs_digest,
            build.map(relation_digest),
        );
        Some(format!("stage1|{:?}", key).into_bytes())
    }

    fn load_stage_run(&self, key: &[u8]) -> Option<StageRun> {
        let entry = self.backing.as_ref()?.load_stage(key)?;
        Some(StageRun {
            input_rows: entry.input_rows,
            report: entry.report,
            projected: entry.projected,
            reference_ok: entry.reference_ok,
        })
    }

    fn save_stage_run(&self, key: &[u8], run: &StageRun) {
        if let Some(store) = &self.backing {
            store.save_stage(
                key,
                &StageEntry {
                    input_rows: run.input_rows,
                    reference_ok: run.reference_ok,
                    report: run.report.clone(),
                    projected: run.projected.clone(),
                },
            );
        }
    }

    /// Reference outputs served from the cache (memory or backing).
    pub fn reference_hits(&self) -> u64 {
        self.reference_hits.load(Ordering::Relaxed)
    }

    /// Reference outputs computed and inserted.
    pub fn reference_misses(&self) -> u64 {
        self.reference_misses.load(Ordering::Relaxed)
    }
}

/// Workload-and-machine configuration of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The evaluated system.
    pub system: SystemKind,
    /// Minimal test topology (1 HMC × 4 vaults) instead of the paper's.
    pub tiny: bool,
    /// Source-relation tuples per vault.
    pub tuples_per_vault: usize,
    /// RNG seed for the source relation and derived dimensions.
    pub seed: u64,
    /// Source key distribution.
    pub dist: KeyDist,
    /// Source key upper bound; defaults to a quarter of the relation size
    /// (the paper's average group size of four, §6).
    pub key_bound: Option<u64>,
    /// Deliberately undersize permutable destination regions by this
    /// factor (< 1.0 exercises the §5.4 overflow/retry path on permutable
    /// systems).
    pub underprovision: Option<f64>,
    /// How to schedule the stages onto the machine.
    pub concurrency: Concurrency,
    /// OS threads the executor may use *within* this run: branch waves
    /// execute their leased branches on real threads, each stage's pure
    /// reference executor overlaps with its engine simulation, and the
    /// machine drains independent vault command queues in parallel.
    /// Purely an execution-speed knob — results are byte-identical for
    /// every value (1 = fully in-order execution).
    pub threads: usize,
    /// Host threads for the *engine event loop itself*: batches of
    /// simultaneous vault ticks poll in parallel and the phase tail
    /// drains as a parallel sweep. `0` (the default) follows
    /// [`PipelineConfig::threads`]; any other value pins the engine
    /// thread count independently of the executor's. Execution-speed
    /// only — artifacts are byte-identical for every value.
    pub sim_threads: usize,
    /// Cooperative non-tick event budget for the whole run, metered over
    /// the serial reference pass (stage boundaries plus the in-flight
    /// stage's own event loop). Exceeding it unwinds with a structured
    /// `limit_events` abort at a `sim_threads`-invariant point. Branch
    /// and stream re-executions are alternative timing models of work
    /// the serial pass already paid for, so they are not re-budgeted.
    pub max_events: Option<u64>,
    /// Cooperative wall-time deadline, checked at stage and wave
    /// boundaries; crossing it unwinds with a structured
    /// `limit_wall_time` abort. Host-dependent by nature for nonzero
    /// budgets — an already-expired deadline degrades deterministically.
    pub deadline: Option<Instant>,
    /// Armed fault-injection plan for this run (inert unless the
    /// `fault-inject` feature is compiled into the engine).
    pub fault: Option<Arc<FaultHandle>>,
}

impl PipelineConfig {
    /// The scaled paper topology on `system`.
    pub fn new(system: SystemKind) -> Self {
        Self {
            system,
            tiny: false,
            tuples_per_vault: 1024,
            seed: 0x6d6f6e64, // "mond"
            dist: KeyDist::Uniform,
            key_bound: None,
            underprovision: None,
            concurrency: Concurrency::Serial,
            threads: 1,
            sim_threads: 0,
            max_events: None,
            deadline: None,
            fault: None,
        }
    }

    /// The minimal test topology on `system`.
    pub fn tiny(system: SystemKind) -> Self {
        Self { tiny: true, tuples_per_vault: 256, ..Self::new(system) }
    }

    /// The machine configuration of this run.
    pub fn system_config(&self) -> SystemConfig {
        let mut cfg = if self.tiny {
            SystemConfig::tiny(self.system)
        } else {
            SystemConfig::scaled(self.system)
        };
        cfg.tuples_per_vault = self.tuples_per_vault;
        cfg.seed = self.seed;
        cfg.sim_threads = if self.sim_threads > 0 { self.sim_threads } else { self.threads }.max(1);
        cfg.fault = self.fault.clone();
        cfg
    }

    /// Generates the pipeline's source relation.
    pub fn source_relation(&self) -> Vec<Tuple> {
        let cfg = self.system_config();
        let total = self.tuples_per_vault * cfg.total_vaults() as usize;
        let bound = self.key_bound.unwrap_or_else(|| (total as u64 / 4).max(1));
        match self.dist {
            KeyDist::Uniform => uniform_relation(total, bound, self.seed),
            KeyDist::Zipf(theta) => zipfian_relation(total, bound, theta, self.seed),
        }
    }

    /// Everything that determines the source relation (and therefore every
    /// stage's functional output), independent of the evaluated system —
    /// the memoization key shared across a sweep.
    pub fn source_key(&self) -> SourceKey {
        let theta = match self.dist {
            KeyDist::Uniform => None,
            KeyDist::Zipf(t) => Some(t.to_bits()),
        };
        (self.tiny, self.tuples_per_vault, self.seed, theta, self.key_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mondrian_ops::spark::SparkOp;

    #[test]
    fn from_spark_ops_uses_default_lowerings() {
        let p =
            Pipeline::from_spark_ops(&[SparkOp::Filter, SparkOp::ReduceByKey, SparkOp::SortByKey])
                .unwrap();
        assert_eq!(p.stages().len(), 3);
        assert!(p.validate().is_ok());
        assert!(p.stages().iter().all(|s| s.inputs == vec![StageInput::Prev]));
        assert!(Pipeline::from_spark_ops(&[SparkOp::Union]).is_err());
        // FlatMap chains standalone now; Cogroup still needs explicit edges.
        assert!(Pipeline::from_spark_ops(&[SparkOp::FlatMap, SparkOp::CountByKey]).is_ok());
        assert!(Pipeline::from_spark_ops(&[SparkOp::Cogroup]).is_err());
    }

    #[test]
    fn validation_enforces_operator_arity() {
        use crate::stage::Stage;
        // A union with one edge violates min_inputs = 2.
        let one_edge = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::Union),
        ]);
        assert!(one_edge.validate().unwrap_err().contains("at least 2"));
        // A cogroup with three edges violates max_inputs = 2.
        let three_edges = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::with_inputs(
                StageSpec::Cogroup,
                vec![StageInput::Source, StageInput::Stage(0), StageInput::Prev],
            ),
        ]);
        assert!(three_edges.validate().unwrap_err().contains("at most 2"));
        // A scan stage with two edges is rejected too.
        let scan_two = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::with_inputs(StageSpec::SortByKey, vec![StageInput::Prev, StageInput::Source]),
        ]);
        assert!(scan_two.validate().is_err());
        // Properly wired union + cogroup pass.
        let ok = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::with_input(StageSpec::Filter { modulus: 3, remainder: 1 }, StageInput::Source),
            Stage::with_inputs(StageSpec::Union, vec![StageInput::Stage(0), StageInput::Stage(1)]),
            Stage::with_inputs(
                StageSpec::Cogroup,
                vec![StageInput::Stage(0), StageInput::Stage(1)],
            ),
        ]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(Pipeline::new(vec![]).validate().is_err());
        let forward_ref = Pipeline::new(vec![StageSpec::Join { build: BuildSide::Stage(0) }]);
        assert!(forward_ref.validate().is_err(), "join cannot reference itself");
        let forward_input = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::CountByKey),
            Stage::with_input(StageSpec::SortByKey, StageInput::Stage(1)),
        ]);
        assert!(forward_input.validate().is_err(), "input cannot reference itself or later");
        let ok = Pipeline::new(vec![
            StageSpec::CountByKey,
            StageSpec::Join { build: BuildSide::Stage(0) },
        ]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn empty_producer_edges_fall_back_to_materialized() {
        // Filter{2,0} keeps odd payloads, Filter{2,1} keeps even ones:
        // their composition is empty, so the fusable edge into the
        // group-by has an empty producer output. The schedule must skip
        // the fusion (no partition round charged for zero tuples)
        // instead of streaming a single empty chunk.
        let pipeline = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 2, remainder: 0 }),
            Stage::chained(StageSpec::Filter { modulus: 2, remainder: 1 }),
            Stage::chained(StageSpec::GroupByKey),
        ]);
        let mut cfg = PipelineConfig::tiny(SystemKind::Mondrian);
        cfg.concurrency = Concurrency::Serial;
        let serial = pipeline.run(&cfg);
        assert!(serial.verified());
        assert!(serial.output.is_empty(), "the filters cancel out");
        for mode in [Concurrency::Stream, Concurrency::Auto] {
            cfg.concurrency = mode;
            let report = pipeline.run(&cfg);
            assert!(report.verified(), "{mode:?} run failed");
            assert_eq!(report.output, serial.output);
            let edge = report
                .schedule
                .fused
                .iter()
                .find(|f| f.consumer == 2)
                .expect("the group-by edge is fusable");
            assert!(!edge.streamed, "an empty stream must not charge");
            assert_eq!(edge.chunks, 0, "no chunks were formed");
            assert_eq!(edge.streamed_ps, edge.unfused_ps, "materialized slot kept");
            assert!(report.makespan_ps() <= serial.makespan_ps());
        }
    }

    #[test]
    fn runs_without_chunk_accounting_fall_back_not_panic() {
        // An engine path that records no per-chunk rounds yields `None`
        // from `stream_rounds`, which the scheduler treats as a per-pair
        // fallback to the materialized slot (it used to panic).
        let cfg = PipelineConfig::tiny(SystemKind::Mondrian);
        let stage = Stage::chained(StageSpec::GroupByKey);
        let source: Rel = Arc::from(cfg.source_relation());
        let materialized =
            run_stage_engine(&cfg, cfg.system_config(), &stage, vec![source.clone()], None, None);
        assert!(
            stream_rounds(&materialized).is_none(),
            "a run without stream info has no rounds to overlap"
        );
        let chunks = chunk_stream(&source, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), source.len());
        let streamed =
            run_stage_engine(&cfg, cfg.system_config(), &stage, vec![source], None, Some(chunks));
        let (spans, rest) = stream_rounds(&streamed).expect("streamed run records rounds");
        assert_eq!(spans.len(), 4);
        assert_eq!(rest + spans.iter().sum::<Time>(), streamed.report.runtime_ps);
    }

    #[test]
    fn chunk_stream_respects_requested_counts() {
        let rel: Rel =
            Arc::from(PipelineConfig::tiny(SystemKind::Mondrian).source_relation()[..10].to_vec());
        assert_eq!(chunk_stream(&rel, 4).len(), 4);
        assert_eq!(chunk_stream(&rel, 1).len(), 1);
        assert_eq!(chunk_stream(&rel, 0).len(), 1, "zero clamps to one chunk");
        assert_eq!(chunk_stream(&rel, 100).len(), 10, "never more chunks than tuples");
    }

    #[test]
    fn auto_mode_records_a_plan_and_never_loses() {
        let pipeline = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::GroupByKey),
            Stage::with_input(StageSpec::Map { key_mul: 1, key_add: 3 }, StageInput::Source),
            Stage::chained(StageSpec::SortByKey),
            Stage::with_input(StageSpec::Join { build: BuildSide::Stage(3) }, StageInput::Stage(1)),
        ]);
        for system in [SystemKind::Mondrian, SystemKind::Cpu] {
            let mut cfg = PipelineConfig::tiny(system);
            cfg.concurrency = Concurrency::Serial;
            let serial = pipeline.run(&cfg);
            cfg.concurrency = Concurrency::Branch;
            let branch = pipeline.run(&cfg);
            cfg.concurrency = Concurrency::Stream;
            let stream = pipeline.run(&cfg);
            cfg.concurrency = Concurrency::Auto;
            let auto = pipeline.run(&cfg);
            assert!(auto.verified(), "auto run failed on {system}");
            assert_eq!(auto.output, serial.output, "auto must stay byte-identical to serial");
            let planned = auto.planned.as_ref().expect("auto records its plan");
            assert_eq!(planned.stage_predicted_ps.len(), pipeline.stages().len());
            assert!(planned.predicted_makespan_ps > 0);
            let best = serial.makespan_ps().min(branch.makespan_ps()).min(stream.makespan_ps());
            assert!(
                auto.makespan_ps() <= best,
                "auto lost on {system}: {} > {} ps",
                auto.makespan_ps(),
                best
            );
            assert!(serial.planned.is_none() && stream.planned.is_none());
        }
    }

    #[test]
    fn source_relation_is_deterministic() {
        let cfg = PipelineConfig::tiny(SystemKind::Mondrian);
        assert_eq!(cfg.source_relation(), cfg.source_relation());
        assert_eq!(cfg.source_relation().len(), 256 * 4);
    }

    #[test]
    fn source_key_distinguishes_sources() {
        let a = PipelineConfig::tiny(SystemKind::Mondrian);
        let mut b = PipelineConfig::tiny(SystemKind::Cpu);
        assert_eq!(a.source_key(), b.source_key(), "system does not change the source");
        b.seed += 1;
        assert_ne!(a.source_key(), b.source_key());
    }
}
