//! The pipeline executor: lowers a stage DAG onto the simulated engine.
//!
//! Two schedules are supported ([`Concurrency`]):
//!
//! * **Serial** — one stage at a time over the whole machine, in stage
//!   order. This is the reference executor.
//! * **Branch** — the scheduler decomposes the plan into branch waves
//!   ([`crate::schedule::Dag`]); the branches of one wave lease disjoint
//!   vault partitions ([`PartitionSpec`]) of the same machine and execute
//!   concurrently, joining at a barrier. Every partitioned stage's output
//!   is verified byte-identical to the serial reference run, and a wave
//!   only charges the concurrent makespan when it beats running its
//!   stages back to back — the branch schedule is never reported slower
//!   than the serial one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mondrian_core::{ExperimentBuilder, KeyDist, PartitionSpec, Report, SystemConfig, SystemKind};
use mondrian_noc::{MeshStats, SerDesStats};
use mondrian_sim::Time;
use mondrian_workloads::{uniform_relation, zipfian_relation, Tuple};

use crate::report::{
    relation_digest, BranchSchedule, PipelineReport, ScheduleReport, StageOutcome, WaveReport,
};
use crate::schedule::{Concurrency, Dag};
use crate::stage::{BuildSide, Stage, StageInput, StageSpec};

/// A shared stage relation: stage edges hand these around by refcount
/// bump instead of deep-cloning tuple vectors.
type Rel = Arc<[Tuple]>;

/// A multi-stage analytic query: a DAG of Table 1 transformations, each
/// lowered onto one of the four basic operators. Stages name their input
/// edge explicitly ([`StageInput`]) and joins may reference any earlier
/// stage as their build side, so plans with independent branches — e.g. a
/// join over two separate scan→group-by chains — are first class.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Builds a pure chain: every stage consumes its predecessor's output.
    pub fn new(specs: Vec<StageSpec>) -> Self {
        Self { stages: specs.into_iter().map(Stage::chained).collect() }
    }

    /// Builds a pipeline from explicit stages (specification + input edge).
    pub fn from_stages(stages: Vec<Stage>) -> Self {
        Self { stages }
    }

    /// Builds a pipeline from bare Spark transformations using each one's
    /// default lowering parameters.
    ///
    /// # Errors
    ///
    /// Returns the offending transformation's name if it has no standalone
    /// lowering (`Union`, `Cogroup`, `FlatMap`, `Reduce`).
    pub fn from_spark_ops(ops: &[mondrian_ops::spark::SparkOp]) -> Result<Self, String> {
        let specs = ops
            .iter()
            .map(|&op| {
                StageSpec::default_for(op)
                    .ok_or_else(|| format!("{op:?} has no standalone lowering"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(specs))
    }

    /// The stage list.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The scheduled shape of the plan: dependencies, branches and waves.
    pub fn dag(&self) -> Dag {
        Dag::build(&self.stages)
    }

    /// Validates the plan shape.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: an empty
    /// plan, an input or join build side referencing a non-earlier stage,
    /// or a stage whose input-edge count violates its operator's arity
    /// (read from the operator registry, not a `match`).
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("pipeline has no stages".into());
        }
        for (i, stage) in self.stages.iter().enumerate() {
            let profile = mondrian_ops::operator(stage.basic_operator()).profile();
            let edges = stage.inputs.len();
            if edges < profile.min_inputs {
                return Err(format!(
                    "stage {i} ({}) needs at least {} input edges, got {edges}",
                    stage.name(),
                    profile.min_inputs,
                ));
            }
            if edges > profile.max_inputs {
                return Err(format!(
                    "stage {i} ({}) takes at most {} input edges, got {edges}",
                    stage.name(),
                    profile.max_inputs,
                ));
            }
            for &input in &stage.inputs {
                if let StageInput::Stage(j) = input {
                    if j >= i {
                        return Err(format!(
                            "stage {i} reads stage {j}, which is not an earlier stage"
                        ));
                    }
                }
            }
            if let StageSpec::Join { build: BuildSide::Stage(j) } = stage.spec {
                if j >= i {
                    return Err(format!(
                        "stage {i} (join) references stage {j}, which is not an earlier stage"
                    ));
                }
            }
        }
        Ok(())
    }

    /// A fingerprint of the plan, namespacing cache entries per pipeline.
    fn plan_key(&self) -> u64 {
        crate::report::fnv1a(format!("{:?}", self.stages).bytes())
    }

    /// Runs the pipeline under `cfg`, honoring `cfg.concurrency`.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid (see [`Pipeline::validate`]) or the
    /// underlying experiment hits an inconsistent configuration.
    pub fn run(&self, cfg: &PipelineConfig) -> PipelineReport {
        self.run_cached(cfg, &ExecCache::default())
    }

    /// Like [`Pipeline::run`], but reuses `cache` across runs: pure
    /// per-stage reference outputs are memoized by (plan, source, stage
    /// prefix), so sweeping the same pipeline over many systems stops
    /// recomputing identical prefix semantics.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid (see [`Pipeline::validate`]).
    pub fn run_cached(&self, cfg: &PipelineConfig, cache: &ExecCache) -> PipelineReport {
        self.validate().expect("invalid pipeline");
        let dag = self.dag();
        let source: Rel = cfg.source_relation().into();
        let plan = self.plan_key();

        // Serial reference pass: every stage on the whole machine, in
        // stage order. The branch schedule is verified against (and its
        // inputs resolved from) these outputs. With `threads > 1` the
        // pure reference executor for a stage runs concurrently with the
        // stage's engine simulation — they consume the same inputs and
        // only meet at the final comparison.
        let mut outputs: Vec<Rel> = Vec::new();
        let mut serial: Vec<StageRun> = Vec::new();
        for (i, stage) in self.stages.iter().enumerate() {
            let inputs = resolve_inputs(stage, i, &source, &outputs);
            let build = resolve_build(&stage.spec, &outputs);
            let run = if cfg.threads > 1 {
                std::thread::scope(|scope| {
                    let engine = scope.spawn(|| {
                        run_stage_engine(
                            cfg,
                            cfg.system_config(),
                            stage,
                            inputs.clone(),
                            build.clone(),
                        )
                    });
                    let expected =
                        cache.reference_output(plan, cfg, i, stage, &inputs, build.as_deref());
                    let mut run = engine.join().expect("engine thread panicked");
                    run.reference_ok = run.projected[..] == expected[..];
                    run
                })
            } else {
                let expected =
                    cache.reference_output(plan, cfg, i, stage, &inputs, build.as_deref());
                let mut run = run_stage_engine(cfg, cfg.system_config(), stage, inputs, build);
                run.reference_ok = run.projected[..] == expected[..];
                run
            };
            outputs.push(run.projected.clone());
            serial.push(run);
        }

        match cfg.concurrency {
            Concurrency::Serial => self.assemble_serial(cfg, &dag, source.len(), serial, outputs),
            Concurrency::Branch => {
                self.run_branches(cfg, &dag, source.len(), &source, serial, outputs)
            }
        }
    }

    /// Assembles the report of a serial run: every wave charges the sum of
    /// its stage runtimes.
    fn assemble_serial(
        &self,
        cfg: &PipelineConfig,
        dag: &Dag,
        source_rows: usize,
        serial: Vec<StageRun>,
        outputs: Vec<Rel>,
    ) -> PipelineReport {
        let total_vaults = cfg.system_config().total_vaults();
        let mut waves = Vec::new();
        let mut makespan: Time = 0;
        for (w, wave_branches) in dag.waves.iter().enumerate() {
            let wave = serial_wave(w, wave_branches, dag, &serial, total_vaults);
            makespan += wave.runtime_ps;
            waves.push(wave);
        }
        let stages = self
            .stages
            .iter()
            .zip(serial)
            .enumerate()
            .map(|(i, (stage, run))| {
                let serial_runtime = run.report.runtime_ps;
                stage_outcome(
                    stage,
                    run,
                    dag.wave_of(i),
                    dag.branch_of[i],
                    false,
                    serial_runtime,
                    true,
                )
            })
            .collect();
        PipelineReport {
            system: cfg.system,
            source_rows,
            stages,
            schedule: ScheduleReport { mode: Concurrency::Serial, waves, makespan_ps: makespan },
            output: outputs.into_iter().next_back().expect("validated non-empty").to_vec(),
        }
    }

    /// The branch scheduler: waves with two or more ready branches lease
    /// disjoint vault partitions and execute concurrently; each
    /// partitioned stage is verified byte-identical to the serial pass,
    /// and a wave falls back to the serial schedule when concurrency does
    /// not pay.
    #[allow(clippy::too_many_lines)]
    fn run_branches(
        &self,
        cfg: &PipelineConfig,
        dag: &Dag,
        source_rows: usize,
        source: &Rel,
        serial: Vec<StageRun>,
        outputs: Vec<Rel>,
    ) -> PipelineReport {
        let base = cfg.system_config();
        let total_vaults = base.total_vaults();
        let n = self.stages.len();
        let mut chosen: Vec<Option<StageRun>> = (0..n).map(|_| None).collect();
        let mut matches = vec![true; n];
        let mut waves = Vec::new();
        let mut makespan: Time = 0;

        for (w, wave_branches) in dag.waves.iter().enumerate() {
            let serial_sum: Time = wave_branches
                .iter()
                .flat_map(|&b| &dag.branches[b])
                .map(|&i| serial[i].report.runtime_ps)
                .sum();
            let leases = if wave_branches.len() >= 2 {
                PartitionSpec::split(total_vaults, wave_branches.len() as u32)
            } else {
                None
            };
            let Some(leases) = leases else {
                // Singleton wave, or more tenants than vaults: the serial
                // schedule is the only schedule.
                let wave = serial_wave(w, wave_branches, dag, &serial, total_vaults);
                makespan += wave.runtime_ps;
                waves.push(wave);
                continue;
            };

            // Execute every branch of the wave on its lease. Inputs come
            // from the verified serial outputs, so cross-branch edges from
            // earlier waves resolve identically in both schedules. With
            // `threads > 1` the branches run on real OS threads — the
            // simulation of each branch is self-contained and
            // deterministic, so the merged result is byte-identical to
            // the in-order execution regardless of thread scheduling.
            let run_branch = |slot: usize, b: usize, sim_threads: usize| -> Vec<StageRun> {
                dag.branches[b]
                    .iter()
                    .map(|&i| {
                        let stage = &self.stages[i];
                        let inputs = resolve_inputs(stage, i, source, &outputs);
                        let build = resolve_build(&stage.spec, &outputs);
                        let mut sys = base.restrict(leases[slot]);
                        sys.sim_threads = sim_threads;
                        run_stage_engine(cfg, sys, stage, inputs, build)
                    })
                    .collect()
            };
            let branch_runs: Vec<Vec<StageRun>> = if cfg.threads > 1 {
                // Branch-level threads spend the whole per-run budget:
                // their machines drain serially (sim_threads = 1) and at
                // most `cfg.threads` branches run at once, so the run's
                // OS-thread total is bounded by `cfg.threads` instead of
                // multiplying wave width by drain threads.
                let mut runs: Vec<Option<Vec<StageRun>>> =
                    (0..wave_branches.len()).map(|_| None).collect();
                let slots: Vec<usize> = (0..wave_branches.len()).collect();
                for chunk in slots.chunks(cfg.threads) {
                    let chunk_runs: Vec<Vec<StageRun>> = std::thread::scope(|scope| {
                        let handles: Vec<_> = chunk
                            .iter()
                            .map(|&slot| {
                                let run_branch = &run_branch;
                                scope.spawn(move || run_branch(slot, wave_branches[slot], 1))
                            })
                            .collect();
                        // Joining in slot order keeps the merge deterministic.
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("branch thread panicked"))
                            .collect()
                    });
                    for (&slot, r) in chunk.iter().zip(chunk_runs) {
                        runs[slot] = Some(r);
                    }
                }
                runs.into_iter().map(|r| r.expect("every slot executed")).collect()
            } else {
                (0..wave_branches.len())
                    .map(|slot| run_branch(slot, wave_branches[slot], 1))
                    .collect()
            };
            let mut branch_runs = branch_runs;
            for (slot, &b) in wave_branches.iter().enumerate() {
                for (&i, run) in dag.branches[b].iter().zip(&branch_runs[slot]) {
                    matches[i] = run.projected[..] == outputs[i][..];
                }
            }
            let branch_times: Vec<Time> = branch_runs
                .iter()
                .map(|runs| runs.iter().map(|r| r.report.runtime_ps).sum())
                .collect();
            let concurrent_time = branch_times.iter().copied().max().unwrap_or(0);
            let concurrent = concurrent_time < serial_sum;

            // Wave report: per-branch mesh traffic stays attributed to the
            // branch's partition; SerDes traffic merges into one globally
            // charged total.
            let mut serdes = SerDesStats::default();
            let mut branches = Vec::with_capacity(wave_branches.len());
            for (slot, &b) in wave_branches.iter().enumerate() {
                let runs: &[StageRun] = if concurrent {
                    &branch_runs[slot]
                } else {
                    // Fallback: report the serial execution's accounting.
                    &[]
                };
                let mut mesh = MeshStats::default();
                let mut runtime: Time = 0;
                if concurrent {
                    for r in runs {
                        mesh.merge(&r.report.mesh_totals);
                        serdes.merge(&r.report.serdes_totals);
                        runtime += r.report.runtime_ps;
                    }
                } else {
                    for &i in &dag.branches[b] {
                        mesh.merge(&serial[i].report.mesh_totals);
                        serdes.merge(&serial[i].report.serdes_totals);
                        runtime += serial[i].report.runtime_ps;
                    }
                }
                let (first_vault, vaults) = if concurrent {
                    (leases[slot].first_vault, leases[slot].vaults)
                } else {
                    (0, total_vaults)
                };
                branches.push(BranchSchedule {
                    branch: b,
                    stages: dag.branches[b].clone(),
                    first_vault,
                    vaults,
                    runtime_ps: runtime,
                    critical: false,
                    mesh,
                });
            }
            mark_critical(&mut branches);
            let charged = if concurrent { concurrent_time } else { serial_sum };
            makespan += charged;
            waves.push(WaveReport {
                wave: w,
                concurrent,
                runtime_ps: charged,
                serial_runtime_ps: serial_sum,
                branches,
                serdes,
            });

            if concurrent {
                for (slot, &b) in wave_branches.iter().enumerate() {
                    let runs = std::mem::take(&mut branch_runs[slot]);
                    for (&i, run) in dag.branches[b].iter().zip(runs) {
                        chosen[i] = Some(run);
                    }
                }
            }
        }

        // Assemble per-stage outcomes from whichever schedule was charged.
        let mut stages = Vec::with_capacity(n);
        for (i, (stage, run)) in self.stages.iter().zip(serial).enumerate() {
            let serial_runtime = run.report.runtime_ps;
            let serial_reference_ok = run.reference_ok;
            let (run, concurrent) = match chosen[i].take() {
                Some(mut partition_run) => {
                    // The partition run was checked against the serial
                    // output, not the pure reference directly; its
                    // reference verdict follows transitively (identical to
                    // a serial output that itself matched the reference).
                    partition_run.reference_ok = matches[i] && serial_reference_ok;
                    (partition_run, true)
                }
                None => (run, false),
            };
            stages.push(stage_outcome(
                stage,
                run,
                dag.wave_of(i),
                dag.branch_of[i],
                concurrent,
                serial_runtime,
                matches[i],
            ));
        }
        PipelineReport {
            system: cfg.system,
            source_rows,
            stages,
            schedule: ScheduleReport { mode: Concurrency::Branch, waves, makespan_ps: makespan },
            output: outputs.into_iter().next_back().expect("validated non-empty").to_vec(),
        }
    }
}

/// One executed stage (on the whole machine or on a lease).
struct StageRun {
    input_rows: usize,
    report: Report,
    projected: Rel,
    reference_ok: bool,
}

/// Runs one stage's engine simulation on `sys_cfg` and projects its
/// output. Multi-input stages hand every resolved edge relation to the
/// builder, in edge order. The reference verdict is filled in by the
/// caller (serial runs compare against the pure reference executor,
/// partition runs against the serial outputs), so the simulation can
/// overlap with whichever check applies.
fn run_stage_engine(
    cfg: &PipelineConfig,
    sys_cfg: SystemConfig,
    stage: &Stage,
    inputs: Vec<Rel>,
    build: Option<Rel>,
) -> StageRun {
    let input_rows = inputs.iter().map(|r| r.len()).sum();
    let mut edges = inputs.into_iter();
    let mut builder = ExperimentBuilder::new(stage.spec.basic_operator())
        .config(sys_cfg)
        .input(edges.next().expect("validated: every stage has an input edge"));
    for rel in edges {
        builder = builder.add_input(rel);
    }
    if let StageSpec::FlatMap { fanout } = stage.spec {
        builder = builder.fanout(fanout);
    }
    if let Some(pred) = stage.spec.scan_predicate() {
        builder = builder.scan_predicate(pred);
    }
    if let Some(r) = build {
        builder = builder.join_build(r);
    }
    if let Some(f) = cfg.underprovision {
        builder = builder.underprovision_permutable(f);
    }
    let report = builder.run();
    let projected: Rel = stage.spec.project_output(&report.output).into();
    StageRun { input_rows, report, projected, reference_ok: false }
}

fn stage_outcome(
    stage: &Stage,
    run: StageRun,
    wave: usize,
    branch: usize,
    concurrent: bool,
    serial_runtime_ps: Time,
    matches_serial: bool,
) -> StageOutcome {
    StageOutcome {
        spec: stage.spec,
        inputs: stage.inputs.clone(),
        wave,
        branch,
        concurrent,
        serial_runtime_ps,
        matches_serial,
        output_digest: relation_digest(&run.projected),
        input_rows: run.input_rows,
        output_rows: run.projected.len(),
        reference_ok: run.reference_ok,
        report: run.report,
    }
}

/// A wave charged under the serial schedule (singleton waves, fallbacks,
/// and every wave of a serial run).
fn serial_wave(
    w: usize,
    wave_branches: &[usize],
    dag: &Dag,
    serial: &[StageRun],
    total_vaults: u32,
) -> WaveReport {
    let mut serdes = SerDesStats::default();
    let mut branches = Vec::with_capacity(wave_branches.len());
    let mut sum: Time = 0;
    for &b in wave_branches {
        let mut mesh = MeshStats::default();
        let mut runtime: Time = 0;
        for &i in &dag.branches[b] {
            mesh.merge(&serial[i].report.mesh_totals);
            serdes.merge(&serial[i].report.serdes_totals);
            runtime += serial[i].report.runtime_ps;
        }
        sum += runtime;
        branches.push(BranchSchedule {
            branch: b,
            stages: dag.branches[b].clone(),
            first_vault: 0,
            vaults: total_vaults,
            runtime_ps: runtime,
            critical: false,
            mesh,
        });
    }
    mark_critical(&mut branches);
    WaveReport {
        wave: w,
        concurrent: false,
        runtime_ps: sum,
        serial_runtime_ps: sum,
        branches,
        serdes,
    }
}

fn mark_critical(branches: &mut [BranchSchedule]) {
    if let Some(max) = branches.iter().map(|b| b.runtime_ps).max() {
        if let Some(b) = branches.iter_mut().find(|b| b.runtime_ps == max) {
            b.critical = true;
        }
    }
}

fn resolve_input(input: StageInput, i: usize, source: &Rel, outputs: &[Rel]) -> Rel {
    match input {
        StageInput::Source => source.clone(),
        StageInput::Prev => {
            if i == 0 {
                source.clone()
            } else {
                outputs[i - 1].clone()
            }
        }
        StageInput::Stage(j) => outputs[j].clone(),
    }
}

/// Resolves every input edge of a stage, in edge order — the scheduler
/// feeds multi-input stages from multiple DAG edges with refcount bumps,
/// not copies.
fn resolve_inputs(stage: &Stage, i: usize, source: &Rel, outputs: &[Rel]) -> Vec<Rel> {
    stage.inputs.iter().map(|&input| resolve_input(input, i, source, outputs)).collect()
}

fn resolve_build(spec: &StageSpec, outputs: &[Rel]) -> Option<Rel> {
    match spec {
        StageSpec::Join { build: BuildSide::Stage(j) } => Some(outputs[*j].clone()),
        _ => None,
    }
}

/// Identity of a run's source relation: everything that determines the
/// generated tuples, independent of the evaluated system.
type SourceKey = (bool, usize, u64, Option<u64>, Option<u64>);

/// Cross-run cache of pure per-stage reference outputs, keyed by
/// `(plan, source identity, stage index, input-edge digests, build
/// digest)` — multi-input stages fold every edge's relation digest into
/// one key component.
/// Campaigns sweeping one plan over many systems share identical
/// stage-prefix semantics; the cache computes each prefix's reference
/// output once. The digests guard against poisoning: should a run's
/// engine output diverge from the reference chain, its downstream inputs
/// differ and miss the cache instead of overwriting another system's
/// expected values.
///
/// The cache is thread-safe — campaign workers running sweep points on
/// separate OS threads share one instance. Cached *values* are identical
/// whichever thread computes them (the reference executors are pure), so
/// sharing never changes results; only the hit/miss counters depend on
/// scheduling (two threads may both miss on the same prefix at once and
/// compute it redundantly rather than block one another).
#[derive(Debug, Default)]
pub struct ExecCache {
    #[allow(clippy::type_complexity)]
    reference: Mutex<HashMap<(u64, SourceKey, usize, u64, Option<u64>), Rel>>,
    reference_hits: AtomicU64,
    reference_misses: AtomicU64,
}

impl ExecCache {
    fn reference_output(
        &self,
        plan: u64,
        cfg: &PipelineConfig,
        i: usize,
        stage: &Stage,
        inputs: &[Rel],
        build: Option<&[Tuple]>,
    ) -> Rel {
        let inputs_digest =
            crate::report::fnv1a(inputs.iter().flat_map(|rel| relation_digest(rel).to_le_bytes()));
        let key = (plan, cfg.source_key(), i, inputs_digest, build.map(relation_digest));
        if let Some(v) = self.reference.lock().expect("cache poisoned").get(&key) {
            self.reference_hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        // Compute outside the lock: a long reference computation must not
        // serialize unrelated cache lookups from other workers.
        let input_refs: Vec<&[Tuple]> = inputs.iter().map(|rel| &rel[..]).collect();
        let v: Rel = stage.spec.reference_output(&input_refs, build, cfg.seed).into();
        self.reference_misses.fetch_add(1, Ordering::Relaxed);
        self.reference.lock().expect("cache poisoned").insert(key, v.clone());
        v
    }

    /// Reference outputs served from the cache.
    pub fn reference_hits(&self) -> u64 {
        self.reference_hits.load(Ordering::Relaxed)
    }

    /// Reference outputs computed and inserted.
    pub fn reference_misses(&self) -> u64 {
        self.reference_misses.load(Ordering::Relaxed)
    }
}

/// Workload-and-machine configuration of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The evaluated system.
    pub system: SystemKind,
    /// Minimal test topology (1 HMC × 4 vaults) instead of the paper's.
    pub tiny: bool,
    /// Source-relation tuples per vault.
    pub tuples_per_vault: usize,
    /// RNG seed for the source relation and derived dimensions.
    pub seed: u64,
    /// Source key distribution.
    pub dist: KeyDist,
    /// Source key upper bound; defaults to a quarter of the relation size
    /// (the paper's average group size of four, §6).
    pub key_bound: Option<u64>,
    /// Deliberately undersize permutable destination regions by this
    /// factor (< 1.0 exercises the §5.4 overflow/retry path on permutable
    /// systems).
    pub underprovision: Option<f64>,
    /// How to schedule the stages onto the machine.
    pub concurrency: Concurrency,
    /// OS threads the executor may use *within* this run: branch waves
    /// execute their leased branches on real threads, each stage's pure
    /// reference executor overlaps with its engine simulation, and the
    /// machine drains independent vault command queues in parallel.
    /// Purely an execution-speed knob — results are byte-identical for
    /// every value (1 = fully in-order execution).
    pub threads: usize,
}

impl PipelineConfig {
    /// The scaled paper topology on `system`.
    pub fn new(system: SystemKind) -> Self {
        Self {
            system,
            tiny: false,
            tuples_per_vault: 1024,
            seed: 0x6d6f6e64, // "mond"
            dist: KeyDist::Uniform,
            key_bound: None,
            underprovision: None,
            concurrency: Concurrency::Serial,
            threads: 1,
        }
    }

    /// The minimal test topology on `system`.
    pub fn tiny(system: SystemKind) -> Self {
        Self { tiny: true, tuples_per_vault: 256, ..Self::new(system) }
    }

    /// The machine configuration of this run.
    pub fn system_config(&self) -> SystemConfig {
        let mut cfg = if self.tiny {
            SystemConfig::tiny(self.system)
        } else {
            SystemConfig::scaled(self.system)
        };
        cfg.tuples_per_vault = self.tuples_per_vault;
        cfg.seed = self.seed;
        cfg.sim_threads = self.threads.max(1);
        cfg
    }

    /// Generates the pipeline's source relation.
    pub fn source_relation(&self) -> Vec<Tuple> {
        let cfg = self.system_config();
        let total = self.tuples_per_vault * cfg.total_vaults() as usize;
        let bound = self.key_bound.unwrap_or_else(|| (total as u64 / 4).max(1));
        match self.dist {
            KeyDist::Uniform => uniform_relation(total, bound, self.seed),
            KeyDist::Zipf(theta) => zipfian_relation(total, bound, theta, self.seed),
        }
    }

    /// Everything that determines the source relation (and therefore every
    /// stage's functional output), independent of the evaluated system —
    /// the memoization key shared across a sweep.
    pub fn source_key(&self) -> SourceKey {
        let theta = match self.dist {
            KeyDist::Uniform => None,
            KeyDist::Zipf(t) => Some(t.to_bits()),
        };
        (self.tiny, self.tuples_per_vault, self.seed, theta, self.key_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mondrian_ops::spark::SparkOp;

    #[test]
    fn from_spark_ops_uses_default_lowerings() {
        let p =
            Pipeline::from_spark_ops(&[SparkOp::Filter, SparkOp::ReduceByKey, SparkOp::SortByKey])
                .unwrap();
        assert_eq!(p.stages().len(), 3);
        assert!(p.validate().is_ok());
        assert!(p.stages().iter().all(|s| s.inputs == vec![StageInput::Prev]));
        assert!(Pipeline::from_spark_ops(&[SparkOp::Union]).is_err());
        // FlatMap chains standalone now; Cogroup still needs explicit edges.
        assert!(Pipeline::from_spark_ops(&[SparkOp::FlatMap, SparkOp::CountByKey]).is_ok());
        assert!(Pipeline::from_spark_ops(&[SparkOp::Cogroup]).is_err());
    }

    #[test]
    fn validation_enforces_operator_arity() {
        use crate::stage::Stage;
        // A union with one edge violates min_inputs = 2.
        let one_edge = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::Union),
        ]);
        assert!(one_edge.validate().unwrap_err().contains("at least 2"));
        // A cogroup with three edges violates max_inputs = 2.
        let three_edges = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::with_inputs(
                StageSpec::Cogroup,
                vec![StageInput::Source, StageInput::Stage(0), StageInput::Prev],
            ),
        ]);
        assert!(three_edges.validate().unwrap_err().contains("at most 2"));
        // A scan stage with two edges is rejected too.
        let scan_two = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::with_inputs(StageSpec::SortByKey, vec![StageInput::Prev, StageInput::Source]),
        ]);
        assert!(scan_two.validate().is_err());
        // Properly wired union + cogroup pass.
        let ok = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::with_input(StageSpec::Filter { modulus: 3, remainder: 1 }, StageInput::Source),
            Stage::with_inputs(StageSpec::Union, vec![StageInput::Stage(0), StageInput::Stage(1)]),
            Stage::with_inputs(
                StageSpec::Cogroup,
                vec![StageInput::Stage(0), StageInput::Stage(1)],
            ),
        ]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(Pipeline::new(vec![]).validate().is_err());
        let forward_ref = Pipeline::new(vec![StageSpec::Join { build: BuildSide::Stage(0) }]);
        assert!(forward_ref.validate().is_err(), "join cannot reference itself");
        let forward_input = Pipeline::from_stages(vec![
            Stage::chained(StageSpec::CountByKey),
            Stage::with_input(StageSpec::SortByKey, StageInput::Stage(1)),
        ]);
        assert!(forward_input.validate().is_err(), "input cannot reference itself or later");
        let ok = Pipeline::new(vec![
            StageSpec::CountByKey,
            StageSpec::Join { build: BuildSide::Stage(0) },
        ]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn source_relation_is_deterministic() {
        let cfg = PipelineConfig::tiny(SystemKind::Mondrian);
        assert_eq!(cfg.source_relation(), cfg.source_relation());
        assert_eq!(cfg.source_relation().len(), 256 * 4);
    }

    #[test]
    fn source_key_distinguishes_sources() {
        let a = PipelineConfig::tiny(SystemKind::Mondrian);
        let mut b = PipelineConfig::tiny(SystemKind::Cpu);
        assert_eq!(a.source_key(), b.source_key(), "system does not change the source");
        b.seed += 1;
        assert_ne!(a.source_key(), b.source_key());
    }
}
