//! The pipeline executor: lowers a stage chain onto the simulated engine,
//! threading each stage's actual output relation into the next stage.

use mondrian_core::{ExperimentBuilder, KeyDist, SystemConfig, SystemKind};
use mondrian_workloads::{uniform_relation, zipfian_relation, Tuple};

use crate::report::{PipelineReport, StageOutcome};
use crate::stage::{BuildSide, StageSpec};

/// A multi-stage analytic query: a chain of Table 1 transformations, each
/// lowered onto one of the four basic operators. Join stages may reference
/// the output of any earlier stage as their build side, making the plan a
/// DAG rather than a pure chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    stages: Vec<StageSpec>,
}

impl Pipeline {
    /// Builds a pipeline from explicit stage specifications.
    pub fn new(stages: Vec<StageSpec>) -> Self {
        Self { stages }
    }

    /// Builds a pipeline from bare Spark transformations using each one's
    /// default lowering parameters.
    ///
    /// # Errors
    ///
    /// Returns the offending transformation's name if it has no standalone
    /// lowering (`Union`, `Cogroup`, `FlatMap`, `Reduce`).
    pub fn from_spark_ops(ops: &[mondrian_ops::spark::SparkOp]) -> Result<Self, String> {
        let stages = ops
            .iter()
            .map(|&op| {
                StageSpec::default_for(op)
                    .ok_or_else(|| format!("{op:?} has no standalone lowering"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(stages))
    }

    /// The stage chain.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Validates the plan shape.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: an empty
    /// plan, or a join whose build side references itself or a later
    /// stage.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("pipeline has no stages".into());
        }
        for (i, spec) in self.stages.iter().enumerate() {
            if let StageSpec::Join { build: BuildSide::Stage(j) } = spec {
                if *j >= i {
                    return Err(format!(
                        "stage {i} (join) references stage {j}, which is not an earlier stage"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Runs the pipeline under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid (see [`Pipeline::validate`]) or the
    /// underlying experiment hits an inconsistent configuration.
    pub fn run(&self, cfg: &PipelineConfig) -> PipelineReport {
        self.validate().expect("invalid pipeline");
        let source = cfg.source_relation();
        let mut current = source.clone();
        // Projected output of every completed stage, for DAG build-side
        // references.
        let mut outputs: Vec<Vec<Tuple>> = Vec::new();
        let mut stages: Vec<StageOutcome> = Vec::new();
        for spec in &self.stages {
            let mut builder = ExperimentBuilder::new(spec.basic_operator())
                .config(cfg.system_config())
                .input(current.clone());
            if let Some(pred) = spec.scan_predicate() {
                builder = builder.scan_predicate(pred);
            }
            let build: Option<&Vec<Tuple>> = match spec {
                StageSpec::Join { build: BuildSide::Stage(j) } => Some(&outputs[*j]),
                _ => None,
            };
            if let Some(r) = build {
                builder = builder.join_build(r.clone());
            }
            let report = builder.run();
            let projected = spec.project_output(&report.output);
            let expected = spec.reference_output(&current, build.map(|v| &v[..]), cfg.seed);
            let reference_ok = projected == expected;
            stages.push(StageOutcome {
                spec: *spec,
                input_rows: current.len(),
                output_rows: projected.len(),
                reference_ok,
                report,
            });
            outputs.push(projected.clone());
            current = projected;
        }
        PipelineReport { system: cfg.system, source_rows: source.len(), stages, output: current }
    }
}

/// Workload-and-machine configuration of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The evaluated system.
    pub system: SystemKind,
    /// Minimal test topology (1 HMC × 4 vaults) instead of the paper's.
    pub tiny: bool,
    /// Source-relation tuples per vault.
    pub tuples_per_vault: usize,
    /// RNG seed for the source relation and derived dimensions.
    pub seed: u64,
    /// Source key distribution.
    pub dist: KeyDist,
    /// Source key upper bound; defaults to a quarter of the relation size
    /// (the paper's average group size of four, §6).
    pub key_bound: Option<u64>,
}

impl PipelineConfig {
    /// The scaled paper topology on `system`.
    pub fn new(system: SystemKind) -> Self {
        Self {
            system,
            tiny: false,
            tuples_per_vault: 1024,
            seed: 0x6d6f6e64, // "mond"
            dist: KeyDist::Uniform,
            key_bound: None,
        }
    }

    /// The minimal test topology on `system`.
    pub fn tiny(system: SystemKind) -> Self {
        Self { tiny: true, tuples_per_vault: 256, ..Self::new(system) }
    }

    /// The machine configuration of this run.
    pub fn system_config(&self) -> SystemConfig {
        let mut cfg = if self.tiny {
            SystemConfig::tiny(self.system)
        } else {
            SystemConfig::scaled(self.system)
        };
        cfg.tuples_per_vault = self.tuples_per_vault;
        cfg.seed = self.seed;
        cfg
    }

    /// Generates the pipeline's source relation.
    pub fn source_relation(&self) -> Vec<Tuple> {
        let cfg = self.system_config();
        let total = self.tuples_per_vault * cfg.total_vaults() as usize;
        let bound = self.key_bound.unwrap_or_else(|| (total as u64 / 4).max(1));
        match self.dist {
            KeyDist::Uniform => uniform_relation(total, bound, self.seed),
            KeyDist::Zipf(theta) => zipfian_relation(total, bound, theta, self.seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mondrian_ops::spark::SparkOp;

    #[test]
    fn from_spark_ops_uses_default_lowerings() {
        let p =
            Pipeline::from_spark_ops(&[SparkOp::Filter, SparkOp::ReduceByKey, SparkOp::SortByKey])
                .unwrap();
        assert_eq!(p.stages().len(), 3);
        assert!(p.validate().is_ok());
        assert!(Pipeline::from_spark_ops(&[SparkOp::Union]).is_err());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(Pipeline::new(vec![]).validate().is_err());
        let forward_ref = Pipeline::new(vec![StageSpec::Join { build: BuildSide::Stage(0) }]);
        assert!(forward_ref.validate().is_err(), "join cannot reference itself");
        let ok = Pipeline::new(vec![
            StageSpec::CountByKey,
            StageSpec::Join { build: BuildSide::Stage(0) },
        ]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn source_relation_is_deterministic() {
        let cfg = PipelineConfig::tiny(SystemKind::Mondrian);
        assert_eq!(cfg.source_relation(), cfg.source_relation());
        assert_eq!(cfg.source_relation().len(), 256 * 4);
    }
}
