//! Aggregated results of one pipeline run.

use mondrian_core::{Report, SystemKind};
use mondrian_noc::{MeshStats, SerDesStats};
use mondrian_ops::OperatorKind;
use mondrian_sim::Time;
use mondrian_workloads::Tuple;

use crate::schedule::Concurrency;
use crate::stage::{StageInput, StageSpec};

/// FNV-1a over a byte stream.
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a fingerprint of a tuple relation — the artifact's compact proof
/// that two schedules produced byte-identical stage outputs.
pub fn relation_digest(rel: &[Tuple]) -> u64 {
    let words =
        std::iter::once(rel.len() as u64).chain(rel.iter().flat_map(|t| [t.key, t.payload]));
    fnv1a(words.flat_map(u64::to_le_bytes))
}

/// One executed stage: its specification plus the engine's full report.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// The stage specification.
    pub spec: StageSpec,
    /// Where the stage's input relations came from, in edge order
    /// (single edge for 1-input stages; union 2+, cogroup exactly 2).
    pub inputs: Vec<StageInput>,
    /// The wave the scheduler placed the stage in.
    pub wave: usize,
    /// The branch the stage belongs to.
    pub branch: usize,
    /// Whether the charged execution ran on a leased vault partition
    /// concurrently with other branches (false for serial execution and
    /// serial fallbacks).
    pub concurrent: bool,
    /// Whether the charged execution consumed its primary input as a
    /// chunk stream overlapped with its producer's output phase
    /// (`Concurrency::Stream` only; false when the per-pair fallback
    /// kept the materialized schedule).
    pub streamed: bool,
    /// The serial reference executor's runtime for this stage.
    pub serial_runtime_ps: Time,
    /// Whether every execution of this stage — charged, or partitioned
    /// and then discarded by a wave's serial fallback — produced output
    /// byte-identical to the serial reference execution. Trivially true
    /// for serial runs and unpartitioned stages; false means the
    /// concurrent executor's equivalence proof failed, which fails
    /// verification even when the serial schedule ended up charged.
    pub matches_serial: bool,
    /// FNV-1a digest of the stage's projected output relation.
    pub output_digest: u64,
    /// Rows fed into the stage.
    pub input_rows: usize,
    /// Rows the stage produced (after projection).
    pub output_rows: usize,
    /// Whether the projected output matched the stage's pure reference
    /// semantics.
    pub reference_ok: bool,
    /// The engine's per-operator report (phases, runtime, energy, output).
    pub report: Report,
}

impl StageOutcome {
    /// The basic operator that simulated this stage.
    pub fn basic_operator(&self) -> OperatorKind {
        self.spec.basic_operator()
    }

    /// Whether the engine's internal verification, the pipeline's
    /// reference check, and (for scheduled runs) the serial-equivalence
    /// check all passed.
    pub fn verified(&self) -> bool {
        self.report.verified && self.reference_ok && self.matches_serial
    }
}

/// One branch of a wave: which stages it ran, on which lease, how long it
/// took, and its mesh traffic (attributed per partition).
#[derive(Debug, Clone)]
pub struct BranchSchedule {
    /// Branch id within the pipeline DAG.
    pub branch: usize,
    /// The branch's stages, in execution order.
    pub stages: Vec<usize>,
    /// First global vault of the branch's lease.
    pub first_vault: u32,
    /// Vaults leased to the branch.
    pub vaults: u32,
    /// The branch's runtime under the charged schedule.
    pub runtime_ps: Time,
    /// Whether this branch was the wave's critical path.
    pub critical: bool,
    /// Mesh traffic of the branch's stages, attributed to its partition.
    pub mesh: MeshStats,
}

/// One scheduled wave: mutually independent branches joined at a barrier.
#[derive(Debug, Clone)]
pub struct WaveReport {
    /// Wave index (topological level).
    pub wave: usize,
    /// Whether the wave charged the concurrent (partitioned) schedule;
    /// false for singleton waves and serial fallbacks.
    pub concurrent: bool,
    /// The charged wave time: max over branches when concurrent, the sum
    /// of stage runtimes otherwise.
    pub runtime_ps: Time,
    /// What the same wave costs under the serial reference schedule.
    pub serial_runtime_ps: Time,
    /// Per-branch schedules.
    pub branches: Vec<BranchSchedule>,
    /// SerDes traffic of the whole wave, merged across branches — the
    /// chip-to-chip links are shared by every tenant, so their traffic is
    /// charged globally rather than per partition.
    pub serdes: SerDesStats,
}

/// One producer→consumer edge the stream scheduler fused: the producer's
/// output relation chunks through a bounded channel into the consumer's
/// partition phase instead of materializing at a wave barrier.
#[derive(Debug, Clone)]
pub struct FusedEdge {
    /// Producer stage index.
    pub producer: usize,
    /// Consumer stage index.
    pub consumer: usize,
    /// Arrival chunks the producer's output streamed through.
    pub chunks: usize,
    /// Whether the streamed schedule was charged (false = the per-pair
    /// fallback kept the materialized schedule for this edge).
    pub streamed: bool,
    /// The consumer's slot duration under the streamed schedule (chunk
    /// rounds overlapped with the producer's output phase, then the
    /// remaining probe work).
    pub streamed_ps: Time,
    /// The consumer's duration under the materialized (branch) schedule.
    pub unfused_ps: Time,
}

/// One vault lease the planner proposed for a branch of a wave.
#[derive(Debug, Clone)]
pub struct PlannedLease {
    /// Branch id within the pipeline DAG.
    pub branch: usize,
    /// First global vault of the proposed lease.
    pub first_vault: u32,
    /// Vaults the planner would lease to the branch.
    pub vaults: u32,
}

/// The planner's lease proposal for one multi-branch wave.
#[derive(Debug, Clone)]
pub struct PlannedWaveReport {
    /// Wave index (topological level).
    pub wave: usize,
    /// Proposed leases, one per branch of the wave, in branch-slot order.
    pub leases: Vec<PlannedLease>,
}

/// The planner's chunk-count proposal for one fused edge.
#[derive(Debug, Clone)]
pub struct PlannedEdgeReport {
    /// Producer stage index.
    pub producer: usize,
    /// Consumer stage index.
    pub consumer: usize,
    /// Proposed arrival-chunk count (0 = skip fusing this edge).
    pub chunks: usize,
}

/// What the cost-model planner ([`crate::plan`]) predicted and decided
/// for an adaptive (`Concurrency::Auto`) run, recorded in the artifact so
/// `mondrian explain` can render predicted-vs-actual makespans and
/// `mondrian diff` can attribute wins to planner decisions.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Predicted whole-machine runtime per stage, in stage-index order.
    pub stage_predicted_ps: Vec<Time>,
    /// Predicted end-to-end makespan of the planned schedule.
    pub predicted_makespan_ps: Time,
    /// Whether the planned schedule beat the default stream schedule and
    /// was charged (false = the executor's candidate race kept the
    /// default, so `auto` still ties the best hand-tuned mode).
    pub planner_won: bool,
    /// Lease proposals for the multi-branch waves the planner re-split.
    pub waves: Vec<PlannedWaveReport>,
    /// Chunk-count proposals for the fused edges.
    pub edges: Vec<PlannedEdgeReport>,
}

/// The executed schedule of one pipeline run.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    /// The executor mode that produced this schedule.
    pub mode: Concurrency,
    /// The waves, in execution order.
    pub waves: Vec<WaveReport>,
    /// Producer→consumer edges considered for intra-stage pipelining
    /// (empty outside `Concurrency::Stream`).
    pub fused: Vec<FusedEdge>,
    /// End-to-end makespan: the sum of charged wave times.
    pub makespan_ps: Time,
}

impl ScheduleReport {
    /// Whether any wave charged a concurrent schedule.
    pub fn any_concurrent(&self) -> bool {
        self.waves.iter().any(|w| w.concurrent)
    }

    /// Whether any fused edge charged the streamed schedule.
    pub fn any_streamed(&self) -> bool {
        self.fused.iter().any(|f| f.streamed)
    }
}

/// Results of one whole-pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The evaluated system.
    pub system: SystemKind,
    /// Rows of the generated source relation.
    pub source_rows: usize,
    /// Per-stage outcomes, in stage-index order.
    pub stages: Vec<StageOutcome>,
    /// The executed schedule (waves, branches, makespan).
    pub schedule: ScheduleReport,
    /// The cost-model planner's predictions and decisions
    /// (`Concurrency::Auto` runs only).
    pub planned: Option<PlanReport>,
    /// The final output relation.
    pub output: Vec<Tuple>,
}

impl PipelineReport {
    /// Whether every stage verified (engine check, reference check, and
    /// serial-equivalence check).
    pub fn verified(&self) -> bool {
        self.stages.iter().all(StageOutcome::verified)
    }

    /// Total machine-busy time: the sum of stage runtimes, regardless of
    /// how the schedule overlapped them.
    pub fn runtime_ps(&self) -> Time {
        self.stages.iter().map(|s| s.report.runtime_ps).sum()
    }

    /// End-to-end makespan under the executed schedule. Equals
    /// [`PipelineReport::runtime_ps`] for serial runs; concurrent branch
    /// waves can make it strictly smaller.
    pub fn makespan_ps(&self) -> Time {
        self.schedule.makespan_ps
    }

    /// Instructions retired across all stages.
    pub fn instructions(&self) -> u64 {
        self.stages.iter().map(|s| s.report.instructions).sum()
    }

    /// Discrete engine events processed across all charged stage runs
    /// (vault ticks excluded — see `PhaseOutcome::events`).
    pub fn events(&self) -> u64 {
        self.stages.iter().flat_map(|s| &s.report.phases).map(|p| p.events).sum()
    }

    /// Total energy across all stages, in joules.
    pub fn energy_j(&self) -> f64 {
        self.stages.iter().map(|s| s.report.energy.total_j()).sum()
    }

    /// Renders the per-stage summary table shown by the CLI and examples.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} source rows, {} stages, {} schedule, {}\n",
            self.system,
            self.source_rows,
            self.stages.len(),
            self.schedule.mode.name(),
            if self.verified() { "verified" } else { "VERIFICATION FAILED" },
        ));
        out.push_str(&format!(
            "  {:<18} {:>8} {:>5} {:>10} {:>10} {:>12} {:>12}  {}\n",
            "stage", "operator", "wave", "rows in", "rows out", "runtime µs", "energy µJ", "ok"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<18} {:>8} {:>4}{} {:>10} {:>10} {:>12.3} {:>12.3}  {}\n",
                s.spec.name(),
                s.basic_operator().name(),
                s.wave,
                if s.streamed {
                    "~"
                } else if s.concurrent {
                    "*"
                } else {
                    " "
                },
                s.input_rows,
                s.output_rows,
                s.report.runtime_ps as f64 / 1e6,
                s.report.energy.total_j() * 1e6,
                if s.verified() { "yes" } else { "NO" },
            ));
        }
        out.push_str(&format!(
            "  {:<18} {:>8} {:>5} {:>10} {:>10} {:>12.3} {:>12.3}\n",
            "total",
            "",
            "",
            self.source_rows,
            self.output.len(),
            self.runtime_ps() as f64 / 1e6,
            self.energy_j() * 1e6,
        ));
        if self.schedule.any_concurrent() || self.schedule.any_streamed() {
            out.push_str(&format!(
                "  makespan {:>.3} µs ({} waves, * = ran on a leased partition, \
                 ~ = streamed from its producer)\n",
                self.makespan_ps() as f64 / 1e6,
                self.schedule.waves.len(),
            ));
        }
        out
    }

    /// Renders the per-wave branch table: which branches ran concurrently,
    /// on which vault leases, and which one was each wave's critical path.
    pub fn schedule_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "schedule ({}): makespan {:.3} µs vs {:.3} µs serial\n",
            self.schedule.mode.name(),
            self.makespan_ps() as f64 / 1e6,
            self.runtime_ps() as f64 / 1e6,
        ));
        for wave in &self.schedule.waves {
            out.push_str(&format!(
                "  wave {} ({}, {:.3} µs):\n",
                wave.wave,
                if wave.concurrent { "concurrent" } else { "serial" },
                wave.runtime_ps as f64 / 1e6,
            ));
            for b in &wave.branches {
                let stages: Vec<&str> =
                    b.stages.iter().map(|&i| self.stages[i].spec.name()).collect();
                out.push_str(&format!(
                    "    branch {}: vaults {}..{} {:>10.3} µs{}  [{}]\n",
                    b.branch,
                    b.first_vault,
                    b.first_vault + b.vaults,
                    b.runtime_ps as f64 / 1e6,
                    if b.critical { " <- critical" } else { "" },
                    stages.join(" -> "),
                ));
            }
        }
        for f in &self.schedule.fused {
            out.push_str(&format!(
                "  fused {} -> {} ({} -> {}): {} chunks, {:.3} µs streamed vs {:.3} µs \
                 materialized{}\n",
                f.producer,
                f.consumer,
                self.stages[f.producer].spec.name(),
                self.stages[f.consumer].spec.name(),
                f.chunks,
                f.streamed_ps as f64 / 1e6,
                f.unfused_ps as f64 / 1e6,
                if f.streamed { "" } else { " <- fallback" },
            ));
        }
        if let Some(plan) = &self.planned {
            out.push_str(&format!(
                "  planner: predicted {:.3} µs makespan, {}\n",
                plan.predicted_makespan_ps as f64 / 1e6,
                if plan.planner_won {
                    "planned schedule charged"
                } else {
                    "default schedule kept (never-worse fallback)"
                },
            ));
        }
        out
    }
}
