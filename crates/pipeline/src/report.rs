//! Aggregated results of one pipeline run.

use mondrian_core::{Report, SystemKind};
use mondrian_ops::OperatorKind;
use mondrian_sim::Time;

use crate::stage::StageSpec;

/// One executed stage: its specification plus the engine's full report.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// The stage specification.
    pub spec: StageSpec,
    /// Rows fed into the stage.
    pub input_rows: usize,
    /// Rows the stage produced (after projection).
    pub output_rows: usize,
    /// Whether the projected output matched the stage's pure reference
    /// semantics.
    pub reference_ok: bool,
    /// The engine's per-operator report (phases, runtime, energy, output).
    pub report: Report,
}

impl StageOutcome {
    /// The basic operator that simulated this stage.
    pub fn basic_operator(&self) -> OperatorKind {
        self.spec.basic_operator()
    }

    /// Whether both the engine's internal verification and the pipeline's
    /// reference check passed.
    pub fn verified(&self) -> bool {
        self.report.verified && self.reference_ok
    }
}

/// Results of one whole-pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The evaluated system.
    pub system: SystemKind,
    /// Rows of the generated source relation.
    pub source_rows: usize,
    /// Per-stage outcomes, in execution order.
    pub stages: Vec<StageOutcome>,
    /// The final output relation.
    pub output: Vec<mondrian_workloads::Tuple>,
}

impl PipelineReport {
    /// Whether every stage verified (engine check and reference check).
    pub fn verified(&self) -> bool {
        self.stages.iter().all(StageOutcome::verified)
    }

    /// End-to-end simulated runtime: the sum of stage runtimes (stages are
    /// dependent, so they execute back to back).
    pub fn runtime_ps(&self) -> Time {
        self.stages.iter().map(|s| s.report.runtime_ps).sum()
    }

    /// Instructions retired across all stages.
    pub fn instructions(&self) -> u64 {
        self.stages.iter().map(|s| s.report.instructions).sum()
    }

    /// Total energy across all stages, in joules.
    pub fn energy_j(&self) -> f64 {
        self.stages.iter().map(|s| s.report.energy.total_j()).sum()
    }

    /// Renders the per-stage summary table shown by the CLI and examples.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} source rows, {} stages, {}\n",
            self.system,
            self.source_rows,
            self.stages.len(),
            if self.verified() { "verified" } else { "VERIFICATION FAILED" },
        ));
        out.push_str(&format!(
            "  {:<18} {:>8} {:>10} {:>10} {:>12} {:>12}  {}\n",
            "stage", "operator", "rows in", "rows out", "runtime µs", "energy µJ", "ok"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<18} {:>8} {:>10} {:>10} {:>12.3} {:>12.3}  {}\n",
                s.spec.name(),
                s.basic_operator().name(),
                s.input_rows,
                s.output_rows,
                s.report.runtime_ps as f64 / 1e6,
                s.report.energy.total_j() * 1e6,
                if s.verified() { "yes" } else { "NO" },
            ));
        }
        out.push_str(&format!(
            "  {:<18} {:>8} {:>10} {:>10} {:>12.3} {:>12.3}\n",
            "total",
            "",
            self.source_rows,
            self.output.len(),
            self.runtime_ps() as f64 / 1e6,
            self.energy_j() * 1e6,
        ));
        out
    }
}
