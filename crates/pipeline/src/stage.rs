//! Declarative pipeline stages and their lowering onto the basic
//! operators (Table 1).
//!
//! A [`StageSpec`] is a Spark transformation plus the parameters the
//! functional semantics need. Each stage knows three things:
//!
//! 1. which [`SparkOp`] it is and therefore (via Table 1) which basic
//!    [`OperatorKind`] simulates it,
//! 2. how to configure the simulated operator (the scan predicate, the
//!    join build side, flat_map's fanout), and
//! 3. its **pure functional semantics** — used both to project the
//!    engine's captured [`StageOutput`] into the relation handed to the
//!    next stage, and to compute the reference output the projection is
//!    verified against.
//!
//! Stages carry an explicit list of **input edges** ([`StageInput`]):
//! single-input stages name one, `union` names two or more, `cogroup`
//! exactly two — the plumbing that makes plans true multi-input DAGs.

use mondrian_core::StageOutput;
use mondrian_ops::spark::SparkOp;
use mondrian_ops::{reference, Aggregates, OperatorKind, ScanPredicate};
use mondrian_workloads::Tuple;

pub use mondrian_ops::operator::derive_dimension;

/// Where a stage input relation comes from. Together with join build-side
/// references this makes plans true DAGs: a stage that reads `Source` or
/// an out-of-chain `Stage(j)` opens an independent branch that the
/// scheduler may run concurrently with other branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageInput {
    /// The previous stage's output (the source relation for stage 0) —
    /// the default chain edge.
    Prev,
    /// The pipeline's source relation.
    Source,
    /// The output of an earlier stage, by zero-based index.
    Stage(usize),
}

impl std::fmt::Display for StageInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageInput::Prev => f.write_str("prev"),
            StageInput::Source => f.write_str("source"),
            StageInput::Stage(j) => write!(f, "stage {j}"),
        }
    }
}

/// One stage of a pipeline plan: the declarative transformation plus the
/// edges naming where its input relations come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// The transformation.
    pub spec: StageSpec,
    /// The input edges, in operator order. Single-input stages carry one;
    /// `union` carries two or more, `cogroup` exactly two. For joins the
    /// (single) edge feeds the probe side.
    pub inputs: Vec<StageInput>,
}

impl Stage {
    /// A stage consuming the previous stage's output (the classic chain).
    pub fn chained(spec: StageSpec) -> Stage {
        Stage { spec, inputs: vec![StageInput::Prev] }
    }

    /// A single-input stage reading an explicit edge.
    pub fn with_input(spec: StageSpec, input: StageInput) -> Stage {
        Stage { spec, inputs: vec![input] }
    }

    /// A multi-input stage reading explicit edges, in order.
    pub fn with_inputs(spec: StageSpec, inputs: Vec<StageInput>) -> Stage {
        Stage { spec, inputs }
    }

    /// The stage's manifest identifier (delegates to the spec).
    pub fn name(&self) -> &'static str {
        self.spec.name()
    }

    /// The basic operator simulating this stage (delegates to the spec).
    pub fn basic_operator(&self) -> OperatorKind {
        self.spec.basic_operator()
    }
}

/// Where a join stage's build-side relation R comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSide {
    /// A primary-key dimension derived from the probe side's distinct keys
    /// (payloads are a seeded deterministic hash of the key).
    Dimension,
    /// The output relation of an earlier stage — a DAG edge, referenced by
    /// zero-based stage index.
    Stage(usize),
}

/// One declarative stage of an analytic pipeline.
///
/// Group-by-backed stages reduce each group's [`Aggregates`] to one
/// payload: `group_by_key` and `count_by_key` keep the group **count**,
/// `reduce_by_key` the wrapping **sum**, and `aggregate_by_key` the
/// **max** — so downstream stages see a well-defined scalar relation.
/// `cogroup` keeps **both** sides' group sizes:
/// `count_a · 2³² + count_b` (wrapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageSpec {
    /// `Filter`: keep tuples whose payload is not `remainder` mod
    /// `modulus` (lowers to Scan).
    Filter {
        /// The modulus (must be non-zero).
        modulus: u64,
        /// The dropped remainder class.
        remainder: u64,
    },
    /// `LookupKey`: keep tuples whose key equals `key` (lowers to Scan).
    LookupKey {
        /// The searched key.
        key: u64,
    },
    /// `Map`: re-key every tuple to `key * key_mul + key_add` (wrapping;
    /// lowers to Scan).
    Map {
        /// Key multiplier.
        key_mul: u64,
        /// Key addend.
        key_add: u64,
    },
    /// `MapValues`: transform every payload to `payload * mul + add`
    /// (wrapping; lowers to Scan).
    MapValues {
        /// Payload multiplier.
        mul: u64,
        /// Payload addend.
        add: u64,
    },
    /// `Union`: concatenate all input relations in edge order (lowers to
    /// the multi-input Union operator).
    Union,
    /// `FlatMap`: expand every tuple into `fanout` tuples — keys kept,
    /// payload `payload · fanout + j` wrapping (lowers to the 1→N
    /// FlatMap operator).
    FlatMap {
        /// Output tuples per input tuple (≥ 1).
        fanout: u64,
    },
    /// `Cogroup`: group both input relations by key and pair the groups;
    /// one tuple per key, payload = `count_a · 2³² + count_b` wrapping
    /// (lowers to the multi-input Cogroup operator).
    Cogroup,
    /// `GroupByKey`: one tuple per key, payload = group size (lowers to
    /// Group-by).
    GroupByKey,
    /// `ReduceByKey` with `+`: one tuple per key, payload = wrapping sum
    /// (lowers to Group-by).
    ReduceByKey,
    /// `CountByKey`: one tuple per key, payload = count (lowers to
    /// Group-by).
    CountByKey,
    /// `AggregateByKey`: one tuple per key, payload = max (lowers to
    /// Group-by).
    AggregateByKey,
    /// `SortByKey`: totally order the relation (lowers to Sort).
    SortByKey,
    /// `Join` against `build`: output one tuple per matched row, key kept,
    /// payload = `r_payload + s_payload` wrapping (lowers to Join).
    Join {
        /// The build-side relation source.
        build: BuildSide,
    },
}

impl StageSpec {
    /// The Spark transformation this stage encodes.
    pub fn spark_op(&self) -> SparkOp {
        match self {
            StageSpec::Filter { .. } => SparkOp::Filter,
            StageSpec::LookupKey { .. } => SparkOp::LookupKey,
            StageSpec::Map { .. } => SparkOp::Map,
            StageSpec::MapValues { .. } => SparkOp::MapValues,
            StageSpec::Union => SparkOp::Union,
            StageSpec::FlatMap { .. } => SparkOp::FlatMap,
            StageSpec::Cogroup => SparkOp::Cogroup,
            StageSpec::GroupByKey => SparkOp::GroupByKey,
            StageSpec::ReduceByKey => SparkOp::ReduceByKey,
            StageSpec::CountByKey => SparkOp::CountByKey,
            StageSpec::AggregateByKey => SparkOp::AggregateByKey,
            StageSpec::SortByKey => SparkOp::SortByKey,
            StageSpec::Join { .. } => SparkOp::Join,
        }
    }

    /// The basic operator simulating this stage (Table 1).
    pub fn basic_operator(&self) -> OperatorKind {
        self.spark_op().basic_operator()
    }

    /// The stage's manifest identifier.
    pub fn name(&self) -> &'static str {
        match self {
            StageSpec::Filter { .. } => "filter",
            StageSpec::LookupKey { .. } => "lookup_key",
            StageSpec::Map { .. } => "map",
            StageSpec::MapValues { .. } => "map_values",
            StageSpec::Union => "union",
            StageSpec::FlatMap { .. } => "flat_map",
            StageSpec::Cogroup => "cogroup",
            StageSpec::GroupByKey => "group_by_key",
            StageSpec::ReduceByKey => "reduce_by_key",
            StageSpec::CountByKey => "count_by_key",
            StageSpec::AggregateByKey => "aggregate_by_key",
            StageSpec::SortByKey => "sort_by_key",
            StageSpec::Join { .. } => "join",
        }
    }

    /// The default lowering of a Table 1 transformation, if this subsystem
    /// can run it as a chained single-input stage. `Union` and `Cogroup`
    /// return `None` — they need explicit multi-input edges
    /// ([`Stage::with_inputs`] or `input = [...]` in a manifest) — and so
    /// does `Reduce`, whose output is a scalar, not a relation.
    pub fn default_for(op: SparkOp) -> Option<StageSpec> {
        match op {
            SparkOp::Filter => Some(StageSpec::Filter { modulus: 10, remainder: 0 }),
            SparkOp::LookupKey => Some(StageSpec::LookupKey { key: 0 }),
            SparkOp::Map => Some(StageSpec::Map { key_mul: 1, key_add: 1 }),
            SparkOp::FlatMap => Some(StageSpec::FlatMap { fanout: 2 }),
            SparkOp::MapValues => Some(StageSpec::MapValues { mul: 3, add: 1 }),
            SparkOp::GroupByKey => Some(StageSpec::GroupByKey),
            SparkOp::ReduceByKey => Some(StageSpec::ReduceByKey),
            SparkOp::CountByKey => Some(StageSpec::CountByKey),
            SparkOp::AggregateByKey => Some(StageSpec::AggregateByKey),
            SparkOp::SortByKey => Some(StageSpec::SortByKey),
            SparkOp::Join => Some(StageSpec::Join { build: BuildSide::Dimension }),
            SparkOp::Union | SparkOp::Cogroup | SparkOp::Reduce => None,
        }
    }

    /// The predicate the simulated Scan evaluates for scan-backed stages.
    pub fn scan_predicate(&self) -> Option<ScanPredicate> {
        match *self {
            StageSpec::Filter { modulus, remainder } => {
                Some(ScanPredicate::PayloadModNot { modulus, remainder })
            }
            StageSpec::LookupKey { key } => Some(ScanPredicate::KeyEquals(key)),
            StageSpec::Map { .. } | StageSpec::MapValues { .. } => Some(ScanPredicate::All),
            _ => None,
        }
    }

    /// The per-tuple transformation scan-backed stages apply on top of the
    /// predicate (identity for all other stages).
    fn transform(&self, t: Tuple) -> Tuple {
        match *self {
            StageSpec::Map { key_mul, key_add } => {
                Tuple::new(t.key.wrapping_mul(key_mul).wrapping_add(key_add), t.payload)
            }
            StageSpec::MapValues { mul, add } => {
                Tuple::new(t.key, t.payload.wrapping_mul(mul).wrapping_add(add))
            }
            _ => t,
        }
    }

    /// Reduces one group's aggregates to this stage's output payload.
    fn project_group(&self, a: &Aggregates) -> u64 {
        match self {
            StageSpec::GroupByKey | StageSpec::CountByKey => a.count,
            StageSpec::ReduceByKey => a.sum,
            StageSpec::AggregateByKey => a.max,
            _ => unreachable!("not a group-by stage: {self:?}"),
        }
    }

    /// Reduces one key's paired cogroup aggregates to the stage's output
    /// payload: `count_a · 2³² + count_b` (wrapping) — both group sizes
    /// stay recoverable downstream.
    fn project_cogroup(a: &Aggregates, b: &Aggregates) -> u64 {
        a.count.wrapping_mul(1 << 32).wrapping_add(b.count)
    }

    /// Projects the engine's captured output into the tuple relation this
    /// stage hands to its successor. Dispatches on the output's shape —
    /// the engine guarantees each operator family captures its own
    /// variant, so no `OperatorKind` match is needed.
    pub fn project_output(&self, output: &StageOutput) -> Vec<Tuple> {
        match output {
            StageOutput::Tuples(v) => v.iter().map(|&t| self.transform(t)).collect(),
            StageOutput::Expanded { tuples, .. } => tuples.clone(),
            StageOutput::Groups(g) => {
                g.iter().map(|(&k, a)| Tuple::new(k, self.project_group(a))).collect()
            }
            StageOutput::CoGroups(g) => {
                g.iter().map(|(&k, (a, b))| Tuple::new(k, Self::project_cogroup(a, b))).collect()
            }
            StageOutput::Rows(rows) => {
                rows.iter().map(|&(k, rp, sp)| Tuple::new(k, rp.wrapping_add(sp))).collect()
            }
        }
    }

    /// Structural output-cardinality estimate for the planner's cost model
    /// ([`crate::plan`]) when no executed run is available (`mondrian
    /// explain` predicts a manifest before simulating it): per-edge input
    /// rows in, estimated output rows out. `key_bound` is the source
    /// relation's key-space bound — the cap on distinct keys the grouping
    /// family can emit. Estimates only; at execution time the planner uses
    /// the serial pass's *actual* cardinalities instead.
    pub fn estimate_output_rows(&self, inputs: &[usize], key_bound: u64) -> usize {
        let rows = inputs.first().copied().unwrap_or(0);
        let distinct = |n: usize| n.min(usize::try_from(key_bound.max(1)).unwrap_or(usize::MAX));
        match *self {
            // Filter keeps every payload class but one.
            StageSpec::Filter { modulus, .. } => {
                let m = usize::try_from(modulus.max(1)).unwrap_or(usize::MAX);
                rows - rows / m
            }
            // A searched-value scan keeps roughly one key's worth of rows.
            StageSpec::LookupKey { .. } => {
                rows / usize::try_from(key_bound.max(1)).unwrap_or(usize::MAX).max(1)
            }
            StageSpec::Map { .. } | StageSpec::MapValues { .. } | StageSpec::SortByKey => rows,
            StageSpec::Union => inputs.iter().sum(),
            StageSpec::FlatMap { fanout } => {
                rows.saturating_mul(usize::try_from(fanout.max(1)).unwrap_or(usize::MAX))
            }
            // Grouping emits one tuple per distinct key.
            StageSpec::Cogroup => distinct(inputs.iter().sum()),
            StageSpec::GroupByKey
            | StageSpec::ReduceByKey
            | StageSpec::CountByKey
            | StageSpec::AggregateByKey => distinct(rows),
            // A primary-key dimension matches each probe row about once.
            StageSpec::Join { .. } => rows,
        }
    }

    /// The stage's pure functional semantics: the expected output relation
    /// for `inputs` (and `build` for joins), computed entirely with the
    /// naive reference executors — no simulation machinery involved.
    /// Single-input stages read `inputs[0]`.
    pub fn reference_output(
        &self,
        inputs: &[&[Tuple]],
        build: Option<&[Tuple]>,
        seed: u64,
    ) -> Vec<Tuple> {
        let input: &[Tuple] = inputs.first().copied().unwrap_or(&[]);
        match *self {
            StageSpec::Filter { .. }
            | StageSpec::LookupKey { .. }
            | StageSpec::Map { .. }
            | StageSpec::MapValues { .. } => {
                let pred = self.scan_predicate().expect("scan stage has a predicate");
                reference::filtered(input, pred).into_iter().map(|t| self.transform(t)).collect()
            }
            StageSpec::Union => reference::unioned(inputs),
            StageSpec::FlatMap { fanout } => {
                reference::flat_mapped(input, ScanPredicate::All, fanout)
            }
            StageSpec::Cogroup => {
                assert_eq!(inputs.len(), 2, "cogroup stage takes exactly two input edges");
                reference::cogrouped(inputs[0], inputs[1])
                    .iter()
                    .map(|(&k, (a, b))| Tuple::new(k, Self::project_cogroup(a, b)))
                    .collect()
            }
            StageSpec::GroupByKey
            | StageSpec::ReduceByKey
            | StageSpec::CountByKey
            | StageSpec::AggregateByKey => reference::grouped(input)
                .iter()
                .map(|(&k, a)| Tuple::new(k, self.project_group(a)))
                .collect(),
            StageSpec::SortByKey => reference::sorted(input),
            StageSpec::Join { .. } => {
                let dimension;
                let r: &[Tuple] = match build {
                    Some(r) => r,
                    None => {
                        dimension = derive_dimension(input, seed);
                        &dimension
                    }
                };
                let mut by_key: std::collections::BTreeMap<u64, Vec<u64>> =
                    std::collections::BTreeMap::new();
                for t in r {
                    by_key.entry(t.key).or_default().push(t.payload);
                }
                let mut rows: Vec<mondrian_ops::reference::JoinRow> = Vec::new();
                for s in input {
                    if let Some(payloads) = by_key.get(&s.key) {
                        rows.extend(payloads.iter().map(|&rp| (s.key, rp, s.payload)));
                    }
                }
                reference::canonical(rows)
                    .into_iter()
                    .map(|(k, rp, sp)| Tuple::new(k, rp.wrapping_add(sp)))
                    .collect()
            }
        }
    }
}

impl std::fmt::Display for StageSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_covers_all_operators() {
        use OperatorKind::*;
        assert_eq!(StageSpec::Filter { modulus: 10, remainder: 0 }.basic_operator(), Scan);
        assert_eq!(StageSpec::ReduceByKey.basic_operator(), GroupBy);
        assert_eq!(StageSpec::SortByKey.basic_operator(), Sort);
        assert_eq!(StageSpec::Join { build: BuildSide::Dimension }.basic_operator(), Join);
        // The opened stage kinds lower to their dedicated operators —
        // no Scan/Group-by aliasing.
        assert_eq!(StageSpec::Union.basic_operator(), Union);
        assert_eq!(StageSpec::Cogroup.basic_operator(), Cogroup);
        assert_eq!(StageSpec::FlatMap { fanout: 2 }.basic_operator(), FlatMap);
    }

    #[test]
    fn default_lowering_matches_table1_support() {
        let supported =
            SparkOp::ALL.iter().filter(|&&op| StageSpec::default_for(op).is_some()).count();
        assert_eq!(supported, 11, "11 of the 14 Table 1 ops run as chained stages");
        for op in SparkOp::ALL {
            if let Some(spec) = StageSpec::default_for(op) {
                assert_eq!(spec.spark_op(), op, "lowering must round-trip the SparkOp");
            }
        }
    }

    #[test]
    fn reference_semantics_match_spark_executors() {
        let rel = vec![Tuple::new(1, 10), Tuple::new(2, 5), Tuple::new(1, 7)];
        // Filter keeps payloads not ≡ 0 (mod 5): 10 and 5 drop out.
        let f = StageSpec::Filter { modulus: 5, remainder: 0 };
        assert_eq!(f.reference_output(&[&rel], None, 0), vec![Tuple::new(1, 7)]);
        // ReduceByKey sums payloads per key.
        let sums = StageSpec::ReduceByKey.reference_output(&[&rel], None, 0);
        assert_eq!(sums, vec![Tuple::new(1, 17), Tuple::new(2, 5)]);
        // CountByKey counts.
        let counts = StageSpec::CountByKey.reference_output(&[&rel], None, 0);
        assert_eq!(counts, vec![Tuple::new(1, 2), Tuple::new(2, 1)]);
        // SortByKey totally orders.
        let sorted = StageSpec::SortByKey.reference_output(&[&rel], None, 0);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        // Join against an explicit build side: every key-1 tuple matches.
        let dim = vec![Tuple::new(1, 100), Tuple::new(3, 300)];
        let joined =
            StageSpec::Join { build: BuildSide::Stage(0) }.reference_output(&[&rel], Some(&dim), 0);
        // Canonical row order sorts by (key, r_payload, s_payload).
        assert_eq!(joined, vec![Tuple::new(1, 107), Tuple::new(1, 110)]);
    }

    #[test]
    fn new_stage_reference_semantics() {
        let a = vec![Tuple::new(1, 10), Tuple::new(2, 5)];
        let b = vec![Tuple::new(1, 7)];
        // Union concatenates in edge order.
        let unioned = StageSpec::Union.reference_output(&[&a, &b], None, 0);
        assert_eq!(unioned, vec![Tuple::new(1, 10), Tuple::new(2, 5), Tuple::new(1, 7)]);
        // FlatMap expands every tuple, keys preserved.
        let expanded = StageSpec::FlatMap { fanout: 3 }.reference_output(&[&b], None, 0);
        assert_eq!(expanded.len(), 3);
        assert!(expanded.iter().all(|t| t.key == 1));
        assert_eq!(expanded[0].payload, 21, "payload * fanout + 0");
        // Cogroup pairs both sides' group sizes.
        let cg = StageSpec::Cogroup.reference_output(&[&a, &b], None, 0);
        assert_eq!(cg.len(), 2);
        assert_eq!(cg[0], Tuple::new(1, (1 << 32) + 1), "one tuple each side");
        assert_eq!(cg[1], Tuple::new(2, 1 << 32), "key 2 only on side A");
    }

    #[test]
    fn cardinality_estimates_track_the_semantics() {
        assert_eq!(
            StageSpec::Filter { modulus: 10, remainder: 0 }.estimate_output_rows(&[1000], 64),
            900
        );
        assert_eq!(StageSpec::FlatMap { fanout: 3 }.estimate_output_rows(&[100], 64), 300);
        assert_eq!(StageSpec::Union.estimate_output_rows(&[100, 50], 64), 150);
        assert_eq!(StageSpec::GroupByKey.estimate_output_rows(&[1000], 64), 64);
        assert_eq!(StageSpec::GroupByKey.estimate_output_rows(&[40], 64), 40);
        assert_eq!(StageSpec::Cogroup.estimate_output_rows(&[100, 100], 64), 64);
        assert_eq!(StageSpec::SortByKey.estimate_output_rows(&[123], 64), 123);
        assert_eq!(
            StageSpec::Join { build: BuildSide::Dimension }.estimate_output_rows(&[77], 64),
            77
        );
        assert_eq!(StageSpec::LookupKey { key: 1 }.estimate_output_rows(&[640], 64), 10);
    }

    #[test]
    fn multi_input_stage_constructors() {
        let u =
            Stage::with_inputs(StageSpec::Union, vec![StageInput::Stage(0), StageInput::Source]);
        assert_eq!(u.inputs, vec![StageInput::Stage(0), StageInput::Source]);
        assert_eq!(Stage::chained(StageSpec::SortByKey).inputs, vec![StageInput::Prev]);
    }

    #[test]
    fn derived_dimension_is_deterministic_and_primary_key() {
        let rel = vec![Tuple::new(4, 0), Tuple::new(1, 0), Tuple::new(4, 9)];
        let a = derive_dimension(&rel, 7);
        let b = derive_dimension(&rel, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2, "distinct keys only");
        assert!(a.windows(2).all(|w| w[0].key < w[1].key));
        assert_ne!(derive_dimension(&rel, 8), a, "seed changes payloads");
    }
}
