//! The cost-model planner behind `Concurrency::Auto`.
//!
//! The engine already knows everything a planner needs: every operator
//! publishes relative per-tuple phase costs ([`mondrian_ops::CostHints`]),
//! the serial reference pass produces exact per-stage cardinalities, and
//! [`mondrian_core::SystemConfig`] carries the timing parameters (compute
//! units, core clock, phase-barrier cost). From those facts the planner
//! predicts a whole-machine runtime per stage and derives two schedule
//! decisions the executor previously left to global hand-knobs:
//!
//! * **Vault-lease split per wave** — instead of equal
//!   [`PartitionSpec::split`] shares, the predicted-slower branch gets
//!   more vaults ([`PartitionSpec::split_weighted`]), re-leased per wave.
//! * **Chunk count per fused edge** — instead of the fixed default, the
//!   planner balances the per-chunk partition round against the per-round
//!   overhead (`k* ≈ √(partition_time / barrier)`), so tiny relations
//!   stop paying for rounds they cannot fill and huge ones overlap at a
//!   finer grain.
//!
//! Predictions *rank* candidate schedules; they never bind the result.
//! The adaptive executor runs the default stream schedule and (when the
//! plan proposes changes) the planned one, then charges whichever
//! measured faster — so a wrong prediction costs nothing but simulation
//! time, and `auto` stays never-worse than the best hand-tuned mode by
//! construction. `mondrian explain` renders the same predictions next to
//! the measured makespans so the model's error is always visible.

use mondrian_core::{PartitionSpec, SystemConfig};
use mondrian_sim::Time;

use crate::schedule::Dag;
use crate::stage::{BuildSide, Stage, StageInput, StageSpec};

/// The cardinalities one stage's cost prediction is computed from. At
/// execution time these are the serial pass's *actual* row counts; for
/// pre-simulation prediction (`mondrian explain`) they come from the
/// structural estimator ([`estimate_shapes`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageShape {
    /// Rows consumed across every input edge.
    pub rows_in: usize,
    /// Rows of the join build side (0 for non-join stages).
    pub rows_build: usize,
    /// Rows the stage produces.
    pub rows_out: usize,
}

/// The planner's lease proposal for one multi-branch wave, kept only
/// when it differs from the equal split the executor would use anyway.
#[derive(Debug, Clone)]
pub struct PlannedWave {
    /// Wave index.
    pub wave: usize,
    /// Proposed leases, in branch-slot order (matching `dag.waves[wave]`).
    pub leases: Vec<PartitionSpec>,
}

/// The planner's chunk-count proposal for one fused edge, kept only when
/// it differs from the default chunking.
#[derive(Debug, Clone, Copy)]
pub struct PlannedEdge {
    /// Producer stage index.
    pub producer: usize,
    /// Consumer stage index.
    pub consumer: usize,
    /// Proposed arrival-chunk count.
    pub chunks: usize,
}

/// A complete schedule proposal for one pipeline run.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Predicted whole-machine runtime per stage, in stage-index order.
    pub stage_predicted_ps: Vec<Time>,
    /// Predicted end-to-end makespan of the planned schedule.
    pub predicted_makespan_ps: Time,
    /// Lease proposals that differ from the equal split.
    pub waves: Vec<PlannedWave>,
    /// Chunk-count proposals that differ from the default chunking.
    pub edges: Vec<PlannedEdge>,
}

impl Plan {
    /// Whether the plan proposes any deviation from the default stream
    /// schedule (if not, the adaptive executor skips the second
    /// candidate entirely — the default run *is* the planned run).
    pub fn proposes_changes(&self) -> bool {
        !self.waves.is_empty() || !self.edges.is_empty()
    }

    /// The proposed leases of a wave, if the plan re-split it.
    pub fn wave_leases(&self, wave: usize) -> Option<Vec<PartitionSpec>> {
        self.waves.iter().find(|w| w.wave == wave).map(|w| w.leases.clone())
    }

    /// The proposed chunk count of a fused edge, if the plan retuned it.
    pub fn edge_chunks(&self, producer: usize, consumer: usize) -> Option<usize> {
        self.edges
            .iter()
            .find(|e| e.producer == producer && e.consumer == consumer)
            .map(|e| e.chunks)
    }
}

/// Picoseconds per core cycle on `sys` (the Table 3 clocks are 1 or
/// 2 GHz, so this is exact).
fn ps_per_cycle(sys: &SystemConfig) -> u64 {
    (1000.0 / sys.kind.core_config().clock.ghz()).round() as u64
}

/// Abstract work of one stage: total cycles across all compute units,
/// plus the number of phase barriers its plan crosses.
fn stage_cycles(stage: &Stage, shape: &StageShape) -> (u64, u64) {
    let profile = mondrian_ops::operator(stage.basic_operator()).profile();
    let cost = profile.cost;
    let rows_in = shape.rows_in as u64;
    let mut cycles =
        rows_in * cost.op_cycles as u64 + shape.rows_out as u64 * cost.output_cycles as u64;
    let mut phases = 1u64;
    if profile.phases.has_partitioning {
        // Histogram + scatter each touch every input tuple.
        cycles += 2 * rows_in * cost.partition_cycles as u64;
        phases += 2;
    }
    if profile.phases.hash_table_build.is_some() {
        cycles += shape.rows_build as u64 * cost.build_cycles as u64;
        phases += 1;
    }
    (cycles, phases)
}

/// Predicted runtime of one stage on a `vaults`-sized lease of `sys`:
/// cycles spread over the lease's proportional share of the compute
/// units, plus the fixed barrier cost per phase boundary.
pub fn predict_stage_on(
    stage: &Stage,
    shape: &StageShape,
    sys: &SystemConfig,
    vaults: u32,
) -> Time {
    let (cycles, phases) = stage_cycles(stage, shape);
    let total = sys.total_vaults().max(1) as u64;
    let units = (sys.compute_units() as u64 * vaults as u64 / total).max(1);
    cycles.div_ceil(units) * ps_per_cycle(sys) + phases * sys.barrier
}

/// Predicted whole-machine runtime of one stage.
pub fn predict_stage(stage: &Stage, shape: &StageShape, sys: &SystemConfig) -> Time {
    predict_stage_on(stage, shape, sys, sys.total_vaults())
}

/// Candidate chunk counts for a fused edge. Power-of-two ladder around
/// the old fixed default — the engine's chunk rounds are cheap to vary,
/// but an unbounded count would just re-derive the relation tuple by
/// tuple.
const CHUNK_CANDIDATES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The chunk count minimizing the predicted streamed-slot cost of a
/// fused edge: the final partition round (`partition_ps / k`) shrinks
/// with more chunks while the per-round overhead (`k · barrier`) grows,
/// so the optimum sits near `√(partition_ps / barrier)`. Clamped to the
/// producer's output rows — a chunk must carry at least one tuple.
fn pick_chunks(partition_ps: Time, barrier: Time, rows: usize) -> usize {
    let cost = |k: usize| partition_ps / k as u64 + k as u64 * barrier.max(1);
    let best = CHUNK_CANDIDATES
        .iter()
        .copied()
        .min_by_key(|&k| (cost(k), k))
        .expect("candidate ladder is non-empty");
    best.min(rows.max(1))
}

/// Builds the schedule proposal for one pipeline run.
///
/// `shapes` supplies per-stage cardinalities (actual or estimated);
/// `default_chunks` is the executor's default chunk cap, so the plan
/// records only genuine deviations. Waves whose weighted split equals
/// the equal split and edges whose tuned chunk count equals the default
/// are omitted — an empty proposal means the default schedule already is
/// the planned one.
pub fn plan_pipeline(
    stages: &[Stage],
    dag: &Dag,
    shapes: &[StageShape],
    sys: &SystemConfig,
    default_chunks: usize,
) -> Plan {
    let preds: Vec<Time> =
        stages.iter().zip(shapes).map(|(s, sh)| predict_stage(s, sh, sys)).collect();
    let total = sys.total_vaults();

    let mut waves = Vec::new();
    let mut predicted_makespan: Time = 0;
    for (w, wave_branches) in dag.waves.iter().enumerate() {
        let serial_sum: Time =
            wave_branches.iter().flat_map(|&b| &dag.branches[b]).map(|&i| preds[i]).sum();
        if wave_branches.len() < 2 {
            predicted_makespan += serial_sum;
            continue;
        }
        let weights: Vec<u64> = wave_branches
            .iter()
            .map(|&b| dag.branches[b].iter().map(|&i| preds[i]).sum())
            .collect();
        let equal = PartitionSpec::split(total, wave_branches.len() as u32);
        let weighted = PartitionSpec::split_weighted(total, &weights);
        let (Some(equal), Some(weighted)) = (equal, weighted) else {
            // More tenants than vaults: serial is the only schedule.
            predicted_makespan += serial_sum;
            continue;
        };
        let concurrent: Time = wave_branches
            .iter()
            .enumerate()
            .map(|(slot, &b)| {
                dag.branches[b]
                    .iter()
                    .map(|&i| predict_stage_on(&stages[i], &shapes[i], sys, weighted[slot].vaults))
                    .sum()
            })
            .max()
            .unwrap_or(0);
        // The executor's per-wave fallback charges the serial layout when
        // concurrency does not pay; predict the same way.
        predicted_makespan += concurrent.min(serial_sum);
        if weighted != equal {
            waves.push(PlannedWave { wave: w, leases: weighted });
        }
    }

    let mut edges = Vec::new();
    for (producer, consumer) in dag.fused_pairs(stages) {
        let rows = shapes[producer].rows_out;
        if rows == 0 {
            // Empty producer output: the executor skips fusion on its own
            // (no partition rounds to overlap), so there is nothing to
            // propose.
            continue;
        }
        let cost = mondrian_ops::operator(stages[consumer].basic_operator()).profile().cost;
        let partition_cycles = 2 * rows as u64 * cost.partition_cycles as u64;
        let partition_ps =
            partition_cycles.div_ceil(sys.compute_units().max(1) as u64) * ps_per_cycle(sys);
        let chunks = pick_chunks(partition_ps, sys.barrier, rows);
        if chunks != default_chunks.min(rows) {
            edges.push(PlannedEdge { producer, consumer, chunks });
        }
    }

    Plan { stage_predicted_ps: preds, predicted_makespan_ps: predicted_makespan, waves, edges }
}

/// Structural per-stage cardinality estimates for a plan that has not
/// executed: edge counts resolve through the DAG the same way the
/// executor resolves relations, and each stage's output estimate comes
/// from [`StageSpec::estimate_output_rows`]. `key_bound` is the source
/// relation's key-space bound (the default mirrors
/// `PipelineConfig::source_relation`: a quarter of the source rows).
pub fn estimate_shapes(stages: &[Stage], source_rows: usize, key_bound: u64) -> Vec<StageShape> {
    let mut shapes: Vec<StageShape> = Vec::with_capacity(stages.len());
    let mut outs: Vec<usize> = Vec::with_capacity(stages.len());
    for (i, stage) in stages.iter().enumerate() {
        let edge_rows = |input: StageInput| match input {
            StageInput::Source => source_rows,
            StageInput::Prev => {
                if i == 0 {
                    source_rows
                } else {
                    outs[i - 1]
                }
            }
            StageInput::Stage(j) => outs[j],
        };
        let inputs: Vec<usize> = stage.inputs.iter().map(|&input| edge_rows(input)).collect();
        let rows_in: usize = inputs.iter().sum();
        let rows_build = match stage.spec {
            StageSpec::Join { build: BuildSide::Stage(j) } => outs[j],
            // A derived dimension carries one tuple per distinct probe key.
            StageSpec::Join { build: BuildSide::Dimension } => {
                rows_in.min(usize::try_from(key_bound.max(1)).unwrap_or(usize::MAX))
            }
            _ => 0,
        };
        let rows_out = stage.spec.estimate_output_rows(&inputs, key_bound);
        shapes.push(StageShape { rows_in, rows_build, rows_out });
        outs.push(rows_out);
    }
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mondrian_core::SystemKind;

    fn sys() -> SystemConfig {
        SystemConfig::scaled(SystemKind::Mondrian)
    }

    #[test]
    fn predictions_scale_with_rows_and_vaults() {
        let stage = Stage::chained(StageSpec::SortByKey);
        let small = StageShape { rows_in: 1_000, rows_build: 0, rows_out: 1_000 };
        let big = StageShape { rows_in: 100_000, rows_build: 0, rows_out: 100_000 };
        let sys = sys();
        assert!(predict_stage(&stage, &big, &sys) > predict_stage(&stage, &small, &sys));
        // Half the vaults, roughly double the compute time (barriers fixed).
        let whole = predict_stage(&stage, &big, &sys);
        let half = predict_stage_on(&stage, &big, &sys, sys.total_vaults() / 2);
        assert!(half > whole);
        // A partitioning stage predicts costlier than a scan of equal shape.
        let scan = Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 });
        assert!(predict_stage(&stage, &big, &sys) > predict_stage(&scan, &big, &sys));
    }

    #[test]
    fn chunk_tuning_grows_with_partition_work() {
        let barrier = 200_000; // 200 ns in ps
        assert_eq!(pick_chunks(0, barrier, 1_000_000), 1, "no partition work, no rounds");
        let small = pick_chunks(8 * barrier, barrier, 1_000_000);
        let large = pick_chunks(4096 * barrier, barrier, 1_000_000);
        assert!(small < large, "more partition work wants finer chunking ({small} vs {large})");
        assert_eq!(pick_chunks(4096 * barrier, barrier, 3), 3, "chunks never outnumber rows");
    }

    #[test]
    fn plan_proposes_weighted_leases_for_skewed_waves() {
        // Three mutually independent branches with very different
        // predicted costs share wave 0; the plan re-splits their leases.
        let stages = vec![
            Stage::with_input(StageSpec::Filter { modulus: 10, remainder: 0 }, StageInput::Source),
            Stage::with_input(StageSpec::Filter { modulus: 3, remainder: 1 }, StageInput::Source),
            Stage::with_input(StageSpec::SortByKey, StageInput::Source),
        ];
        let dag = Dag::build(&stages);
        assert_eq!(dag.waves.len(), 1);
        let shapes = vec![
            StageShape { rows_in: 1_000, rows_build: 0, rows_out: 900 },
            StageShape { rows_in: 1_000, rows_build: 0, rows_out: 667 },
            StageShape { rows_in: 500_000, rows_build: 0, rows_out: 500_000 },
        ];
        let plan = plan_pipeline(&stages, &dag, &shapes, &sys(), 8);
        assert!(plan.proposes_changes());
        let leases = plan.wave_leases(0).expect("skewed wave is re-split");
        assert!(leases[2].vaults > leases[0].vaults, "the sort branch gets more vaults");
        assert!(plan.predicted_makespan_ps > 0);
        assert_eq!(plan.stage_predicted_ps.len(), 3);
    }

    #[test]
    fn estimated_shapes_walk_the_dag() {
        let stages = vec![
            Stage::chained(StageSpec::Filter { modulus: 10, remainder: 0 }),
            Stage::chained(StageSpec::GroupByKey),
            Stage::with_input(StageSpec::Filter { modulus: 3, remainder: 1 }, StageInput::Source),
            Stage::with_inputs(StageSpec::Union, vec![StageInput::Stage(1), StageInput::Stage(2)]),
        ];
        let shapes = estimate_shapes(&stages, 1000, 64);
        assert_eq!(shapes[0].rows_in, 1000);
        assert_eq!(shapes[0].rows_out, 900);
        assert_eq!(shapes[1].rows_in, 900);
        assert_eq!(shapes[1].rows_out, 64, "grouping caps at the key bound");
        assert_eq!(shapes[2].rows_in, 1000);
        assert_eq!(shapes[3].rows_in, shapes[1].rows_out + shapes[2].rows_out);
        assert_eq!(shapes[3].rows_out, shapes[3].rows_in, "union concatenates");
    }
}
