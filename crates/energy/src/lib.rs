//! # mondrian-energy
//!
//! The paper's custom energy-modeling framework (§6, Table 4), rebuilt: a
//! set of per-component power/energy constants applied to event counts
//! collected by the timing simulation.
//!
//! | Component | Power / Energy |
//! |-----------|----------------|
//! | CPU core (A57)          | 2.1 W |
//! | NMP baseline core       | 312 mW |
//! | Mondrian core           | 180 mW |
//! | LLC                     | 0.09 nJ/access, 110 mW leakage |
//! | NoC                     | 0.04 pJ/bit/mm, 30 mW leakage |
//! | HMC (per 8 GB cube)     | 980 mW background, 0.65 nJ/activation, 2 pJ/bit access |
//! | SerDes                  | idle 1 pJ/bit, busy 3 pJ/bit |
//!
//! The headline observation the model must reproduce (Fig. 8): row
//! activations dominate DRAM dynamic energy under random access — §3.1's
//! CACTI-3DD analysis puts the activation share at 14% when a whole 256 B
//! row is consumed but 80% when only 8 B of it is used — so converting
//! random accesses to sequential streams is an *energy* optimization first.

#![warn(missing_docs)]

mod model;
mod params;

pub use model::{CoreActivity, CoreClass, EnergyBreakdown, SystemActivity};
pub use params::EnergyParams;

/// Computes the energy breakdown of one simulated run.
///
/// # Example
///
/// ```
/// use mondrian_energy::*;
/// let params = EnergyParams::table4();
/// let activity = SystemActivity {
///     runtime_ps: 1_000_000, // 1 µs
///     cores: vec![CoreActivity { class: CoreClass::Mondrian, busy_fraction: 1.0 }; 4],
///     row_activations: 1000,
///     dram_bits_accessed: 8 * 1024 * 1024,
///     hmc_cubes: 4,
///     serdes_directions: 24,
///     serdes_busy_bits: 1_000_000,
///     noc_bit_mm: 1e9,
///     noc_meshes: 4,
///     llc_accesses: 0,
///     has_llc: false,
/// };
/// let e = compute_energy(&params, &activity);
/// assert!(e.total_j() > 0.0);
/// assert!(e.dram_static_j > 0.0);
/// ```
pub fn compute_energy(params: &EnergyParams, activity: &SystemActivity) -> EnergyBreakdown {
    model::compute(params, activity)
}
