//! The energy computation.

use mondrian_sim::Time;

use crate::params::EnergyParams;

/// The class of a compute unit, selecting its peak power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreClass {
    /// CPU baseline core (Cortex-A57-like).
    Cpu,
    /// NMP baseline core (Krait400-like).
    Nmp,
    /// Mondrian compute unit (Cortex-A35 + wide SIMD).
    Mondrian,
}

/// One core's activity during the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreActivity {
    /// Core class.
    pub class: CoreClass,
    /// Fraction of the runtime the core was doing useful work (achieved
    /// IPC / peak IPC), in `[0, 1]`.
    pub busy_fraction: f64,
}

/// Aggregate activity counts of one simulated run — the quantities the
/// engine extracts from its statistics registry.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemActivity {
    /// Wall-clock runtime of the run, picoseconds.
    pub runtime_ps: Time,
    /// Per-core activity.
    pub cores: Vec<CoreActivity>,
    /// Total DRAM row activations across all vaults.
    pub row_activations: u64,
    /// Total DRAM bits moved (reads + writes).
    pub dram_bits_accessed: u64,
    /// Number of HMC cubes (background power).
    pub hmc_cubes: u32,
    /// Number of SerDes link *directions* powered on (idle energy).
    pub serdes_directions: u32,
    /// Bits actually moved over SerDes links (including framing).
    pub serdes_busy_bits: u64,
    /// On-chip network traffic in bit·mm.
    pub noc_bit_mm: f64,
    /// Number of powered NoC meshes (leakage).
    pub noc_meshes: u32,
    /// LLC accesses (CPU system only).
    pub llc_accesses: u64,
    /// Whether an LLC exists (leakage).
    pub has_llc: bool,
}

/// Energy per component group, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Core dynamic + idle energy.
    pub cores_j: f64,
    /// LLC access + leakage energy.
    pub llc_j: f64,
    /// DRAM dynamic energy (activations + bit movement).
    pub dram_dynamic_j: f64,
    /// DRAM background/static energy.
    pub dram_static_j: f64,
    /// SerDes busy + idle energy.
    pub serdes_j: f64,
    /// NoC transfer + leakage energy.
    pub noc_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.cores_j
            + self.llc_j
            + self.dram_dynamic_j
            + self.dram_static_j
            + self.serdes_j
            + self.noc_j
    }

    /// Fig. 8's four categories: (DRAM dyn, DRAM static, cores, SerDes+NoC).
    /// LLC energy is attributed to the cores category, as the cache
    /// hierarchy exists only on the compute side.
    pub fn fig8_categories(&self) -> [f64; 4] {
        [
            self.dram_dynamic_j,
            self.dram_static_j,
            self.cores_j + self.llc_j,
            self.serdes_j + self.noc_j,
        ]
    }

    /// Shares of the four Fig. 8 categories, summing to 1.
    pub fn fig8_shares(&self) -> [f64; 4] {
        let t = self.total_j();
        self.fig8_categories().map(|c| c / t)
    }
}

pub(crate) fn compute(p: &EnergyParams, a: &SystemActivity) -> EnergyBreakdown {
    let secs = a.runtime_ps as f64 * 1e-12;
    let mut cores_j = 0.0;
    for c in &a.cores {
        let peak = match c.class {
            CoreClass::Cpu => p.cpu_core_w,
            CoreClass::Nmp => p.nmp_core_w,
            CoreClass::Mondrian => p.mondrian_core_w,
        };
        let busy = c.busy_fraction.clamp(0.0, 1.0);
        // Idle floor + utilization-proportional dynamic power (§6: "We
        // estimate core power based on the core's peak power and its
        // utilization statistics").
        let power = peak * (p.core_idle_fraction + (1.0 - p.core_idle_fraction) * busy);
        cores_j += power * secs;
    }
    let llc_j = if a.has_llc {
        a.llc_accesses as f64 * p.llc_access_j + p.llc_leakage_w * secs
    } else {
        0.0
    };
    let dram_dynamic_j = a.row_activations as f64 * p.activation_j
        + a.dram_bits_accessed as f64 * p.dram_access_j_per_bit;
    let dram_static_j = a.hmc_cubes as f64 * p.hmc_background_w * secs;
    let total_bit_slots = p.serdes_bits_per_s * secs * a.serdes_directions as f64;
    let idle_bits = (total_bit_slots - a.serdes_busy_bits as f64).max(0.0);
    let serdes_j =
        a.serdes_busy_bits as f64 * p.serdes_busy_j_per_bit + idle_bits * p.serdes_idle_j_per_bit;
    let noc_j = a.noc_bit_mm * p.noc_j_per_bit_mm + a.noc_meshes as f64 * p.noc_leakage_w * secs;
    EnergyBreakdown { cores_j, llc_j, dram_dynamic_j, dram_static_j, serdes_j, noc_j }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_activity() -> SystemActivity {
        SystemActivity {
            runtime_ps: 1_000_000, // 1 µs
            cores: vec![],
            row_activations: 0,
            dram_bits_accessed: 0,
            hmc_cubes: 4,
            serdes_directions: 0,
            serdes_busy_bits: 0,
            noc_bit_mm: 0.0,
            noc_meshes: 0,
            llc_accesses: 0,
            has_llc: false,
        }
    }

    #[test]
    fn idle_system_burns_only_background() {
        let e = compute(&EnergyParams::table4(), &idle_activity());
        // 4 cubes × 0.98 W × 1 µs = 3.92 µJ.
        assert!((e.dram_static_j - 3.92e-6).abs() < 1e-12);
        assert_eq!(e.cores_j, 0.0);
        assert_eq!(e.total_j(), e.dram_static_j);
    }

    #[test]
    fn activation_energy_counts() {
        let mut a = idle_activity();
        a.row_activations = 1000;
        a.dram_bits_accessed = 1_000_000;
        let e = compute(&EnergyParams::table4(), &a);
        let expect = 1000.0 * 0.65e-9 + 1e6 * 2e-12;
        assert!((e.dram_dynamic_j - expect).abs() < 1e-15);
    }

    #[test]
    fn core_power_scales_with_utilization() {
        let p = EnergyParams::table4();
        let mut a = idle_activity();
        a.cores = vec![CoreActivity { class: CoreClass::Cpu, busy_fraction: 1.0 }];
        let full = compute(&p, &a).cores_j;
        a.cores = vec![CoreActivity { class: CoreClass::Cpu, busy_fraction: 0.0 }];
        let idle = compute(&p, &a).cores_j;
        assert!((full - 2.1 * 1e-6).abs() < 1e-12, "full power = peak");
        assert!((idle - 2.1 * 0.3 * 1e-6).abs() < 1e-12, "idle floor = 30% of peak");
    }

    #[test]
    fn core_classes_ordered_by_power() {
        let p = EnergyParams::table4();
        let energy = |class| {
            let mut a = idle_activity();
            a.cores = vec![CoreActivity { class, busy_fraction: 1.0 }];
            compute(&p, &a).cores_j
        };
        assert!(energy(CoreClass::Cpu) > energy(CoreClass::Nmp));
        assert!(energy(CoreClass::Nmp) > energy(CoreClass::Mondrian));
    }

    #[test]
    fn serdes_idle_energy_fills_unused_slots() {
        let p = EnergyParams::table4();
        let mut a = idle_activity();
        a.serdes_directions = 2;
        let idle_only = compute(&p, &a).serdes_j;
        // 2 directions × 160e9 b/s × 1e-6 s × 1 pJ/bit = 0.32 µJ.
        assert!((idle_only - 0.32e-6).abs() < 1e-12);
        a.serdes_busy_bits = 100_000;
        let with_traffic = compute(&p, &a).serdes_j;
        // Busy bits replace idle slots: Δ = bits × (3 − 1) pJ.
        assert!((with_traffic - idle_only - 100_000.0 * 2e-12).abs() < 1e-15);
    }

    #[test]
    fn breakdown_sums_and_shares() {
        let p = EnergyParams::table4();
        let mut a = idle_activity();
        a.cores = vec![CoreActivity { class: CoreClass::Nmp, busy_fraction: 0.5 }; 64];
        a.row_activations = 5_000;
        a.dram_bits_accessed = 1 << 30;
        a.serdes_directions = 24;
        a.serdes_busy_bits = 1 << 20;
        a.noc_bit_mm = 1e9;
        a.noc_meshes = 4;
        let e = compute(&p, &a);
        let cats = e.fig8_categories();
        assert!((cats.iter().sum::<f64>() - e.total_j()).abs() < 1e-15);
        let shares = e.fig8_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(shares.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn llc_energy_only_when_present() {
        let p = EnergyParams::table4();
        let mut a = idle_activity();
        a.llc_accesses = 1_000_000;
        let without = compute(&p, &a);
        assert_eq!(without.llc_j, 0.0);
        a.has_llc = true;
        let with = compute(&p, &a);
        let expect = 1e6 * 0.09e-9 + 0.110 * 1e-6;
        assert!((with.llc_j - expect).abs() < 1e-12);
    }
}
