//! Table 4 constants.

/// Power and energy constants of all system components (Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// CPU (Cortex-A57-class) core peak power, watts.
    pub cpu_core_w: f64,
    /// NMP baseline (Krait400-class) core peak power, watts.
    pub nmp_core_w: f64,
    /// Mondrian (Cortex-A35 + 1024-bit SIMD) core peak power, watts.
    pub mondrian_core_w: f64,
    /// LLC access energy, joules.
    pub llc_access_j: f64,
    /// LLC leakage power, watts.
    pub llc_leakage_w: f64,
    /// NoC transfer energy, joules per bit per millimeter.
    pub noc_j_per_bit_mm: f64,
    /// NoC leakage power per mesh, watts.
    pub noc_leakage_w: f64,
    /// HMC background power per 8 GB cube, watts.
    pub hmc_background_w: f64,
    /// DRAM row-activation energy, joules.
    pub activation_j: f64,
    /// DRAM access (data movement) energy, joules per bit.
    pub dram_access_j_per_bit: f64,
    /// SerDes idle energy, joules per bit-time.
    pub serdes_idle_j_per_bit: f64,
    /// SerDes busy energy, joules per bit.
    pub serdes_busy_j_per_bit: f64,
    /// SerDes line rate per direction, bits per second (for idle energy).
    pub serdes_bits_per_s: f64,
    /// Fraction of core peak power drawn when fully idle (clock + leakage).
    /// The paper scales core power by utilization; a fixed idle floor keeps
    /// stalled cores from being free.
    pub core_idle_fraction: f64,
}

impl EnergyParams {
    /// The constants of Table 4.
    pub fn table4() -> Self {
        Self {
            cpu_core_w: 2.1,
            nmp_core_w: 0.312,
            mondrian_core_w: 0.180,
            llc_access_j: 0.09e-9,
            llc_leakage_w: 0.110,
            noc_j_per_bit_mm: 0.04e-12,
            noc_leakage_w: 0.030,
            hmc_background_w: 0.980,
            activation_j: 0.65e-9,
            dram_access_j_per_bit: 2.0e-12,
            serdes_idle_j_per_bit: 1.0e-12,
            serdes_busy_j_per_bit: 3.0e-12,
            serdes_bits_per_s: 160e9,
            core_idle_fraction: 0.3,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::table4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_constants() {
        let p = EnergyParams::table4();
        assert_eq!(p.cpu_core_w, 2.1);
        assert_eq!(p.nmp_core_w, 0.312);
        assert_eq!(p.mondrian_core_w, 0.180);
        assert_eq!(p.llc_access_j, 0.09e-9);
        assert_eq!(p.llc_leakage_w, 0.110);
        assert_eq!(p.noc_leakage_w, 0.030);
        assert_eq!(p.hmc_background_w, 0.980);
        assert_eq!(p.activation_j, 0.65e-9);
        assert_eq!(p.dram_access_j_per_bit, 2.0e-12);
        assert_eq!(p.serdes_idle_j_per_bit, 1.0e-12);
        assert_eq!(p.serdes_busy_j_per_bit, 3.0e-12);
    }

    #[test]
    fn activation_vs_access_ratio_matches_s3_1() {
        // §3.1: reading a whole 256 B row costs 14% activation energy;
        // reading only 8 B of it costs ~80%.
        let p = EnergyParams::table4();
        let full_row = p.activation_j / (p.activation_j + 256.0 * 8.0 * p.dram_access_j_per_bit);
        let tiny = p.activation_j / (p.activation_j + 8.0 * 8.0 * p.dram_access_j_per_bit);
        assert!((0.10..0.20).contains(&full_row), "full-row share {full_row}");
        assert!(tiny > 0.75, "8 B-access share {tiny}");
    }
}
