//! `mondrian bench`: the wall-clock benchmark harness for the parallel
//! execution engine.
//!
//! Runs one campaign at a ladder of `jobs` values, times each full
//! execution on the host clock, and cross-checks that every parallel run
//! produced a result artifact **byte-identical** to the single-worker
//! baseline — the determinism guarantee, enforced on every benchmark.
//! The report (`BENCH_sweep.json`) records the host core count alongside
//! the sweep, so a flat curve on a one-core container reads as expected
//! rather than as a regression.

use std::sync::Arc;
use std::time::Instant;

use crate::campaign::{run_campaign_jobs, run_campaign_store, store_salt};
use crate::manifest::Manifest;
use crate::value::Value;
use mondrian_store::Store;

/// One point of the jobs ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Worker threads used.
    pub jobs: usize,
    /// Best-of-`repeat` wall-clock milliseconds for the whole campaign.
    pub wall_ms: f64,
    /// Single-worker baseline wall time divided by this point's.
    pub speedup: f64,
    /// Discrete engine events the campaign's non-memoized runs processed
    /// (deterministic, identical at every ladder point).
    pub events: u64,
    /// Engine events simulated per host wall-clock second at this point —
    /// the harness's throughput figure of merit.
    pub events_per_sec: f64,
    /// Persistent-store hits at this point. Plain `bench` runs storeless
    /// (so parallel ladder points never race warm entries) and records
    /// `0`; `bench --cache` ladder points record real hit counts.
    pub cache_hits: u64,
    /// Whether the artifact matched the single-worker baseline byte for
    /// byte.
    pub identical: bool,
    /// Whether every stage of every run verified.
    pub verified: bool,
}

/// Results of one benchmark sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Campaign name.
    pub campaign: String,
    /// Runs in the sweep cross product.
    pub runs: usize,
    /// Runs served from the full-run memo.
    pub memo_hits: usize,
    /// Host cores available when the benchmark ran.
    pub host_cores: usize,
    /// Engine event-loop threads per run the whole ladder was measured
    /// with (`0` = follow the executor's per-run budget). Recorded so a
    /// sweep read later says what engine threading produced its numbers.
    pub sim_threads: usize,
    /// The jobs ladder, in the requested order.
    pub points: Vec<BenchPoint>,
}

impl BenchReport {
    /// Whether every point verified and matched the baseline artifact.
    pub fn ok(&self) -> bool {
        self.points.iter().all(|p| p.identical && p.verified)
    }

    /// The JSON document written to `BENCH_sweep.json`. Wall times are
    /// host measurements and change run to run; everything else is
    /// deterministic.
    pub fn to_json(&self) -> String {
        let round = |x: f64| (x * 1000.0).round() / 1000.0;
        let mut root = Value::table();
        root.insert("campaign", Value::Str(self.campaign.clone()));
        root.insert("runs", Value::Int(self.runs as i64));
        root.insert("memo_hits", Value::Int(self.memo_hits as i64));
        root.insert("host_cores", Value::Int(self.host_cores as i64));
        root.insert("sim_threads", Value::Int(self.sim_threads as i64));
        root.insert(
            "sweep",
            Value::Array(
                self.points
                    .iter()
                    .map(|p| {
                        let mut t = Value::table();
                        t.insert("jobs", Value::Int(p.jobs as i64));
                        t.insert("wall_ms", Value::Float(round(p.wall_ms)));
                        t.insert("speedup", Value::Float(round(p.speedup)));
                        t.insert("events", Value::Int(p.events as i64));
                        t.insert("events_per_sec", Value::Float(p.events_per_sec.round()));
                        t.insert("cache_hits", Value::Int(p.cache_hits as i64));
                        t.insert("identical", Value::Bool(p.identical));
                        t.insert("verified", Value::Bool(p.verified));
                        t
                    })
                    .collect(),
            ),
        );
        root.to_json()
    }

    /// One compact JSON line for `BENCH_history.jsonl`: the commit, host
    /// core count and the full `sim_wall_ms` ladder. Appending (instead
    /// of overwriting, as `BENCH_sweep.json` does) accumulates a
    /// wall-clock trend across commits.
    pub fn history_line(&self, commit: &str) -> String {
        // Strings go through the Value serializer's JSON escaping (Rust's
        // {:?} Debug escapes are not legal JSON).
        let json_str = |s: &str| Value::Str(s.to_string()).to_json().trim().to_string();
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"jobs\":{},\"wall_ms\":{:.3},\"speedup\":{:.3},\
                     \"events_per_sec\":{:.0},\"cache_hits\":{},\"identical\":{}}}",
                    p.jobs, p.wall_ms, p.speedup, p.events_per_sec, p.cache_hits, p.identical,
                )
            })
            .collect();
        format!(
            "{{\"commit\":{},\"campaign\":{},\"host_cores\":{},\"sim_threads\":{},\
             \"runs\":{},\"sweep\":[{}]}}",
            json_str(commit),
            json_str(&self.campaign),
            self.host_cores,
            self.sim_threads,
            self.runs,
            points.join(","),
        )
    }

    /// One line per ladder point for terminals.
    pub fn human_summary(&self) -> String {
        let mut out = format!(
            "bench {:?}: {} runs ({} memoized), {} host core(s), sim_threads={}\n",
            self.campaign,
            self.runs,
            self.memo_hits,
            self.host_cores,
            if self.sim_threads == 0 { "auto".to_string() } else { self.sim_threads.to_string() },
        );
        out.push_str(&one_core_note(self.host_cores));
        for p in &self.points {
            out.push_str(&format!(
                "  jobs={:<3} {:>10.3} ms  {:>6.2}x  {:>12.0} events/s  {}{}\n",
                p.jobs,
                p.wall_ms,
                p.speedup,
                p.events_per_sec,
                if p.identical { "byte-identical" } else { "ARTIFACT DIVERGED" },
                if p.verified { "" } else { " VERIFICATION FAILED" },
            ));
        }
        out
    }
}

/// Runs `manifest` once per entry of `jobs_list` (each timed as the best
/// of `repeat` executions) and cross-checks every artifact byte for byte
/// against a **single-worker baseline** — which is always executed, even
/// when `1` is absent from the ladder, so a parallelism bug can never
/// hide behind a ladder that skips the serial run.
pub fn bench(manifest: &Manifest, jobs_list: &[usize], repeat: usize) -> BenchReport {
    assert!(!jobs_list.is_empty(), "bench needs at least one jobs value");
    let repeat = repeat.max(1);
    let mut runs = 0;
    let mut memo_hits = 0;
    let mut measure = |jobs: usize| {
        let mut best = f64::INFINITY;
        let mut artifact = String::new();
        let mut verified = true;
        let mut events: u64 = 0;
        for r in 0..repeat {
            let start = Instant::now();
            let campaign = run_campaign_jobs(manifest, jobs, |_| {});
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            // Campaigns are deterministic across repeats: serialize the
            // artifact (the expensive part) only once per ladder point.
            if r == 0 {
                verified = campaign.verified();
                artifact = campaign.to_json();
                runs = campaign.runs.len();
                memo_hits = campaign.memo_hits;
                // Memoized runs replay a cached report without touching
                // the event loop, so they contribute no throughput work.
                events = campaign
                    .runs
                    .iter()
                    .filter(|run| !run.memoized)
                    .filter_map(|run| run.report.as_ref())
                    .map(mondrian_pipeline::PipelineReport::events)
                    .sum();
            }
        }
        (artifact, best, verified, events)
    };
    let (base_artifact, base_wall, base_verified, base_events) = measure(1);
    let mut points = Vec::with_capacity(jobs_list.len());
    for &jobs in jobs_list {
        let (artifact, wall_ms, verified, events) = if jobs == 1 {
            (base_artifact.clone(), base_wall, base_verified, base_events)
        } else {
            measure(jobs)
        };
        points.push(BenchPoint {
            jobs,
            wall_ms,
            speedup: base_wall / wall_ms.max(1e-9),
            events,
            events_per_sec: events as f64 * 1e3 / wall_ms.max(1e-9),
            cache_hits: 0,
            identical: artifact == base_artifact,
            verified,
        });
    }
    BenchReport {
        campaign: manifest.name.clone(),
        runs,
        memo_hits,
        host_cores: host_cores(),
        sim_threads: manifest.sim_threads.unwrap_or(0),
        points,
    }
}

/// Host cores available to this process.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// The warning line prepended to human-facing speedup reports on one-core
/// hosts, where every ladder point time-slices a single core and the
/// speedup column carries no signal. Empty on multi-core hosts.
pub fn one_core_note(host_cores: usize) -> String {
    if host_cores == 1 {
        "  note: host_cores=1 — speedups not meaningful on this host\n".to_string()
    } else {
        String::new()
    }
}

/// One point of the engine scaling ladder: a full campaign measured at
/// one `(sim_threads, jobs)` combination.
#[derive(Debug, Clone, PartialEq)]
pub struct EnginePoint {
    /// Engine event-loop threads per run.
    pub sim_threads: usize,
    /// Campaign worker threads.
    pub jobs: usize,
    /// Best-of-`repeat` wall-clock milliseconds for the whole campaign.
    pub wall_ms: f64,
    /// Serial baseline (`sim_threads = 1, jobs = 1`) wall time divided by
    /// this point's.
    pub speedup: f64,
    /// Discrete engine events the campaign's non-memoized runs processed.
    pub events: u64,
    /// Engine events simulated per host wall-clock second.
    pub events_per_sec: f64,
    /// Whether the artifact matched the serial baseline byte for byte.
    pub identical: bool,
    /// Whether every stage of every run verified.
    pub verified: bool,
}

/// Results of one engine scaling sweep (`mondrian bench --engine`).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Campaign name.
    pub campaign: String,
    /// Runs in the sweep cross product.
    pub runs: usize,
    /// Host cores available when the benchmark ran.
    pub host_cores: usize,
    /// The determinism fingerprint: an FNV-1a digest folded over every
    /// ladder point's artifact digest *and* the baseline's. One campaign
    /// has exactly one honest fingerprint — if any point's artifact
    /// diverges, the fingerprint moves, so two hosts (or two commits)
    /// agreeing on it agree on every byte of every point.
    pub fingerprint: String,
    /// The `(sim_threads, jobs)` ladder, in sweep order.
    pub points: Vec<EnginePoint>,
}

impl EngineReport {
    /// Whether every point verified and matched the baseline artifact.
    pub fn ok(&self) -> bool {
        self.points.iter().all(|p| p.identical && p.verified)
    }

    /// The JSON document written to `BENCH_sweep.json` in engine mode.
    pub fn to_json(&self) -> String {
        let round = |x: f64| (x * 1000.0).round() / 1000.0;
        let mut root = Value::table();
        root.insert("campaign", Value::Str(self.campaign.clone()));
        root.insert("runs", Value::Int(self.runs as i64));
        root.insert("host_cores", Value::Int(self.host_cores as i64));
        root.insert("fingerprint", Value::Str(self.fingerprint.clone()));
        root.insert(
            "engine_sweep",
            Value::Array(
                self.points
                    .iter()
                    .map(|p| {
                        let mut t = Value::table();
                        t.insert("sim_threads", Value::Int(p.sim_threads as i64));
                        t.insert("jobs", Value::Int(p.jobs as i64));
                        t.insert("wall_ms", Value::Float(round(p.wall_ms)));
                        t.insert("speedup", Value::Float(round(p.speedup)));
                        t.insert("events", Value::Int(p.events as i64));
                        t.insert("events_per_sec", Value::Float(p.events_per_sec.round()));
                        t.insert("identical", Value::Bool(p.identical));
                        t.insert("verified", Value::Bool(p.verified));
                        t
                    })
                    .collect(),
            ),
        );
        root.to_json()
    }

    /// One compact JSON line for `BENCH_history.jsonl` (engine mode).
    pub fn history_line(&self, commit: &str) -> String {
        let json_str = |s: &str| Value::Str(s.to_string()).to_json().trim().to_string();
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"sim_threads\":{},\"jobs\":{},\"wall_ms\":{:.3},\"speedup\":{:.3},\
                     \"events_per_sec\":{:.0},\"identical\":{}}}",
                    p.sim_threads, p.jobs, p.wall_ms, p.speedup, p.events_per_sec, p.identical,
                )
            })
            .collect();
        format!(
            "{{\"commit\":{},\"campaign\":{},\"host_cores\":{},\"runs\":{},\
             \"fingerprint\":{},\"engine\":[{}]}}",
            json_str(commit),
            json_str(&self.campaign),
            self.host_cores,
            self.runs,
            json_str(&self.fingerprint),
            points.join(","),
        )
    }

    /// One line per ladder point for terminals.
    pub fn human_summary(&self) -> String {
        let mut out = format!(
            "bench --engine {:?}: {} runs, {} host core(s), fingerprint {}\n",
            self.campaign, self.runs, self.host_cores, self.fingerprint,
        );
        out.push_str(&one_core_note(self.host_cores));
        for p in &self.points {
            out.push_str(&format!(
                "  sim_threads={:<3} jobs={:<3} {:>10.3} ms  {:>6.2}x  {:>12.0} events/s  {}{}\n",
                p.sim_threads,
                p.jobs,
                p.wall_ms,
                p.speedup,
                p.events_per_sec,
                if p.identical { "byte-identical" } else { "ARTIFACT DIVERGED" },
                if p.verified { "" } else { " VERIFICATION FAILED" },
            ));
        }
        out
    }
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The engine scaling harness: runs `manifest` once per point of the
/// `sim_threads_list` × `jobs_list` cross product (each timed as the best
/// of `repeat` executions), cross-checks every artifact byte for byte
/// against the always-executed serial baseline (`sim_threads = 1,
/// jobs = 1`), and folds every artifact digest into one determinism
/// fingerprint.
pub fn bench_engine(
    manifest: &Manifest,
    sim_threads_list: &[usize],
    jobs_list: &[usize],
    repeat: usize,
) -> EngineReport {
    assert!(!sim_threads_list.is_empty(), "bench --engine needs at least one sim_threads value");
    assert!(!jobs_list.is_empty(), "bench --engine needs at least one jobs value");
    let repeat = repeat.max(1);
    let mut runs = 0;
    let mut measure = |sim_threads: usize, jobs: usize| {
        let mut pinned = manifest.clone();
        pinned.sim_threads = Some(sim_threads);
        let mut best = f64::INFINITY;
        let mut artifact = String::new();
        let mut verified = true;
        let mut events: u64 = 0;
        for r in 0..repeat {
            let start = Instant::now();
            let campaign = run_campaign_jobs(&pinned, jobs, |_| {});
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            if r == 0 {
                verified = campaign.verified();
                artifact = campaign.to_json();
                runs = campaign.runs.len();
                events = campaign
                    .runs
                    .iter()
                    .filter(|run| !run.memoized)
                    .filter_map(|run| run.report.as_ref())
                    .map(mondrian_pipeline::PipelineReport::events)
                    .sum();
            }
        }
        (artifact, best, verified, events)
    };
    let (base_artifact, base_wall, base_verified, base_events) = measure(1, 1);
    let mut fingerprint = fnv1a(format!("{:016x}", fnv1a(base_artifact.as_bytes())).as_bytes());
    let mut points = Vec::with_capacity(sim_threads_list.len() * jobs_list.len());
    for &sim_threads in sim_threads_list {
        for &jobs in jobs_list {
            let (artifact, wall_ms, verified, events) = if (sim_threads, jobs) == (1, 1) {
                (base_artifact.clone(), base_wall, base_verified, base_events)
            } else {
                measure(sim_threads, jobs)
            };
            // Digest-of-digests: fold this point's artifact digest into
            // the running fingerprint.
            for &b in format!("{:016x}", fnv1a(artifact.as_bytes())).as_bytes() {
                fingerprint ^= u64::from(b);
                fingerprint = fingerprint.wrapping_mul(0x0000_0100_0000_01b3);
            }
            points.push(EnginePoint {
                sim_threads,
                jobs,
                wall_ms,
                speedup: base_wall / wall_ms.max(1e-9),
                events,
                events_per_sec: events as f64 * 1e3 / wall_ms.max(1e-9),
                identical: artifact == base_artifact,
                verified,
            });
        }
    }
    EngineReport {
        campaign: manifest.name.clone(),
        runs,
        host_cores: host_cores(),
        fingerprint: format!("{fingerprint:016x}"),
        points,
    }
}

/// One point of the cold/warm persistence ladder: a full campaign against
/// the throwaway store.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePoint {
    /// `"cold"` for the store-populating run, `"warm"` for each re-run.
    pub label: String,
    /// Wall-clock milliseconds for the whole campaign.
    pub wall_ms: f64,
    /// Cold wall time divided by this point's.
    pub speedup: f64,
    /// Persistent-store hits (run + stage + ref entries served).
    pub cache_hits: u64,
    /// Persistent-store misses.
    pub cache_misses: u64,
    /// Store bytes moved (read + written).
    pub cache_bytes: u64,
    /// Runs that actually entered the simulator (neither memoized in
    /// process nor served whole from the persistent store). Warm points
    /// must report `0` — that is the claim `bench --cache` exists to gate.
    pub simulated: usize,
    /// Whether the artifact matched the cold run byte for byte.
    pub identical: bool,
    /// Whether every stage of every run verified.
    pub verified: bool,
}

/// Results of one cold/warm persistence sweep (`mondrian bench --cache`).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheReport {
    /// Campaign name.
    pub campaign: String,
    /// Runs in the sweep cross product.
    pub runs: usize,
    /// Host cores available when the benchmark ran.
    pub host_cores: usize,
    /// The cold/warm ladder: one cold point, then the warm repeats.
    pub points: Vec<CachePoint>,
}

impl CacheReport {
    /// Whether every point verified and byte-matched the cold artifact,
    /// every warm point was served entirely from the store (zero
    /// simulated runs), and every warm point actually hit it.
    pub fn ok(&self) -> bool {
        self.points.iter().all(|p| {
            p.identical
                && p.verified
                && (p.label == "cold" || (p.simulated == 0 && p.cache_hits > 0))
        })
    }

    /// The JSON document written to `BENCH_sweep.json` in cache mode.
    pub fn to_json(&self) -> String {
        let round = |x: f64| (x * 1000.0).round() / 1000.0;
        let mut root = Value::table();
        root.insert("campaign", Value::Str(self.campaign.clone()));
        root.insert("runs", Value::Int(self.runs as i64));
        root.insert("host_cores", Value::Int(self.host_cores as i64));
        root.insert(
            "cache_sweep",
            Value::Array(
                self.points
                    .iter()
                    .map(|p| {
                        let mut t = Value::table();
                        t.insert("label", Value::Str(p.label.clone()));
                        t.insert("wall_ms", Value::Float(round(p.wall_ms)));
                        t.insert("speedup", Value::Float(round(p.speedup)));
                        t.insert("cache_hits", Value::Int(p.cache_hits as i64));
                        t.insert("cache_misses", Value::Int(p.cache_misses as i64));
                        t.insert("cache_bytes", Value::Int(p.cache_bytes as i64));
                        t.insert("simulated", Value::Int(p.simulated as i64));
                        t.insert("identical", Value::Bool(p.identical));
                        t.insert("verified", Value::Bool(p.verified));
                        t
                    })
                    .collect(),
            ),
        );
        root.to_json()
    }

    /// One compact JSON line for `BENCH_history.jsonl` (cache mode).
    pub fn history_line(&self, commit: &str) -> String {
        let json_str = |s: &str| Value::Str(s.to_string()).to_json().trim().to_string();
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"label\":{},\"wall_ms\":{:.3},\"speedup\":{:.3},\"cache_hits\":{},\
                     \"simulated\":{},\"identical\":{}}}",
                    json_str(&p.label),
                    p.wall_ms,
                    p.speedup,
                    p.cache_hits,
                    p.simulated,
                    p.identical,
                )
            })
            .collect();
        format!(
            "{{\"commit\":{},\"campaign\":{},\"host_cores\":{},\"runs\":{},\"cache\":[{}]}}",
            json_str(commit),
            json_str(&self.campaign),
            self.host_cores,
            self.runs,
            points.join(","),
        )
    }

    /// One line per ladder point for terminals.
    pub fn human_summary(&self) -> String {
        let mut out = format!(
            "bench --cache {:?}: {} runs, {} host core(s), throwaway store\n",
            self.campaign, self.runs, self.host_cores,
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:<5} {:>10.3} ms  {:>6.2}x  {:>6} hits  {:>6} misses  {:>4} simulated  {}{}\n",
                p.label,
                p.wall_ms,
                p.speedup,
                p.cache_hits,
                p.cache_misses,
                p.simulated,
                if p.identical { "byte-identical" } else { "ARTIFACT DIVERGED" },
                if p.verified { "" } else { " VERIFICATION FAILED" },
            ));
        }
        out
    }
}

/// The cold/warm persistence ladder: one cold campaign populates a
/// throwaway store under the system temp directory, then `repeat` warm
/// campaigns re-run against it — each must byte-match the cold artifact
/// while simulating nothing. A fresh [`Store`] instance per point keeps
/// the hit/miss counters per-ladder-point. The throwaway root is removed
/// before returning.
pub fn bench_cache(manifest: &Manifest, repeat: usize) -> CacheReport {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "mondrian-bench-cache-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&root);

    let measure = |label: &str| {
        let store = Store::open(&root, &store_salt()).ok().map(Arc::new);
        let start = Instant::now();
        let campaign = run_campaign_store(manifest, 1, store, &(), |_| {});
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let counters = campaign.cache.unwrap_or_default();
        let simulated = campaign
            .runs
            .iter()
            .filter(|run| run.report.is_some() && !run.memoized && !run.memoized_persistent)
            .count();
        let point = CachePoint {
            label: label.to_string(),
            wall_ms,
            speedup: 1.0,
            cache_hits: counters.hits(),
            cache_misses: counters.misses(),
            cache_bytes: counters.bytes(),
            simulated,
            identical: true,
            verified: campaign.verified(),
        };
        (point, campaign.to_json(), campaign.runs.len())
    };

    let (mut cold, cold_artifact, runs) = measure("cold");
    cold.speedup = 1.0;
    let cold_wall = cold.wall_ms;
    let mut points = vec![cold];
    for _ in 0..repeat.max(1) {
        let (mut warm, artifact, _) = measure("warm");
        warm.speedup = cold_wall / warm.wall_ms.max(1e-9);
        warm.identical = artifact == cold_artifact;
        points.push(warm);
    }
    let _ = std::fs::remove_dir_all(&root);
    CacheReport { campaign: manifest.name.clone(), runs, host_cores: host_cores(), points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Format;

    const MANIFEST: &str = r#"
        [campaign]
        name = "bench-smoke"
        systems = ["cpu", "nmp-rand"]
        tuples_per_vault = 64

        [[stage]]
        op = "filter"

        [[stage]]
        op = "count_by_key"
    "#;

    #[test]
    fn bench_ladder_is_identical_across_jobs() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let report = bench(&manifest, &[1, 2, 4], 1);
        assert!(report.ok(), "parallel artifacts must match the serial baseline");
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.runs, 2);
        let json = report.to_json();
        crate::value::parse_json(&json).unwrap();
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"events_per_sec\""));
        assert!(report.human_summary().contains("byte-identical"));
        assert!(report.human_summary().contains("events/s"));
        // Events are engine work, identical at every ladder point.
        assert!(report.points[0].events > 0);
        assert!(report.points.iter().all(|p| p.events == report.points[0].events));
        assert!(report.points.iter().all(|p| p.events_per_sec > 0.0));
    }

    #[test]
    fn history_line_is_one_valid_json_object() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let report = bench(&manifest, &[1, 2], 1);
        let line = report.history_line("abc123def456");
        assert!(!line.contains('\n'), "jsonl: exactly one line");
        // Awkward strings must still serialize as legal JSON.
        let mut odd = report.clone();
        odd.campaign = "run\u{7f}\"name\\".to_string();
        crate::value::parse_json(&odd.history_line("c\u{1}sha")).unwrap();
        let doc = crate::value::parse_json(&line).unwrap();
        assert_eq!(doc.get("commit").and_then(crate::value::Value::as_str), Some("abc123def456"));
        assert_eq!(
            doc.get("sweep").and_then(crate::value::Value::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("host_cores").is_some());
    }

    #[test]
    fn engine_ladder_is_identical_and_fingerprint_is_stable() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let report = bench_engine(&manifest, &[1, 2, 4], &[1, 2], 1);
        assert!(report.ok(), "every (sim_threads, jobs) artifact must match the serial baseline");
        assert_eq!(report.points.len(), 6);
        assert!(report.points.iter().all(|p| p.events == report.points[0].events));
        assert!(report.points.iter().all(|p| p.events_per_sec > 0.0));
        // The fingerprint is a pure function of the (deterministic)
        // artifacts: an independent sweep reproduces it exactly.
        let again = bench_engine(&manifest, &[1, 2, 4], &[1, 2], 1);
        assert_eq!(report.fingerprint, again.fingerprint);
        assert_eq!(report.fingerprint.len(), 16);
        let json = report.to_json();
        let doc = crate::value::parse_json(&json).unwrap();
        assert_eq!(
            doc.get("fingerprint").and_then(crate::value::Value::as_str),
            Some(report.fingerprint.as_str())
        );
        assert_eq!(
            doc.get("engine_sweep").and_then(crate::value::Value::as_array).map(<[_]>::len),
            Some(6)
        );
        let line = report.history_line("abc123");
        assert!(!line.contains('\n'));
        let doc = crate::value::parse_json(&line).unwrap();
        assert!(doc.get("fingerprint").is_some());
        assert!(report.human_summary().contains("sim_threads=1"));
    }

    #[test]
    fn plain_bench_records_the_sim_threads_knob() {
        let pinned =
            MANIFEST.replace("tuples_per_vault = 64", "tuples_per_vault = 64\nsim_threads = 2");
        let manifest = Manifest::parse(&pinned, Format::Toml).unwrap();
        let report = bench(&manifest, &[1], 1);
        assert_eq!(report.sim_threads, 2);
        assert!(report.to_json().contains("\"sim_threads\": 2"));
        assert!(report.history_line("abc").contains("\"sim_threads\":2"));
        // Unpinned manifests record the follow-the-executor default.
        let auto = bench(&Manifest::parse(MANIFEST, Format::Toml).unwrap(), &[1], 1);
        assert_eq!(auto.sim_threads, 0);
        assert!(auto.human_summary().contains("sim_threads=auto"));
    }

    #[test]
    fn cache_ladder_cold_populates_then_warm_simulates_nothing() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let report = bench_cache(&manifest, 2);
        assert!(report.ok(), "warm points must byte-match cold and simulate nothing");
        assert_eq!(report.points.len(), 3, "one cold point + --repeat warm points");
        let cold = &report.points[0];
        assert_eq!(cold.label, "cold");
        assert!(cold.simulated > 0, "the cold run populates the store by simulating");
        assert!(cold.cache_bytes > 0, "the cold run writes entries");
        for warm in &report.points[1..] {
            assert_eq!(warm.label, "warm");
            assert_eq!(warm.simulated, 0);
            assert!(warm.cache_hits > 0);
            assert!(warm.identical);
        }
        let doc = crate::value::parse_json(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("cache_sweep").and_then(crate::value::Value::as_array).map(<[_]>::len),
            Some(3)
        );
        let line = report.history_line("abc123");
        assert!(!line.contains('\n'), "jsonl: exactly one line");
        let doc = crate::value::parse_json(&line).unwrap();
        assert!(doc.get("cache").is_some());
        assert!(report.human_summary().contains("byte-identical"));
        // Plain bench stays storeless: its ladder records zero hits.
        let plain = bench(&manifest, &[1], 1);
        assert!(plain.to_json().contains("\"cache_hits\": 0"));
        assert!(plain.history_line("abc").contains("\"cache_hits\":0"));
    }

    #[test]
    fn one_core_note_only_fires_on_one_core() {
        assert!(one_core_note(1).contains("not meaningful"));
        assert!(one_core_note(2).is_empty());
        assert!(one_core_note(64).is_empty());
    }

    #[test]
    fn bench_baseline_is_single_worker_even_when_absent_from_ladder() {
        // A ladder without jobs=1 must still gate against a serial run,
        // not against its own first entry.
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let report = bench(&manifest, &[4, 8], 1);
        assert!(report.ok());
        assert_eq!(
            report.points.iter().map(|p| p.jobs).collect::<Vec<_>>(),
            vec![4, 8],
            "the implicit baseline run is not a ladder point"
        );
    }
}
