//! `mondrian bench`: the wall-clock benchmark harness for the parallel
//! execution engine.
//!
//! Runs one campaign at a ladder of `jobs` values, times each full
//! execution on the host clock, and cross-checks that every parallel run
//! produced a result artifact **byte-identical** to the single-worker
//! baseline — the determinism guarantee, enforced on every benchmark.
//! The report (`BENCH_sweep.json`) records the host core count alongside
//! the sweep, so a flat curve on a one-core container reads as expected
//! rather than as a regression.

use std::time::Instant;

use crate::campaign::run_campaign_jobs;
use crate::manifest::Manifest;
use crate::value::Value;

/// One point of the jobs ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Worker threads used.
    pub jobs: usize,
    /// Best-of-`repeat` wall-clock milliseconds for the whole campaign.
    pub wall_ms: f64,
    /// Single-worker baseline wall time divided by this point's.
    pub speedup: f64,
    /// Discrete engine events the campaign's non-memoized runs processed
    /// (deterministic, identical at every ladder point).
    pub events: u64,
    /// Engine events simulated per host wall-clock second at this point —
    /// the harness's throughput figure of merit.
    pub events_per_sec: f64,
    /// Whether the artifact matched the single-worker baseline byte for
    /// byte.
    pub identical: bool,
    /// Whether every stage of every run verified.
    pub verified: bool,
}

/// Results of one benchmark sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Campaign name.
    pub campaign: String,
    /// Runs in the sweep cross product.
    pub runs: usize,
    /// Runs served from the full-run memo.
    pub memo_hits: usize,
    /// Host cores available when the benchmark ran.
    pub host_cores: usize,
    /// The jobs ladder, in the requested order.
    pub points: Vec<BenchPoint>,
}

impl BenchReport {
    /// Whether every point verified and matched the baseline artifact.
    pub fn ok(&self) -> bool {
        self.points.iter().all(|p| p.identical && p.verified)
    }

    /// The JSON document written to `BENCH_sweep.json`. Wall times are
    /// host measurements and change run to run; everything else is
    /// deterministic.
    pub fn to_json(&self) -> String {
        let round = |x: f64| (x * 1000.0).round() / 1000.0;
        let mut root = Value::table();
        root.insert("campaign", Value::Str(self.campaign.clone()));
        root.insert("runs", Value::Int(self.runs as i64));
        root.insert("memo_hits", Value::Int(self.memo_hits as i64));
        root.insert("host_cores", Value::Int(self.host_cores as i64));
        root.insert(
            "sweep",
            Value::Array(
                self.points
                    .iter()
                    .map(|p| {
                        let mut t = Value::table();
                        t.insert("jobs", Value::Int(p.jobs as i64));
                        t.insert("wall_ms", Value::Float(round(p.wall_ms)));
                        t.insert("speedup", Value::Float(round(p.speedup)));
                        t.insert("events", Value::Int(p.events as i64));
                        t.insert("events_per_sec", Value::Float(p.events_per_sec.round()));
                        t.insert("identical", Value::Bool(p.identical));
                        t.insert("verified", Value::Bool(p.verified));
                        t
                    })
                    .collect(),
            ),
        );
        root.to_json()
    }

    /// One compact JSON line for `BENCH_history.jsonl`: the commit, host
    /// core count and the full `sim_wall_ms` ladder. Appending (instead
    /// of overwriting, as `BENCH_sweep.json` does) accumulates a
    /// wall-clock trend across commits.
    pub fn history_line(&self, commit: &str) -> String {
        // Strings go through the Value serializer's JSON escaping (Rust's
        // {:?} Debug escapes are not legal JSON).
        let json_str = |s: &str| Value::Str(s.to_string()).to_json().trim().to_string();
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"jobs\":{},\"wall_ms\":{:.3},\"speedup\":{:.3},\
                     \"events_per_sec\":{:.0},\"identical\":{}}}",
                    p.jobs, p.wall_ms, p.speedup, p.events_per_sec, p.identical,
                )
            })
            .collect();
        format!(
            "{{\"commit\":{},\"campaign\":{},\"host_cores\":{},\"runs\":{},\"sweep\":[{}]}}",
            json_str(commit),
            json_str(&self.campaign),
            self.host_cores,
            self.runs,
            points.join(","),
        )
    }

    /// One line per ladder point for terminals.
    pub fn human_summary(&self) -> String {
        let mut out = format!(
            "bench {:?}: {} runs ({} memoized), {} host core(s)\n",
            self.campaign, self.runs, self.memo_hits, self.host_cores,
        );
        for p in &self.points {
            out.push_str(&format!(
                "  jobs={:<3} {:>10.3} ms  {:>6.2}x  {:>12.0} events/s  {}{}\n",
                p.jobs,
                p.wall_ms,
                p.speedup,
                p.events_per_sec,
                if p.identical { "byte-identical" } else { "ARTIFACT DIVERGED" },
                if p.verified { "" } else { " VERIFICATION FAILED" },
            ));
        }
        out
    }
}

/// Runs `manifest` once per entry of `jobs_list` (each timed as the best
/// of `repeat` executions) and cross-checks every artifact byte for byte
/// against a **single-worker baseline** — which is always executed, even
/// when `1` is absent from the ladder, so a parallelism bug can never
/// hide behind a ladder that skips the serial run.
pub fn bench(manifest: &Manifest, jobs_list: &[usize], repeat: usize) -> BenchReport {
    assert!(!jobs_list.is_empty(), "bench needs at least one jobs value");
    let repeat = repeat.max(1);
    let mut runs = 0;
    let mut memo_hits = 0;
    let mut measure = |jobs: usize| {
        let mut best = f64::INFINITY;
        let mut artifact = String::new();
        let mut verified = true;
        let mut events: u64 = 0;
        for r in 0..repeat {
            let start = Instant::now();
            let campaign = run_campaign_jobs(manifest, jobs, |_| {});
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            // Campaigns are deterministic across repeats: serialize the
            // artifact (the expensive part) only once per ladder point.
            if r == 0 {
                verified = campaign.verified();
                artifact = campaign.to_json();
                runs = campaign.runs.len();
                memo_hits = campaign.memo_hits;
                // Memoized runs replay a cached report without touching
                // the event loop, so they contribute no throughput work.
                events = campaign
                    .runs
                    .iter()
                    .filter(|run| !run.memoized)
                    .map(|run| run.report.events())
                    .sum();
            }
        }
        (artifact, best, verified, events)
    };
    let (base_artifact, base_wall, base_verified, base_events) = measure(1);
    let mut points = Vec::with_capacity(jobs_list.len());
    for &jobs in jobs_list {
        let (artifact, wall_ms, verified, events) = if jobs == 1 {
            (base_artifact.clone(), base_wall, base_verified, base_events)
        } else {
            measure(jobs)
        };
        points.push(BenchPoint {
            jobs,
            wall_ms,
            speedup: base_wall / wall_ms.max(1e-9),
            events,
            events_per_sec: events as f64 * 1e3 / wall_ms.max(1e-9),
            identical: artifact == base_artifact,
            verified,
        });
    }
    BenchReport {
        campaign: manifest.name.clone(),
        runs,
        memo_hits,
        host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Format;

    const MANIFEST: &str = r#"
        [campaign]
        name = "bench-smoke"
        systems = ["cpu", "nmp-rand"]
        tuples_per_vault = 64

        [[stage]]
        op = "filter"

        [[stage]]
        op = "count_by_key"
    "#;

    #[test]
    fn bench_ladder_is_identical_across_jobs() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let report = bench(&manifest, &[1, 2, 4], 1);
        assert!(report.ok(), "parallel artifacts must match the serial baseline");
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.runs, 2);
        let json = report.to_json();
        crate::value::parse_json(&json).unwrap();
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"events_per_sec\""));
        assert!(report.human_summary().contains("byte-identical"));
        assert!(report.human_summary().contains("events/s"));
        // Events are engine work, identical at every ladder point.
        assert!(report.points[0].events > 0);
        assert!(report.points.iter().all(|p| p.events == report.points[0].events));
        assert!(report.points.iter().all(|p| p.events_per_sec > 0.0));
    }

    #[test]
    fn history_line_is_one_valid_json_object() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let report = bench(&manifest, &[1, 2], 1);
        let line = report.history_line("abc123def456");
        assert!(!line.contains('\n'), "jsonl: exactly one line");
        // Awkward strings must still serialize as legal JSON.
        let mut odd = report.clone();
        odd.campaign = "run\u{7f}\"name\\".to_string();
        crate::value::parse_json(&odd.history_line("c\u{1}sha")).unwrap();
        let doc = crate::value::parse_json(&line).unwrap();
        assert_eq!(doc.get("commit").and_then(crate::value::Value::as_str), Some("abc123def456"));
        assert_eq!(
            doc.get("sweep").and_then(crate::value::Value::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("host_cores").is_some());
    }

    #[test]
    fn bench_baseline_is_single_worker_even_when_absent_from_ladder() {
        // A ladder without jobs=1 must still gate against a serial run,
        // not against its own first entry.
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let report = bench(&manifest, &[4, 8], 1);
        assert!(report.ok());
        assert_eq!(
            report.points.iter().map(|p| p.jobs).collect::<Vec<_>>(),
            vec![4, 8],
            "the implicit baseline run is not a ladder point"
        );
    }
}
