//! JUnit XML rendering of a campaign: one `<testsuite>` per campaign,
//! one `<testcase>` per sweep point, so CI systems can surface degraded
//! campaigns (tripped limits, failed assertions, worker panics) without
//! parsing `result.json`.
//!
//! The XML is fully deterministic: testcase times are the runs'
//! *simulated* makespans (1 ps = 1e-12 s), never host wall clock, so —
//! like the JSON artifact — the report is byte-identical for every
//! `--jobs` / `--sim-threads` value.

use crate::campaign::{Campaign, CampaignRun, ExitReason};

/// Renders `campaign` as a JUnit XML document.
///
/// Mapping: a run with exit `ok` passes; a run that executed but failed
/// (assertion or worker panic) is a `<failure>`; a run skipped by a
/// tripped limit (including campaign truncation) is `<skipped>`.
pub fn junit_xml(campaign: &Campaign) -> String {
    let mut failures = 0usize;
    let mut skipped = 0usize;
    for run in &campaign.runs {
        match case_kind(run) {
            CaseKind::Pass => {}
            CaseKind::Failure => failures += 1,
            CaseKind::Skipped => skipped += 1,
        }
    }
    let name = escape(&campaign.manifest.name);
    let tests = campaign.runs.len();
    let mut xml = String::new();
    xml.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    xml.push_str(&format!(
        "<testsuites name=\"{name}\" tests=\"{tests}\" failures=\"{failures}\" \
         skipped=\"{skipped}\">\n"
    ));
    xml.push_str(&format!(
        "  <testsuite name=\"{name}\" tests=\"{tests}\" failures=\"{failures}\" \
         skipped=\"{skipped}\">\n"
    ));
    for run in &campaign.runs {
        let case = escape(&run.spec.id());
        // Simulated seconds: deterministic, unlike host wall clock.
        let time = run.report.as_ref().map_or(0, |r| r.makespan_ps()) as f64 * 1e-12;
        let message = escape(&format!("{}: {}", run.exit.reason.as_str(), run.exit.detail));
        match case_kind(run) {
            CaseKind::Pass => {
                xml.push_str(&format!(
                    "    <testcase name=\"{case}\" classname=\"{name}\" time=\"{time:.12}\"/>\n"
                ));
            }
            CaseKind::Failure => {
                xml.push_str(&format!(
                    "    <testcase name=\"{case}\" classname=\"{name}\" time=\"{time:.12}\">\n      \
                     <failure message=\"{message}\"/>\n    </testcase>\n"
                ));
            }
            CaseKind::Skipped => {
                xml.push_str(&format!(
                    "    <testcase name=\"{case}\" classname=\"{name}\" time=\"{time:.12}\">\n      \
                     <skipped message=\"{message}\"/>\n    </testcase>\n"
                ));
            }
        }
    }
    xml.push_str("  </testsuite>\n</testsuites>\n");
    xml
}

enum CaseKind {
    Pass,
    Failure,
    Skipped,
}

fn case_kind(run: &CampaignRun) -> CaseKind {
    match run.exit.reason {
        ExitReason::Ok => CaseKind::Pass,
        // Tripped limits skip work; everything else is a real failure.
        reason if reason.is_limit() => CaseKind::Skipped,
        _ => CaseKind::Failure,
    }
}

/// Escapes the five XML-special characters for text and attribute
/// positions.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::manifest::{Format, Manifest};

    const MANIFEST: &str = r#"
        [campaign]
        name = "junit <&> smoke"
        systems = ["mondrian"]
        tuples_per_vault = 32

        [[stage]]
        op = "filter"

        [[stage]]
        op = "sort_by_key"
    "#;

    #[test]
    fn clean_campaign_renders_passing_suite() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let campaign = run_campaign(&manifest, |_| {});
        let xml = junit_xml(&campaign);
        assert!(xml.starts_with("<?xml version=\"1.0\""));
        assert!(xml.contains("tests=\"1\" failures=\"0\" skipped=\"0\""));
        assert!(xml.contains("junit &lt;&amp;&gt; smoke"), "name is escaped");
        assert!(!xml.contains("<failure"));
        assert!(!xml.contains("<skipped"));
        // Deterministic across re-runs.
        assert_eq!(xml, junit_xml(&run_campaign(&manifest, |_| {})));
    }

    #[test]
    fn limit_skips_render_as_skipped_cases() {
        let text = format!("{MANIFEST}\n[limits]\nmax_sweep_points = 0\n");
        let manifest = Manifest::parse(&text, Format::Toml).unwrap();
        let campaign = run_campaign(&manifest, |_| {});
        let xml = junit_xml(&campaign);
        assert!(xml.contains("tests=\"1\" failures=\"0\" skipped=\"1\""));
        assert!(xml.contains("<skipped message=\"limit_sweep_points:"));
        assert!(xml.contains("time=\"0."));
    }

    #[test]
    fn escape_covers_the_specials() {
        assert_eq!(escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
    }
}
