//! `mondrian diff`: compare two result artifacts run for run and emit a
//! speedup/regression table.
//!
//! Runs are matched on their identifying axes (system, topology,
//! tuples-per-vault, seed, theta, underprovisioning); each matched pair
//! contributes one row with the makespan speedup of B over A and the
//! energy ratio. CI wires this against a checked-in baseline artifact:
//! `mondrian diff baseline.json result.json --fail-on-regression 1` exits
//! non-zero when any run's makespan regresses by more than 1%.

use crate::value::{parse_json, Value};

/// One matched run pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// The run's identifying axes.
    pub key: String,
    /// Makespan in A, picoseconds.
    pub makespan_a: i64,
    /// Makespan in B, picoseconds.
    pub makespan_b: i64,
    /// Energy in A, joules.
    pub energy_a: f64,
    /// Energy in B, joules.
    pub energy_b: f64,
    /// Whether B's run carries a schema-8 `planned` block whose planner
    /// schedule won the race (`None` for non-auto runs and older
    /// schemas) — lets the table attribute B's win to the planner.
    pub planner_won_b: Option<bool>,
}

impl DiffRow {
    /// Speedup of B over A (> 1 means B is faster).
    pub fn speedup(&self) -> f64 {
        self.makespan_a as f64 / self.makespan_b.max(1) as f64
    }

    /// Relative makespan regression of B versus A in percent (positive
    /// means B is slower).
    pub fn regression_pct(&self) -> f64 {
        (self.makespan_b as f64 / self.makespan_a.max(1) as f64 - 1.0) * 100.0
    }
}

/// The comparison of two artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Matched run pairs, in A's order.
    pub rows: Vec<DiffRow>,
    /// Run keys present only in A.
    pub only_a: Vec<String>,
    /// Run keys present only in B.
    pub only_b: Vec<String>,
}

impl DiffReport {
    /// The worst (most positive) makespan regression across rows, percent.
    pub fn max_regression_pct(&self) -> f64 {
        self.rows.iter().map(DiffRow::regression_pct).fold(f64::NEG_INFINITY, f64::max)
    }

    /// [`DiffReport::render`] with the host core count attached: on a
    /// one-core host, prepends the note that wall-clock-derived speedups
    /// carry no signal there (simulated makespans are host-independent,
    /// but readers routinely eyeball the two side by side).
    pub fn render_with_host(&self, host_cores: usize) -> String {
        let mut out = String::new();
        if host_cores == 1 {
            out.push_str("note: host_cores=1 — wall-clock speedups not meaningful on this host\n");
        }
        out.push_str(&self.render());
        out
    }

    /// Renders the speedup/regression table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<56} {:>14} {:>14} {:>8} {:>8}\n",
            "run", "A µs", "B µs", "speedup", "energy×"
        ));
        for row in &self.rows {
            let energy_ratio = if row.energy_a > 0.0 { row.energy_b / row.energy_a } else { 1.0 };
            let marker = if row.regression_pct() > 0.0 {
                " <- slower"
            } else if row.planner_won_b == Some(true) {
                " <- planner win"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<56} {:>14.3} {:>14.3} {:>7.3}x {:>7.3}x{}\n",
                row.key,
                row.makespan_a as f64 / 1e6,
                row.makespan_b as f64 / 1e6,
                row.speedup(),
                energy_ratio,
                marker,
            ));
        }
        for k in &self.only_a {
            out.push_str(&format!("{k:<56} only in A\n"));
        }
        for k in &self.only_b {
            out.push_str(&format!("{k:<56} only in B\n"));
        }
        if let Some(worst) =
            self.rows.iter().max_by(|a, b| a.regression_pct().total_cmp(&b.regression_pct()))
        {
            out.push_str(&format!(
                "{} matched runs; worst makespan regression {:+.2}% ({})\n",
                self.rows.len(),
                worst.regression_pct(),
                worst.key,
            ));
        }
        out
    }
}

/// The identifying key of one run object. `topology` defaults to `tiny`
/// when absent so schema-1 artifacts (which omitted it) still match
/// schema-2 runs of the same campaign. Only the sweep axes participate:
/// provenance fields — `memoized`, the schema-7 `memoized_persistent`
/// cache flag, `metrics.host.*` — never affect matching or comparison,
/// so a warm `--timings` artifact diffs clean against a cold one.
fn run_key(run: &Value) -> String {
    let mut key = String::new();
    for field in ["system", "topology", "tuples_per_vault", "seed", "zipf_theta", "underprovision"]
    {
        let rendered = match run.get(field) {
            Some(Value::Str(s)) => s.clone(),
            Some(Value::Int(i)) => i.to_string(),
            Some(Value::Float(f)) => format!("{f}"),
            None if field == "topology" => "tiny".to_string(),
            _ => continue,
        };
        if !key.is_empty() {
            key.push(' ');
        }
        key.push_str(&format!("{field}={rendered}"));
    }
    key
}

/// The makespan of a run object; pre-schema-2 artifacts fall back to the
/// serial runtime.
fn run_makespan(run: &Value) -> Option<i64> {
    run.get("makespan_ps").or_else(|| run.get("runtime_ps")).and_then(Value::as_int)
}

/// Compares two result artifacts.
///
/// Schema-6 artifacts from limit-tripped campaigns contain *skipped*
/// runs (`"skipped": true`) that carry sweep axes but no simulation
/// data; those are excluded from matching on both sides, so diffing a
/// degraded artifact compares only the runs that actually executed.
///
/// # Errors
///
/// Returns a description of the first parse or schema problem.
pub fn diff(a_text: &str, b_text: &str) -> Result<DiffReport, String> {
    let runs_of = |text: &str, which: &str| -> Result<Vec<Value>, String> {
        let doc = parse_json(text).map_err(|e| format!("{which}: {e}"))?;
        Ok(doc
            .get("runs")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{which}: artifact has no runs array"))?
            .iter()
            .filter(|run| run.get("skipped").is_none())
            .cloned()
            .collect())
    };
    let a_runs = runs_of(a_text, "A")?;
    let b_runs = runs_of(b_text, "B")?;
    let mut b_index: Vec<(String, &Value)> = b_runs.iter().map(|r| (run_key(r), r)).collect();
    let mut rows = Vec::new();
    let mut only_a = Vec::new();
    for a in &a_runs {
        let key = run_key(a);
        let Some(pos) = b_index.iter().position(|(k, _)| *k == key) else {
            only_a.push(key);
            continue;
        };
        let (_, b) = b_index.remove(pos);
        let (Some(ma), Some(mb)) = (run_makespan(a), run_makespan(b)) else {
            return Err(format!("run {key}: missing makespan_ps/runtime_ps"));
        };
        let energy = |r: &Value| r.get("energy_j").and_then(Value::as_float).unwrap_or(0.0);
        rows.push(DiffRow {
            key,
            makespan_a: ma,
            makespan_b: mb,
            energy_a: energy(a),
            energy_b: energy(b),
            planner_won_b: b
                .get("planned")
                .and_then(|p| p.get("planner_won"))
                .and_then(Value::as_bool),
        });
    }
    let only_b = b_index.into_iter().map(|(k, _)| k).collect();
    Ok(DiffReport { rows, only_a, only_b })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(makespan: i64, seed: i64) -> String {
        format!(
            r#"{{"runs": [{{"system": "CPU", "topology": "tiny", "tuples_per_vault": 64,
                "seed": {seed}, "makespan_ps": {makespan}, "energy_j": 1e-6}}]}}"#
        )
    }

    #[test]
    fn matched_runs_compute_speedup() {
        let report = diff(&artifact(2_000_000, 1), &artifact(1_000_000, 1)).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert!((report.rows[0].speedup() - 2.0).abs() < 1e-9);
        assert!(report.max_regression_pct() < 0.0, "B is faster, no regression");
        assert!(report.render().contains("speedup"));
    }

    #[test]
    fn regressions_are_flagged() {
        let report = diff(&artifact(1_000_000, 1), &artifact(1_100_000, 1)).unwrap();
        assert!((report.max_regression_pct() - 10.0).abs() < 1e-9);
        assert!(report.render().contains("slower"));
    }

    #[test]
    fn one_core_hosts_get_a_speedup_caveat() {
        let report = diff(&artifact(2_000_000, 1), &artifact(1_000_000, 1)).unwrap();
        let one = report.render_with_host(1);
        assert!(one.starts_with("note: host_cores=1"));
        assert!(one.ends_with(&report.render()), "the table itself is unchanged");
        assert_eq!(report.render_with_host(8), report.render());
    }

    #[test]
    fn unmatched_runs_are_reported() {
        let report = diff(&artifact(1, 1), &artifact(1, 2)).unwrap();
        assert!(report.rows.is_empty());
        assert_eq!(report.only_a.len(), 1);
        assert_eq!(report.only_b.len(), 1);
        assert!(report.render().contains("only in A"));
    }

    #[test]
    fn schema1_artifacts_match_schema2_tiny_runs() {
        // Schema-1 runs had no topology or makespan fields.
        let v1 = r#"{"runs": [{"system": "CPU", "tuples_per_vault": 64,
            "seed": 1, "runtime_ps": 2000000, "energy_j": 1e-6}]}"#;
        let report = diff(v1, &artifact(1_000_000, 1)).unwrap();
        assert_eq!(report.rows.len(), 1, "topology defaults to tiny for old artifacts");
        assert!((report.rows[0].speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn skipped_runs_are_excluded_from_matching() {
        // A schema-6 degraded artifact: the same axes as `artifact(.., 1)`
        // but truncated by a limit before simulating.
        let degraded = r#"{"runs": [{"system": "CPU", "topology": "tiny",
            "tuples_per_vault": 64, "seed": 1,
            "exit": {"detail": "campaign truncated", "reason": "limit_events"},
            "skipped": true}]}"#;
        let report = diff(degraded, &artifact(1_000_000, 1)).unwrap();
        assert!(report.rows.is_empty(), "skipped runs never match");
        assert!(report.only_a.is_empty(), "nor are they reported as unmatched");
        assert_eq!(report.only_b.len(), 1);
    }

    #[test]
    fn cache_provenance_flags_are_ignored_like_host_metrics() {
        // A schema-7 `--timings` artifact from a warm store marks runs
        // `memoized_persistent`; diffing it against a cold artifact of
        // the same campaign must match every run and report no drift.
        let warm = r#"{"runs": [{"system": "CPU", "topology": "tiny",
            "tuples_per_vault": 64, "seed": 1, "makespan_ps": 2000000,
            "energy_j": 1e-6, "memoized": false, "memoized_persistent": true,
            "metrics": {"host": {"sim_wall_ms": 0.01}}}]}"#;
        let report = diff(&artifact(2_000_000, 1), warm).unwrap();
        assert_eq!(report.rows.len(), 1, "provenance flags must not affect matching");
        assert!((report.rows[0].speedup() - 1.0).abs() < 1e-9);
        assert_eq!(report.max_regression_pct(), 0.0);
    }

    #[test]
    fn planner_wins_are_attributed() {
        // A schema-8 auto run whose planned schedule won the race: the
        // faster B side carries the attribution marker.
        let auto = r#"{"runs": [{"system": "CPU", "topology": "tiny",
            "tuples_per_vault": 64, "seed": 1, "makespan_ps": 1000000,
            "energy_j": 1e-6,
            "planned": {"planner_won": true, "predicted_makespan_ps": 990000}}]}"#;
        let report = diff(&artifact(2_000_000, 1), auto).unwrap();
        assert_eq!(report.rows[0].planner_won_b, Some(true));
        assert!(report.render().contains("planner win"));
        // Without a planned block (older schema or fixed schedule) no
        // attribution appears.
        let report = diff(&artifact(2_000_000, 1), &artifact(1_000_000, 1)).unwrap();
        assert_eq!(report.rows[0].planner_won_b, None);
        assert!(!report.render().contains("planner win"));
        // A regression outranks the attribution marker.
        let slow_auto = auto.replace("1000000", "3000000");
        let report = diff(&artifact(2_000_000, 1), &slow_auto).unwrap();
        assert!(report.render().contains("slower"));
    }

    #[test]
    fn malformed_artifacts_error() {
        assert!(diff("{}", &artifact(1, 1)).is_err());
        assert!(diff("not json", &artifact(1, 1)).is_err());
    }
}
