//! Campaign execution: run every resolved configuration of a manifest and
//! render the results as a deterministic JSON artifact plus a human
//! summary.
//!
//! Two memoization layers keep sweeps from re-simulating identical work:
//!
//! * **Full-run memo** — two runs whose *effective* parameters are equal
//!   (e.g. an underprovisioning sweep on a system that never uses
//!   permutable regions) share one simulation; the later run clones the
//!   earlier report and is marked `memoized` in the artifact.
//! * **Prefix memo** — the pure per-stage reference outputs are keyed by
//!   `(plan, source, stage prefix)` in a [`ExecCache`] shared across the
//!   whole campaign, so sweeping one pipeline over many systems computes
//!   each shared stage-prefix's semantics once.

use std::collections::{BTreeMap, HashMap};

use mondrian_core::SystemKind;
use mondrian_pipeline::{
    BuildSide, ExecCache, PipelineReport, Stage, StageInput, StageSpec, WaveReport,
};

use crate::manifest::{Manifest, RunSpec};
use crate::value::Value;

/// One executed campaign run.
#[derive(Debug)]
pub struct CampaignRun {
    /// The resolved parameters.
    pub spec: RunSpec,
    /// The pipeline's full report.
    pub report: PipelineReport,
    /// Whether the report was cloned from an effectively identical earlier
    /// run instead of re-simulated.
    pub memoized: bool,
}

/// Results of a whole campaign.
#[derive(Debug)]
pub struct Campaign {
    /// The manifest that drove it.
    pub manifest: Manifest,
    /// Every run, in the manifest's deterministic order.
    pub runs: Vec<CampaignRun>,
    /// Runs served from the full-run memo.
    pub memo_hits: usize,
    /// Per-stage reference outputs served from the prefix memo.
    pub reference_hits: u64,
}

/// The parameters that actually influence a run's simulation. Axes that
/// cannot change the outcome are normalized away — underprovisioning only
/// matters on systems with permutable regions — so sweeping them does not
/// re-simulate.
fn effective_key(spec: &RunSpec) -> (SystemKind, bool, usize, u64, Option<u64>, Option<u64>) {
    let underprovision =
        if spec.system.uses_permutability() { spec.underprovision.map(f64::to_bits) } else { None };
    (
        spec.system,
        spec.tiny,
        spec.tuples_per_vault,
        spec.seed,
        spec.theta.map(f64::to_bits),
        underprovision,
    )
}

/// Executes every run of `manifest`, invoking `progress` with each run's
/// one-line outcome as it completes.
pub fn run_campaign<F: FnMut(&CampaignRun)>(manifest: &Manifest, mut progress: F) -> Campaign {
    let pipeline = manifest.pipeline();
    let mut cache = ExecCache::default();
    let mut seen: HashMap<_, usize> = HashMap::new();
    let mut runs: Vec<CampaignRun> = Vec::new();
    let mut memo_hits = 0;
    for spec in manifest.runs() {
        let key = effective_key(&spec);
        let (report, memoized) = match seen.get(&key) {
            Some(&idx) => {
                memo_hits += 1;
                (runs[idx].report.clone(), true)
            }
            None => {
                seen.insert(key, runs.len());
                (pipeline.run_cached(&manifest.config_for(spec), &mut cache), false)
            }
        };
        let run = CampaignRun { spec, report, memoized };
        progress(&run);
        runs.push(run);
    }
    Campaign { manifest: manifest.clone(), runs, memo_hits, reference_hits: cache.reference_hits }
}

impl Campaign {
    /// Whether every stage of every run verified.
    pub fn verified(&self) -> bool {
        self.runs.iter().all(|r| r.report.verified())
    }

    /// The machine-readable result artifact. Fully deterministic: object
    /// keys are sorted, runs follow the manifest's cross-product order,
    /// and every number derives from the seeded simulation.
    pub fn to_json(&self) -> String {
        let mut root = Value::table();
        root.insert("campaign", Value::Str(self.manifest.name.clone()));
        root.insert("schema_version", Value::Int(2));
        root.insert(
            "systems",
            Value::Array(
                self.manifest.systems.iter().map(|s| Value::Str(s.name().to_string())).collect(),
            ),
        );
        root.insert(
            "topology",
            Value::Str(if self.manifest.tiny { "tiny" } else { "scaled" }.to_string()),
        );
        root.insert("concurrency", Value::Str(self.manifest.concurrency.name().to_string()));
        root.insert("stages", Value::Array(self.manifest.stages.iter().map(stage_json).collect()));
        root.insert("verified", Value::Bool(self.verified()));
        root.insert("memo_hits", Value::Int(self.memo_hits as i64));
        root.insert("runs", Value::Array(self.runs.iter().map(run_json).collect()));
        root.to_json()
    }

    /// One line per run for terminals and logs.
    pub fn human_summary(&self) -> String {
        let mut out = String::new();
        for run in &self.runs {
            out.push_str(&run_line(run));
            out.push('\n');
        }
        out.push_str(&format!(
            "{} runs, {} stages each: {}",
            self.runs.len(),
            self.manifest.stages.len(),
            if self.verified() { "all verified" } else { "VERIFICATION FAILURES" },
        ));
        if self.memo_hits > 0 || self.reference_hits > 0 {
            out.push_str(&format!(
                " ({} memoized runs, {} reference-prefix reuses)",
                self.memo_hits, self.reference_hits,
            ));
        }
        out.push('\n');
        out
    }
}

/// The one-line outcome of a run.
pub fn run_line(run: &CampaignRun) -> String {
    format!(
        "{} {:>12.3} µs {:>12.3} µJ  {} → {} rows  {}{}",
        run.spec.label(),
        run.report.makespan_ps() as f64 / 1e6,
        run.report.energy_j() * 1e6,
        run.report.source_rows,
        run.report.output.len(),
        if run.report.verified() { "ok" } else { "FAILED" },
        if run.memoized { " (memo)" } else { "" },
    )
}

fn stage_json(stage: &Stage) -> Value {
    let mut table = BTreeMap::new();
    let spec = &stage.spec;
    table.insert("op".to_string(), Value::Str(spec.name().to_string()));
    table
        .insert("basic_operator".to_string(), Value::Str(spec.basic_operator().name().to_string()));
    let input = match stage.input {
        StageInput::Prev => Value::Str("prev".to_string()),
        StageInput::Source => Value::Str("source".to_string()),
        StageInput::Stage(j) => Value::Int(j as i64),
    };
    table.insert("input".to_string(), input);
    match *spec {
        StageSpec::Filter { modulus, remainder } => {
            table.insert("modulus".to_string(), Value::Int(modulus as i64));
            table.insert("remainder".to_string(), Value::Int(remainder as i64));
        }
        StageSpec::LookupKey { key } => {
            table.insert("key".to_string(), Value::Int(key as i64));
        }
        StageSpec::Map { key_mul, key_add } => {
            table.insert("key_mul".to_string(), Value::Int(key_mul as i64));
            table.insert("key_add".to_string(), Value::Int(key_add as i64));
        }
        StageSpec::MapValues { mul, add } => {
            table.insert("mul".to_string(), Value::Int(mul as i64));
            table.insert("add".to_string(), Value::Int(add as i64));
        }
        StageSpec::Join { build } => {
            let build = match build {
                BuildSide::Dimension => Value::Str("dimension".to_string()),
                BuildSide::Stage(i) => Value::Int(i as i64),
            };
            table.insert("build".to_string(), build);
        }
        StageSpec::GroupByKey
        | StageSpec::ReduceByKey
        | StageSpec::CountByKey
        | StageSpec::AggregateByKey
        | StageSpec::SortByKey => {}
    }
    Value::Table(table)
}

fn wave_json(wave: &WaveReport) -> Value {
    let mut table = Value::table();
    table.insert("wave", Value::Int(wave.wave as i64));
    table.insert("concurrent", Value::Bool(wave.concurrent));
    table.insert("runtime_ps", Value::Int(wave.runtime_ps as i64));
    table.insert("serial_runtime_ps", Value::Int(wave.serial_runtime_ps as i64));
    table.insert(
        "branches",
        Value::Array(
            wave.branches
                .iter()
                .map(|b| {
                    let mut branch = Value::table();
                    branch.insert("branch", Value::Int(b.branch as i64));
                    branch.insert(
                        "stages",
                        Value::Array(b.stages.iter().map(|&s| Value::Int(s as i64)).collect()),
                    );
                    branch.insert("first_vault", Value::Int(b.first_vault as i64));
                    branch.insert("vaults", Value::Int(b.vaults as i64));
                    branch.insert("runtime_ps", Value::Int(b.runtime_ps as i64));
                    branch.insert("critical", Value::Bool(b.critical));
                    branch
                })
                .collect(),
        ),
    );
    table
}

fn run_json(run: &CampaignRun) -> Value {
    let mut table = Value::table();
    table.insert("system", Value::Str(run.spec.system.name().to_string()));
    table.insert("topology", Value::Str(if run.spec.tiny { "tiny" } else { "scaled" }.to_string()));
    table.insert("tuples_per_vault", Value::Int(run.spec.tuples_per_vault as i64));
    table.insert("seed", Value::Int(run.spec.seed as i64));
    if let Some(theta) = run.spec.theta {
        table.insert("zipf_theta", Value::Float(theta));
    }
    if let Some(u) = run.spec.underprovision {
        table.insert("underprovision", Value::Float(u));
    }
    table.insert("memoized", Value::Bool(run.memoized));
    table.insert("source_rows", Value::Int(run.report.source_rows as i64));
    table.insert("output_rows", Value::Int(run.report.output.len() as i64));
    table.insert("runtime_ps", Value::Int(run.report.runtime_ps() as i64));
    table.insert("makespan_ps", Value::Int(run.report.makespan_ps() as i64));
    table.insert("instructions", Value::Int(run.report.instructions() as i64));
    table.insert("energy_j", Value::Float(run.report.energy_j()));
    table.insert("verified", Value::Bool(run.report.verified()));
    table.insert(
        "schedule",
        Value::Array(run.report.schedule.waves.iter().map(wave_json).collect()),
    );
    table.insert(
        "stages",
        Value::Array(
            run.report
                .stages
                .iter()
                .map(|s| {
                    let mut stage = Value::table();
                    stage.insert("op", Value::Str(s.spec.name().to_string()));
                    stage.insert(
                        "basic_operator",
                        Value::Str(s.basic_operator().name().to_string()),
                    );
                    stage.insert("wave", Value::Int(s.wave as i64));
                    stage.insert("branch", Value::Int(s.branch as i64));
                    stage.insert("concurrent", Value::Bool(s.concurrent));
                    stage.insert("input_rows", Value::Int(s.input_rows as i64));
                    stage.insert("output_rows", Value::Int(s.output_rows as i64));
                    stage.insert("output_digest", Value::Str(format!("{:016x}", s.output_digest)));
                    stage.insert("runtime_ps", Value::Int(s.report.runtime_ps as i64));
                    stage.insert("serial_runtime_ps", Value::Int(s.serial_runtime_ps as i64));
                    stage.insert("instructions", Value::Int(s.report.instructions as i64));
                    stage.insert("energy_j", Value::Float(s.report.energy.total_j()));
                    stage.insert("phases", Value::Int(s.report.phases.len() as i64));
                    stage.insert("shuffle_retries", Value::Int(s.report.shuffle_retries as i64));
                    stage.insert("engine_verified", Value::Bool(s.report.verified));
                    stage.insert("reference_ok", Value::Bool(s.reference_ok));
                    stage.insert("matches_serial", Value::Bool(s.matches_serial));
                    stage
                })
                .collect(),
        ),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Format;

    const MANIFEST: &str = r#"
        [campaign]
        name = "smoke"
        systems = ["mondrian", "cpu"]
        tuples_per_vault = 64

        [[stage]]
        op = "filter"

        [[stage]]
        op = "reduce_by_key"

        [[stage]]
        op = "sort_by_key"
    "#;

    #[test]
    fn campaign_runs_and_serializes_deterministically() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let a = run_campaign(&manifest, |_| {});
        let b = run_campaign(&manifest, |_| {});
        assert!(a.verified());
        assert_eq!(a.runs.len(), 2);
        assert_eq!(a.to_json(), b.to_json(), "artifact must be byte-identical");
        let json = a.to_json();
        assert!(json.contains("\"campaign\": \"smoke\""));
        assert!(json.contains("\"reference_ok\": true"));
        assert!(json.contains("\"matches_serial\": true"));
        assert!(json.contains("\"output_digest\""));
        // The artifact is valid JSON in our own parser.
        crate::value::parse_json(&json).unwrap();
        // Both systems compute the same functional outputs, so the second
        // system's reference prefixes come from the cache.
        assert_eq!(a.reference_hits, 3, "second system reuses all three prefixes");
    }

    #[test]
    fn human_summary_has_one_line_per_run() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let campaign = run_campaign(&manifest, |_| {});
        let summary = campaign.human_summary();
        assert_eq!(summary.lines().count(), 3, "two runs + the footer");
        assert!(summary.contains("all verified"));
    }

    #[test]
    fn ineffective_axes_are_memoized() {
        // The CPU system never uses permutable regions, so an
        // underprovisioning sweep cannot change its runs: one simulation,
        // N - 1 memo hits.
        let text = MANIFEST.replace("[\"mondrian\", \"cpu\"]", "[\"cpu\"]")
            + "\n[sweep]\nunderprovision = [0.5, 1.0]\n";
        let manifest = Manifest::parse(&text, Format::Toml).unwrap();
        let campaign = run_campaign(&manifest, |_| {});
        assert_eq!(campaign.runs.len(), 2);
        assert_eq!(campaign.memo_hits, 1);
        assert!(!campaign.runs[0].memoized);
        assert!(campaign.runs[1].memoized);
        assert_eq!(campaign.runs[0].report.makespan_ps(), campaign.runs[1].report.makespan_ps());
        // On a permutable system the axis is real and nothing memoizes.
        let text = MANIFEST.replace("[\"mondrian\", \"cpu\"]", "[\"mondrian\"]")
            + "\n[sweep]\nunderprovision = [0.5, 1.0]\n";
        let manifest = Manifest::parse(&text, Format::Toml).unwrap();
        let campaign = run_campaign(&manifest, |_| {});
        assert_eq!(campaign.memo_hits, 0);
        assert!(campaign.runs[0].report.stages.iter().any(|s| s.report.shuffle_retries > 0));
    }
}
