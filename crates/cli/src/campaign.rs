//! Campaign execution: run every resolved configuration of a manifest and
//! render the results as a deterministic JSON artifact plus a human
//! summary.

use std::collections::BTreeMap;

use mondrian_pipeline::{BuildSide, PipelineReport, StageSpec};

use crate::manifest::{Manifest, RunSpec};
use crate::value::Value;

/// One executed campaign run.
#[derive(Debug)]
pub struct CampaignRun {
    /// The resolved parameters.
    pub spec: RunSpec,
    /// The pipeline's full report.
    pub report: PipelineReport,
}

/// Results of a whole campaign.
#[derive(Debug)]
pub struct Campaign {
    /// The manifest that drove it.
    pub manifest: Manifest,
    /// Every run, in the manifest's deterministic order.
    pub runs: Vec<CampaignRun>,
}

/// Executes every run of `manifest`, invoking `progress` with each run's
/// one-line outcome as it completes.
pub fn run_campaign<F: FnMut(&CampaignRun)>(manifest: &Manifest, mut progress: F) -> Campaign {
    let pipeline = manifest.pipeline();
    let mut runs = Vec::new();
    for spec in manifest.runs() {
        let report = pipeline.run(&manifest.config_for(spec));
        let run = CampaignRun { spec, report };
        progress(&run);
        runs.push(run);
    }
    Campaign { manifest: manifest.clone(), runs }
}

impl Campaign {
    /// Whether every stage of every run verified.
    pub fn verified(&self) -> bool {
        self.runs.iter().all(|r| r.report.verified())
    }

    /// The machine-readable result artifact. Fully deterministic: object
    /// keys are sorted, runs follow the manifest's cross-product order,
    /// and every number derives from the seeded simulation.
    pub fn to_json(&self) -> String {
        let mut root = Value::table();
        root.insert("campaign", Value::Str(self.manifest.name.clone()));
        root.insert("schema_version", Value::Int(1));
        root.insert(
            "systems",
            Value::Array(
                self.manifest.systems.iter().map(|s| Value::Str(s.name().to_string())).collect(),
            ),
        );
        root.insert(
            "topology",
            Value::Str(if self.manifest.tiny { "tiny" } else { "scaled" }.to_string()),
        );
        root.insert(
            "stages",
            Value::Array(self.manifest.stages.iter().map(stage_spec_json).collect()),
        );
        root.insert("verified", Value::Bool(self.verified()));
        root.insert("runs", Value::Array(self.runs.iter().map(run_json).collect()));
        root.to_json()
    }

    /// One line per run for terminals and logs.
    pub fn human_summary(&self) -> String {
        let mut out = String::new();
        for run in &self.runs {
            out.push_str(&run_line(run));
            out.push('\n');
        }
        out.push_str(&format!(
            "{} runs, {} stages each: {}\n",
            self.runs.len(),
            self.manifest.stages.len(),
            if self.verified() { "all verified" } else { "VERIFICATION FAILURES" },
        ));
        out
    }
}

/// The one-line outcome of a run.
pub fn run_line(run: &CampaignRun) -> String {
    format!(
        "{:<16} tpv={:<6} seed={:<10} {:>12.3} µs {:>12.3} µJ  {} → {} rows  {}",
        run.spec.system.name(),
        run.spec.tuples_per_vault,
        run.spec.seed,
        run.report.runtime_ps() as f64 / 1e6,
        run.report.energy_j() * 1e6,
        run.report.source_rows,
        run.report.output.len(),
        if run.report.verified() { "ok" } else { "FAILED" },
    )
}

fn stage_spec_json(spec: &StageSpec) -> Value {
    let mut table = BTreeMap::new();
    table.insert("op".to_string(), Value::Str(spec.name().to_string()));
    table
        .insert("basic_operator".to_string(), Value::Str(spec.basic_operator().name().to_string()));
    match *spec {
        StageSpec::Filter { modulus, remainder } => {
            table.insert("modulus".to_string(), Value::Int(modulus as i64));
            table.insert("remainder".to_string(), Value::Int(remainder as i64));
        }
        StageSpec::LookupKey { key } => {
            table.insert("key".to_string(), Value::Int(key as i64));
        }
        StageSpec::Map { key_mul, key_add } => {
            table.insert("key_mul".to_string(), Value::Int(key_mul as i64));
            table.insert("key_add".to_string(), Value::Int(key_add as i64));
        }
        StageSpec::MapValues { mul, add } => {
            table.insert("mul".to_string(), Value::Int(mul as i64));
            table.insert("add".to_string(), Value::Int(add as i64));
        }
        StageSpec::Join { build } => {
            let build = match build {
                BuildSide::Dimension => Value::Str("dimension".to_string()),
                BuildSide::Stage(i) => Value::Int(i as i64),
            };
            table.insert("build".to_string(), build);
        }
        StageSpec::GroupByKey
        | StageSpec::ReduceByKey
        | StageSpec::CountByKey
        | StageSpec::AggregateByKey
        | StageSpec::SortByKey => {}
    }
    Value::Table(table)
}

fn run_json(run: &CampaignRun) -> Value {
    let mut table = Value::table();
    table.insert("system", Value::Str(run.spec.system.name().to_string()));
    table.insert("tuples_per_vault", Value::Int(run.spec.tuples_per_vault as i64));
    table.insert("seed", Value::Int(run.spec.seed as i64));
    table.insert("source_rows", Value::Int(run.report.source_rows as i64));
    table.insert("output_rows", Value::Int(run.report.output.len() as i64));
    table.insert("runtime_ps", Value::Int(run.report.runtime_ps() as i64));
    table.insert("instructions", Value::Int(run.report.instructions() as i64));
    table.insert("energy_j", Value::Float(run.report.energy_j()));
    table.insert("verified", Value::Bool(run.report.verified()));
    table.insert(
        "stages",
        Value::Array(
            run.report
                .stages
                .iter()
                .map(|s| {
                    let mut stage = Value::table();
                    stage.insert("op", Value::Str(s.spec.name().to_string()));
                    stage.insert(
                        "basic_operator",
                        Value::Str(s.basic_operator().name().to_string()),
                    );
                    stage.insert("input_rows", Value::Int(s.input_rows as i64));
                    stage.insert("output_rows", Value::Int(s.output_rows as i64));
                    stage.insert("runtime_ps", Value::Int(s.report.runtime_ps as i64));
                    stage.insert("instructions", Value::Int(s.report.instructions as i64));
                    stage.insert("energy_j", Value::Float(s.report.energy.total_j()));
                    stage.insert("phases", Value::Int(s.report.phases.len() as i64));
                    stage.insert("shuffle_retries", Value::Int(s.report.shuffle_retries as i64));
                    stage.insert("engine_verified", Value::Bool(s.report.verified));
                    stage.insert("reference_ok", Value::Bool(s.reference_ok));
                    stage
                })
                .collect(),
        ),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Format;

    const MANIFEST: &str = r#"
        [campaign]
        name = "smoke"
        systems = ["mondrian", "cpu"]
        tuples_per_vault = 64

        [[stage]]
        op = "filter"

        [[stage]]
        op = "reduce_by_key"

        [[stage]]
        op = "sort_by_key"
    "#;

    #[test]
    fn campaign_runs_and_serializes_deterministically() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let a = run_campaign(&manifest, |_| {});
        let b = run_campaign(&manifest, |_| {});
        assert!(a.verified());
        assert_eq!(a.runs.len(), 2);
        assert_eq!(a.to_json(), b.to_json(), "artifact must be byte-identical");
        let json = a.to_json();
        assert!(json.contains("\"campaign\": \"smoke\""));
        assert!(json.contains("\"reference_ok\": true"));
        // The artifact is valid JSON in our own parser.
        crate::value::parse_json(&json).unwrap();
    }

    #[test]
    fn human_summary_has_one_line_per_run() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let campaign = run_campaign(&manifest, |_| {});
        let summary = campaign.human_summary();
        assert_eq!(summary.lines().count(), 3, "two runs + the footer");
        assert!(summary.contains("all verified"));
    }
}
