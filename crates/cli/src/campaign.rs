//! Campaign execution: run every resolved configuration of a manifest and
//! render the results as a deterministic JSON artifact plus a human
//! summary.
//!
//! Two memoization layers keep sweeps from re-simulating identical work:
//!
//! * **Full-run memo** — two runs whose *effective* parameters are equal
//!   (e.g. an underprovisioning sweep on a system that never uses
//!   permutable regions) share one simulation; the later run clones the
//!   earlier report and is marked `memoized` in the artifact.
//! * **Prefix memo** — the pure per-stage reference outputs are keyed by
//!   `(stage spec, source, input digests)` in a [`ExecCache`] shared
//!   across the whole campaign, so sweeping one pipeline over many
//!   systems computes each shared stage-prefix's semantics once.
//!
//! An optional persistent [`Store`] extends both layers across processes
//! ([`run_campaign_store`]): full-run reports are keyed by the effective
//! key extended with the plan digest, per-stage results and reference
//! prefixes by the `ExecCache` digest chain. A run served whole from the
//! store is marked `memoized_persistent`; faulted, retried, and skipped
//! runs are never persisted (the same exclusion rule the in-memory memo
//! applies to the faulted sweep position).

use std::collections::{BTreeMap, HashMap};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mondrian_core::fault::{Abort, AbortReason, FaultHandle};
use mondrian_core::{KeyDist, SystemKind};
use mondrian_obs::{Counters, Metric, ProgressEvent, ProgressSink};
use mondrian_pipeline::{
    run_metrics, BuildSide, ExecCache, ExecStore, PipelineReport, Stage, StageInput, StageSpec,
    WaveReport,
};
use mondrian_sim::StealQueue;
use mondrian_store::{CacheCounters, Store};

use crate::manifest::{Manifest, RunSpec};
use crate::value::Value;

/// The result-artifact schema version. Doubles as the persistent
/// store's salt ([`store_salt`]): entries written under one schema are
/// invisible to every other, so a schema bump can never serve stale
/// shapes.
pub const SCHEMA_VERSION: i64 = 8;

/// The [`Store::open`] salt binding persistent entries to the artifact
/// schema (and, through the store's own fingerprint, to the engine
/// version).
pub fn store_salt() -> String {
    format!("schema{SCHEMA_VERSION}")
}

/// The standardized exit taxonomy: every campaign (and the `mondrian`
/// process itself) finishes with exactly one of these reasons, each
/// mapped to a stable, documented process exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// Everything ran, verified, and passed its assertions.
    Ok,
    /// An unexpected I/O or internal failure.
    InternalError,
    /// The manifest (or `MONDRIAN_FAULT`) failed to parse or validate.
    InvalidManifest,
    /// A run completed but failed verification or an `[assertions]` check.
    AssertionFailed,
    /// The `[limits] wall_time_ms` budget tripped.
    LimitWallTime,
    /// The `[limits] max_events` budget tripped.
    LimitEvents,
    /// The `[limits] max_memory_bytes` estimate tripped.
    LimitMemory,
    /// The `[limits] max_sweep_points` cap tripped.
    LimitSweepPoints,
    /// A worker panicked and the bounded retry failed too.
    WorkerPanic,
}

impl ExitReason {
    /// Stable lower-snake name, as serialized into artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            ExitReason::Ok => "ok",
            ExitReason::InternalError => "internal_error",
            ExitReason::InvalidManifest => "invalid_manifest",
            ExitReason::AssertionFailed => "assertion_failed",
            ExitReason::LimitWallTime => "limit_wall_time",
            ExitReason::LimitEvents => "limit_events",
            ExitReason::LimitMemory => "limit_memory",
            ExitReason::LimitSweepPoints => "limit_sweep_points",
            ExitReason::WorkerPanic => "worker_panic",
        }
    }

    /// The documented process exit code.
    pub fn code(self) -> u8 {
        match self {
            ExitReason::Ok => 0,
            ExitReason::InternalError => 1,
            ExitReason::InvalidManifest => 2,
            ExitReason::AssertionFailed => 3,
            ExitReason::LimitWallTime => 4,
            ExitReason::LimitEvents => 5,
            ExitReason::LimitMemory => 6,
            ExitReason::LimitSweepPoints => 7,
            ExitReason::WorkerPanic => 8,
        }
    }

    /// Whether the reason is a cooperative resource limit. A tripped
    /// limit truncates the campaign: every later sweep point is skipped.
    /// Assertion failures and worker panics are per-run — the rest of
    /// the campaign still executes.
    pub fn is_limit(self) -> bool {
        matches!(
            self,
            ExitReason::LimitWallTime
                | ExitReason::LimitEvents
                | ExitReason::LimitMemory
                | ExitReason::LimitSweepPoints
        )
    }
}

/// How one run (or the whole campaign) finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunExit {
    /// The standardized reason.
    pub reason: ExitReason,
    /// A deterministic one-line elaboration (empty for `Ok`).
    pub detail: String,
}

impl RunExit {
    /// The successful exit.
    pub fn ok() -> RunExit {
        RunExit { reason: ExitReason::Ok, detail: String::new() }
    }
}

/// One executed campaign run.
#[derive(Debug)]
pub struct CampaignRun {
    /// The resolved parameters.
    pub spec: RunSpec,
    /// The pipeline's full report; `None` when the run was skipped by a
    /// tripped limit or lost to a worker panic.
    pub report: Option<PipelineReport>,
    /// Whether the report was cloned from an effectively identical earlier
    /// run instead of re-simulated.
    pub memoized: bool,
    /// Host wall-clock milliseconds spent simulating this run (0 for memo
    /// hits). Excluded from the default artifact, from digests and from
    /// `mondrian diff`: wall time is a property of the host, not of the
    /// simulated machines.
    pub sim_wall_ms: f64,
    /// How the run finished.
    pub exit: RunExit,
    /// Whether the run's first attempt panicked and the bounded retry
    /// ran (regardless of whether the retry then succeeded).
    pub retried: bool,
    /// Whether the full report was served from the persistent store
    /// instead of simulated. Like `sim_wall_ms` this is cache
    /// provenance, not simulation output: it is only serialized under
    /// `--timings` and `mondrian diff` ignores it, so warm artifacts
    /// stay byte-identical to cold ones.
    pub memoized_persistent: bool,
}

/// Results of a whole campaign.
#[derive(Debug)]
pub struct Campaign {
    /// The manifest that drove it.
    pub manifest: Manifest,
    /// Every run, in the manifest's deterministic order.
    pub runs: Vec<CampaignRun>,
    /// Runs served from the full-run memo.
    pub memo_hits: usize,
    /// Per-stage reference outputs served from the prefix memo. Under
    /// parallel execution two workers may race to compute the same prefix,
    /// so this count (unlike `memo_hits`) can vary with scheduling; it
    /// never reaches the artifact.
    pub reference_hits: u64,
    /// Worker threads the campaign ran with.
    pub jobs: usize,
    /// Persistent-store counters for this campaign, when one was
    /// attached. Hit/miss totals can vary with worker scheduling (racing
    /// workers may redundantly probe the same reference prefix), so like
    /// `reference_hits` they are only serialized under `--timings`.
    pub cache: Option<CacheCounters>,
}

/// Resolves the worker-thread count for a campaign, in precedence order:
/// the `--jobs` flag, the `MONDRIAN_JOBS` environment variable, the
/// manifest's `jobs` knob, and finally every available host core.
/// Purely an execution-speed knob: the result artifact is byte-identical
/// for every value.
///
/// # Errors
///
/// Returns an error when `MONDRIAN_JOBS` is set but is not a positive
/// integer — a typo must not silently fall through to "all host cores".
pub fn resolve_jobs(flag: Option<usize>, manifest_jobs: Option<usize>) -> Result<usize, String> {
    let env = std::env::var("MONDRIAN_JOBS").ok();
    resolve_jobs_from(flag, env.as_deref(), manifest_jobs)
}

/// [`resolve_jobs`] with the environment value passed explicitly (so the
/// precedence and validation logic is unit-testable without mutating the
/// process environment).
fn resolve_jobs_from(
    flag: Option<usize>,
    env: Option<&str>,
    manifest_jobs: Option<usize>,
) -> Result<usize, String> {
    if let Some(n) = flag {
        return if n >= 1 { Ok(n) } else { Err("--jobs must be at least 1".into()) };
    }
    if let Some(v) = env {
        return match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("MONDRIAN_JOBS must be a positive integer, got {v:?}")),
        };
    }
    Ok(manifest_jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
        .max(1))
}

/// The parameters that actually influence a run's simulation. Axes that
/// cannot change the outcome are normalized away — underprovisioning only
/// matters on systems with permutable regions — so sweeping them does not
/// re-simulate.
fn effective_key(spec: &RunSpec) -> (SystemKind, bool, usize, u64, Option<u64>, Option<u64>) {
    let underprovision =
        if spec.system.uses_permutability() { spec.underprovision.map(f64::to_bits) } else { None };
    (
        spec.system,
        spec.tiny,
        spec.tuples_per_vault,
        spec.seed,
        spec.theta.map(f64::to_bits),
        underprovision,
    )
}

/// Executes every run of `manifest` on one worker, invoking `progress`
/// with each run's outcome as it completes. Equivalent to
/// [`run_campaign_jobs`] with `jobs = 1`.
pub fn run_campaign<F: FnMut(&CampaignRun)>(manifest: &Manifest, progress: F) -> Campaign {
    run_campaign_jobs(manifest, 1, progress)
}

/// Executes every run of `manifest`, fanning the sweep's *unique*
/// simulations out over `jobs` scoped worker threads.
///
/// Determinism by construction: the memo plan is fixed from the manifest
/// order before anything executes — the first run of each effective key
/// is its **owner** and simulates; every later duplicate clones the
/// owner's report and is flagged `memoized`. Owners are deterministic
/// simulations of disjoint sweep points, results are collected by sweep
/// position, and `progress` fires in manifest order — so the artifact is
/// byte-identical for every `jobs` value and any thread interleaving.
pub fn run_campaign_jobs<F: FnMut(&CampaignRun)>(
    manifest: &Manifest,
    jobs: usize,
    progress: F,
) -> Campaign {
    run_campaign_sink(manifest, jobs, &(), progress)
}

/// [`run_campaign_jobs`] with a live [`ProgressSink`] attached: stage and
/// wave events stream from the executing workers as they happen (their
/// interleaving across runs follows thread scheduling), and one
/// `SweepPointDone` per run fires from the assembly loop in manifest
/// order. Observation only — the artifact stays byte-identical to an
/// unobserved campaign.
pub fn run_campaign_sink<F: FnMut(&CampaignRun)>(
    manifest: &Manifest,
    jobs: usize,
    sink: &dyn ProgressSink,
    progress: F,
) -> Campaign {
    run_campaign_store(manifest, jobs, None, sink, progress)
}

/// [`run_campaign_sink`] with an optional persistent [`Store`] attached.
/// Owners probe the store before simulating: a full-run hit skips the
/// simulation entirely (`memoized_persistent`), and on misses the
/// engine's per-stage and reference-prefix results read through the
/// store's [`ExecStore`] backing — so an edited manifest re-simulates
/// only the DAG suffix whose digest chain changed. Runs that end
/// faulted, retried, skipped, or otherwise non-`Ok` are never written
/// back. The artifact stays byte-identical to a storeless campaign for
/// every `jobs`/`sim_threads` value: cache provenance is only
/// serialized under `--timings`.
pub fn run_campaign_store<F: FnMut(&CampaignRun)>(
    manifest: &Manifest,
    jobs: usize,
    store: Option<Arc<Store>>,
    sink: &dyn ProgressSink,
    mut progress: F,
) -> Campaign {
    let jobs = jobs.max(1);
    let pipeline = manifest.pipeline();
    let cache = match &store {
        Some(s) => ExecCache::with_backing(Arc::clone(s) as Arc<dyn ExecStore>),
        None => ExecCache::default(),
    };
    let specs = manifest.runs();
    let deadline =
        manifest.limits.wall_time_ms.map(|ms| Instant::now() + Duration::from_millis(ms));

    // Limits that are pure functions of the manifest — the sweep-point
    // cap and the memory estimate — are planned as skips before anything
    // executes, so they are trivially identical for every worker count.
    let planned: Vec<Option<RunExit>> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            if let Some(cap) = manifest.limits.max_sweep_points {
                if i >= cap {
                    return Some(RunExit {
                        reason: ExitReason::LimitSweepPoints,
                        detail: format!("sweep point {i} is past max_sweep_points {cap}"),
                    });
                }
            }
            if let Some(cap) = manifest.limits.max_memory_bytes {
                let est = estimate_memory_bytes(manifest, spec);
                if est > cap {
                    return Some(RunExit {
                        reason: ExitReason::LimitMemory,
                        detail: format!(
                            "estimated peak relation footprint {est} B exceeds \
                             max_memory_bytes {cap}"
                        ),
                    });
                }
            }
            None
        })
        .collect();

    // The faulted sweep position (if any) is excluded from memoization in
    // both directions: it must not serve a possibly-degraded report to
    // clean duplicates, and it must actually execute so the fault fires.
    // The exclusion depends only on the manifest, never on whether the
    // `fault-inject` feature is compiled, so artifacts keep the same
    // shape either way.
    let fault_run: Option<usize> = manifest.fault.as_ref().map(|p| p.run);
    let fault_handle: Option<Arc<FaultHandle>> =
        manifest.fault.clone().map(|p| Arc::new(FaultHandle::new(p)));

    // The memo plan: owner[i] = the first manifest position sharing run
    // i's effective key (itself, if i computes). Planned skips never
    // execute and never own anything.
    let mut first_of: HashMap<_, usize> = HashMap::new();
    let mut owner: Vec<usize> = Vec::with_capacity(specs.len());
    let mut unique: Vec<usize> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        if planned[i].is_some() {
            owner.push(i);
            continue;
        }
        if Some(i) == fault_run {
            owner.push(i);
            unique.push(i);
            continue;
        }
        match first_of.get(&effective_key(spec)) {
            Some(&j) => owner.push(j),
            None => {
                first_of.insert(effective_key(spec), i);
                owner.push(i);
                unique.push(i);
            }
        }
    }
    let memo_hits = owner.iter().enumerate().filter(|&(i, &o)| o != i).count();

    // Spare workers become intra-run threads (branch-wave parallelism and
    // reference/simulation overlap). Derived from the manifest alone, so
    // it cannot perturb determinism — and neither could any other split,
    // since intra-run threading is result-invariant too.
    let threads_per_run = (jobs / unique.len().max(1)).max(1);

    // What one executed sweep point yields: report, sim wall-clock ms,
    // exit, whether the bounded retry ran, and whether the report came
    // from the persistent store.
    type RunResult = (Option<PipelineReport>, f64, RunExit, bool, bool);

    // The persistent full-run key: the effective key's components plus
    // everything else that shapes the report — the plan digest, the
    // source distribution and bound, the schedule mode, and the event
    // budget (a budget can abort a run mid-stage, so entries saved under
    // one budget must not serve another). Thread counts and the wall
    // deadline are absent: the former are result-invariant, and
    // deadline-tripped runs are never persisted.
    let plan_digest = pipeline.plan_key();
    let run_key = |i: usize| -> String {
        let cfg = manifest.config_for(specs[i]);
        let theta = match cfg.dist {
            KeyDist::Uniform => None,
            KeyDist::Zipf(t) => Some(t.to_bits()),
        };
        let underprovision = cfg
            .system
            .uses_permutability()
            .then_some(cfg.underprovision)
            .flatten()
            .map(f64::to_bits);
        format!(
            "run1|plan={plan_digest:016x}|sys={}|tiny={}|tpv={}|seed={}|theta={theta:?}|\
             bound={:?}|up={underprovision:?}|conc={}|max_events={:?}",
            cfg.system.name(),
            cfg.tiny,
            cfg.tuples_per_vault,
            cfg.seed,
            cfg.key_bound,
            cfg.concurrency.name(),
            manifest.limits.max_events,
        )
    };

    // Runs one sweep point, converting panics into a structured exit:
    // tripped limits pass through unchanged; anything else (an injected
    // fault, a pool-worker panic, a bug) gets exactly one retry before
    // it becomes a `worker_panic` failure of this sweep point alone.
    // With a store attached, a full-run hit short-circuits everything —
    // including the fault machinery, which is safe because the faulted
    // sweep position never probes (or writes) the store.
    let run_one = |i: usize| -> RunResult {
        let mut cfg = manifest.config_for(specs[i]);
        cfg.threads = threads_per_run;
        cfg.max_events = manifest.limits.max_events;
        cfg.deadline = deadline;
        if Some(i) == fault_run {
            cfg.fault = fault_handle.clone();
        }
        let start = Instant::now();
        // Past the wall deadline the probe is skipped, so the run falls
        // through to the simulator and trips `limit_wall_time` exactly as
        // a cold run would — warmth never changes the exit contract.
        let before_deadline = deadline.is_none_or(|d| Instant::now() < d);
        if Some(i) != fault_run && before_deadline {
            if let Some(store) = &store {
                if let Some(report) = store.load_run(&run_key(i)) {
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    return (Some(report), ms, RunExit::ok(), false, true);
                }
            }
        }
        let attempt = || {
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                pipeline.run_observed(&cfg, &cache, &specs[i].id(), sink)
            }))
        };
        let (report, exit, retried) = match attempt() {
            Ok(report) => (Some(report), RunExit::ok(), false),
            Err(payload) => {
                let exit = classify_panic(payload.as_ref());
                if exit.reason.is_limit() {
                    (None, exit, false)
                } else {
                    match attempt() {
                        Ok(report) => (Some(report), RunExit::ok(), true),
                        Err(second) => (None, classify_panic(second.as_ref()), true),
                    }
                }
            }
        };
        (report, start.elapsed().as_secs_f64() * 1e3, exit, retried, false)
    };

    // Parallel pre-pass over the owners; with one job the owners simulate
    // lazily inside the assembly loop instead, so progress streams.
    // Owners are dealt round-robin onto per-worker deques and idle
    // workers steal from the tails, so one long-running sweep point
    // cannot strand the rest of the ladder behind it. Scheduling is
    // nondeterministic; results are collected by sweep position, so the
    // artifact is not.
    let mut results: Vec<Option<RunResult>> = (0..specs.len()).map(|_| None).collect();
    if jobs > 1 && unique.len() > 1 {
        let workers = jobs.min(unique.len());
        let queue = StealQueue::seed(unique.iter().copied(), workers);
        let slots = Mutex::new(&mut results);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queue = &queue;
                let slots = &slots;
                let run_one = &run_one;
                scope.spawn(move || {
                    while let Some(i) = queue.pop(w) {
                        let out = run_one(i);
                        slots.lock().expect("worker panicked")[i] = Some(out);
                    }
                });
            }
        });
    }

    // Assemble by sweep position. The first tripped *limit* truncates:
    // every later sweep point is recorded as skipped with the same
    // reason, and results the pre-pass may already have computed past
    // the truncation point are discarded — so the artifact is identical
    // for every worker count. Assertion failures and worker panics are
    // per-run and do not truncate.
    let mut truncated: Option<RunExit> = None;
    let mut runs: Vec<CampaignRun> = Vec::with_capacity(specs.len());
    for (i, &spec) in specs.iter().enumerate() {
        let planned_exit = planned[i].clone();
        let (report, sim_wall_ms, exit, retried, persistent) = if let Some(cut) = &truncated {
            let detail = if cut.detail.is_empty() {
                "campaign truncated".to_string()
            } else {
                format!("campaign truncated: {}", cut.detail)
            };
            (None, 0.0, RunExit { reason: cut.reason, detail }, false, false)
        } else if let Some(exit) = planned_exit {
            (None, 0.0, exit, false, false)
        } else if owner[i] != i {
            let source = &runs[owner[i]];
            (source.report.clone(), 0.0, source.exit.clone(), false, false)
        } else {
            let (report, sim_wall_ms, mut exit, retried, persistent) =
                results[i].take().unwrap_or_else(|| run_one(i));
            if exit.reason == ExitReason::Ok {
                if let Some(report) = &report {
                    if let Some(failed) = check_assertions(manifest, i, report) {
                        exit = failed;
                    }
                }
            }
            // Persist only a clean first-attempt simulation: never a
            // store hit (already there), a faulted position, a retried
            // run, or anything that exited non-`Ok` — including
            // assertion failures, so assertions are always re-evaluated
            // against a live simulation.
            if let Some(store) = &store {
                if !persistent && !retried && exit.reason == ExitReason::Ok && Some(i) != fault_run
                {
                    if let Some(report) = &report {
                        store.save_run(&run_key(i), report);
                    }
                }
            }
            (report, sim_wall_ms, exit, retried, persistent)
        };
        if truncated.is_none() && exit.reason.is_limit() {
            truncated = Some(exit.clone());
        }
        let run = CampaignRun {
            spec,
            report,
            memoized: owner[i] != i,
            sim_wall_ms,
            exit,
            retried,
            memoized_persistent: persistent,
        };
        sink.emit(
            &run.spec.id(),
            &ProgressEvent::SweepPointDone {
                makespan_ps: run.report.as_ref().map_or(0, PipelineReport::makespan_ps),
                verified: run.report.as_ref().is_some_and(PipelineReport::verified),
                memoized: run.memoized,
            },
        );
        progress(&run);
        runs.push(run);
    }
    Campaign {
        manifest: manifest.clone(),
        runs,
        memo_hits,
        reference_hits: cache.reference_hits(),
        jobs,
        cache: store.map(|s| {
            s.flush_journal();
            s.counters()
        }),
    }
}

/// Maps a caught panic payload onto the exit taxonomy: structured
/// [`Abort`]s keep their reason; anything else is a worker panic whose
/// message becomes the detail.
fn classify_panic(payload: &(dyn std::any::Any + Send)) -> RunExit {
    match payload.downcast_ref::<Abort>() {
        Some(abort) => {
            let reason = match abort.reason {
                AbortReason::LimitEvents => ExitReason::LimitEvents,
                AbortReason::LimitWallTime => ExitReason::LimitWallTime,
                AbortReason::WorkerPanic => ExitReason::WorkerPanic,
            };
            RunExit { reason, detail: abort.detail.clone() }
        }
        None => RunExit {
            reason: ExitReason::WorkerPanic,
            detail: mondrian_core::fault::panic_message(payload),
        },
    }
}

/// Estimates a run's peak relation footprint from the manifest alone:
/// 16 bytes per tuple, summed over the source and every stage output.
/// Row counts are upper bounds propagated structurally — fan-out
/// multiplies, unions add, everything else is bounded by its input — so
/// the estimate (and therefore a `max_memory_bytes` trip) is a pure
/// function of the manifest, identical for every worker count.
fn estimate_memory_bytes(manifest: &Manifest, spec: &RunSpec) -> u64 {
    const BYTES_PER_TUPLE: u64 = 16;
    let vaults = manifest.config_for(*spec).system_config().total_vaults() as u64;
    let source = spec.tuples_per_vault as u64 * vaults;
    let mut rows: Vec<u64> = Vec::with_capacity(manifest.stages.len());
    for (i, stage) in manifest.stages.iter().enumerate() {
        let input = |edge: &StageInput| match *edge {
            StageInput::Source => source,
            StageInput::Prev => {
                if i == 0 {
                    source
                } else {
                    rows[i - 1]
                }
            }
            StageInput::Stage(j) => rows[j],
        };
        let out = match stage.spec {
            StageSpec::FlatMap { fanout } => input(&stage.inputs[0]).saturating_mul(fanout),
            StageSpec::Union | StageSpec::Cogroup => {
                stage.inputs.iter().map(input).fold(0u64, u64::saturating_add)
            }
            _ => input(&stage.inputs[0]),
        };
        rows.push(out);
    }
    let total = source + rows.iter().fold(0u64, |acc, &r| acc.saturating_add(r));
    total.saturating_mul(BYTES_PER_TUPLE)
}

/// Evaluates the always-on verification requirement and the manifest's
/// `[assertions]` against one completed run. Returns the first failure.
fn check_assertions(manifest: &Manifest, index: usize, report: &PipelineReport) -> Option<RunExit> {
    let fail = |detail: String| Some(RunExit { reason: ExitReason::AssertionFailed, detail });
    if !report.verified() {
        let stage = report
            .stages
            .iter()
            .position(|s| !(s.report.verified && s.reference_ok && s.matches_serial));
        return fail(match stage {
            Some(s) => format!("run {index}: stage {s} failed verification"),
            None => format!("run {index}: verification failed"),
        });
    }
    let assertions = &manifest.assertions;
    if assertions.matches_serial {
        if let Some(s) = report.stages.iter().position(|s| !s.matches_serial) {
            return fail(format!("run {index}: stage {s} diverged from the serial schedule"));
        }
    }
    if let Some(cap) = assertions.max_makespan_ps {
        let makespan = report.makespan_ps();
        if makespan > cap {
            return fail(format!("run {index}: makespan {makespan} ps exceeds {cap} ps"));
        }
    }
    if let Some(expected) = &assertions.stage_digests {
        for (s, (&want, stage)) in expected.iter().zip(&report.stages).enumerate() {
            if stage.output_digest != want {
                return fail(format!(
                    "run {index}: stage {s} digest {:016x} != expected {want:016x}",
                    stage.output_digest
                ));
            }
        }
    }
    None
}

impl Campaign {
    /// Whether every stage of every completed run verified. Skipped runs
    /// don't count against verification — they are accounted for by
    /// [`Campaign::exit`].
    pub fn verified(&self) -> bool {
        self.runs.iter().all(|r| r.report.as_ref().is_none_or(PipelineReport::verified))
    }

    /// The campaign's overall exit: the first non-`Ok` run exit in
    /// manifest order, else `Ok`. Deterministic because run exits are.
    pub fn exit(&self) -> RunExit {
        self.runs
            .iter()
            .map(|r| &r.exit)
            .find(|e| e.reason != ExitReason::Ok)
            .cloned()
            .unwrap_or_else(RunExit::ok)
    }

    /// The machine-readable result artifact. Fully deterministic: object
    /// keys are sorted, runs follow the manifest's cross-product order,
    /// and every number derives from the seeded simulation — never from
    /// the host, the worker count, or thread scheduling.
    pub fn to_json(&self) -> String {
        self.to_json_with(false)
    }

    /// Like [`Campaign::to_json`], optionally annotating each run with
    /// its `sim_wall_ms` host wall-clock time (the `--timings` flag).
    /// Wall times are measurements of the host, not of the simulated
    /// machines: they are excluded from digests and ignored by
    /// `mondrian diff`, and artifacts carrying them are not expected to
    /// be byte-comparable.
    pub fn to_json_with(&self, timings: bool) -> String {
        let mut root = Value::table();
        root.insert("campaign", Value::Str(self.manifest.name.clone()));
        // Schema 8: schema 7 (persistent-store provenance under
        // `--timings`, on top of schema 6's unified `metrics` block and
        // robustness layer) plus the adaptive planner: `concurrency` may
        // be "auto", and each auto run carries a `planned` block — the
        // cost model's per-stage predictions, the predicted makespan,
        // whether the planned schedule beat the default one, and the
        // weighted-lease / chunk-count deviations it proposed — so
        // `mondrian diff` and bench ladders can attribute wins.
        root.insert("schema_version", Value::Int(SCHEMA_VERSION));
        root.insert("exit", exit_json(&self.exit()));
        root.insert(
            "systems",
            Value::Array(
                self.manifest.systems.iter().map(|s| Value::Str(s.name().to_string())).collect(),
            ),
        );
        root.insert(
            "topology",
            Value::Str(if self.manifest.tiny { "tiny" } else { "scaled" }.to_string()),
        );
        root.insert("concurrency", Value::Str(self.manifest.concurrency.name().to_string()));
        root.insert("stages", Value::Array(self.manifest.stages.iter().map(stage_json).collect()));
        root.insert("verified", Value::Bool(self.verified()));
        root.insert("memo_hits", Value::Int(self.memo_hits as i64));
        let mut rollup = Counters::new();
        for run in &self.runs {
            if let Some(report) = &run.report {
                rollup.merge(&run_metrics(report));
            }
            rollup.add_count(&mondrian_obs::exit_counter_key(run.exit.reason.as_str()), 1);
        }
        if timings {
            rollup.add_value("host.sim_wall_ms", self.sim_wall_ms());
            // Prefix-memo hits vary with worker scheduling (two workers
            // may race to compute the same prefix), so like wall time
            // they only exist under the host subtree.
            rollup.add_count("host.reference_prefix_hits", self.reference_hits);
            // Persistent-store traffic: warm-only by definition, and the
            // reference-entry component is scheduling-dependent like the
            // prefix memo, so it rides the same `--timings` gate.
            if let Some(cache) = &self.cache {
                rollup.add_count("engine.cache.hits", cache.hits());
                rollup.add_count("engine.cache.misses", cache.misses());
                rollup.add_count("engine.cache.bytes", cache.bytes());
                rollup.add_count("engine.cache.run_hits", cache.run_hits);
                rollup.add_count("engine.cache.run_misses", cache.run_misses);
                rollup.add_count("engine.cache.stage_hits", cache.stage_hits);
                rollup.add_count("engine.cache.stage_misses", cache.stage_misses);
            }
        }
        root.insert("metrics", metrics_json(&rollup));
        root.insert("runs", Value::Array(self.runs.iter().map(|r| run_json(r, timings)).collect()));
        root.to_json()
    }

    /// One line per run for terminals and logs.
    pub fn human_summary(&self) -> String {
        let mut out = String::new();
        for run in &self.runs {
            out.push_str(&run_line(run));
            out.push('\n');
        }
        out.push_str(&format!(
            "{} runs, {} stages each: {}",
            self.runs.len(),
            self.manifest.stages.len(),
            if self.verified() { "all verified" } else { "VERIFICATION FAILURES" },
        ));
        let exit = self.exit();
        if exit.reason != ExitReason::Ok {
            out.push_str(&format!(" [exit {}: {}]", exit.reason.as_str(), exit.detail));
        }
        if self.memo_hits > 0 || self.reference_hits > 0 {
            out.push_str(&format!(
                " ({} memoized runs, {} reference-prefix reuses)",
                self.memo_hits, self.reference_hits,
            ));
        }
        if let Some(cache) = &self.cache {
            out.push_str(&format!(
                " [cache: {} hits, {} misses, {} B]",
                cache.hits(),
                cache.misses(),
                cache.bytes(),
            ));
        }
        out.push_str(&format!(" [{} job(s), {:.1} ms sim wall]", self.jobs, self.sim_wall_ms()));
        out.push('\n');
        out
    }

    /// Total host wall-clock milliseconds spent simulating.
    pub fn sim_wall_ms(&self) -> f64 {
        self.runs.iter().map(|r| r.sim_wall_ms).sum()
    }
}

/// The one-line outcome of a run.
pub fn run_line(run: &CampaignRun) -> String {
    let Some(report) = &run.report else {
        return format!(
            "{} SKIPPED ({}: {})",
            run.spec.label(),
            run.exit.reason.as_str(),
            run.exit.detail,
        );
    };
    format!(
        "{} {:>12.3} µs {:>12.3} µJ  {} → {} rows  {}{}{}{}",
        run.spec.label(),
        report.makespan_ps() as f64 / 1e6,
        report.energy_j() * 1e6,
        report.source_rows,
        report.output.len(),
        match run.exit.reason {
            ExitReason::Ok => "ok".to_string(),
            reason => format!("FAILED ({})", reason.as_str()),
        },
        if run.memoized { " (memo)" } else { "" },
        if run.memoized_persistent { " (cached)" } else { "" },
        if run.retried { " (retried)" } else { "" },
    )
}

fn exit_json(exit: &RunExit) -> Value {
    let mut table = Value::table();
    table.insert("reason", Value::Str(exit.reason.as_str().to_string()));
    table.insert("detail", Value::Str(exit.detail.clone()));
    table
}

fn stage_json(stage: &Stage) -> Value {
    let mut table = BTreeMap::new();
    let spec = &stage.spec;
    table.insert("op".to_string(), Value::Str(spec.name().to_string()));
    table
        .insert("basic_operator".to_string(), Value::Str(spec.basic_operator().name().to_string()));
    let edge = |input: StageInput| match input {
        StageInput::Prev => Value::Str("prev".to_string()),
        StageInput::Source => Value::Str("source".to_string()),
        StageInput::Stage(j) => Value::Int(j as i64),
    };
    // Single edges stay scalar (readable, schema-2 compatible); multi-input
    // stages emit the full edge list.
    let input = if stage.inputs.len() == 1 {
        edge(stage.inputs[0])
    } else {
        Value::Array(stage.inputs.iter().copied().map(edge).collect())
    };
    table.insert("input".to_string(), input);
    match *spec {
        StageSpec::Filter { modulus, remainder } => {
            table.insert("modulus".to_string(), Value::Int(modulus as i64));
            table.insert("remainder".to_string(), Value::Int(remainder as i64));
        }
        StageSpec::LookupKey { key } => {
            table.insert("key".to_string(), Value::Int(key as i64));
        }
        StageSpec::Map { key_mul, key_add } => {
            table.insert("key_mul".to_string(), Value::Int(key_mul as i64));
            table.insert("key_add".to_string(), Value::Int(key_add as i64));
        }
        StageSpec::MapValues { mul, add } => {
            table.insert("mul".to_string(), Value::Int(mul as i64));
            table.insert("add".to_string(), Value::Int(add as i64));
        }
        StageSpec::FlatMap { fanout } => {
            table.insert("fanout".to_string(), Value::Int(fanout as i64));
        }
        StageSpec::Join { build } => {
            let build = match build {
                BuildSide::Dimension => Value::Str("dimension".to_string()),
                BuildSide::Stage(i) => Value::Int(i as i64),
            };
            table.insert("build".to_string(), build);
        }
        StageSpec::Union
        | StageSpec::Cogroup
        | StageSpec::GroupByKey
        | StageSpec::ReduceByKey
        | StageSpec::CountByKey
        | StageSpec::AggregateByKey
        | StageSpec::SortByKey => {}
    }
    Value::Table(table)
}

fn wave_json(wave: &WaveReport) -> Value {
    let mut table = Value::table();
    table.insert("wave", Value::Int(wave.wave as i64));
    table.insert("concurrent", Value::Bool(wave.concurrent));
    table.insert("runtime_ps", Value::Int(wave.runtime_ps as i64));
    table.insert("serial_runtime_ps", Value::Int(wave.serial_runtime_ps as i64));
    table.insert(
        "branches",
        Value::Array(
            wave.branches
                .iter()
                .map(|b| {
                    let mut branch = Value::table();
                    branch.insert("branch", Value::Int(b.branch as i64));
                    branch.insert(
                        "stages",
                        Value::Array(b.stages.iter().map(|&s| Value::Int(s as i64)).collect()),
                    );
                    branch.insert("first_vault", Value::Int(b.first_vault as i64));
                    branch.insert("vaults", Value::Int(b.vaults as i64));
                    branch.insert("runtime_ps", Value::Int(b.runtime_ps as i64));
                    branch.insert("critical", Value::Bool(b.critical));
                    branch
                })
                .collect(),
        ),
    );
    table
}

/// Renders a counter registry as the artifact's nested `metrics` table:
/// keys group at their *first* dot (phase labels keep their own dots —
/// `phase_ps.partition.scan` is group `phase_ps`, leaf
/// `partition.scan`), counts as integers, values as floats.
fn metrics_json(counters: &Counters) -> Value {
    let mut groups: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
    for (key, metric) in counters.iter() {
        let (group, leaf) = key.split_once('.').unwrap_or(("misc", key));
        let value = match metric {
            Metric::Count(n) => Value::Int(n as i64),
            Metric::Value(v) => Value::Float(v),
        };
        groups.entry(group.to_string()).or_default().insert(leaf.to_string(), value);
    }
    Value::Table(groups.into_iter().map(|(g, t)| (g, Value::Table(t))).collect())
}

fn run_json(run: &CampaignRun, timings: bool) -> Value {
    let mut table = Value::table();
    table.insert("system", Value::Str(run.spec.system.name().to_string()));
    table.insert("topology", Value::Str(if run.spec.tiny { "tiny" } else { "scaled" }.to_string()));
    table.insert("tuples_per_vault", Value::Int(run.spec.tuples_per_vault as i64));
    table.insert("seed", Value::Int(run.spec.seed as i64));
    if let Some(theta) = run.spec.theta {
        table.insert("zipf_theta", Value::Float(theta));
    }
    if let Some(u) = run.spec.underprovision {
        table.insert("underprovision", Value::Float(u));
    }
    table.insert("exit", exit_json(&run.exit));
    table.insert("retried", Value::Bool(run.retried));
    table.insert("memoized", Value::Bool(run.memoized));
    if timings {
        // Cache provenance, not simulation output (see the schema-7
        // comment): present only when the artifact already carries host
        // measurements, so cold and warm default artifacts stay
        // byte-identical.
        table.insert("memoized_persistent", Value::Bool(run.memoized_persistent));
    }
    // A skipped or lost run keeps its sweep axes and exit — a valid
    // partial artifact — but has no simulation output to serialize.
    let Some(report) = &run.report else {
        table.insert("skipped", Value::Bool(true));
        return table;
    };
    let mut metrics = run_metrics(report);
    if timings {
        // Host measurement, not simulation output: `metrics.host.*` is
        // the artifact's single digest-excluded subtree, ignored by
        // `mondrian diff` and absent from byte-compared artifacts.
        metrics.add_value("host.sim_wall_ms", run.sim_wall_ms);
    }
    table.insert("metrics", metrics_json(&metrics));
    table.insert("source_rows", Value::Int(report.source_rows as i64));
    table.insert("output_rows", Value::Int(report.output.len() as i64));
    table.insert("runtime_ps", Value::Int(report.runtime_ps() as i64));
    table.insert("makespan_ps", Value::Int(report.makespan_ps() as i64));
    table.insert("instructions", Value::Int(report.instructions() as i64));
    table.insert("energy_j", Value::Float(report.energy_j()));
    table.insert("verified", Value::Bool(report.verified()));
    table.insert("schedule", Value::Array(report.schedule.waves.iter().map(wave_json).collect()));
    table.insert(
        "fused",
        Value::Array(
            report
                .schedule
                .fused
                .iter()
                .map(|f| {
                    let mut edge = Value::table();
                    edge.insert("producer", Value::Int(f.producer as i64));
                    edge.insert("consumer", Value::Int(f.consumer as i64));
                    edge.insert("chunks", Value::Int(f.chunks as i64));
                    edge.insert("streamed", Value::Bool(f.streamed));
                    edge.insert("streamed_ps", Value::Int(f.streamed_ps as i64));
                    edge.insert("unfused_ps", Value::Int(f.unfused_ps as i64));
                    edge
                })
                .collect(),
        ),
    );
    // Schema 8: the planner's decisions for `concurrency = "auto"` runs
    // — predictions plus the schedule deviations it proposed, and
    // whether the planned schedule actually won the race.
    if let Some(planned) = &report.planned {
        let mut block = Value::table();
        block.insert(
            "stage_predicted_ps",
            Value::Array(
                planned.stage_predicted_ps.iter().map(|&t| Value::Int(t as i64)).collect(),
            ),
        );
        block.insert("predicted_makespan_ps", Value::Int(planned.predicted_makespan_ps as i64));
        block.insert("planner_won", Value::Bool(planned.planner_won));
        block.insert(
            "waves",
            Value::Array(
                planned
                    .waves
                    .iter()
                    .map(|w| {
                        let mut wave = Value::table();
                        wave.insert("wave", Value::Int(w.wave as i64));
                        wave.insert(
                            "leases",
                            Value::Array(
                                w.leases
                                    .iter()
                                    .map(|l| {
                                        let mut lease = Value::table();
                                        lease.insert("branch", Value::Int(l.branch as i64));
                                        lease.insert(
                                            "first_vault",
                                            Value::Int(i64::from(l.first_vault)),
                                        );
                                        lease.insert("vaults", Value::Int(i64::from(l.vaults)));
                                        lease
                                    })
                                    .collect(),
                            ),
                        );
                        wave
                    })
                    .collect(),
            ),
        );
        block.insert(
            "edges",
            Value::Array(
                planned
                    .edges
                    .iter()
                    .map(|e| {
                        let mut edge = Value::table();
                        edge.insert("producer", Value::Int(e.producer as i64));
                        edge.insert("consumer", Value::Int(e.consumer as i64));
                        edge.insert("chunks", Value::Int(e.chunks as i64));
                        edge
                    })
                    .collect(),
            ),
        );
        table.insert("planned", block);
    }
    table.insert(
        "stages",
        Value::Array(
            report
                .stages
                .iter()
                .map(|s| {
                    let mut stage = Value::table();
                    stage.insert("op", Value::Str(s.spec.name().to_string()));
                    stage.insert(
                        "basic_operator",
                        Value::Str(s.basic_operator().name().to_string()),
                    );
                    stage.insert("wave", Value::Int(s.wave as i64));
                    stage.insert("branch", Value::Int(s.branch as i64));
                    stage.insert("concurrent", Value::Bool(s.concurrent));
                    stage.insert("streamed", Value::Bool(s.streamed));
                    stage.insert("input_rows", Value::Int(s.input_rows as i64));
                    stage.insert("output_rows", Value::Int(s.output_rows as i64));
                    stage.insert("output_digest", Value::Str(format!("{:016x}", s.output_digest)));
                    stage.insert("runtime_ps", Value::Int(s.report.runtime_ps as i64));
                    stage.insert("serial_runtime_ps", Value::Int(s.serial_runtime_ps as i64));
                    stage.insert("instructions", Value::Int(s.report.instructions as i64));
                    stage.insert("energy_j", Value::Float(s.report.energy.total_j()));
                    stage.insert("phases", Value::Int(s.report.phases.len() as i64));
                    stage.insert("shuffle_retries", Value::Int(s.report.shuffle_retries as i64));
                    stage.insert("engine_verified", Value::Bool(s.report.verified));
                    stage.insert("reference_ok", Value::Bool(s.reference_ok));
                    stage.insert("matches_serial", Value::Bool(s.matches_serial));
                    stage
                })
                .collect(),
        ),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Format;

    const MANIFEST: &str = r#"
        [campaign]
        name = "smoke"
        systems = ["mondrian", "cpu"]
        tuples_per_vault = 64

        [[stage]]
        op = "filter"

        [[stage]]
        op = "reduce_by_key"

        [[stage]]
        op = "sort_by_key"
    "#;

    #[test]
    fn campaign_runs_and_serializes_deterministically() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let a = run_campaign(&manifest, |_| {});
        let b = run_campaign(&manifest, |_| {});
        assert!(a.verified());
        assert_eq!(a.runs.len(), 2);
        assert_eq!(a.to_json(), b.to_json(), "artifact must be byte-identical");
        let json = a.to_json();
        assert!(json.contains("\"campaign\": \"smoke\""));
        assert!(json.contains("\"reference_ok\": true"));
        assert!(json.contains("\"matches_serial\": true"));
        assert!(json.contains("\"output_digest\""));
        // The artifact is valid JSON in our own parser.
        crate::value::parse_json(&json).unwrap();
        // Both systems compute the same functional outputs, so the second
        // system's reference prefixes come from the cache.
        assert_eq!(a.reference_hits, 3, "second system reuses all three prefixes");
    }

    #[test]
    fn human_summary_has_one_line_per_run() {
        let manifest = Manifest::parse(MANIFEST, Format::Toml).unwrap();
        let campaign = run_campaign(&manifest, |_| {});
        let summary = campaign.human_summary();
        assert_eq!(summary.lines().count(), 3, "two runs + the footer");
        assert!(summary.contains("all verified"));
    }

    #[test]
    fn jobs_resolution_precedence_and_validation() {
        assert_eq!(resolve_jobs_from(Some(3), Some("8"), Some(2)), Ok(3));
        assert_eq!(resolve_jobs_from(None, Some("8"), Some(2)), Ok(8));
        assert_eq!(resolve_jobs_from(None, None, Some(2)), Ok(2));
        assert!(resolve_jobs_from(None, None, None).unwrap() >= 1);
        // A mistyped environment value is a hard error, not a silent
        // fall-through to every host core.
        assert!(resolve_jobs_from(None, Some("two"), None).is_err());
        assert!(resolve_jobs_from(None, Some("0"), None).is_err());
        assert!(resolve_jobs_from(Some(0), None, None).is_err(), "flag path validates too");
    }

    #[test]
    fn ineffective_axes_are_memoized() {
        // The CPU system never uses permutable regions, so an
        // underprovisioning sweep cannot change its runs: one simulation,
        // N - 1 memo hits.
        let text = MANIFEST.replace("[\"mondrian\", \"cpu\"]", "[\"cpu\"]")
            + "\n[sweep]\nunderprovision = [0.5, 1.0]\n";
        let manifest = Manifest::parse(&text, Format::Toml).unwrap();
        let campaign = run_campaign(&manifest, |_| {});
        assert_eq!(campaign.runs.len(), 2);
        assert_eq!(campaign.memo_hits, 1);
        assert!(!campaign.runs[0].memoized);
        assert!(campaign.runs[1].memoized);
        assert_eq!(
            campaign.runs[0].report.as_ref().unwrap().makespan_ps(),
            campaign.runs[1].report.as_ref().unwrap().makespan_ps()
        );
        // On a permutable system the axis is real and nothing memoizes.
        let text = MANIFEST.replace("[\"mondrian\", \"cpu\"]", "[\"mondrian\"]")
            + "\n[sweep]\nunderprovision = [0.5, 1.0]\n";
        let manifest = Manifest::parse(&text, Format::Toml).unwrap();
        let campaign = run_campaign(&manifest, |_| {});
        assert_eq!(campaign.memo_hits, 0);
        assert!(campaign.runs[0]
            .report
            .as_ref()
            .unwrap()
            .stages
            .iter()
            .any(|s| s.report.shuffle_retries > 0));
    }
}
