//! A minimal self-contained document model with TOML-subset and JSON
//! parsers plus a deterministic JSON writer.
//!
//! The build environment has no registry access, so the CLI cannot use
//! `serde`/`toml`/`serde_json`; this module implements exactly the slice
//! the manifest format needs:
//!
//! * TOML: `# comments`, `[table]` headers, `[[array-of-tables]]` headers,
//!   and `key = value` pairs where a value is a string, integer, float,
//!   boolean, or a flat array of those.
//! * JSON: the full scalar/array/object grammar (no `null`).
//!
//! The writer emits canonical JSON — object keys sorted (BTreeMap order),
//! fixed indentation, no trailing whitespace — so equal inputs produce
//! byte-identical artifacts.

use std::collections::BTreeMap;

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Array(Vec<Value>),
    /// A key-sorted table / object.
    Table(BTreeMap<String, Value>),
}

impl Value {
    /// An empty table.
    pub fn table() -> Value {
        Value::Table(BTreeMap::new())
    }

    /// Table field access.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(t) => t.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float content (integers coerce).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Inserts into a table value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a table.
    pub fn insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Table(t) => {
                t.insert(key.to_string(), value);
            }
            _ => panic!("insert into non-table"),
        }
    }

    /// Renders canonical, pretty-printed JSON with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, depth: usize) {
        match self {
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                // Rust's shortest-roundtrip Display is deterministic; pin
                // the integral case to keep the value re-parseable as float.
                if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write_json(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Value::Table(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push('"');
                    out.push_str(k);
                    out.push_str("\": ");
                    v.write_json(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
        }
    }
}

/// Strips a `#` comment not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses the TOML subset described in the module docs.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input.
pub fn parse_toml(text: &str) -> Result<Value, String> {
    enum Cursor {
        Root,
        Table(String),
        ArrayItem(String),
    }
    let mut root: BTreeMap<String, Value> = BTreeMap::new();
    let mut cursor = Cursor::Root;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        let at = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            let name = name.trim();
            if name.is_empty() {
                return Err(at("empty [[array-of-tables]] name"));
            }
            let entry = root.entry(name.to_string()).or_insert_with(|| Value::Array(Vec::new()));
            match entry {
                Value::Array(items) => items.push(Value::table()),
                _ => return Err(at(&format!("{name} is both a table and an array of tables"))),
            }
            cursor = Cursor::ArrayItem(name.to_string());
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = name.trim();
            if name.is_empty() || name.contains('.') {
                return Err(at("expected a plain [table] name (no dotted tables)"));
            }
            match root.entry(name.to_string()).or_insert_with(Value::table) {
                Value::Table(_) => {}
                _ => return Err(at(&format!("{name} is both an array of tables and a table"))),
            }
            cursor = Cursor::Table(name.to_string());
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty() {
                return Err(at("empty key"));
            }
            let value = parse_toml_value(value.trim()).map_err(|e| at(&e))?;
            let target = match &cursor {
                Cursor::Root => &mut root,
                Cursor::Table(name) => match root.get_mut(name) {
                    Some(Value::Table(t)) => t,
                    _ => unreachable!("cursor tracks an existing table"),
                },
                Cursor::ArrayItem(name) => match root.get_mut(name) {
                    Some(Value::Array(items)) => match items.last_mut() {
                        Some(Value::Table(t)) => t,
                        _ => unreachable!("cursor tracks a pushed table item"),
                    },
                    _ => unreachable!("cursor tracks an existing array"),
                },
            };
            if target.insert(key.to_string(), value).is_some() {
                return Err(at(&format!("duplicate key {key}")));
            }
        } else {
            return Err(at("expected [table], [[array-of-tables]], or key = value"));
        }
    }
    Ok(Value::Table(root))
}

fn parse_toml_value(s: &str) -> Result<Value, String> {
    if let Some(rest) = s.strip_prefix('"') {
        return match rest.split_once('"') {
            Some((content, tail)) if tail.trim().is_empty() => Ok(Value::Str(content.to_string())),
            _ => Err(format!("unterminated or trailing-garbage string: {s}")),
        };
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| format!("unterminated array: {s}"))?;
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        // Flat arrays only: split on commas outside strings.
        let mut items = Vec::new();
        let mut start = 0;
        let mut in_str = false;
        for (i, c) in inner.char_indices() {
            match c {
                '"' => in_str = !in_str,
                ',' if !in_str => {
                    items.push(parse_toml_value(inner[start..i].trim())?);
                    start = i + 1;
                }
                _ => {}
            }
        }
        items.push(parse_toml_value(inner[start..].trim())?);
        return Ok(Value::Array(items));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let plain = s.replace('_', "");
    if let Ok(i) = plain.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = plain.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!("unrecognized value: {s}"))
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = json_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut table = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Table(table));
            }
            loop {
                skip_ws(b, pos);
                let key = match json_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                expect(b, pos, b':')?;
                table.insert(key, json_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Table(table));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(json_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Value::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            // \uXXXX (BMP only — enough to round-trip the
                            // control-character escapes our writer emits).
                            Some(b'u') => {
                                let hex = b
                                    .get(*pos + 1..*pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                                let c = char::from_u32(hex).ok_or_else(|| {
                                    format!("\\u escape is not a scalar value at byte {pos}")
                                })?;
                                s.push(c);
                                *pos += 4;
                            }
                            other => {
                                return Err(format!("unsupported escape {other:?} at byte {pos}"))
                            }
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // Copy the full UTF-8 sequence.
                        let start = *pos;
                        let width = match c {
                            c if c < 0x80 => 1,
                            c if c >= 0xf0 => 4,
                            c if c >= 0xe0 => 3,
                            _ => 2,
                        };
                        *pos += width;
                        let chunk = std::str::from_utf8(&b[start..*pos])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                        s.push_str(chunk);
                    }
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && (b[*pos].is_ascii_alphanumeric() || matches!(b[*pos], b'+' | b'-' | b'.'))
            {
                *pos += 1;
            }
            let token = std::str::from_utf8(&b[start..*pos]).unwrap_or("");
            match token {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                _ => {
                    if let Ok(i) = token.parse::<i64>() {
                        Ok(Value::Int(i))
                    } else if let Ok(f) = token.parse::<f64>() {
                        Ok(Value::Float(f))
                    } else {
                        Err(format!("unrecognized token {token:?} at byte {start}"))
                    }
                }
            }
        }
        None => Err("unexpected end of input".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_subset_round_trips() {
        let doc = parse_toml(
            r#"
            # campaign manifest
            [campaign]
            name = "demo"        # inline comment
            seed = 7
            theta = 0.9
            tiny = true
            systems = ["mondrian", "cpu"]
            sweep = [256, 1_024]

            [[stage]]
            op = "filter"
            modulus = 10

            [[stage]]
            op = "sort_by_key"
            "#,
        )
        .unwrap();
        let campaign = doc.get("campaign").unwrap();
        assert_eq!(campaign.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(campaign.get("seed").unwrap().as_int(), Some(7));
        assert_eq!(campaign.get("theta").unwrap().as_float(), Some(0.9));
        assert_eq!(campaign.get("tiny").unwrap().as_bool(), Some(true));
        assert_eq!(campaign.get("systems").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(campaign.get("sweep").unwrap().as_array().unwrap()[1], Value::Int(1024));
        let stages = doc.get("stage").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].get("op").unwrap().as_str(), Some("filter"));
        assert_eq!(stages[0].get("modulus").unwrap().as_int(), Some(10));
    }

    #[test]
    fn toml_errors_name_the_line() {
        let err = parse_toml("[campaign]\nwat").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(parse_toml("[a]\nk = 1\nk = 2").unwrap_err().contains("duplicate"));
        assert!(parse_toml("k = zzz").is_err());
    }

    #[test]
    fn json_round_trips_through_writer() {
        let text = r#"{"b": [1, 2.5, "x"], "a": {"nested": true}}"#;
        let v = parse_json(text).unwrap();
        let emitted = v.to_json();
        assert_eq!(parse_json(&emitted).unwrap(), v);
        // Canonical order: keys sorted.
        assert!(emitted.find("\"a\"").unwrap() < emitted.find("\"b\"").unwrap());
    }

    #[test]
    fn json_writer_is_deterministic() {
        let v = parse_json(r#"{"x": 1, "y": [true, false], "z": 0.125}"#).unwrap();
        assert_eq!(v.to_json(), v.to_json());
        assert!(v.to_json().contains("0.125"));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("null").is_err(), "null is not in the manifest grammar");
        assert!(parse_json("{\"a\": 1} x").is_err());
    }

    #[test]
    fn float_formatting_is_reparseable() {
        let v = Value::Float(3.0);
        assert_eq!(v.to_json().trim(), "3.0");
        let v = Value::Float(0.30000000000000004);
        assert_eq!(parse_json(v.to_json().trim()).unwrap(), v);
    }
}
