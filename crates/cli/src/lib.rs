//! # mondrian-cli
//!
//! Library backing the `mondrian` binary: manifest parsing
//! ([`manifest`]), the TOML/JSON document model ([`value`]), campaign
//! execution ([`campaign`]), the parallel-execution benchmark harness
//! ([`bench`]), the artifact profiler ([`profile`]) and the JUnit XML
//! renderer ([`junit`]). The binary in `main.rs` is a thin argument
//! layer over these modules so integration tests can exercise
//! everything in-process.

#![warn(missing_docs)]

pub mod bench;
pub mod campaign;
pub mod diff;
pub mod junit;
pub mod manifest;
pub mod profile;
pub mod value;
