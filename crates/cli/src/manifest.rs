//! The campaign manifest: a declarative TOML or JSON description of a
//! pipeline, the systems to run it on, and the parameter sweeps.
//!
//! See `examples/manifests/` for complete examples and the README for the
//! schema reference. The shape, in TOML terms:
//!
//! ```toml
//! [campaign]
//! name = "spark-pipeline"       # required
//! systems = ["mondrian", "cpu"] # or ["all"]; default all
//! topology = "tiny"             # "tiny" | "scaled"; default tiny
//! tuples_per_vault = 256        # default 256
//! seed = 7                      # default the paper seed
//! key_dist = "uniform"          # "uniform" | "zipf"; default uniform
//! zipf_theta = 0.9              # only with key_dist = "zipf"
//! key_bound = 4096              # optional source key upper bound
//!
//! [sweep]                       # optional; lists override the scalars
//! tuples_per_vault = [256, 512]
//! seeds = [1, 2, 3]
//!
//! [[stage]]                     # one per pipeline stage, in order
//! op = "filter"                 # stage name (see StageSpec)
//! modulus = 10
//! remainder = 0
//! ```
//!
//! A JSON manifest is the same tree spelled as an object:
//! `{"campaign": {...}, "sweep": {...}, "stage": [{...}, ...]}`.

use mondrian_core::{KeyDist, SystemKind};
use mondrian_pipeline::{BuildSide, Pipeline, PipelineConfig, StageSpec};

use crate::value::{parse_json, parse_toml, Value};

/// Manifest text formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// TOML subset (`.toml`).
    Toml,
    /// JSON (`.json`).
    Json,
}

impl Format {
    /// Picks the format from a file name.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown extensions.
    pub fn from_path(path: &str) -> Result<Format, String> {
        if path.ends_with(".toml") {
            Ok(Format::Toml)
        } else if path.ends_with(".json") {
            Ok(Format::Json)
        } else {
            Err(format!("{path}: unknown manifest extension (expected .toml or .json)"))
        }
    }
}

/// One fully resolved run of the campaign's cross product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// The evaluated system.
    pub system: SystemKind,
    /// Source tuples per vault.
    pub tuples_per_vault: usize,
    /// Dataset seed.
    pub seed: u64,
}

/// A parsed campaign manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Campaign name (echoed into the result artifact).
    pub name: String,
    /// Systems to run on.
    pub systems: Vec<SystemKind>,
    /// Whether to use the minimal test topology.
    pub tiny: bool,
    /// Tuples-per-vault values (singleton unless swept).
    pub tuples_per_vault: Vec<usize>,
    /// Seeds (singleton unless swept).
    pub seeds: Vec<u64>,
    /// Source key distribution.
    pub dist: KeyDist,
    /// Optional source key upper bound.
    pub key_bound: Option<u64>,
    /// The pipeline stages.
    pub stages: Vec<StageSpec>,
}

impl Manifest {
    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema error.
    pub fn parse(text: &str, format: Format) -> Result<Manifest, String> {
        let doc = match format {
            Format::Toml => parse_toml(text)?,
            Format::Json => parse_json(text)?,
        };
        Manifest::from_value(&doc)
    }

    /// Builds a manifest from a parsed document tree.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema error.
    pub fn from_value(doc: &Value) -> Result<Manifest, String> {
        let campaign = doc.get("campaign").ok_or("missing [campaign] section")?;
        let name = campaign
            .get("name")
            .and_then(Value::as_str)
            .ok_or("campaign.name (string) is required")?
            .to_string();

        let systems = match campaign.get("systems") {
            None => SystemKind::ALL.to_vec(),
            Some(v) => {
                let names = v.as_array().ok_or("campaign.systems must be an array")?;
                let all =
                    names.iter().any(|n| n.as_str().is_some_and(|s| s.eq_ignore_ascii_case("all")));
                if all {
                    if names.len() != 1 {
                        return Err("\"all\" cannot be combined with other systems".into());
                    }
                    SystemKind::ALL.to_vec()
                } else {
                    let mut systems = Vec::new();
                    for n in names {
                        let n = n.as_str().ok_or("campaign.systems entries must be strings")?;
                        systems.push(parse_system(n)?);
                    }
                    if systems.is_empty() {
                        return Err("campaign.systems is empty".into());
                    }
                    systems
                }
            }
        };

        let tiny = match campaign.get("topology") {
            None => true,
            Some(v) => match v.as_str() {
                Some("tiny") => true,
                Some("scaled") => false,
                _ => return Err("campaign.topology must be \"tiny\" or \"scaled\"".into()),
            },
        };

        let tpv_scalar =
            get_usize(campaign, "campaign.tuples_per_vault", "tuples_per_vault")?.unwrap_or(256);
        let seed_scalar = get_u64(campaign, "campaign.seed", "seed")?.unwrap_or(0x6d6f6e64);

        let dist = match campaign.get("key_dist").map(|v| v.as_str()) {
            None | Some(Some("uniform")) => KeyDist::Uniform,
            Some(Some("zipf")) => {
                let theta = campaign
                    .get("zipf_theta")
                    .and_then(Value::as_float)
                    .ok_or("key_dist = \"zipf\" requires zipf_theta (float)")?;
                if !(theta.is_finite() && theta >= 0.0) {
                    return Err("zipf_theta must be a non-negative finite number".into());
                }
                KeyDist::Zipf(theta)
            }
            _ => return Err("campaign.key_dist must be \"uniform\" or \"zipf\"".into()),
        };
        let key_bound = get_u64(campaign, "campaign.key_bound", "key_bound")?;

        let (tuples_per_vault, seeds) = match doc.get("sweep") {
            None => (vec![tpv_scalar], vec![seed_scalar]),
            Some(sweep) => {
                let tpv = match sweep.get("tuples_per_vault") {
                    None => vec![tpv_scalar],
                    Some(v) => int_list(v, "sweep.tuples_per_vault")?
                        .into_iter()
                        .map(|i| i as usize)
                        .collect(),
                };
                let seeds = match sweep.get("seeds") {
                    None => vec![seed_scalar],
                    Some(v) => int_list(v, "sweep.seeds")?.into_iter().map(|i| i as u64).collect(),
                };
                (tpv, seeds)
            }
        };

        let stage_list = doc
            .get("stage")
            .and_then(Value::as_array)
            .ok_or("at least one [[stage]] is required")?;
        if stage_list.is_empty() {
            return Err("at least one [[stage]] is required".into());
        }
        let stages = stage_list
            .iter()
            .enumerate()
            .map(|(i, s)| parse_stage(s).map_err(|e| format!("stage {i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let manifest =
            Manifest { name, systems, tiny, tuples_per_vault, seeds, dist, key_bound, stages };
        manifest.pipeline().validate()?;
        Ok(manifest)
    }

    /// The declared pipeline.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::new(self.stages.clone())
    }

    /// The campaign's cross product, in deterministic order: system-major,
    /// then tuples-per-vault, then seed.
    pub fn runs(&self) -> Vec<RunSpec> {
        let mut out = Vec::new();
        for &system in &self.systems {
            for &tuples_per_vault in &self.tuples_per_vault {
                for &seed in &self.seeds {
                    out.push(RunSpec { system, tuples_per_vault, seed });
                }
            }
        }
        out
    }

    /// The pipeline configuration of one resolved run.
    pub fn config_for(&self, run: RunSpec) -> PipelineConfig {
        let mut cfg = if self.tiny {
            PipelineConfig::tiny(run.system)
        } else {
            PipelineConfig::new(run.system)
        };
        cfg.tuples_per_vault = run.tuples_per_vault;
        cfg.seed = run.seed;
        cfg.dist = self.dist;
        cfg.key_bound = self.key_bound;
        cfg
    }
}

fn parse_system(name: &str) -> Result<SystemKind, String> {
    SystemKind::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(name)).ok_or_else(|| {
        let known: Vec<&str> = SystemKind::ALL.iter().map(|k| k.name()).collect();
        format!("unknown system {name:?}; expected one of {known:?} or \"all\"")
    })
}

fn get_u64(table: &Value, ctx: &str, key: &str) -> Result<Option<u64>, String> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => match v.as_int() {
            Some(i) if i >= 0 => Ok(Some(i as u64)),
            _ => Err(format!("{ctx} must be a non-negative integer")),
        },
    }
}

fn get_usize(table: &Value, ctx: &str, key: &str) -> Result<Option<usize>, String> {
    Ok(get_u64(table, ctx, key)?.map(|v| v as usize))
}

fn int_list(v: &Value, ctx: &str) -> Result<Vec<i64>, String> {
    let items = v.as_array().ok_or_else(|| format!("{ctx} must be an array"))?;
    if items.is_empty() {
        return Err(format!("{ctx} is empty"));
    }
    items
        .iter()
        .map(|i| match i.as_int() {
            Some(i) if i >= 0 => Ok(i),
            _ => Err(format!("{ctx} entries must be non-negative integers")),
        })
        .collect()
}

fn parse_stage(s: &Value) -> Result<StageSpec, String> {
    let op = s.get("op").and_then(Value::as_str).ok_or("missing op (string)")?;
    let u = |key: &str, default: u64| -> Result<u64, String> {
        get_u64(s, key, key).map(|v| v.unwrap_or(default))
    };
    let spec = match op {
        "filter" => {
            let modulus = u("modulus", 10)?;
            if modulus == 0 {
                return Err("filter.modulus must be non-zero".into());
            }
            StageSpec::Filter { modulus, remainder: u("remainder", 0)? }
        }
        "lookup_key" => StageSpec::LookupKey { key: u("key", 0)? },
        "map" => StageSpec::Map { key_mul: u("key_mul", 1)?, key_add: u("key_add", 1)? },
        "map_values" => StageSpec::MapValues { mul: u("mul", 3)?, add: u("add", 1)? },
        "group_by_key" => StageSpec::GroupByKey,
        "reduce_by_key" => StageSpec::ReduceByKey,
        "count_by_key" => StageSpec::CountByKey,
        "aggregate_by_key" => StageSpec::AggregateByKey,
        "sort_by_key" => StageSpec::SortByKey,
        "join" => {
            let build = match s.get("build") {
                None => BuildSide::Dimension,
                Some(v) => match (v.as_str(), v.as_int()) {
                    (Some("dimension"), _) => BuildSide::Dimension,
                    (_, Some(i)) if i >= 0 => BuildSide::Stage(i as usize),
                    _ => {
                        return Err(
                            "join.build must be \"dimension\" or an earlier stage index".into()
                        )
                    }
                },
            };
            StageSpec::Join { build }
        }
        other => {
            return Err(format!(
                "unknown op {other:?}; expected one of filter, lookup_key, map, map_values, \
                 group_by_key, reduce_by_key, count_by_key, aggregate_by_key, sort_by_key, join"
            ))
        }
    };
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        [campaign]
        name = "t"
        systems = ["mondrian"]

        [[stage]]
        op = "filter"

        [[stage]]
        op = "reduce_by_key"

        [[stage]]
        op = "sort_by_key"
    "#;

    #[test]
    fn minimal_manifest_fills_defaults() {
        let m = Manifest::parse(MINIMAL, Format::Toml).unwrap();
        assert_eq!(m.name, "t");
        assert_eq!(m.systems, vec![SystemKind::Mondrian]);
        assert!(m.tiny);
        assert_eq!(m.tuples_per_vault, vec![256]);
        assert_eq!(m.seeds, vec![0x6d6f6e64]);
        assert_eq!(m.stages.len(), 3);
        assert_eq!(m.stages[0], StageSpec::Filter { modulus: 10, remainder: 0 });
        assert_eq!(m.runs().len(), 1);
    }

    #[test]
    fn sweep_lists_cross_product() {
        let text =
            format!("{MINIMAL}\n[sweep]\ntuples_per_vault = [256, 512]\nseeds = [1, 2, 3]\n");
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        let runs = m.runs();
        assert_eq!(runs.len(), 6);
        assert_eq!(
            runs[0],
            RunSpec { system: SystemKind::Mondrian, tuples_per_vault: 256, seed: 1 }
        );
        assert_eq!(
            runs[5],
            RunSpec { system: SystemKind::Mondrian, tuples_per_vault: 512, seed: 3 }
        );
    }

    #[test]
    fn all_expands_to_every_system() {
        let text = MINIMAL.replace("[\"mondrian\"]", "[\"all\"]");
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.systems.len(), SystemKind::ALL.len());
    }

    #[test]
    fn json_manifests_parse_too() {
        let text = r#"{
            "campaign": {"name": "j", "systems": ["cpu"], "seed": 3},
            "stage": [{"op": "count_by_key"}, {"op": "join", "build": 0}]
        }"#;
        let m = Manifest::parse(text, Format::Json).unwrap();
        assert_eq!(m.systems, vec![SystemKind::Cpu]);
        assert_eq!(m.seeds, vec![3]);
        assert_eq!(m.stages[1], StageSpec::Join { build: BuildSide::Stage(0) });
    }

    #[test]
    fn schema_errors_are_descriptive() {
        let no_stage = "[campaign]\nname = \"x\"\n";
        assert!(Manifest::parse(no_stage, Format::Toml).unwrap_err().contains("[[stage]]"));
        let bad_system = MINIMAL.replace("mondrian", "cray");
        assert!(Manifest::parse(&bad_system, Format::Toml).unwrap_err().contains("unknown system"));
        let bad_op = MINIMAL.replace("\"filter\"", "\"frobnicate\"");
        assert!(Manifest::parse(&bad_op, Format::Toml).unwrap_err().contains("unknown op"));
        // Forward join reference is caught at parse time via validate().
        let forward = r#"
            [campaign]
            name = "x"
            [[stage]]
            op = "join"
            build = 3
        "#;
        assert!(Manifest::parse(forward, Format::Toml)
            .unwrap_err()
            .contains("not an earlier stage"));
    }

    #[test]
    fn format_detection() {
        assert_eq!(Format::from_path("a/b.toml").unwrap(), Format::Toml);
        assert_eq!(Format::from_path("b.json").unwrap(), Format::Json);
        assert!(Format::from_path("b.yaml").is_err());
    }
}
