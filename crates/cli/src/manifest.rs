//! The campaign manifest: a declarative TOML or JSON description of a
//! pipeline, the systems to run it on, and the parameter sweeps.
//!
//! See `examples/manifests/` for complete examples and the README for the
//! schema reference. The shape, in TOML terms:
//!
//! ```toml
//! [campaign]
//! name = "spark-pipeline"       # required
//! systems = ["mondrian", "cpu"] # or ["all"]; default all
//! topology = "tiny"             # "tiny" | "scaled"; default tiny
//! tuples_per_vault = 256        # default 256
//! seed = 7                      # default the paper seed
//! key_dist = "uniform"          # "uniform" | "zipf"; default uniform
//! zipf_theta = 0.9              # only with key_dist = "zipf"
//! key_bound = 4096              # optional source key upper bound
//! concurrency = "serial"        # "serial" | "branch" | "stream"; default serial
//! jobs = 4                      # worker threads; default all host cores
//!                               # (overridden by MONDRIAN_JOBS / --jobs)
//! sim_threads = 2               # engine event-loop threads per run;
//!                               # default follows the per-run thread
//!                               # budget (overridden by --sim-threads)
//!
//! [sweep]                       # optional; lists override the scalars
//! tuples_per_vault = [256, 512]
//! seeds = [1, 2, 3]
//! zipf_theta = [0.6, 0.9]       # key-distribution skew axis
//! topology = ["tiny", "scaled"] # HMC/vault topology axis
//! underprovision = [0.5, 1.0]   # §5.4 permutable-region sizing axis
//!
//! [[stage]]                     # one per pipeline stage, in order
//! op = "filter"                 # stage name (see StageSpec)
//! modulus = 10
//! remainder = 0
//! # input = "prev"              # "prev" (default) | "source" | stage index,
//! #                             # or a list of edges for multi-input stages
//! #                             # (union 2+, cogroup exactly 2): input = [0, 1]
//! ```
//!
//! A JSON manifest is the same tree spelled as an object:
//! `{"campaign": {...}, "sweep": {...}, "stage": [{...}, ...]}`.

use mondrian_core::{KeyDist, SystemKind};
use mondrian_pipeline::{
    BuildSide, Concurrency, Pipeline, PipelineConfig, Stage, StageInput, StageSpec,
};

use crate::value::{parse_json, parse_toml, Value};

/// Manifest text formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// TOML subset (`.toml`).
    Toml,
    /// JSON (`.json`).
    Json,
}

impl Format {
    /// Picks the format from a file name.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown extensions.
    pub fn from_path(path: &str) -> Result<Format, String> {
        if path.ends_with(".toml") {
            Ok(Format::Toml)
        } else if path.ends_with(".json") {
            Ok(Format::Json)
        } else {
            Err(format!("{path}: unknown manifest extension (expected .toml or .json)"))
        }
    }
}

/// One fully resolved run of the campaign's cross product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// The evaluated system.
    pub system: SystemKind,
    /// Whether the run uses the minimal test topology.
    pub tiny: bool,
    /// Source tuples per vault.
    pub tuples_per_vault: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Key-distribution skew override (None = the campaign's base
    /// distribution).
    pub theta: Option<f64>,
    /// §5.4 permutable-region underprovisioning factor (None = exact
    /// sizing).
    pub underprovision: Option<f64>,
}

impl RunSpec {
    /// A short label naming the swept axes of this run.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{:<16} {:<6} tpv={:<6} seed={:<10}",
            self.system.name(),
            if self.tiny { "tiny" } else { "scaled" },
            self.tuples_per_vault,
            self.seed,
        );
        if let Some(t) = self.theta {
            label.push_str(&format!(" theta={t:<4}"));
        }
        if let Some(u) = self.underprovision {
            label.push_str(&format!(" up={u:<4}"));
        }
        label
    }

    /// [`Self::label`] with the table-column padding collapsed to single
    /// spaces — the run's name in trace process lanes and progress lines,
    /// where alignment is noise.
    pub fn id(&self) -> String {
        self.label().split_whitespace().collect::<Vec<_>>().join(" ")
    }
}

/// A parsed campaign manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Campaign name (echoed into the result artifact).
    pub name: String,
    /// Systems to run on.
    pub systems: Vec<SystemKind>,
    /// Whether the base topology is the minimal test topology.
    pub tiny: bool,
    /// Topology axis (tiny flags; singleton unless swept).
    pub topologies: Vec<bool>,
    /// Tuples-per-vault values (singleton unless swept).
    pub tuples_per_vault: Vec<usize>,
    /// Seeds (singleton unless swept).
    pub seeds: Vec<u64>,
    /// Source key distribution.
    pub dist: KeyDist,
    /// Key-distribution theta axis (singleton `None` unless swept).
    pub thetas: Vec<Option<f64>>,
    /// Underprovisioning-factor axis (singleton `None` unless swept).
    pub underprovision: Vec<Option<f64>>,
    /// Optional source key upper bound.
    pub key_bound: Option<u64>,
    /// How the executor schedules stages onto the machine.
    pub concurrency: Concurrency,
    /// Worker threads for the sweep (`None` = decide at run time: the
    /// `MONDRIAN_JOBS` environment variable, else every host core).
    /// Execution speed only — results are byte-identical for every value.
    pub jobs: Option<usize>,
    /// Host threads for each run's engine event loop (`None` = follow
    /// the executor's per-run thread budget). Execution speed only —
    /// results are byte-identical for every value.
    pub sim_threads: Option<usize>,
    /// The pipeline stages.
    pub stages: Vec<Stage>,
}

impl Manifest {
    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema error.
    pub fn parse(text: &str, format: Format) -> Result<Manifest, String> {
        let doc = match format {
            Format::Toml => parse_toml(text)?,
            Format::Json => parse_json(text)?,
        };
        Manifest::from_value(&doc)
    }

    /// Builds a manifest from a parsed document tree.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema error.
    pub fn from_value(doc: &Value) -> Result<Manifest, String> {
        let campaign = doc.get("campaign").ok_or("missing [campaign] section")?;
        let name = campaign
            .get("name")
            .and_then(Value::as_str)
            .ok_or("campaign.name (string) is required")?
            .to_string();

        let systems = match campaign.get("systems") {
            None => SystemKind::ALL.to_vec(),
            Some(v) => {
                let names = v.as_array().ok_or("campaign.systems must be an array")?;
                let all =
                    names.iter().any(|n| n.as_str().is_some_and(|s| s.eq_ignore_ascii_case("all")));
                if all {
                    if names.len() != 1 {
                        return Err("\"all\" cannot be combined with other systems".into());
                    }
                    SystemKind::ALL.to_vec()
                } else {
                    let mut systems = Vec::new();
                    for n in names {
                        let n = n.as_str().ok_or("campaign.systems entries must be strings")?;
                        systems.push(parse_system(n)?);
                    }
                    if systems.is_empty() {
                        return Err("campaign.systems is empty".into());
                    }
                    systems
                }
            }
        };

        let tiny = match campaign.get("topology") {
            None => true,
            Some(v) => parse_topology(v)?,
        };

        let concurrency = match campaign.get("concurrency").map(|v| v.as_str()) {
            None | Some(Some("serial")) => Concurrency::Serial,
            Some(Some("branch")) => Concurrency::Branch,
            Some(Some("stream")) => Concurrency::Stream,
            _ => {
                return Err(
                    "campaign.concurrency must be \"serial\", \"branch\" or \"stream\"".into()
                )
            }
        };

        let tpv_scalar =
            get_usize(campaign, "campaign.tuples_per_vault", "tuples_per_vault")?.unwrap_or(256);
        let seed_scalar = get_u64(campaign, "campaign.seed", "seed")?.unwrap_or(0x6d6f6e64);

        let dist = match campaign.get("key_dist").map(|v| v.as_str()) {
            None | Some(Some("uniform")) => KeyDist::Uniform,
            Some(Some("zipf")) => {
                let theta = campaign
                    .get("zipf_theta")
                    .and_then(Value::as_float)
                    .ok_or("key_dist = \"zipf\" requires zipf_theta (float)")?;
                if !(theta.is_finite() && theta >= 0.0) {
                    return Err("zipf_theta must be a non-negative finite number".into());
                }
                KeyDist::Zipf(theta)
            }
            _ => return Err("campaign.key_dist must be \"uniform\" or \"zipf\"".into()),
        };
        let key_bound = get_u64(campaign, "campaign.key_bound", "key_bound")?;
        let jobs = get_usize(campaign, "campaign.jobs", "jobs")?;
        if jobs == Some(0) {
            return Err("campaign.jobs must be at least 1".into());
        }
        let sim_threads = get_usize(campaign, "campaign.sim_threads", "sim_threads")?;
        if sim_threads == Some(0) {
            return Err("campaign.sim_threads must be at least 1".into());
        }

        let mut tuples_per_vault = vec![tpv_scalar];
        let mut seeds = vec![seed_scalar];
        let mut thetas: Vec<Option<f64>> = vec![None];
        let mut topologies = vec![tiny];
        let mut underprovision: Vec<Option<f64>> = vec![None];
        if let Some(sweep) = doc.get("sweep") {
            if let Some(v) = sweep.get("tuples_per_vault") {
                tuples_per_vault = int_list(v, "sweep.tuples_per_vault")?
                    .into_iter()
                    .map(|i| i as usize)
                    .collect();
            }
            if let Some(v) = sweep.get("seeds") {
                seeds = int_list(v, "sweep.seeds")?.into_iter().map(|i| i as u64).collect();
            }
            if let Some(v) = sweep.get("zipf_theta") {
                thetas = float_list(v, "sweep.zipf_theta")?
                    .into_iter()
                    .map(|t| {
                        if t.is_finite() && t >= 0.0 {
                            Ok(Some(t))
                        } else {
                            Err("sweep.zipf_theta entries must be non-negative finite".to_string())
                        }
                    })
                    .collect::<Result<_, _>>()?;
            }
            if let Some(v) = sweep.get("topology") {
                let entries = v.as_array().ok_or("sweep.topology must be an array")?;
                if entries.is_empty() {
                    return Err("sweep.topology is empty".into());
                }
                topologies = entries.iter().map(parse_topology).collect::<Result<_, _>>()?;
            }
            if let Some(v) = sweep.get("underprovision") {
                underprovision = float_list(v, "sweep.underprovision")?
                    .into_iter()
                    .map(|f| {
                        if f.is_finite() && f > 0.0 {
                            Ok(Some(f))
                        } else {
                            Err("sweep.underprovision entries must be positive finite".to_string())
                        }
                    })
                    .collect::<Result<_, _>>()?;
            }
        }

        let stage_list = doc
            .get("stage")
            .and_then(Value::as_array)
            .ok_or("at least one [[stage]] is required")?;
        if stage_list.is_empty() {
            return Err("at least one [[stage]] is required".into());
        }
        let stages = stage_list
            .iter()
            .enumerate()
            .map(|(i, s)| parse_stage(s).map_err(|e| format!("stage {i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let manifest = Manifest {
            name,
            systems,
            tiny,
            topologies,
            tuples_per_vault,
            seeds,
            dist,
            thetas,
            underprovision,
            key_bound,
            concurrency,
            jobs,
            sim_threads,
            stages,
        };
        manifest.pipeline().validate()?;
        Ok(manifest)
    }

    /// The declared pipeline.
    pub fn pipeline(&self) -> Pipeline {
        Pipeline::from_stages(self.stages.clone())
    }

    /// The campaign's cross product, in deterministic order: system-major,
    /// then topology, tuples-per-vault, seed, theta, underprovisioning.
    pub fn runs(&self) -> Vec<RunSpec> {
        let mut out = Vec::new();
        for &system in &self.systems {
            for &tiny in &self.topologies {
                for &tuples_per_vault in &self.tuples_per_vault {
                    for &seed in &self.seeds {
                        for &theta in &self.thetas {
                            for &underprovision in &self.underprovision {
                                out.push(RunSpec {
                                    system,
                                    tiny,
                                    tuples_per_vault,
                                    seed,
                                    theta,
                                    underprovision,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The pipeline configuration of one resolved run.
    pub fn config_for(&self, run: RunSpec) -> PipelineConfig {
        let mut cfg = if run.tiny {
            PipelineConfig::tiny(run.system)
        } else {
            PipelineConfig::new(run.system)
        };
        cfg.tuples_per_vault = run.tuples_per_vault;
        cfg.seed = run.seed;
        cfg.dist = match run.theta {
            Some(theta) => KeyDist::Zipf(theta),
            None => self.dist,
        };
        cfg.key_bound = self.key_bound;
        cfg.underprovision = run.underprovision;
        cfg.concurrency = self.concurrency;
        cfg.sim_threads = self.sim_threads.unwrap_or(0);
        cfg
    }
}

fn parse_system(name: &str) -> Result<SystemKind, String> {
    SystemKind::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(name)).ok_or_else(|| {
        let known: Vec<&str> = SystemKind::ALL.iter().map(|k| k.name()).collect();
        format!("unknown system {name:?}; expected one of {known:?} or \"all\"")
    })
}

fn parse_topology(v: &Value) -> Result<bool, String> {
    match v.as_str() {
        Some("tiny") => Ok(true),
        Some("scaled") => Ok(false),
        _ => Err("topology entries must be \"tiny\" or \"scaled\"".into()),
    }
}

fn get_u64(table: &Value, ctx: &str, key: &str) -> Result<Option<u64>, String> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => match v.as_int() {
            Some(i) if i >= 0 => Ok(Some(i as u64)),
            _ => Err(format!("{ctx} must be a non-negative integer")),
        },
    }
}

fn get_usize(table: &Value, ctx: &str, key: &str) -> Result<Option<usize>, String> {
    Ok(get_u64(table, ctx, key)?.map(|v| v as usize))
}

fn int_list(v: &Value, ctx: &str) -> Result<Vec<i64>, String> {
    let items = v.as_array().ok_or_else(|| format!("{ctx} must be an array"))?;
    if items.is_empty() {
        return Err(format!("{ctx} is empty"));
    }
    items
        .iter()
        .map(|i| match i.as_int() {
            Some(i) if i >= 0 => Ok(i),
            _ => Err(format!("{ctx} entries must be non-negative integers")),
        })
        .collect()
}

fn float_list(v: &Value, ctx: &str) -> Result<Vec<f64>, String> {
    let items = v.as_array().ok_or_else(|| format!("{ctx} must be an array"))?;
    if items.is_empty() {
        return Err(format!("{ctx} is empty"));
    }
    items
        .iter()
        .map(|i| i.as_float().ok_or_else(|| format!("{ctx} entries must be numbers")))
        .collect()
}

fn parse_input_edge(v: &Value) -> Result<StageInput, String> {
    match (v.as_str(), v.as_int()) {
        (Some("prev"), _) => Ok(StageInput::Prev),
        (Some("source"), _) => Ok(StageInput::Source),
        (_, Some(i)) if i >= 0 => Ok(StageInput::Stage(i as usize)),
        _ => Err("input edges must be \"prev\", \"source\", or an earlier stage index".into()),
    }
}

fn parse_stage(s: &Value) -> Result<Stage, String> {
    let op = s.get("op").and_then(Value::as_str).ok_or("missing op (string)")?;
    let u = |key: &str, default: u64| -> Result<u64, String> {
        get_u64(s, key, key).map(|v| v.unwrap_or(default))
    };
    let spec = match op {
        "filter" => {
            let modulus = u("modulus", 10)?;
            if modulus == 0 {
                return Err("filter.modulus must be non-zero".into());
            }
            StageSpec::Filter { modulus, remainder: u("remainder", 0)? }
        }
        "lookup_key" => StageSpec::LookupKey { key: u("key", 0)? },
        "map" => StageSpec::Map { key_mul: u("key_mul", 1)?, key_add: u("key_add", 1)? },
        "map_values" => StageSpec::MapValues { mul: u("mul", 3)?, add: u("add", 1)? },
        "union" => StageSpec::Union,
        "cogroup" => StageSpec::Cogroup,
        "flat_map" => {
            let fanout = u("fanout", 2)?;
            if !(1..=32).contains(&fanout) {
                return Err("flat_map.fanout must be between 1 and 32".into());
            }
            StageSpec::FlatMap { fanout }
        }
        "group_by_key" => StageSpec::GroupByKey,
        "reduce_by_key" => StageSpec::ReduceByKey,
        "count_by_key" => StageSpec::CountByKey,
        "aggregate_by_key" => StageSpec::AggregateByKey,
        "sort_by_key" => StageSpec::SortByKey,
        "join" => {
            let build = match s.get("build") {
                None => BuildSide::Dimension,
                Some(v) => match (v.as_str(), v.as_int()) {
                    (Some("dimension"), _) => BuildSide::Dimension,
                    (_, Some(i)) if i >= 0 => BuildSide::Stage(i as usize),
                    _ => {
                        return Err(
                            "join.build must be \"dimension\" or an earlier stage index".into()
                        )
                    }
                },
            };
            StageSpec::Join { build }
        }
        other => {
            return Err(format!(
                "unknown op {other:?}; expected one of filter, lookup_key, map, map_values, \
                 union, cogroup, flat_map, group_by_key, reduce_by_key, count_by_key, \
                 aggregate_by_key, sort_by_key, join"
            ))
        }
    };
    // A scalar edge or an `input = [...]` list — multi-input stages
    // (union, cogroup) name every feeder explicitly.
    let inputs = match s.get("input") {
        None => vec![StageInput::Prev],
        Some(v) => match v.as_array() {
            Some(edges) => {
                if edges.is_empty() {
                    return Err("input = [...] must name at least one edge".into());
                }
                edges.iter().map(parse_input_edge).collect::<Result<_, _>>()?
            }
            None => vec![parse_input_edge(v)?],
        },
    };
    Ok(Stage { spec, inputs })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        [campaign]
        name = "t"
        systems = ["mondrian"]

        [[stage]]
        op = "filter"

        [[stage]]
        op = "reduce_by_key"

        [[stage]]
        op = "sort_by_key"
    "#;

    #[test]
    fn minimal_manifest_fills_defaults() {
        let m = Manifest::parse(MINIMAL, Format::Toml).unwrap();
        assert_eq!(m.name, "t");
        assert_eq!(m.systems, vec![SystemKind::Mondrian]);
        assert!(m.tiny);
        assert_eq!(m.tuples_per_vault, vec![256]);
        assert_eq!(m.seeds, vec![0x6d6f6e64]);
        assert_eq!(m.thetas, vec![None]);
        assert_eq!(m.topologies, vec![true]);
        assert_eq!(m.underprovision, vec![None]);
        assert_eq!(m.concurrency, Concurrency::Serial);
        assert_eq!(m.sim_threads, None);
        assert_eq!(m.stages.len(), 3);
        assert_eq!(m.stages[0].spec, StageSpec::Filter { modulus: 10, remainder: 0 });
        assert_eq!(m.stages[0].inputs, vec![StageInput::Prev]);
        assert_eq!(m.runs().len(), 1);
    }

    #[test]
    fn multi_input_stages_parse_edge_lists() {
        let text = r#"
            [campaign]
            name = "multi"
            systems = ["mondrian"]

            [[stage]]
            op = "filter"

            [[stage]]
            op = "flat_map"
            fanout = 3

            [[stage]]
            op = "map_values"
            input = "source"

            [[stage]]
            op = "union"
            input = [1, 2]

            [[stage]]
            op = "cogroup"
            input = [1, 2]
        "#;
        let m = Manifest::parse(text, Format::Toml).unwrap();
        assert_eq!(m.stages[1].spec, StageSpec::FlatMap { fanout: 3 });
        assert_eq!(m.stages[3].spec, StageSpec::Union);
        assert_eq!(m.stages[3].inputs, vec![StageInput::Stage(1), StageInput::Stage(2)]);
        assert_eq!(m.stages[4].inputs, vec![StageInput::Stage(1), StageInput::Stage(2)]);

        // Arity violations surface at parse time via pipeline validation.
        let one_edge = text.replace(
            "input = [1, 2]\n\n            [[stage]]",
            "input = [1]\n\n            [[stage]]",
        );
        assert!(Manifest::parse(&one_edge, Format::Toml).unwrap_err().contains("at least 2"));
        let bad_fanout = text.replace("fanout = 3", "fanout = 99");
        assert!(Manifest::parse(&bad_fanout, Format::Toml)
            .unwrap_err()
            .contains("fanout must be between"));
        let empty = text.replace(
            "input = [1, 2]\n\n            [[stage]]",
            "input = []\n\n            [[stage]]",
        );
        assert!(Manifest::parse(&empty, Format::Toml).unwrap_err().contains("at least one edge"));
    }

    #[test]
    fn sweep_lists_cross_product() {
        let text = format!(
            "{MINIMAL}\n[sweep]\ntuples_per_vault = [256, 512]\nseeds = [1, 2, 3]\n\
             zipf_theta = [0.6, 0.9]\nunderprovision = [0.5, 1.0]\n"
        );
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        let runs = m.runs();
        assert_eq!(runs.len(), 2 * 3 * 2 * 2);
        assert_eq!(
            runs[0],
            RunSpec {
                system: SystemKind::Mondrian,
                tiny: true,
                tuples_per_vault: 256,
                seed: 1,
                theta: Some(0.6),
                underprovision: Some(0.5),
            }
        );
        let last = runs.last().unwrap();
        assert_eq!((last.tuples_per_vault, last.seed), (512, 3));
        assert_eq!((last.theta, last.underprovision), (Some(0.9), Some(1.0)));
        // Theta sweeps override the base distribution.
        assert_eq!(m.config_for(runs[0]).dist, KeyDist::Zipf(0.6));
        assert_eq!(m.config_for(runs[0]).underprovision, Some(0.5));
    }

    #[test]
    fn topology_sweep_and_concurrency_knob() {
        let text = MINIMAL.replace(
            "systems = [\"mondrian\"]",
            "systems = [\"mondrian\"]\nconcurrency = \"branch\"",
        ) + "\n[sweep]\ntopology = [\"tiny\", \"scaled\"]\n";
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.concurrency, Concurrency::Branch);
        assert_eq!(m.topologies, vec![true, false]);
        let runs = m.runs();
        assert_eq!(runs.len(), 2);
        assert!(runs[0].tiny && !runs[1].tiny);
        assert_eq!(m.config_for(runs[0]).concurrency, Concurrency::Branch);
    }

    #[test]
    fn stream_concurrency_parses() {
        let text = MINIMAL.replace(
            "systems = [\"mondrian\"]",
            "systems = [\"mondrian\"]\nconcurrency = \"stream\"",
        );
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.concurrency, Concurrency::Stream);
        assert_eq!(m.config_for(m.runs()[0]).concurrency, Concurrency::Stream);
    }

    #[test]
    fn sim_threads_knob_parses_and_reaches_config() {
        let text = MINIMAL
            .replace("systems = [\"mondrian\"]", "systems = [\"mondrian\"]\nsim_threads = 4");
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.sim_threads, Some(4));
        assert_eq!(m.config_for(m.runs()[0]).sim_threads, 4);
        // Absent, the config keeps the follow-the-executor default.
        let default = Manifest::parse(MINIMAL, Format::Toml).unwrap();
        assert_eq!(default.config_for(default.runs()[0]).sim_threads, 0);
        let zero = MINIMAL
            .replace("systems = [\"mondrian\"]", "systems = [\"mondrian\"]\nsim_threads = 0");
        assert!(Manifest::parse(&zero, Format::Toml)
            .unwrap_err()
            .contains("sim_threads must be at least 1"));
    }

    #[test]
    fn all_expands_to_every_system() {
        let text = MINIMAL.replace("[\"mondrian\"]", "[\"all\"]");
        let m = Manifest::parse(&text, Format::Toml).unwrap();
        assert_eq!(m.systems.len(), SystemKind::ALL.len());
    }

    #[test]
    fn json_manifests_parse_too() {
        let text = r#"{
            "campaign": {"name": "j", "systems": ["cpu"], "seed": 3},
            "stage": [
                {"op": "count_by_key"},
                {"op": "filter", "input": "source"},
                {"op": "join", "build": 0, "input": 1}
            ]
        }"#;
        let m = Manifest::parse(text, Format::Json).unwrap();
        assert_eq!(m.systems, vec![SystemKind::Cpu]);
        assert_eq!(m.seeds, vec![3]);
        assert_eq!(m.stages[1].inputs, vec![StageInput::Source]);
        assert_eq!(m.stages[2].spec, StageSpec::Join { build: BuildSide::Stage(0) });
        assert_eq!(m.stages[2].inputs, vec![StageInput::Stage(1)]);
    }

    #[test]
    fn schema_errors_are_descriptive() {
        let no_stage = "[campaign]\nname = \"x\"\n";
        assert!(Manifest::parse(no_stage, Format::Toml).unwrap_err().contains("[[stage]]"));
        let bad_system = MINIMAL.replace("mondrian", "cray");
        assert!(Manifest::parse(&bad_system, Format::Toml).unwrap_err().contains("unknown system"));
        let bad_op = MINIMAL.replace("\"filter\"", "\"frobnicate\"");
        assert!(Manifest::parse(&bad_op, Format::Toml).unwrap_err().contains("unknown op"));
        let bad_conc = MINIMAL.replace(
            "systems = [\"mondrian\"]",
            "systems = [\"mondrian\"]\nconcurrency = \"warp\"",
        );
        assert!(Manifest::parse(&bad_conc, Format::Toml).unwrap_err().contains("concurrency"));
        // Forward references are caught at parse time via validate().
        let forward = r#"
            [campaign]
            name = "x"
            [[stage]]
            op = "join"
            build = 3
        "#;
        assert!(Manifest::parse(forward, Format::Toml)
            .unwrap_err()
            .contains("not an earlier stage"));
        let forward_input = r#"
            [campaign]
            name = "x"
            [[stage]]
            op = "sort_by_key"
            input = 2
        "#;
        assert!(Manifest::parse(forward_input, Format::Toml)
            .unwrap_err()
            .contains("not an earlier stage"));
    }

    #[test]
    fn format_detection() {
        assert_eq!(Format::from_path("a/b.toml").unwrap(), Format::Toml);
        assert_eq!(Format::from_path("b.json").unwrap(), Format::Json);
        assert!(Format::from_path("b.yaml").is_err());
    }
}
